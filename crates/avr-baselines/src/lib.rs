//! The paper's comparison designs (§4.1):
//!
//! * [`truncate`] — half-precision truncation of approximable values
//!   (Jain'16 / Judd'16 / Sathish'12 style): fp32 values lose their low 16
//!   bits at the DRAM boundary, halving approximate traffic (2:1).
//! * [`doppelganger`] — an approximate-deduplication LLC (San Miguel'15):
//!   identical LLC data-array size, a 4× larger tag array, and similar
//!   cachelines sharing one data entry.

pub mod doppelganger;
pub mod truncate;

pub use doppelganger::{DedupOutcome, DoppelLlc};
pub use truncate::{truncate_line, truncate_word, TRUNCATED_LINE_BYTES};
