//! A Doppelgänger-style approximate-deduplication LLC (San Miguel et al.,
//! MICRO'15), configured as the paper compares it: the same data-array
//! capacity as the baseline LLC but a 4× larger tag array, so up to 4×
//! more cachelines can be indexed when they dedup onto shared data entries.
//!
//! Approximate cachelines are mapped by an *approximate signature* built
//! from the line's value span: the exponent bucket of the range, the
//! exponent bucket and sign of the mean, and a 2-bit-per-value normalized
//! shape. Lines whose signatures collide share one data entry — including
//! lines "at the extreme edges of their respective expected value span"
//! whose absolute values differ by up to the bucket width. That edge case
//! is exactly what the paper blames for Doppelgänger's runaway error on
//! lbm/orbit/wrf, and our signature reproduces it by construction.
//!
//! Dedup is applied *destructively* to the simulator's backing store (the
//! deduped line's values are overwritten with the representative's), which
//! models the cache returning representative data on every subsequent read.

use avr_types::{CacheGeometry, CacheLine, LineAddr, VALUES_PER_LINE};
use std::collections::HashMap;

/// Result of inserting a line.
#[derive(Clone, Debug, Default)]
pub struct DedupOutcome {
    /// The line deduped onto an existing entry: these are the
    /// representative's values, which the caller must write into the
    /// backing store (value feedback).
    pub mapped_to: Option<CacheLine>,
    /// Lines invalidated because their shared data entry was evicted, with
    /// their dirtiness (dirty ones must be written back).
    pub evicted: Vec<(LineAddr, bool)>,
}

#[derive(Clone, Debug)]
struct DataEntry {
    signature: u64,
    representative: CacheLine,
    refs: Vec<LineAddr>,
    lru: u64,
}

#[derive(Clone, Copy, Debug)]
struct TagInfo {
    entry: u32,
    dirty: bool,
    lru: u64,
}

/// The dedup LLC. Tag capacity = 4 × (data entries); both LRU-replaced.
#[derive(Clone, Debug)]
pub struct DoppelLlc {
    data_capacity: usize,
    tag_capacity: usize,
    latency: u64,
    tags: HashMap<LineAddr, TagInfo>,
    entries: HashMap<u32, DataEntry>,
    sig_index: HashMap<u64, u32>,
    next_entry: u32,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
    pub dedup_count: u64,
}

impl DoppelLlc {
    /// Build from the baseline LLC geometry (the data array matches it; the
    /// tag array is 4× larger).
    pub fn new(geom: CacheGeometry) -> Self {
        let data_capacity = geom.capacity / 64;
        DoppelLlc {
            data_capacity,
            tag_capacity: data_capacity * 4,
            latency: geom.latency,
            tags: HashMap::new(),
            entries: HashMap::new(),
            sig_index: HashMap::new(),
            next_entry: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            dedup_count: 0,
        }
    }

    pub fn latency(&self) -> u64 {
        self.latency
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// The approximate signature. Exact (address-salted) for non-approx
    /// lines so they never share.
    pub fn signature(line: &CacheLine, approx: bool, addr: LineAddr) -> u64 {
        if !approx {
            return 0x8000_0000_0000_0000 | addr.0;
        }
        let vals: Vec<f32> = line.words.iter().map(|&w| f32::from_bits(w)).collect();
        if vals.iter().any(|v| !v.is_finite()) {
            // Specials: exact match only.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &w in &line.words {
                h = (h ^ w as u64).wrapping_mul(0x1000_0000_01b3);
            }
            return h;
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for &v in &vals {
            min = min.min(v);
            max = max.max(v);
            sum += v as f64;
        }
        let mean = (sum / VALUES_PER_LINE as f64) as f32;
        let range = max - min;
        // Value-span buckets: log2 quantized to 1/48-octave steps (~1.5 %
        // wide — the Doppelgänger map resolution). Lines whose means or
        // spans differ by more than a bucket never dedup; lines *inside*
        // one bucket dedup even when their absolute values sit at the
        // bucket's opposite edges — the paper's noted failure mode.
        let bucket = |v: f32| -> u64 {
            if v == 0.0 {
                0
            } else {
                ((v.abs().log2() * 24.0).floor() as i64 + 10_000) as u64
            }
        };
        let mean_sign = (mean < 0.0) as u64;
        let sig = bucket(range)
            .wrapping_mul(0x1000_0000_01B3)
            .wrapping_add(bucket(mean))
            .wrapping_mul(0x1000_0000_01B3)
            .wrapping_add(mean_sign);
        // 2-bit normalized shape per value.
        let mut shape = 0u64;
        for (i, &v) in vals.iter().enumerate() {
            let q =
                if range == 0.0 { 0 } else { (((v - min) / range) * 3.999).floor() as u64 & 0x3 };
            shape |= q << (2 * i);
        }
        sig ^ shape.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Look up a line; on a hit refresh recency (and dirtiness for writes).
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        let now = self.tick();
        let Some(t) = self.tags.get_mut(&line) else {
            self.misses += 1;
            return false;
        };
        t.lru = now;
        if write {
            t.dirty = true;
        }
        let entry = t.entry;
        if let Some(e) = self.entries.get_mut(&entry) {
            e.lru = now;
        }
        self.hits += 1;
        true
    }

    pub fn contains(&self, line: LineAddr) -> bool {
        self.tags.contains_key(&line)
    }

    /// The values a read of `line` observes (the representative's).
    pub fn read_values(&self, line: LineAddr) -> Option<&CacheLine> {
        let t = self.tags.get(&line)?;
        self.entries.get(&t.entry).map(|e| &e.representative)
    }

    fn evict_tag_lru(&mut self, out: &mut Vec<(LineAddr, bool)>) {
        let Some((&victim, _)) = self.tags.iter().min_by_key(|(_, t)| t.lru) else {
            return;
        };
        let info = self.tags.remove(&victim).expect("victim present");
        out.push((victim, info.dirty));
        if let Some(e) = self.entries.get_mut(&info.entry) {
            e.refs.retain(|&l| l != victim);
            if e.refs.is_empty() {
                let sig = e.signature;
                self.entries.remove(&info.entry);
                self.sig_index.remove(&sig);
            }
        }
    }

    fn evict_entry_lru(&mut self, out: &mut Vec<(LineAddr, bool)>) {
        let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.lru) else {
            return;
        };
        let e = self.entries.remove(&victim).expect("victim present");
        self.sig_index.remove(&e.signature);
        for l in e.refs {
            if let Some(t) = self.tags.remove(&l) {
                out.push((l, t.dirty));
            }
        }
    }

    /// Insert a missing line with its current values.
    pub fn insert(
        &mut self,
        line: LineAddr,
        values: &CacheLine,
        approx: bool,
        dirty: bool,
    ) -> DedupOutcome {
        let now = self.tick();
        let mut outcome = DedupOutcome::default();
        if self.tags.contains_key(&line) {
            // Refresh path.
            self.access(line, dirty);
            return outcome;
        }
        while self.tags.len() >= self.tag_capacity {
            self.evict_tag_lru(&mut outcome.evicted);
        }
        let sig = Self::signature(values, approx, line);
        let entry_id = match self.sig_index.get(&sig).copied() {
            Some(id) if approx => {
                // Dedup: share the representative.
                let e = self.entries.get_mut(&id).expect("indexed entry exists");
                e.refs.push(line);
                e.lru = now;
                self.dedup_count += 1;
                outcome.mapped_to = Some(e.representative);
                id
            }
            _ => {
                while self.entries.len() >= self.data_capacity {
                    self.evict_entry_lru(&mut outcome.evicted);
                }
                let id = self.next_entry;
                self.next_entry += 1;
                self.entries.insert(
                    id,
                    DataEntry {
                        signature: sig,
                        representative: *values,
                        refs: vec![line],
                        lru: now,
                    },
                );
                self.sig_index.insert(sig, id);
                id
            }
        };
        self.tags.insert(line, TagInfo { entry: entry_id, dirty, lru: now });
        // The freshly inserted line may appear in `evicted` only if
        // capacity is pathological (tag_capacity 0); guard in tests.
        outcome.evicted.retain(|(l, _)| *l != line);
        outcome
    }

    /// Invalidate one line (writeback handled by caller). Returns dirtiness.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let info = self.tags.remove(&line)?;
        if let Some(e) = self.entries.get_mut(&info.entry) {
            e.refs.retain(|&l| l != line);
            if e.refs.is_empty() {
                let sig = e.signature;
                self.entries.remove(&info.entry);
                self.sig_index.remove(&sig);
            }
        }
        Some(info.dirty)
    }

    /// Lines per data entry (compression-effectiveness diagnostic).
    pub fn dedup_factor(&self) -> f64 {
        if self.entries.is_empty() {
            1.0
        } else {
            self.tags.len() as f64 / self.entries.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::CacheGeometry;

    fn llc() -> DoppelLlc {
        // 64-entry data array, 256 tags.
        DoppelLlc::new(CacheGeometry { capacity: 64 * 64, ways: 16, latency: 15 })
    }

    fn line_of(vals: [f32; VALUES_PER_LINE]) -> CacheLine {
        CacheLine::from_f32(&vals)
    }

    fn ramp(base: f32, step: f32) -> CacheLine {
        let mut v = [0f32; VALUES_PER_LINE];
        for (i, x) in v.iter_mut().enumerate() {
            *x = base + step * i as f32;
        }
        line_of(v)
    }

    #[test]
    fn identical_lines_dedup() {
        let mut c = llc();
        let data = ramp(10.0, 0.5);
        let a = LineAddr(0x100);
        let b = LineAddr(0x900);
        c.insert(a, &data, true, false);
        let o = c.insert(b, &data, true, false);
        assert!(o.mapped_to.is_some(), "identical approx lines share an entry");
        assert_eq!(c.dedup_count, 1);
        assert!((c.dedup_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn similar_lines_in_same_span_bucket_dedup() {
        let mut c = llc();
        // Same shape, means within one 1/48-octave bucket: collide.
        let a = ramp(64.0, 1.0);
        let b = ramp(64.05, 1.0);
        c.insert(LineAddr(1), &a, true, false);
        let o = c.insert(LineAddr(2), &b, true, false);
        assert!(o.mapped_to.is_some());
        // The deduped reader sees the representative (a's values).
        let rep = o.mapped_to.unwrap();
        assert_eq!(rep, a);
    }

    #[test]
    fn edge_of_bucket_error_can_be_large() {
        // The documented Doppelgänger pathology: values at opposite edges
        // of one 1/48-octave bucket are "approximately equal" to the map
        // even though they differ by the full bucket width (~1.4 %) —
        // errors that compound in feedback loops.
        let a = ramp(64.0, 0.0);
        let b = ramp(65.7, 0.0);
        let sa = DoppelLlc::signature(&a, true, LineAddr(1));
        let sb = DoppelLlc::signature(&b, true, LineAddr(2));
        assert_eq!(sa, sb, "same-bucket collision expected");
        // Across a bucket boundary the lines stay distinct.
        let c = ramp(68.0, 0.0);
        let sc = DoppelLlc::signature(&c, true, LineAddr(3));
        assert_ne!(sa, sc);
    }

    #[test]
    fn different_shapes_do_not_dedup() {
        let mut c = llc();
        let up = ramp(10.0, 1.0);
        let mut down_vals = [0f32; VALUES_PER_LINE];
        for (i, v) in down_vals.iter_mut().enumerate() {
            *v = 25.0 - i as f32;
        }
        c.insert(LineAddr(1), &up, true, false);
        let o = c.insert(LineAddr(2), &line_of(down_vals), true, false);
        assert!(o.mapped_to.is_none());
    }

    #[test]
    fn non_approx_lines_never_share() {
        let mut c = llc();
        let data = ramp(5.0, 0.0);
        c.insert(LineAddr(1), &data, false, false);
        let o = c.insert(LineAddr(2), &data, false, false);
        assert!(o.mapped_to.is_none());
        assert_eq!(c.dedup_count, 0);
    }

    #[test]
    fn hit_miss_tracking() {
        let mut c = llc();
        let l = LineAddr(0x5);
        assert!(!c.access(l, false));
        c.insert(l, &ramp(1.0, 0.1), true, false);
        assert!(c.access(l, true));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn data_entry_eviction_invalidates_all_sharers() {
        let mut c = DoppelLlc::new(CacheGeometry { capacity: 2 * 64, ways: 16, latency: 15 });
        // Capacity: 2 entries, 8 tags.
        let d1 = ramp(10.0, 1.0);
        c.insert(LineAddr(1), &d1, true, true);
        c.insert(LineAddr(2), &d1, true, false); // dedups with 1
        c.insert(LineAddr(3), &ramp(1000.0, -3.0), true, false);
        // A third distinct entry evicts the LRU entry (d1's), dropping both
        // sharers; the dirty one is reported dirty.
        let o = c.insert(LineAddr(4), &ramp(-5.0, 0.25), true, false);
        let evicted: Vec<_> = o.evicted.iter().collect();
        assert!(evicted.iter().any(|(l, d)| *l == LineAddr(1) && *d));
        assert!(evicted.iter().any(|(l, d)| *l == LineAddr(2) && !*d));
        assert!(!c.contains(LineAddr(1)) && !c.contains(LineAddr(2)));
    }

    #[test]
    fn tag_pressure_evicts_without_touching_other_entries() {
        let mut c = DoppelLlc::new(CacheGeometry { capacity: 4 * 64, ways: 16, latency: 15 });
        // 4 entries, 16 tags. Insert 17 identical approx lines: they all
        // share one entry but exceed tag capacity.
        let data = ramp(2.0, 0.5);
        for i in 0..17u64 {
            c.insert(LineAddr(0x1000 + i), &data, true, false);
        }
        assert!(c.tags.len() <= 16);
        assert_eq!(c.entries.len(), 1);
    }

    #[test]
    fn invalidate_frees_entry_when_last_sharer_leaves() {
        let mut c = llc();
        let data = ramp(3.0, 0.2);
        c.insert(LineAddr(1), &data, true, false);
        c.insert(LineAddr(2), &data, true, true);
        assert_eq!(c.invalidate(LineAddr(1)), Some(false));
        assert_eq!(c.entries.len(), 1, "entry kept while a sharer remains");
        assert_eq!(c.invalidate(LineAddr(2)), Some(true));
        assert_eq!(c.entries.len(), 0);
    }

    #[test]
    fn read_values_returns_representative() {
        let mut c = llc();
        let rep = ramp(50.0, 0.5);
        let near = ramp(50.04, 0.5);
        c.insert(LineAddr(1), &rep, true, false);
        c.insert(LineAddr(2), &near, true, false);
        assert_eq!(c.read_values(LineAddr(2)), Some(&rep));
    }
}
