//! The Truncate design: approximable fp32 values are stored in memory with
//! their 16 low-order mantissa bits dropped, for a fixed 2:1 compression of
//! approximate traffic. This is the paper's stand-in for the concise-loads /
//! Proteus / GPU-link-compression family [21, 22, 42].

use avr_types::{CacheLine, DataType};

/// Bytes transferred per 64 B cacheline of truncated data.
pub const TRUNCATED_LINE_BYTES: u64 = 32;

/// Truncate one value to its upper 16 bits (sign + exponent + 7 mantissa
/// bits for f32 — a bfloat16-style cut; the integer analogue zeroes the low
/// half).
#[inline]
pub fn truncate_word(raw: u32, dt: DataType) -> u32 {
    match dt {
        DataType::F32 => raw & 0xFFFF_0000,
        DataType::Fixed32 => raw & 0xFFFF_0000,
    }
}

/// Truncate a whole cacheline.
pub fn truncate_line(line: &CacheLine, dt: DataType) -> CacheLine {
    let mut out = *line;
    for w in out.words.iter_mut() {
        *w = truncate_word(*w, dt);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_relative_error_is_bounded() {
        // Keeping 7 mantissa bits bounds relative error by 2^-8 ≈ 0.39 %
        // (round-toward-zero truncation, error < 1 ulp of the kept field).
        for v in [1.0f32, 3.25, -2.7e8, 5.5e-12, 123.456] {
            let t = f32::from_bits(truncate_word(v.to_bits(), DataType::F32));
            let rel = ((t - v) / v).abs();
            assert!(rel < 1.0 / 128.0, "{v} -> {t} rel {rel}");
        }
    }

    #[test]
    fn truncation_is_idempotent() {
        for v in [1.0f32, -9.9e4, 7.25e-3] {
            let once = truncate_word(v.to_bits(), DataType::F32);
            assert_eq!(truncate_word(once, DataType::F32), once);
        }
    }

    #[test]
    fn sign_and_exponent_survive() {
        let v = -6.02e23f32;
        let t = f32::from_bits(truncate_word(v.to_bits(), DataType::F32));
        assert!(t < 0.0);
        assert_eq!(v.to_bits() >> 23, t.to_bits() >> 23);
    }

    #[test]
    fn zero_stays_zero() {
        assert_eq!(truncate_word(0, DataType::F32), 0);
        let nz = (-0.0f32).to_bits();
        assert_eq!(truncate_word(nz, DataType::F32), nz);
    }

    #[test]
    fn line_truncation_is_elementwise() {
        let mut line = CacheLine::ZERO;
        for (i, w) in line.words.iter_mut().enumerate() {
            *w = ((i as f32) * 1.111).to_bits();
        }
        let t = truncate_line(&line, DataType::F32);
        for (a, b) in line.words.iter().zip(&t.words) {
            assert_eq!(truncate_word(*a, DataType::F32), *b);
        }
    }

    #[test]
    fn fixed_truncation_zeroes_fraction() {
        // Q16.16: dropping the low 16 bits removes the fractional part.
        let raw = ((42i32) << 16 | 0x8000) as u32; // 42.5
        let t = truncate_word(raw, DataType::Fixed32);
        assert_eq!(t, ((42i32) << 16) as u32);
    }
}
