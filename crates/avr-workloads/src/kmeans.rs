//! `kmeans` — 1-D k-means clustering applied to a geographic elevation map
//! (the paper uses a Swedish topological survey tile; we use fractal
//! terrain with matching statistics, DESIGN.md §4). Approximable data: the
//! elevation samples ("Topol."); output: the cluster centroids.
//!
//! This is the one benchmark whose *work* depends on data quality: the
//! iteration count until convergence can grow when the input is
//! approximated (the paper calls this out explicitly for AVR).

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use crate::terrain::{fractal_terrain, hash01};
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};
use avr_types::PhysAddr;

/// The k-means benchmark.
pub struct KMeans {
    pub points: usize,
    pub k: usize,
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (meters).
    pub eps: f32,
}

impl KMeans {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => KMeans { points: 4096, k: 8, max_iters: 40, eps: 6.0 },
            // ~4 MB of elevations + 1 MB assignments ≈ the paper's
            // 5.5 MB/core footprint shape.
            BenchScale::Bench => KMeans { points: 1 << 20, k: 16, max_iters: 25, eps: 6.0 },
        }
    }

    #[inline]
    fn at(base: PhysAddr, i: usize) -> PhysAddr {
        PhysAddr(base.0 + 4 * i as u64)
    }

    /// One record per survey point: just the elevation sample. A
    /// single-field record is the degenerate case where AoS and SoA
    /// coincide — the byte-packed assignments can't ride in the record
    /// (four of them share a word), so they stay a separate precise array.
    fn schema() -> RecordSchema {
        RecordSchema::new("sample", vec![FieldSpec::approx_f32("elev")])
    }
}

/// Field index into [`KMeans::schema`].
const ELEV: usize = 0;

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new(
            "kmeans",
            &[
                self.points as u64,
                self.k as u64,
                self.max_iters as u64,
                u64::from(self.eps.to_bits()),
            ],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // One elevation stream per assign pass, up to max_iters passes
        // (convergence may stop earlier — a coarse upper bound is fine).
        (self.points * self.max_iters) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let n = self.points;
        let k = self.k;
        // Approximable: the elevation samples.
        let map = Layout::new(Self::schema(), layout).instantiate(vm, n);
        // Precise: assignments (one byte per point, packed 4/word) and the
        // centroid table.
        let asg = vm.malloc(n).base;
        let cent = vm.malloc(4 * k).base;

        // Input: correlated terrain — rough at the 16-sample sub-block
        // scale, like real elevation data (this is what limits AVR to a
        // ~2.3:1 ratio in Table 4). The 700 m base keeps relative local
        // relief in the few-percent band where *some* values become
        // outliers but blocks still compress.
        let coarse = fractal_terrain(n, 700.0, 180.0, 0.55, 0x5EED);
        // Fine-scale bumps with a ~4-sample correlation length and a fixed
        // amplitude: local (sub-block-scale) roughness is then independent
        // of the dataset size, like real survey data.
        let fine_amp = 16.0f32;
        let terrain: Vec<f32> = coarse
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let cell = (i / 4) as u64;
                let frac = (i % 4) as f32 / 4.0;
                let a = hash01(cell, 0xF1E1) * 2.0 - 1.0;
                let b = hash01(cell + 1, 0xF1E1) * 2.0 - 1.0;
                c + fine_amp * (a * (1.0 - frac) + b * frac)
            })
            .collect();
        map.write_f32s(vm, ELEV, 0, &terrain);

        // Initialize centroids evenly over the value range.
        let (lo, hi) =
            terrain.iter().fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let init: Vec<f32> = (0..k).map(|c| lo + (hi - lo) * (c as f32 + 0.5) / k as f32).collect();
        vm.write_f32s(cent, &init);

        // The assign pass streams the elevations in chunks: one bulk read
        // per chunk, plus one packed bulk write of the chunk's assignments.
        const CHUNK: usize = 1024;
        let mut elev = vec![0f32; CHUNK];
        let mut packed = vec![0u32; CHUNK / 4];
        let mut c = vec![0f32; k];
        let mut iterations = 0usize;
        for _ in 0..self.max_iters {
            iterations += 1;
            // Load centroids into registers (they are tiny + precise).
            vm.read_f32s(cent, &mut c);
            let mut sums = vec![0f64; k];
            let mut counts = vec![0u64; k];

            // Assign.
            for start in (0..n).step_by(CHUNK) {
                let len = CHUNK.min(n - start);
                map.read_f32s(vm, ELEV, start, &mut elev[..len]);
                for (o, &e) in elev[..len].iter().enumerate() {
                    let mut best = 0usize;
                    let mut best_d = f32::MAX;
                    for (j, &cv) in c.iter().enumerate() {
                        let d = (e - cv).abs();
                        if d < best_d {
                            best_d = d;
                            best = j;
                        }
                    }
                    sums[best] += e as f64;
                    counts[best] += 1;
                    // Pack the assignment byte.
                    if o % 4 == 0 {
                        packed[o / 4] = best as u32;
                    }
                }
                vm.compute(3 * k as u64 * len as u64);
                vm.write_u32s(Self::at(asg, start / 4), &packed[..len.div_ceil(4)]);
            }

            // Update.
            let mut moved = 0f32;
            for j in 0..k {
                if counts[j] > 0 {
                    let nv = (sums[j] / counts[j] as f64) as f32;
                    moved += (nv - c[j]).abs();
                    c[j] = nv;
                }
            }
            vm.write_f32s(cent, &c);
            vm.compute(8 * k as u64);
            if moved < self.eps {
                break;
            }
        }

        // Output: the centroids (sorted — cluster identity is arbitrary).
        // The iteration count (workload inflation under approximation) is
        // visible through the instruction counters, not the output error.
        let _ = iterations;
        let mut fin = vec![0f32; k];
        vm.read_f32s(cent, &mut fin);
        let mut out: Vec<f64> = fin.iter().map(|&v| v as f64).collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn converges_on_exact_run() {
        let w = KMeans::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        assert_eq!(out.len(), w.k);
        // Centroids are sorted and within the data range.
        let cents = &out[..w.k];
        assert!(cents.windows(2).all(|p| p[0] <= p[1]));
        assert!(cents.iter().all(|&c| (0.0..1200.0).contains(&c)));
    }

    #[test]
    fn centroids_partition_the_range() {
        let w = KMeans::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        let cents = &out[..w.k];
        // Spread: max - min covers a good share of the terrain relief.
        assert!(cents[w.k - 1] - cents[0] > 100.0);
    }

    #[test]
    fn avr_error_is_moderate_and_bounded() {
        let w = KMeans::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        // The paper reports 1.2 % for kmeans — allow slack at tiny scale.
        assert!(m.output_error < 0.10, "kmeans AVR error {}", m.output_error);
    }
}
