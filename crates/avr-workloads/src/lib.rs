//! The seven approximation-tolerant benchmarks of Table 2, ported as Rust
//! programs that run against any [`avr_core::Vm`] — the timed systems or
//! the exact golden executor.
//!
//! | name     | paper source                | this port                                   |
//! |----------|-----------------------------|---------------------------------------------|
//! | heat     | Quinn, MPI/OpenMP book      | 2-D Jacobi heat diffusion                   |
//! | lattice  | Ansumali'03 (+car input)    | D2Q9 lattice-Boltzmann over a car silhouette|
//! | lbm      | SPEC CPU2006 470.lbm        | D3Q19 lattice-Boltzmann over a sphere       |
//! | orbit    | FLASH two-particle orbit    | 3-D potential grid + leapfrog two-body      |
//! | kmeans   | 1-D k-means (+survey input) | 1-D k-means over fractal terrain elevations |
//! | bscholes | AxBench blackscholes        | Black-Scholes option pricing                |
//! | wrf      | SPEC CPU2006 481.wrf        | multi-field 3-D weather stencil             |
//!
//! Each workload annotates the data structures the paper lists as
//! approximable, tuned so the approximable fraction of the footprint
//! matches Table 4's back-computed fractions (see DESIGN.md §4).

pub mod bscholes;
pub mod heat;
pub mod kmeans;
pub mod lattice;
pub mod lbm;
pub mod orbit;
pub mod runner;
pub mod terrain;
pub mod wrf;

pub use runner::{all_benchmarks, mean_relative_error, run_on_design, BenchScale, Workload};
