//! The ten approximation-tolerant benchmarks, ported as Rust programs
//! that run against any [`avr_core::Vm`] — the timed systems or the exact
//! golden executor. The first seven are the paper's Table 2 suite; `sobel`
//! and `fft` extend it with two further AxBench kernels so configuration
//! sweeps cover more data-layout classes (cf. arXiv:2004.01637), and
//! `particles` adds a genuinely mixed-criticality record (approximable
//! positions/velocities next to a precise cell index) for the layout axis.
//!
//! | name      | source                      | this port                                   |
//! |-----------|-----------------------------|---------------------------------------------|
//! | heat      | Quinn, MPI/OpenMP book      | 2-D Jacobi heat diffusion                   |
//! | lattice   | Ansumali'03 (+car input)    | D2Q9 lattice-Boltzmann over a car silhouette|
//! | lbm       | SPEC CPU2006 470.lbm        | D3Q19 lattice-Boltzmann over a sphere       |
//! | orbit     | FLASH two-particle orbit    | 3-D potential grid + leapfrog two-body      |
//! | kmeans    | 1-D k-means (+survey input) | 1-D k-means over fractal terrain elevations |
//! | bscholes  | AxBench blackscholes        | Black-Scholes option pricing                |
//! | wrf       | SPEC CPU2006 481.wrf        | multi-field 3-D weather stencil             |
//! | sobel     | AxBench sobel (extension)   | 3×3 Sobel edge filter over a textured image |
//! | fft       | AxBench fft (extension)     | radix-2 FFT of a full-band chirp            |
//! | particles | cell-list MD step (layout)  | 2-D particle step with precise cell indices |
//!
//! Each workload annotates the data structures the paper lists as
//! approximable, tuned so the approximable fraction of the footprint
//! matches Table 4's back-computed fractions (see DESIGN.md §4). Every
//! workload declares its record schema through [`avr_core::RecordSchema`]
//! and runs in any [`avr_core::LayoutKind`] it lists in
//! [`runner::Workload::layouts`] — same math, different placement.

pub mod bscholes;
pub mod fft;
pub mod golden;
pub mod heat;
pub mod kmeans;
pub mod lattice;
pub mod lbm;
pub mod orbit;
pub mod particles;
pub mod runner;
pub mod sobel;
pub mod terrain;
pub mod wrf;

pub use golden::{golden_run, GoldenKey};
pub use runner::{
    all_benchmarks, mean_relative_error, metrics_digest, run_grid, run_grid_layouts, run_on_design,
    run_on_design_in, run_suite_on_pool, workload_by_name, workload_names, BenchScale, GridRun,
    Workload,
};
