//! The nine approximation-tolerant benchmarks, ported as Rust programs
//! that run against any [`avr_core::Vm`] — the timed systems or the exact
//! golden executor. The first seven are the paper's Table 2 suite; `sobel`
//! and `fft` extend it with two further AxBench kernels so configuration
//! sweeps cover more data-layout classes (cf. arXiv:2004.01637).
//!
//! | name     | source                      | this port                                   |
//! |----------|-----------------------------|---------------------------------------------|
//! | heat     | Quinn, MPI/OpenMP book      | 2-D Jacobi heat diffusion                   |
//! | lattice  | Ansumali'03 (+car input)    | D2Q9 lattice-Boltzmann over a car silhouette|
//! | lbm      | SPEC CPU2006 470.lbm        | D3Q19 lattice-Boltzmann over a sphere       |
//! | orbit    | FLASH two-particle orbit    | 3-D potential grid + leapfrog two-body      |
//! | kmeans   | 1-D k-means (+survey input) | 1-D k-means over fractal terrain elevations |
//! | bscholes | AxBench blackscholes        | Black-Scholes option pricing                |
//! | wrf      | SPEC CPU2006 481.wrf        | multi-field 3-D weather stencil             |
//! | sobel    | AxBench sobel (extension)   | 3×3 Sobel edge filter over a textured image |
//! | fft      | AxBench fft (extension)     | radix-2 FFT of a full-band chirp            |
//!
//! Each workload annotates the data structures the paper lists as
//! approximable, tuned so the approximable fraction of the footprint
//! matches Table 4's back-computed fractions (see DESIGN.md §4).

pub mod bscholes;
pub mod fft;
pub mod golden;
pub mod heat;
pub mod kmeans;
pub mod lattice;
pub mod lbm;
pub mod orbit;
pub mod runner;
pub mod sobel;
pub mod terrain;
pub mod wrf;

pub use golden::{golden_run, GoldenKey};
pub use runner::{
    all_benchmarks, mean_relative_error, run_grid, run_on_design, run_suite_on_pool, BenchScale,
    GridRun, Workload,
};
