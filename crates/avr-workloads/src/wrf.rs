//! `wrf` — a weather-forecasting proxy for SPEC CPU2006 481.wrf: a
//! multi-field 3-D atmospheric stencil over terrain. Only the
//! geographically ordered weather metrics (temperature and humidity) are
//! approximable — about 15 % of the footprint, matching the paper — and
//! they carry terrain-correlated fine structure, which limits AVR to the
//! ~3.4:1 ratio of Table 4. Output: the temperature field.
#![allow(clippy::needless_range_loop)] // terrain blending indexes two profiles at once

use crate::runner::{BenchScale, Workload};
use crate::terrain::fractal_terrain;
use avr_core::Vm;
use avr_types::{DataType, PhysAddr};

/// The weather-model benchmark.
pub struct Wrf {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub steps: usize,
}

impl Wrf {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => Wrf { nx: 24, ny: 24, nz: 6, steps: 3 },
            // 13 grids x 72x72x12 x 4 B ≈ 3.2 MB total, 2 of them (T, Q)
            // approximable ≈ 15 %.
            BenchScale::Bench => Wrf { nx: 72, ny: 72, nz: 12, steps: 5 },
        }
    }

    #[inline]
    fn at(base: PhysAddr, idx: usize) -> PhysAddr {
        PhysAddr(base.0 + 4 * idx as u64)
    }
}

impl Workload for Wrf {
    fn name(&self) -> &'static str {
        "wrf"
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let cells = nx * ny * nz;
        let idx_of = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;

        // Approximable: the geo-ordered weather metrics.
        let t = vm.approx_malloc(4 * cells, DataType::F32).base; // temperature
        let q = vm.approx_malloc(4 * cells, DataType::F32).base; // humidity

        // Precise: everything else (dynamics + scratch), 11 more grids.
        let t_new = vm.malloc(4 * cells).base;
        let q_new = vm.malloc(4 * cells).base;
        let p = vm.malloc(4 * cells).base; // pressure
        let u = vm.malloc(4 * cells).base; // wind x
        let v = vm.malloc(4 * cells).base; // wind y
        let wz = vm.malloc(4 * cells).base; // wind z
        let rho_a = vm.malloc(4 * cells).base; // air density
        let rain = vm.malloc(4 * cells).base; // accumulated precipitation
        let srad = vm.malloc(4 * cells).base; // radiative source
        let scratch1 = vm.malloc(4 * cells).base;
        let scratch2 = vm.malloc(4 * cells).base;
        let terr = vm.malloc(4 * nx * ny).base; // surface elevation (2-D)

        // Terrain: two orthogonal fractal profiles blended.
        let tx = fractal_terrain(nx, 300.0, 180.0, 0.7, 0xA11CE);
        let ty = fractal_terrain(ny, 300.0, 180.0, 0.7, 0xB0B);
        for y in 0..ny {
            for x in 0..nx {
                let e = 0.5 * (tx[x] + ty[y]);
                vm.write_f32(Self::at(terr, y * nx + x), e);
            }
        }

        // Initial atmosphere: lapse rate with altitude, terrain heating,
        // and weak fine structure (what keeps the ratio near 3.4:1).
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let elev = 0.5 * (tx[x] + ty[y]);
                    let alt = z as f32 * 500.0 + elev;
                    let fine = ((x as f32 * 1.9).sin() + (y as f32 * 2.3).cos()) * 0.8;
                    let temp = 288.0 - 0.0065 * alt + fine;
                    // Multiplicative fine structure keeps the *relative*
                    // roughness of humidity uniform across altitudes.
                    let hum = (0.8 - 0.00009 * alt).max(0.2) * (1.0 + 0.009 * fine);
                    let idx = idx_of(x, y, z);
                    vm.compute(16);
                    vm.write_f32(Self::at(t, idx), temp);
                    vm.write_f32(Self::at(q, idx), hum);
                    vm.write_f32(Self::at(p, idx), 1013.0 * (-alt / 8000.0).exp());
                    vm.write_f32(Self::at(u, idx), 3.0 + 0.01 * y as f32);
                    vm.write_f32(Self::at(v, idx), 1.0);
                    vm.write_f32(Self::at(wz, idx), 0.0);
                    vm.write_f32(Self::at(rho_a, idx), 1.2 * (-alt / 9000.0).exp());
                    vm.write_f32(Self::at(rain, idx), 0.0);
                    vm.write_f32(Self::at(srad, idx), (elev / 500.0).min(1.5));
                    vm.write_f32(Self::at(scratch1, idx), 0.0);
                    vm.write_f32(Self::at(scratch2, idx), 0.0);
                }
            }
        }

        let dt = 0.2f32;
        for _step in 0..self.steps {
            for z in 0..nz {
                for y in 1..ny - 1 {
                    for x in 1..nx - 1 {
                        let idx = idx_of(x, y, z);
                        let tc = vm.read_f32(Self::at(t, idx));
                        let qc = vm.read_f32(Self::at(q, idx));
                        let uw = vm.read_f32(Self::at(u, idx));
                        let vw = vm.read_f32(Self::at(v, idx));
                        let heat = vm.read_f32(Self::at(srad, idx));
                        // Upwind advection.
                        let tx_up = vm.read_f32(Self::at(t, idx_of(x - 1, y, z)));
                        let ty_up = vm.read_f32(Self::at(t, idx_of(x, y - 1, z)));
                        let qx_up = vm.read_f32(Self::at(q, idx_of(x - 1, y, z)));
                        let qy_up = vm.read_f32(Self::at(q, idx_of(x, y - 1, z)));
                        let adv_t = uw * (tc - tx_up) * 0.02 + vw * (tc - ty_up) * 0.02;
                        let adv_q = uw * (qc - qx_up) * 0.02 + vw * (qc - qy_up) * 0.02;
                        // Condensation: saturated humidity rains out and
                        // releases latent heat.
                        let sat = 0.02 * (tc - 250.0).max(1.0) * 0.01;
                        let excess = (qc - sat).max(0.0);
                        let cond = excess * 0.3;
                        let new_t = tc - adv_t * dt + heat * 0.05 * dt + cond * 20.0 * dt;
                        let new_q = (qc - adv_q * dt - cond * dt).max(0.0);
                        vm.compute(150);
                        vm.write_f32(Self::at(t_new, idx), new_t);
                        vm.write_f32(Self::at(q_new, idx), new_q);
                        if cond > 0.0 {
                            let a = Self::at(rain, idx);
                            let r0 = vm.read_f32(a);
                            vm.write_f32(a, r0 + cond * dt);
                        }
                    }
                }
            }
            // Commit T/Q and relax pressure/winds toward the new state.
            for z in 0..nz {
                for y in 1..ny - 1 {
                    for x in 1..nx - 1 {
                        let idx = idx_of(x, y, z);
                        let nt = vm.read_f32(Self::at(t_new, idx));
                        let nq = vm.read_f32(Self::at(q_new, idx));
                        vm.write_f32(Self::at(t, idx), nt);
                        vm.write_f32(Self::at(q, idx), nq);
                        // Pressure responds to temperature.
                        let pa = Self::at(p, idx);
                        let pv = vm.read_f32(pa);
                        vm.write_f32(pa, pv * (1.0 + (nt - 288.0) * 1e-5));
                        vm.compute(45);
                    }
                }
            }
            // Winds follow the pressure gradient (geostrophic-lite).
            for z in 0..nz {
                for y in 1..ny - 1 {
                    for x in 1..nx - 1 {
                        let idx = idx_of(x, y, z);
                        let pe = vm.read_f32(Self::at(p, idx_of(x + 1, y, z)));
                        let pw = vm.read_f32(Self::at(p, idx_of(x - 1, y, z)));
                        let pn = vm.read_f32(Self::at(p, idx_of(x, y + 1, z)));
                        let ps = vm.read_f32(Self::at(p, idx_of(x, y - 1, z)));
                        let ua = Self::at(u, idx);
                        let va = Self::at(v, idx);
                        let u0 = vm.read_f32(ua);
                        let v0 = vm.read_f32(va);
                        vm.compute(50);
                        vm.write_f32(ua, u0 - (pe - pw) * 0.01 * dt);
                        vm.write_f32(va, v0 - (pn - ps) * 0.01 * dt);
                    }
                }
            }
        }

        // Output: the forecast temperature field.
        (0..cells).map(|i| vm.read_f32(Self::at(t, i)) as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn temperatures_stay_atmospheric() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        assert_eq!(out.len(), 24 * 24 * 6);
        assert!(out.iter().all(|v| v.is_finite()));
        // Kelvin range for a troposphere slice.
        assert!(out.iter().all(|&t| (200.0..320.0).contains(&t)), "temps out of range");
    }

    #[test]
    fn higher_altitude_is_colder() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        let cells_per_slice = 24 * 24;
        let ground: f64 = out[..cells_per_slice].iter().sum::<f64>() / cells_per_slice as f64;
        let top: f64 = out[5 * cells_per_slice..].iter().sum::<f64>() / cells_per_slice as f64;
        assert!(ground > top + 5.0, "lapse rate lost: ground {ground} top {top}");
    }

    #[test]
    fn approx_fraction_is_about_15_percent() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let _ = w.run(&mut vm);
        let (total, approx) = vm.space.footprint();
        let frac = approx as f64 / total as f64;
        assert!((0.10..0.22).contains(&frac), "approx fraction {frac}");
    }

    #[test]
    fn avr_error_is_moderate() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        let m = run_on_design(&w, &SystemConfig::tiny(), DesignKind::Avr);
        assert!(m.output_error < 0.15, "wrf AVR error {}", m.output_error);
    }
}
