//! `wrf` — a weather-forecasting proxy for SPEC CPU2006 481.wrf: a
//! multi-field 3-D atmospheric stencil over terrain. Only the
//! geographically ordered weather metrics (temperature and humidity) are
//! approximable — about 15 % of the footprint, matching the paper — and
//! they carry terrain-correlated fine structure, which limits AVR to the
//! ~3.4:1 ratio of Table 4. Output: the temperature field.
#![allow(clippy::needless_range_loop)] // terrain blending indexes two profiles at once

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use crate::terrain::fractal_terrain;
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};
use avr_types::PhysAddr;

/// The weather-model benchmark.
pub struct Wrf {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub steps: usize,
}

impl Wrf {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => Wrf { nx: 24, ny: 24, nz: 6, steps: 3 },
            // 13 grids x 72x72x12 x 4 B ≈ 3.2 MB total, 2 of them (T, Q)
            // approximable ≈ 15 %.
            BenchScale::Bench => Wrf { nx: 72, ny: 72, nz: 12, steps: 5 },
        }
    }

    #[inline]
    fn at(base: PhysAddr, idx: usize) -> PhysAddr {
        PhysAddr(base.0 + 4 * idx as u64)
    }

    /// One record per atmosphere cell: the two approximable weather
    /// metrics. The eleven dynamics/scratch grids stay separate precise
    /// arrays — 481.wrf keeps them in distinct Fortran fields, and they
    /// are the 85 % of the footprint the paper never approximates.
    fn schema() -> RecordSchema {
        RecordSchema::new("met", vec![FieldSpec::approx_f32("t"), FieldSpec::approx_f32("q")])
    }
}

/// Field indices into [`Wrf::schema`].
const T: usize = 0;
const Q: usize = 1;

impl Workload for Wrf {
    fn name(&self) -> &'static str {
        "wrf"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new(
            "wrf",
            &[self.nx as u64, self.ny as u64, self.nz as u64, self.steps as u64],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // Thirteen grids touched per cell per step.
        (self.nx * self.ny * self.nz * self.steps * 13) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let cells = nx * ny * nz;
        let idx_of = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;

        // Approximable: the geo-ordered weather metrics (temperature and
        // humidity), placed by the layout.
        let map = Layout::new(Self::schema(), layout).instantiate(vm, cells);

        // Precise: everything else (dynamics + scratch), 11 more grids.
        let t_new = vm.malloc(4 * cells).base;
        let q_new = vm.malloc(4 * cells).base;
        let p = vm.malloc(4 * cells).base; // pressure
        let u = vm.malloc(4 * cells).base; // wind x
        let v = vm.malloc(4 * cells).base; // wind y
        let wz = vm.malloc(4 * cells).base; // wind z
        let rho_a = vm.malloc(4 * cells).base; // air density
        let rain = vm.malloc(4 * cells).base; // accumulated precipitation
        let srad = vm.malloc(4 * cells).base; // radiative source
        let scratch1 = vm.malloc(4 * cells).base;
        let scratch2 = vm.malloc(4 * cells).base;
        let terr = vm.malloc(4 * nx * ny).base; // surface elevation (2-D)

        // Terrain: two orthogonal fractal profiles blended, stored one
        // bulk row at a time.
        let tx = fractal_terrain(nx, 300.0, 180.0, 0.7, 0xA11CE);
        let ty = fractal_terrain(ny, 300.0, 180.0, 0.7, 0xB0B);
        let mut row = vec![0f32; nx];
        for y in 0..ny {
            for (x, e) in row.iter_mut().enumerate() {
                *e = 0.5 * (tx[x] + ty[y]);
            }
            vm.write_f32s(Self::at(terr, y * nx), &row);
        }

        // Initial atmosphere: lapse rate with altitude, terrain heating,
        // and weak fine structure (what keeps the ratio near 3.4:1). Each
        // of the 11 fields takes one bulk row store per x-row.
        let mut rows: Vec<Vec<f32>> = (0..9).map(|_| vec![0f32; nx]).collect();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let elev = 0.5 * (tx[x] + ty[y]);
                    let alt = z as f32 * 500.0 + elev;
                    let fine = ((x as f32 * 1.9).sin() + (y as f32 * 2.3).cos()) * 0.8;
                    // Multiplicative fine structure keeps the *relative*
                    // roughness of humidity uniform across altitudes.
                    rows[0][x] = 288.0 - 0.0065 * alt + fine;
                    rows[1][x] = (0.8 - 0.00009 * alt).max(0.2) * (1.0 + 0.009 * fine);
                    rows[2][x] = 1013.0 * (-alt / 8000.0).exp();
                    rows[3][x] = 3.0 + 0.01 * y as f32;
                    rows[4][x] = 1.0;
                    rows[5][x] = 0.0;
                    rows[6][x] = 1.2 * (-alt / 9000.0).exp();
                    rows[7][x] = 0.0;
                    rows[8][x] = (elev / 500.0).min(1.5);
                }
                let idx = idx_of(0, y, z);
                vm.compute(16 * nx as u64);
                map.write_f32s(vm, T, idx, &rows[0]);
                map.write_f32s(vm, Q, idx, &rows[1]);
                vm.write_f32s(Self::at(p, idx), &rows[2]);
                vm.write_f32s(Self::at(u, idx), &rows[3]);
                vm.write_f32s(Self::at(v, idx), &rows[4]);
                vm.write_f32s(Self::at(wz, idx), &rows[5]);
                vm.write_f32s(Self::at(rho_a, idx), &rows[6]);
                vm.write_f32s(Self::at(rain, idx), &rows[7]);
                vm.write_f32s(Self::at(srad, idx), &rows[8]);
                rows[5].fill(0.0);
                vm.write_f32s(Self::at(scratch1, idx), &rows[5]);
                vm.write_f32s(Self::at(scratch2, idx), &rows[5]);
            }
        }

        let dt = 0.2f32;
        // Row buffers for the stencil passes: each destination row reads
        // its field rows (own row + the upwind/neighbor rows) as
        // contiguous slices.
        let mut t_cur = vec![0f32; nx];
        let mut t_prev = vec![0f32; nx];
        let mut q_cur = vec![0f32; nx];
        let mut q_prev = vec![0f32; nx];
        let mut u_row = vec![0f32; nx];
        let mut v_row = vec![0f32; nx];
        let mut heat_row = vec![0f32; nx];
        let mut nt_row = vec![0f32; nx - 2];
        let mut nq_row = vec![0f32; nx - 2];
        let mut p_n = vec![0f32; nx];
        let mut p_s = vec![0f32; nx];
        let mut p_cur = vec![0f32; nx];
        for _step in 0..self.steps {
            for z in 0..nz {
                for y in 1..ny - 1 {
                    let idx = idx_of(0, y, z);
                    map.read_f32s(vm, T, idx, &mut t_cur);
                    map.read_f32s(vm, T, idx_of(0, y - 1, z), &mut t_prev);
                    map.read_f32s(vm, Q, idx, &mut q_cur);
                    map.read_f32s(vm, Q, idx_of(0, y - 1, z), &mut q_prev);
                    vm.read_f32s(Self::at(u, idx), &mut u_row);
                    vm.read_f32s(Self::at(v, idx), &mut v_row);
                    vm.read_f32s(Self::at(srad, idx), &mut heat_row);
                    for x in 1..nx - 1 {
                        let (tc, qc) = (t_cur[x], q_cur[x]);
                        let (uw, vw, heat) = (u_row[x], v_row[x], heat_row[x]);
                        // Upwind advection.
                        let adv_t = uw * (tc - t_cur[x - 1]) * 0.02 + vw * (tc - t_prev[x]) * 0.02;
                        let adv_q = uw * (qc - q_cur[x - 1]) * 0.02 + vw * (qc - q_prev[x]) * 0.02;
                        // Condensation: saturated humidity rains out and
                        // releases latent heat.
                        let sat = 0.02 * (tc - 250.0).max(1.0) * 0.01;
                        let excess = (qc - sat).max(0.0);
                        let cond = excess * 0.3;
                        nt_row[x - 1] = tc - adv_t * dt + heat * 0.05 * dt + cond * 20.0 * dt;
                        nq_row[x - 1] = (qc - adv_q * dt - cond * dt).max(0.0);
                        if cond > 0.0 {
                            let a = Self::at(rain, idx_of(x, y, z));
                            let r0 = vm.read_f32(a);
                            vm.write_f32(a, r0 + cond * dt);
                        }
                    }
                    vm.compute(150 * (nx - 2) as u64);
                    vm.write_f32s(Self::at(t_new, idx_of(1, y, z)), &nt_row);
                    vm.write_f32s(Self::at(q_new, idx_of(1, y, z)), &nq_row);
                }
            }
            // Commit T/Q and relax pressure toward the new state: the
            // pressure update is a compute-fused read-modify-write sweep.
            for z in 0..nz {
                for y in 1..ny - 1 {
                    let idx1 = idx_of(1, y, z);
                    vm.read_f32s(Self::at(t_new, idx1), &mut nt_row);
                    vm.read_f32s(Self::at(q_new, idx1), &mut nq_row);
                    map.write_f32s(vm, T, idx1, &nt_row);
                    map.write_f32s(vm, Q, idx1, &nq_row);
                    // Pressure responds to temperature.
                    let nt = &nt_row;
                    vm.for_each_f32_mut(Self::at(p, idx1), nx - 2, 45, &mut |k, pv| {
                        pv * (1.0 + (nt[k] - 288.0) * 1e-5)
                    });
                }
            }
            // Winds follow the pressure gradient (geostrophic-lite).
            for z in 0..nz {
                for y in 1..ny - 1 {
                    let idx = idx_of(0, y, z);
                    vm.read_f32s(Self::at(p, idx), &mut p_cur);
                    vm.read_f32s(Self::at(p, idx_of(0, y + 1, z)), &mut p_n);
                    vm.read_f32s(Self::at(p, idx_of(0, y - 1, z)), &mut p_s);
                    vm.read_f32s(Self::at(u, idx), &mut u_row);
                    vm.read_f32s(Self::at(v, idx), &mut v_row);
                    for x in 1..nx - 1 {
                        let (pe, pw) = (p_cur[x + 1], p_cur[x - 1]);
                        let (pn, ps) = (p_n[x], p_s[x]);
                        nt_row[x - 1] = u_row[x] - (pe - pw) * 0.01 * dt;
                        nq_row[x - 1] = v_row[x] - (pn - ps) * 0.01 * dt;
                    }
                    vm.compute(50 * (nx - 2) as u64);
                    vm.write_f32s(Self::at(u, idx_of(1, y, z)), &nt_row);
                    vm.write_f32s(Self::at(v, idx_of(1, y, z)), &nq_row);
                }
            }
        }

        // Output: the forecast temperature field.
        let mut field = vec![0f32; cells];
        map.read_f32s(vm, T, 0, &mut field);
        field.iter().map(|&v| v as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn temperatures_stay_atmospheric() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        assert_eq!(out.len(), 24 * 24 * 6);
        assert!(out.iter().all(|v| v.is_finite()));
        // Kelvin range for a troposphere slice.
        assert!(out.iter().all(|&t| (200.0..320.0).contains(&t)), "temps out of range");
    }

    #[test]
    fn higher_altitude_is_colder() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        let cells_per_slice = 24 * 24;
        let ground: f64 = out[..cells_per_slice].iter().sum::<f64>() / cells_per_slice as f64;
        let top: f64 = out[5 * cells_per_slice..].iter().sum::<f64>() / cells_per_slice as f64;
        assert!(ground > top + 5.0, "lapse rate lost: ground {ground} top {top}");
    }

    #[test]
    fn approx_fraction_is_about_15_percent() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let _ = w.run(&mut vm);
        let (total, approx) = vm.space.footprint();
        let frac = approx as f64 / total as f64;
        assert!((0.10..0.22).contains(&frac), "approx fraction {frac}");
    }

    #[test]
    fn avr_error_is_moderate() {
        let w = Wrf::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.15, "wrf AVR error {}", m.output_error);
    }
}
