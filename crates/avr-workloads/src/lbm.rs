//! `lbm` — 3-D lattice-Boltzmann (D3Q19, the SPEC CPU2006 470.lbm kernel):
//! fluid flow over a sphere. Approximable data: the distribution functions
//! / velocities — ~98 % of the footprint, and extremely smooth, which is
//! why the paper reports a 15.6:1 ratio here.
#![allow(clippy::needless_range_loop)] // parallel gather/scatter arrays read clearer indexed

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};
use avr_types::PhysAddr;

/// D3Q19 lattice: rest + 6 face + 12 edge velocities.
const E: [(i32, i32, i32); 19] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, -1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (-1, 0, -1),
    (1, 0, -1),
    (-1, 0, 1),
    (0, 1, 1),
    (0, -1, -1),
    (0, 1, -1),
    (0, -1, 1),
];
const OPP: [usize; 19] = [0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17];

fn weight(i: usize) -> f32 {
    match i {
        0 => 1.0 / 3.0,
        1..=6 => 1.0 / 18.0,
        _ => 1.0 / 36.0,
    }
}

/// The 3-D lattice-Boltzmann benchmark.
pub struct Lbm {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub iters: usize,
    pub u0: f32,
    pub tau: f32,
}

impl Lbm {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => Lbm { nx: 12, ny: 12, nz: 16, iters: 3, u0: 0.05, tau: 0.9 },
            // 2 x 19 x 32x32x48 x 4 B ≈ 7.5 MB of distributions (~98 %
            // approximable) against the 1 MB LLC share: strongly memory
            // bound, like the paper's 325 MB/core configuration.
            BenchScale::Bench => Lbm { nx: 32, ny: 32, nz: 48, iters: 4, u0: 0.05, tau: 0.9 },
        }
    }

    /// One record per duct cell: the nineteen distribution functions,
    /// plane-major inside one region under packed SoA (the 470.lbm
    /// layout) or word-interleaved per cell under AoS.
    fn schema() -> RecordSchema {
        const NAMES: [&str; 19] = [
            "f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12", "f13",
            "f14", "f15", "f16", "f17", "f18",
        ];
        RecordSchema::new("dist", NAMES.iter().map(|&n| FieldSpec::approx_f32(n)).collect())
            .packed()
    }

    fn feq(i: usize, rho: f32, u: (f32, f32, f32)) -> f32 {
        let (ex, ey, ez) = E[i];
        let eu = ex as f32 * u.0 + ey as f32 * u.1 + ez as f32 * u.2;
        let u2 = u.0 * u.0 + u.1 * u.1 + u.2 * u.2;
        weight(i) * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * u2)
    }
}

impl Workload for Lbm {
    fn name(&self) -> &'static str {
        "lbm"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new(
            "lbm",
            &[
                self.nx as u64,
                self.ny as u64,
                self.nz as u64,
                self.iters as u64,
                u64::from(self.u0.to_bits()),
                u64::from(self.tau.to_bits()),
            ],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // Nineteen distributions × (neighbor gather + collide + write) per
        // cell per iteration — the suite's heaviest per-cell kernel.
        (self.nx * self.ny * self.nz * self.iters * 19 * 6) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let cells = nx * ny * nz;
        let idx_of = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;

        // Approximable: both distribution buffers (the 470.lbm working set).
        let map_f = Layout::new(Self::schema(), layout).instantiate(vm, cells);
        let map_f2 = Layout::new(Self::schema(), layout).instantiate(vm, cells);
        // Precise: sphere mask.
        let mask = vm.malloc(4 * cells).base;

        // A solid sphere in the front third of the duct, rasterized one
        // x-row at a time (one bulk mask store per row).
        let (cx, cy, cz) = (nx as f32 / 2.0, ny as f32 / 2.0, nz as f32 / 3.0);
        let r = nx as f32 / 4.5;
        let mut mask_row = vec![0u32; nx];
        for z in 0..nz {
            for y in 0..ny {
                for (x, m) in mask_row.iter_mut().enumerate() {
                    let d2 =
                        (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2) + (z as f32 - cz).powi(2);
                    *m = (d2 <= r * r) as u32;
                }
                vm.compute(8 * nx as u64);
                vm.write_u32s(PhysAddr(mask.0 + 4 * idx_of(0, y, z) as u64), &mask_row);
            }
        }

        // Equilibrium init: uniform flow along +z — both buffers, so
        // boundary entries the streaming step never writes hold sane
        // values. Each distribution plane is constant: one bulk store.
        let eq0: [f32; 19] = std::array::from_fn(|i| Self::feq(i, 1.0, (0.0, 0.0, self.u0)));
        let mut plane = vec![0f32; cells];
        for (i, &v) in eq0.iter().enumerate() {
            plane.fill(v);
            vm.compute(12 * cells as u64);
            map_f.write_f32s(vm, i, 0, &plane);
            map_f2.write_f32s(vm, i, 0, &plane);
        }

        // Packed SoA: the per-cell distribution gather is one strided
        // read across the 19 planes; streaming is one scatter. AoS folds
        // the gather into one contiguous 19-word record read.
        let (mut src, mut dst) = (&map_f, &map_f2);
        for _ in 0..self.iters {
            for z in 0..nz {
                for y in 0..ny {
                    vm.read_u32s(PhysAddr(mask.0 + 4 * idx_of(0, y, z) as u64), &mut mask_row);
                    for x in 0..nx {
                        let idx = idx_of(x, y, z);
                        let solid = mask_row[x] != 0;
                        let mut fi = [0f32; 19];
                        src.read_record_f32s(vm, idx, &mut fi);
                        let mut post = [0f32; 19];
                        if solid {
                            for i in 0..19 {
                                post[OPP[i]] = fi[i];
                            }
                            vm.compute(19);
                        } else {
                            let rho: f32 = fi.iter().sum();
                            let mut u = (0f32, 0f32, 0f32);
                            for (i, &v) in fi.iter().enumerate() {
                                u.0 += E[i].0 as f32 * v;
                                u.1 += E[i].1 as f32 * v;
                                u.2 += E[i].2 as f32 * v;
                            }
                            u = (u.0 / rho, u.1 / rho, u.2 / rho);
                            for i in 0..19 {
                                let eq = Self::feq(i, rho, u);
                                post[i] = fi[i] - (fi[i] - eq) / self.tau;
                            }
                            vm.compute(200);
                        }
                        let mut sc_idx = [0u32; 19];
                        let mut sc_val = [0f32; 19];
                        let mut m = 0;
                        for i in 0..19 {
                            let nxp = x as i32 + E[i].0;
                            let nyp = y as i32 + E[i].1;
                            let nzp = z as i32 + E[i].2;
                            if nxp < 0
                                || nxp >= nx as i32
                                || nyp < 0
                                || nyp >= ny as i32
                                || nzp < 0
                                || nzp >= nz as i32
                            {
                                continue;
                            }
                            let nidx = idx_of(nxp as usize, nyp as usize, nzp as usize);
                            sc_idx[m] = dst.elem(i, nidx);
                            sc_val[m] = post[i];
                            m += 1;
                        }
                        vm.write_f32s_scatter(dst.base(), &sc_idx[..m], &sc_val[..m]);
                    }
                }
            }
            // Inflow (z = 0) and outflow (z = nz-1): one whole-record
            // access per column.
            let mut inner = [0f32; 19];
            for y in 0..ny {
                for x in 0..nx {
                    dst.write_record_f32s(vm, idx_of(x, y, 0), &eq0);
                    dst.read_record_f32s(vm, idx_of(x, y, nz - 2), &mut inner);
                    dst.write_record_f32s(vm, idx_of(x, y, nz - 1), &inner);
                    vm.compute(80);
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }

        // Output: velocity magnitude per cell (the paper's approximated
        // output is the velocity field).
        let mut out = Vec::with_capacity(cells);
        for idx in 0..cells {
            let mut fi = [0f32; 19];
            src.read_record_f32s(vm, idx, &mut fi);
            let rho: f32 = fi.iter().sum();
            let mut u = (0f32, 0f32, 0f32);
            for (i, &v) in fi.iter().enumerate() {
                u.0 += E[i].0 as f32 * v;
                u.1 += E[i].1 as f32 * v;
                u.2 += E[i].2 as f32 * v;
            }
            vm.compute(60);
            let vmag = ((u.0 * u.0 + u.1 * u.1 + u.2 * u.2).sqrt() / rho.max(1e-6)) as f64;
            out.push(vmag);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn d3q19_tables_are_consistent() {
        // Opposites really are opposite.
        for i in 0..19 {
            let (a, b) = (E[i], E[OPP[i]]);
            assert_eq!((a.0 + b.0, a.1 + b.1, a.2 + b.2), (0, 0, 0));
        }
        // Weights sum to one.
        let s: f32 = (0..19).map(weight).sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flow_develops_around_sphere() {
        let w = Lbm::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        assert!(out.iter().all(|v| v.is_finite()));
        // Downstream of the sphere (z > 2/3) flow still moves.
        let cells_per_slice = 12 * 12;
        let downstream: f64 = out[12 * cells_per_slice..13 * cells_per_slice].iter().sum::<f64>()
            / cells_per_slice as f64;
        assert!(downstream > 0.005, "downstream mean velocity {downstream}");
    }

    #[test]
    fn avr_error_is_small() {
        let w = Lbm::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.05, "lbm AVR error {}", m.output_error);
    }
}
