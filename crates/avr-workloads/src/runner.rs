//! Workload trait + the measurement harness.
//!
//! A run of (workload × design) produces a [`RunMetrics`]: the timed system
//! executes the workload (approximation feeding back into its data), and
//! the output vector is compared element-wise against a golden run on
//! [`avr_core::ExactVm`] to produce Table 3's mean-relative-error
//! metric.

use crate::golden::{golden_run, GoldenKey};
use avr_core::{DesignKind, LayoutKind, SimPool, System, SystemConfig, Vm};
use avr_sim::RunMetrics;

/// A benchmark program.
pub trait Workload: Sync {
    /// The paper's benchmark name (figure/table row label).
    fn name(&self) -> &'static str;

    /// Execute against a VM and return the application output values.
    ///
    /// Ports that declare a record schema implement this as
    /// `self.run_in(vm, LayoutKind::Soa)` and put the real body in
    /// [`Workload::run_in`]; the SoA path must reproduce the historical
    /// allocation sequence bit-for-bit so goldens stay layout-invariant.
    fn run(&self, vm: &mut dyn Vm) -> Vec<f64>;

    /// Execute under a specific physical data layout. The default rejects
    /// everything but SoA, so layout-oblivious workloads stay correct
    /// without changes; schema-declaring ports override this and list
    /// their supported layouts in [`Workload::layouts`].
    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        assert_eq!(
            layout,
            LayoutKind::Soa,
            "{} has no layout-transform port; only SoA is supported",
            self.name()
        );
        self.run(vm)
    }

    /// The layouts this workload's schema supports. The grid runner
    /// intersects this with the requested layout axis, so a workload that
    /// only declares SoA simply contributes one row per design.
    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa]
    }

    /// Identity of this instance's golden (exact) run, enabling the
    /// process-wide memoization in [`crate::golden`]. Return a key only if
    /// `run` is a **pure function of the keyed fields** — same name, same
    /// parameters, same seed ⇒ bit-identical output. The default (`None`)
    /// opts out: the golden run is recomputed every time, which is always
    /// correct.
    fn golden_key(&self) -> Option<GoldenKey> {
        None
    }

    /// Relative cost estimate for size-aware pool scheduling — arbitrary
    /// units (the nine in-tree workloads report approximate element
    /// touches per run); **only the ordering matters**, and a coarse
    /// estimate is fine: scheduling only degrades toward the unweighted
    /// order if heavy jobs are misranked. The default makes every job
    /// equal, which reduces to index-order claiming.
    fn cost_hint(&self) -> u64 {
        1
    }
}

/// Which problem size to instantiate — defined in `avr-types` (the wire
/// layer names it too), re-exported here where every workload uses it.
pub use avr_types::BenchScale;

/// Mean relative error between a golden output and an approximate output
/// (the paper's quality metric: "the mean of the relative errors for each
/// output value").
pub fn mean_relative_error(golden: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(golden.len(), approx.len(), "output shapes must match");
    assert!(!golden.is_empty(), "workload produced no output");
    // Scale guard: values at or below `tiny` relative to the output's
    // magnitude are compared absolutely against that floor, avoiding
    // division blow-ups on incidental zeros.
    let mag = golden.iter().map(|g| g.abs()).sum::<f64>() / golden.len() as f64;
    let floor = (mag * 1e-9).max(f64::MIN_POSITIVE);
    let mut sum = 0.0;
    for (g, a) in golden.iter().zip(approx) {
        let denom = g.abs().max(floor);
        let err = ((a - g).abs() / denom).min(10.0); // cap runaways at 1000 %
        sum += err;
    }
    sum / golden.len() as f64
}

/// FNV-1a fold over one `u64` of digest input.
#[inline]
fn fnv1a(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A 64-bit digest over every paper-facing field of a [`RunMetrics`]:
/// all event counters, traffic bytes, fault events, cycles, the exact bit
/// patterns of the derived floats (energy stack, IPC, output error,
/// compression ratio, footprint) — everything a table or figure is built
/// from. Two runs digest equal iff they are bit-identical on all of it.
///
/// The field list is **frozen**: `tests/designs.rs` pins digests captured
/// on the tree *before* the design-policy extraction, so this function must
/// keep hashing exactly these fields in exactly this order. Counters added
/// by later PRs (e.g. the memo breakdown) are deliberately excluded —
/// they are asserted separately where they matter.
pub fn metrics_digest(m: &RunMetrics) -> u64 {
    let c = &m.counters;
    let fields = [
        c.instructions,
        c.loads,
        c.stores,
        c.l1_hits,
        c.l2_hits,
        c.llc_requests_total,
        c.llc_misses_total,
        c.approx_requests.miss,
        c.approx_requests.uncompressed_hit,
        c.approx_requests.dbuf_hit,
        c.approx_requests.compressed_hit,
        c.evictions.recompress,
        c.evictions.lazy_writeback,
        c.evictions.fetch_recompress,
        c.evictions.uncompressed_writeback,
        c.traffic.approx_read_bytes,
        c.traffic.approx_write_bytes,
        c.traffic.nonapprox_read_bytes,
        c.traffic.nonapprox_write_bytes,
        c.traffic.metadata_bytes,
        c.amat_cycles_sum,
        c.amat_count,
        c.miss_lat_sum,
        c.miss_lat_count,
        c.miss_lat_max,
        c.compressed_hit_cycles_sum,
        c.blocks_compressed,
        c.blocks_decompressed,
        c.compression_failures,
        c.compression_skips,
        c.block_reuse_sum,
        c.block_reuse_count,
        c.faults.injected_bit_flips,
        c.faults.faulted_lines,
        c.faults.retries,
        c.faults.degraded_lines,
        c.faults.sanitized_values,
        c.faults.ecc_scrubs,
        m.cycles,
        m.exec_seconds.to_bits(),
        m.ipc.to_bits(),
        m.energy.core.to_bits(),
        m.energy.l1l2.to_bits(),
        m.energy.llc.to_bits(),
        m.energy.dram.to_bits(),
        m.energy.compressor.to_bits(),
        m.output_error.to_bits(),
        m.compression_ratio.to_bits(),
        m.approx_blocks,
        m.compressible_blocks,
        m.footprint_fraction.to_bits(),
        m.llc_cms_fraction.to_bits(),
    ];
    fields.iter().fold(0xcbf2_9ce4_8422_2325, |h, &x| fnv1a(h, x))
}

/// Run `workload` on `design`, returning full metrics including the output
/// error vs. the exact golden run.
pub fn run_on_design(
    workload: &dyn Workload,
    cfg: &SystemConfig,
    design: DesignKind,
) -> RunMetrics {
    run_on_design_in(workload, cfg, design, LayoutKind::Soa)
}

/// Run `workload` on `design` under `layout`. The golden run is always
/// taken in SoA on the exact VM — `ExactVm` is lossless, so the reference
/// output is a layout-invariant property of the workload, and every layout
/// variant is scored against the same golden.
pub fn run_on_design_in(
    workload: &dyn Workload,
    cfg: &SystemConfig,
    design: DesignKind,
    layout: LayoutKind,
) -> RunMetrics {
    // Golden runs are design-, backend-, and layout-invariant; memoized
    // when the workload provides a key (see `crate::golden`).
    let golden = golden_run(workload);

    let mut sys = System::new(cfg.clone(), design);
    let out = workload.run_in(&mut sys, layout);
    let mut metrics = sys.finish(workload.name());
    metrics.output_error = mean_relative_error(&golden, &out);
    metrics
}

/// The full benchmark suite at the requested scale: the paper's seven in
/// figure order, then the extension workloads (`sobel`, `fft`), then the
/// mixed-criticality `particles` kernel added with the layout axis.
pub fn all_benchmarks(scale: BenchScale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::heat::Heat::at_scale(scale)),
        Box::new(crate::lattice::Lattice::at_scale(scale)),
        Box::new(crate::lbm::Lbm::at_scale(scale)),
        Box::new(crate::orbit::Orbit::at_scale(scale)),
        Box::new(crate::kmeans::KMeans::at_scale(scale)),
        Box::new(crate::bscholes::BlackScholes::at_scale(scale)),
        Box::new(crate::wrf::Wrf::at_scale(scale)),
        Box::new(crate::sobel::Sobel::at_scale(scale)),
        Box::new(crate::fft::Fft::at_scale(scale)),
        Box::new(crate::particles::Particles::at_scale(scale)),
    ]
}

/// One cell of a pooled (workload × layout × design) grid run.
#[derive(Clone, Debug)]
pub struct GridRun {
    pub workload: &'static str,
    pub design: DesignKind,
    pub layout: LayoutKind,
    pub metrics: RunMetrics,
}

/// A workload's first design cell computes (or waits on) the memoized
/// golden run; later cells hit the warm cache. Weighting the first cell
/// heavier schedules all the golden computations into the pool's opening
/// claims — one per worker, different workloads — instead of letting four
/// workers claim four cells of the *same* heavy workload and serialize on
/// its once-cell. Coarse by design: only the claiming order depends on it.
pub const GOLDEN_CELL_BOOST: u64 = 4;

/// Run the full (workload × design) grid on `pool`, returning cells in
/// workload-major, design-minor order. Each cell is an independent
/// deterministic simulation, so the results are bit-identical for any pool
/// width (`tests/determinism.rs` pins this). Cells are claimed
/// heaviest-first using each workload's [`Workload::cost_hint`] — the
/// suite's job mix is heavily skewed (fft is ~45× more simulated blocks
/// than the lightest workloads), and starting the long poles first is
/// what keeps the sweep's makespan near `total/N` instead of
/// `t_longest + rest/N`.
pub fn run_grid(
    pool: &SimPool,
    suite: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    designs: &[DesignKind],
) -> Vec<GridRun> {
    run_grid_layouts(pool, suite, cfg, designs, &[LayoutKind::Soa])
}

/// Run the (workload × layout × design) grid on `pool`, returning cells in
/// workload-major, layout-mid, design-minor order. Each workload
/// contributes only the layouts it supports (the intersection of
/// [`Workload::layouts`] with `layouts`, in `layouts` order), so a
/// SoA-only workload yields one row per design and a three-layout schema
/// yields three. The first cell of each workload carries the golden-run
/// boost regardless of which layout it lands on — goldens are
/// layout-invariant, so one computation serves the whole row block.
pub fn run_grid_layouts(
    pool: &SimPool,
    suite: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    designs: &[DesignKind],
    layouts: &[LayoutKind],
) -> Vec<GridRun> {
    struct Cell {
        wi: usize,
        layout: LayoutKind,
        design: DesignKind,
        golden_cell: bool,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for (wi, w) in suite.iter().enumerate() {
        let supported = w.layouts();
        let mut first = true;
        for &layout in layouts.iter().filter(|l| supported.contains(l)) {
            for &design in designs {
                cells.push(Cell { wi, layout, design, golden_cell: first });
                first = false;
            }
        }
    }
    let weight = |i: usize| {
        let c = &cells[i];
        let hint = suite[c.wi].cost_hint().max(1);
        if c.golden_cell {
            hint.saturating_mul(GOLDEN_CELL_BOOST)
        } else {
            hint
        }
    };
    pool.run_jobs_weighted(cells.len(), weight, |ctx| {
        let c = &cells[ctx.index];
        let w = &suite[c.wi];
        GridRun {
            workload: w.name(),
            design: c.design,
            layout: c.layout,
            metrics: run_on_design_in(w.as_ref(), cfg, c.design, c.layout),
        }
    })
}

/// Look up one workload of the suite **by its registered name** at the
/// requested scale — the sweep server's path from a wire-level job spec to
/// a runnable instance. Returns `None` for names the suite doesn't carry,
/// so a caller can reject a bad job instead of panicking mid-batch.
/// Construction is cheap (workload constructors only record parameters;
/// inputs are generated inside `run`).
pub fn workload_by_name(name: &str, scale: BenchScale) -> Option<Box<dyn Workload>> {
    all_benchmarks(scale).into_iter().find(|w| w.name() == name)
}

/// The registered workload names, in suite order (what
/// [`workload_by_name`] accepts — a job service can echo this in errors).
pub fn workload_names() -> Vec<&'static str> {
    all_benchmarks(BenchScale::Tiny).iter().map(|w| w.name()).collect()
}

/// Convenience: build the suite at `scale` and run the grid on `pool`.
pub fn run_suite_on_pool(
    pool: &SimPool,
    scale: BenchScale,
    cfg: &SystemConfig,
    designs: &[DesignKind],
) -> Vec<GridRun> {
    run_grid(pool, &all_benchmarks(scale), cfg, designs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_relative_error_basics() {
        let g = [1.0, 2.0, 4.0];
        let a = [1.1, 2.0, 4.0];
        // one value 10 % off over three values
        assert!((mean_relative_error(&g, &a) - 0.1 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_outputs_are_zero_error() {
        let g = [3.0, -5.0, 0.0];
        assert_eq!(mean_relative_error(&g, &g), 0.0);
    }

    #[test]
    fn runaway_errors_are_capped() {
        let g = [1.0];
        let a = [1.0e9];
        assert_eq!(mean_relative_error(&g, &a), 10.0);
    }

    #[test]
    fn zero_golden_values_use_magnitude_floor() {
        let g = [0.0, 100.0];
        let a = [1.0e-7, 100.0];
        // The 1e-7 absolute error on a zero is tiny relative to the
        // output's ~50 magnitude but is compared against the 5e-8 floor;
        // it must not produce a huge error after capping.
        let e = mean_relative_error(&g, &a);
        assert!(e <= 10.0 / 2.0);
    }

    #[test]
    fn suite_has_paper_order_then_extensions_then_particles() {
        let suite = all_benchmarks(BenchScale::Tiny);
        let names: Vec<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "heat",
                "lattice",
                "lbm",
                "orbit",
                "kmeans",
                "bscholes",
                "wrf",
                "sobel",
                "fft",
                "particles"
            ]
        );
    }

    #[test]
    fn every_workload_supports_soa_and_aos() {
        // The layout axis is only an axis if the grid can sweep it: every
        // schema-declaring port must run in at least SoA and AoS.
        for w in all_benchmarks(BenchScale::Tiny) {
            let ls = w.layouts();
            assert!(ls.contains(&LayoutKind::Soa), "{} must support soa", w.name());
            assert!(ls.contains(&LayoutKind::Aos), "{} must support aos", w.name());
        }
    }

    #[test]
    fn registry_resolves_every_suite_name_and_rejects_strangers() {
        for scale in [BenchScale::Tiny, BenchScale::Bench] {
            for name in workload_names() {
                let w = workload_by_name(name, scale)
                    .unwrap_or_else(|| panic!("{name} missing at {scale:?}"));
                assert_eq!(w.name(), name);
            }
        }
        assert!(workload_by_name("heatx", BenchScale::Tiny).is_none());
        assert!(workload_by_name("", BenchScale::Tiny).is_none());
        assert_eq!(workload_names().len(), 10);
    }

    #[test]
    fn grid_cells_come_back_in_workload_major_order() {
        use avr_core::SimPool;
        let suite = all_benchmarks(BenchScale::Tiny);
        let short: Vec<Box<dyn Workload>> =
            suite.into_iter().filter(|w| matches!(w.name(), "bscholes" | "kmeans")).collect();
        let designs = [DesignKind::Baseline, DesignKind::Avr];
        let grid = run_grid(&SimPool::new(2), &short, &avr_core::SystemConfig::tiny(), &designs);
        let labels: Vec<_> = grid.iter().map(|c| (c.workload, c.design)).collect();
        assert_eq!(
            labels,
            [
                ("kmeans", DesignKind::Baseline),
                ("kmeans", DesignKind::Avr),
                ("bscholes", DesignKind::Baseline),
                ("bscholes", DesignKind::Avr),
            ]
        );
        for c in &grid {
            assert_eq!(c.layout, LayoutKind::Soa);
            assert!(c.metrics.cycles > 0);
        }
    }

    #[test]
    fn layout_grid_is_workload_major_layout_mid_design_minor() {
        use avr_core::SimPool;
        let suite = all_benchmarks(BenchScale::Tiny);
        let short: Vec<Box<dyn Workload>> =
            suite.into_iter().filter(|w| matches!(w.name(), "bscholes" | "kmeans")).collect();
        let designs = [DesignKind::Baseline, DesignKind::Avr];
        let layouts = [LayoutKind::Soa, LayoutKind::Aos, LayoutKind::Partitioned];
        let grid = run_grid_layouts(
            &SimPool::new(2),
            &short,
            &avr_core::SystemConfig::tiny(),
            &designs,
            &layouts,
        );
        // kmeans supports {soa, aos}; bscholes supports all three.
        let labels: Vec<_> = grid.iter().map(|c| (c.workload, c.layout, c.design)).collect();
        let mut expect = Vec::new();
        for l in [LayoutKind::Soa, LayoutKind::Aos] {
            for d in designs {
                expect.push(("kmeans", l, d));
            }
        }
        for l in layouts {
            for d in designs {
                expect.push(("bscholes", l, d));
            }
        }
        assert_eq!(labels, expect);
        for c in &grid {
            assert!(c.metrics.cycles > 0, "{} {:?} {:?}", c.workload, c.layout, c.design);
        }
    }
}
