//! Workload trait + the measurement harness.
//!
//! A run of (workload × design) produces a [`RunMetrics`]: the timed system
//! executes the workload (approximation feeding back into its data), and
//! the output vector is compared element-wise against a golden run on
//! [`avr_core::ExactVm`] to produce Table 3's mean-relative-error
//! metric.

use crate::golden::{golden_run, GoldenKey};
use avr_core::{DesignKind, SimPool, System, SystemConfig, Vm};
use avr_sim::RunMetrics;

/// A benchmark program.
pub trait Workload: Sync {
    /// The paper's benchmark name (figure/table row label).
    fn name(&self) -> &'static str;

    /// Execute against a VM and return the application output values.
    fn run(&self, vm: &mut dyn Vm) -> Vec<f64>;

    /// Identity of this instance's golden (exact) run, enabling the
    /// process-wide memoization in [`crate::golden`]. Return a key only if
    /// `run` is a **pure function of the keyed fields** — same name, same
    /// parameters, same seed ⇒ bit-identical output. The default (`None`)
    /// opts out: the golden run is recomputed every time, which is always
    /// correct.
    fn golden_key(&self) -> Option<GoldenKey> {
        None
    }

    /// Relative cost estimate for size-aware pool scheduling — arbitrary
    /// units (the nine in-tree workloads report approximate element
    /// touches per run); **only the ordering matters**, and a coarse
    /// estimate is fine: scheduling only degrades toward the unweighted
    /// order if heavy jobs are misranked. The default makes every job
    /// equal, which reduces to index-order claiming.
    fn cost_hint(&self) -> u64 {
        1
    }
}

/// Which problem size to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchScale {
    /// Tiny: unit/integration tests (sub-second per design).
    Tiny,
    /// Bench: the figure-regeneration scale (footprint : LLC ratios match
    /// the paper's Table 2 against the per-core-scaled hierarchy).
    Bench,
}

/// Mean relative error between a golden output and an approximate output
/// (the paper's quality metric: "the mean of the relative errors for each
/// output value").
pub fn mean_relative_error(golden: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(golden.len(), approx.len(), "output shapes must match");
    assert!(!golden.is_empty(), "workload produced no output");
    // Scale guard: values at or below `tiny` relative to the output's
    // magnitude are compared absolutely against that floor, avoiding
    // division blow-ups on incidental zeros.
    let mag = golden.iter().map(|g| g.abs()).sum::<f64>() / golden.len() as f64;
    let floor = (mag * 1e-9).max(f64::MIN_POSITIVE);
    let mut sum = 0.0;
    for (g, a) in golden.iter().zip(approx) {
        let denom = g.abs().max(floor);
        let err = ((a - g).abs() / denom).min(10.0); // cap runaways at 1000 %
        sum += err;
    }
    sum / golden.len() as f64
}

/// Run `workload` on `design`, returning full metrics including the output
/// error vs. the exact golden run.
pub fn run_on_design(
    workload: &dyn Workload,
    cfg: &SystemConfig,
    design: DesignKind,
) -> RunMetrics {
    // Golden runs are design- and backend-invariant; memoized when the
    // workload provides a key (see `crate::golden` for the contract).
    let golden = golden_run(workload);

    let mut sys = System::new(cfg.clone(), design);
    let out = workload.run(&mut sys);
    let mut metrics = sys.finish(workload.name());
    metrics.output_error = mean_relative_error(&golden, &out);
    metrics
}

/// The full benchmark suite at the requested scale: the paper's seven in
/// figure order, then the two extension workloads (`sobel`, `fft`).
pub fn all_benchmarks(scale: BenchScale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::heat::Heat::at_scale(scale)),
        Box::new(crate::lattice::Lattice::at_scale(scale)),
        Box::new(crate::lbm::Lbm::at_scale(scale)),
        Box::new(crate::orbit::Orbit::at_scale(scale)),
        Box::new(crate::kmeans::KMeans::at_scale(scale)),
        Box::new(crate::bscholes::BlackScholes::at_scale(scale)),
        Box::new(crate::wrf::Wrf::at_scale(scale)),
        Box::new(crate::sobel::Sobel::at_scale(scale)),
        Box::new(crate::fft::Fft::at_scale(scale)),
    ]
}

/// One cell of a pooled (workload × design) grid run.
#[derive(Clone, Debug)]
pub struct GridRun {
    pub workload: &'static str,
    pub design: DesignKind,
    pub metrics: RunMetrics,
}

/// A workload's first design cell computes (or waits on) the memoized
/// golden run; later cells hit the warm cache. Weighting the first cell
/// heavier schedules all the golden computations into the pool's opening
/// claims — one per worker, different workloads — instead of letting four
/// workers claim four cells of the *same* heavy workload and serialize on
/// its once-cell. Coarse by design: only the claiming order depends on it.
const GOLDEN_CELL_BOOST: u64 = 4;

/// Run the full (workload × design) grid on `pool`, returning cells in
/// workload-major, design-minor order. Each cell is an independent
/// deterministic simulation, so the results are bit-identical for any pool
/// width (`tests/determinism.rs` pins this). Cells are claimed
/// heaviest-first using each workload's [`Workload::cost_hint`] — the
/// suite's job mix is heavily skewed (fft is ~45× more simulated blocks
/// than the lightest workloads), and starting the long poles first is
/// what keeps the sweep's makespan near `total/N` instead of
/// `t_longest + rest/N`.
pub fn run_grid(
    pool: &SimPool,
    suite: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    designs: &[DesignKind],
) -> Vec<GridRun> {
    let cells = suite.len() * designs.len();
    let weight = |i: usize| {
        let hint = suite[i / designs.len()].cost_hint().max(1);
        if i.is_multiple_of(designs.len()) {
            hint.saturating_mul(GOLDEN_CELL_BOOST)
        } else {
            hint
        }
    };
    pool.run_jobs_weighted(cells, weight, |ctx| {
        let w = &suite[ctx.index / designs.len()];
        let design = designs[ctx.index % designs.len()];
        GridRun { workload: w.name(), design, metrics: run_on_design(w.as_ref(), cfg, design) }
    })
}

/// Convenience: build the suite at `scale` and run the grid on `pool`.
pub fn run_suite_on_pool(
    pool: &SimPool,
    scale: BenchScale,
    cfg: &SystemConfig,
    designs: &[DesignKind],
) -> Vec<GridRun> {
    run_grid(pool, &all_benchmarks(scale), cfg, designs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_relative_error_basics() {
        let g = [1.0, 2.0, 4.0];
        let a = [1.1, 2.0, 4.0];
        // one value 10 % off over three values
        assert!((mean_relative_error(&g, &a) - 0.1 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_outputs_are_zero_error() {
        let g = [3.0, -5.0, 0.0];
        assert_eq!(mean_relative_error(&g, &g), 0.0);
    }

    #[test]
    fn runaway_errors_are_capped() {
        let g = [1.0];
        let a = [1.0e9];
        assert_eq!(mean_relative_error(&g, &a), 10.0);
    }

    #[test]
    fn zero_golden_values_use_magnitude_floor() {
        let g = [0.0, 100.0];
        let a = [1.0e-7, 100.0];
        // The 1e-7 absolute error on a zero is tiny relative to the
        // output's ~50 magnitude but is compared against the 5e-8 floor;
        // it must not produce a huge error after capping.
        let e = mean_relative_error(&g, &a);
        assert!(e <= 10.0 / 2.0);
    }

    #[test]
    fn suite_has_nine_benchmarks_paper_order_then_extensions() {
        let suite = all_benchmarks(BenchScale::Tiny);
        let names: Vec<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            ["heat", "lattice", "lbm", "orbit", "kmeans", "bscholes", "wrf", "sobel", "fft"]
        );
    }

    #[test]
    fn grid_cells_come_back_in_workload_major_order() {
        use avr_core::SimPool;
        let suite = all_benchmarks(BenchScale::Tiny);
        let short: Vec<Box<dyn Workload>> =
            suite.into_iter().filter(|w| matches!(w.name(), "bscholes" | "kmeans")).collect();
        let designs = [DesignKind::Baseline, DesignKind::Avr];
        let grid = run_grid(&SimPool::new(2), &short, &avr_core::SystemConfig::tiny(), &designs);
        let labels: Vec<_> = grid.iter().map(|c| (c.workload, c.design)).collect();
        assert_eq!(
            labels,
            [
                ("kmeans", DesignKind::Baseline),
                ("kmeans", DesignKind::Avr),
                ("bscholes", DesignKind::Baseline),
                ("bscholes", DesignKind::Avr),
            ]
        );
        for c in &grid {
            assert!(c.metrics.cycles > 0);
        }
    }
}
