//! `sobel` — image edge detection (AxBench's sobel, the extension suite's
//! first workload beyond the paper's seven). A 3×3 Sobel operator sweeps a
//! procedurally generated grayscale image; approximable data: the input
//! image (the filter's consumers tolerate pixel-level noise). The gradient
//! output is kept precise — it is the application's result surface.
//!
//! The image is fractal terrain texture over two Gaussian highlights, so
//! blocks are locally smooth (compressible) while gradients stay well away
//! from zero, keeping the mean-relative-error metric meaningful.
//!
//! The texture amplitude is `BenchScale`-aware: midpoint displacement
//! halves its step count with the image side, so a 128-px tiny image at
//! the bench amplitude carries ~5× the per-pixel noise of the 1312-px
//! bench image — past AVR's T1 threshold, which made every tiny block an
//! outlier block and left the compressor unexercised by smoke runs
//! (ROADMAP PR-2 note). The tiny scale now uses an amplitude that lands
//! the finest-step noise in the same relative band as the bench image;
//! the bench-scale input is untouched.

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use crate::terrain::fractal_terrain;
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};

/// Field indices into [`Sobel::schema`].
const IMG: usize = 0;
const GRAD: usize = 1;

/// The Sobel edge-detection benchmark.
pub struct Sobel {
    pub width: usize,
    pub height: usize,
    /// Fractal texture amplitude (scale-aware; see module docs).
    pub texture_amp: f32,
}

impl Sobel {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            // Amplitude rescaled for the shallower midpoint-displacement
            // recursion (see module docs): comparable per-pixel relief to
            // the bench image, so tiny blocks straddle the T1 boundary
            // instead of all blowing past it.
            BenchScale::Tiny => Sobel { width: 128, height: 128, texture_amp: 19.0 },
            // ~6.9 MB approximable image against the 1 MB per-core LLC
            // share, matching the other bench-scale footprints.
            BenchScale::Bench => Sobel { width: 1312, height: 1312, texture_amp: 60.0 },
        }
    }

    /// One record per pixel: the approximable input sample next to the
    /// precise gradient result. Conservative AoS gives up approximation
    /// (every record carries the precise result word); partitioned
    /// placement keeps the image plane approximable on its own.
    fn schema() -> RecordSchema {
        RecordSchema::new(
            "pixel",
            vec![FieldSpec::approx_f32("img"), FieldSpec::precise_f32("grad")],
        )
    }

    /// The procedural input image: terrain texture + two highlights.
    fn pixel(&self, tx: &[f32], ty: &[f32], x: usize, y: usize) -> f32 {
        let (w, h) = (self.width as f32, self.height as f32);
        let (xf, yf) = (x as f32, y as f32);
        let blob = |cx: f32, cy: f32, s: f32, amp: f32| {
            let d2 = (xf - cx).powi(2) + (yf - cy).powi(2);
            amp * (-d2 / (2.0 * s * s)).exp()
        };
        let mut v = 110.0 + 0.5 * (tx[x] + ty[y]);
        v += blob(w * 0.35, h * 0.4, w * 0.18, 70.0);
        v += blob(w * 0.7, h * 0.62, w * 0.12, 50.0);
        v.clamp(0.0, 255.0)
    }
}

impl Workload for Sobel {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new(
            "sobel",
            &[self.width as u64, self.height as u64, u64::from(self.texture_amp.to_bits())],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // 3×3 window per pixel, single pass.
        (self.width * self.height * 9) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos, LayoutKind::Partitioned]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let (w, h) = (self.width, self.height);
        let n = w * h;
        // Approximable input image + precise gradient output, placed by
        // the layout.
        let map = Layout::new(Self::schema(), layout).instantiate(vm, n);

        // Texture: smooth fractal relief along each axis (deterministic),
        // stored one bulk row at a time.
        let tx = fractal_terrain(w, 0.0, self.texture_amp, 0.45, 11);
        let ty = fractal_terrain(h, 0.0, self.texture_amp, 0.45, 23);
        let mut row = vec![0f32; w];
        for y in 0..h {
            for (x, px) in row.iter_mut().enumerate() {
                *px = self.pixel(&tx, &ty, x, y);
            }
            vm.compute(10 * w as u64);
            map.write_f32s(vm, IMG, y * w, &row);
        }

        // 3×3 Sobel over the interior; borders carry zero gradient. The
        // neighborhood reads become three contiguous row loads per output
        // row — the 8-point stencil at cacheline granularity.
        let mut above = vec![0f32; w];
        let mut cur = vec![0f32; w];
        let mut below = vec![0f32; w];
        let mut grad_row = vec![0f32; w - 2];
        for y in 1..h - 1 {
            map.read_f32s(vm, IMG, (y - 1) * w, &mut above);
            map.read_f32s(vm, IMG, y * w, &mut cur);
            map.read_f32s(vm, IMG, (y + 1) * w, &mut below);
            for x in 1..w - 1 {
                let gx = (above[x + 1] + 2.0 * cur[x + 1] + below[x + 1])
                    - (above[x - 1] + 2.0 * cur[x - 1] + below[x - 1]);
                let gy = (below[x - 1] + 2.0 * below[x] + below[x + 1])
                    - (above[x - 1] + 2.0 * above[x] + above[x + 1]);
                grad_row[x - 1] = (gx * gx + gy * gy).sqrt();
            }
            vm.compute(14 * (w - 2) as u64);
            map.write_f32s(vm, GRAD, y * w + 1, &grad_row);
        }

        // Output: per-row mean gradient magnitude over the interior (the
        // edge-density profile a consumer would threshold).
        let mut out = Vec::with_capacity(h - 2);
        for y in 1..h - 1 {
            map.read_f32s(vm, GRAD, y * w + 1, &mut grad_row);
            vm.compute((w - 2) as u64);
            let acc: f64 = grad_row.iter().map(|&g| g as f64).sum();
            out.push(acc / (w - 2) as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn exact_run_is_deterministic_with_healthy_gradients() {
        let w = Sobel::at_scale(BenchScale::Tiny);
        let mut vm1 = ExactVm::new();
        let o1 = w.run(&mut vm1);
        let mut vm2 = ExactVm::new();
        let o2 = w.run(&mut vm2);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 126);
        // Edge densities sit well away from zero (texture + highlights),
        // so relative output error is a meaningful metric.
        assert!(o1.iter().all(|&g| g > 1.0), "degenerate gradient row");
        assert!(o1.iter().any(|&g| g > 4.0), "image has real edges");
    }

    #[test]
    fn avr_error_is_small_on_tiny_run() {
        let w = Sobel::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.06, "sobel AVR error {}", m.output_error);
        assert!(m.cycles > 0);
    }
}
