//! `fft` — radix-2 FFT spectral analysis (AxBench's fft, the extension
//! suite's second workload beyond the paper's seven). An iterative
//! decimation-in-time FFT transforms a full-band linear chirp (no
//! amplitude window — see the input loop); approximable data: the planar
//! re/im working arrays (every pass streams both, so the paper's
//! compress-on-evict machinery sees the data at each stage of the
//! transform). Twiddle factors are computed precisely on the fly.
//!
//! The chirp sweeps the whole band, so the output — power integrated over
//! 16 equal frequency bands — has no near-zero entries and the mean
//! relative error stays a meaningful quality metric (AxBench's fft is also
//! judged on average relative error of the spectrum).

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};

/// Number of output frequency bands.
const BANDS: usize = 16;

/// Sample index carrying the tiny-scale pulse (see [`Fft::pulse_amp`]):
/// close to t = 0, so the pulse's spectral phase `e^{-2πik·t₀/n}` turns
/// slowly in k and the spectrum is locally smooth.
const PULSE_T: usize = 8;

/// The FFT spectral-analysis benchmark. `log2_n` fixes the transform size.
pub struct Fft {
    pub log2_n: u32,
    /// `BenchScale`-aware input shaping: amplitude of a single-sample
    /// pulse superposed on the chirp (`0.0` = pure chirp, the bench-scale
    /// input, bit-identical to before the knob existed). A chirp's
    /// spectrum has pseudo-random phase bin-to-bin, so the tiny-scale
    /// re/im arrays ended their run 100 % outlier blocks and smoke runs
    /// never exercised the compressor (ROADMAP PR-2 note). The pulse adds
    /// a flat, slowly-turning spectral floor of amplitude `pulse_amp`;
    /// against it the chirp's ~√n-magnitude bins read as relative noise,
    /// so `pulse_amp` is sized (empirically, via `diag_compressibility`)
    /// to land blocks *around* the T1 boundary: partially compressible
    /// final/in-flight states without collapsing the simulated traffic.
    /// Band powers stay flat (the pulse is all-band), keeping the output
    /// metric well-conditioned.
    pub pulse_amp: f32,
}

impl Fft {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            // 16 K points: 128 KB of planar re/im against the 64 KB tiny
            // LLC, so every pass spills and recompresses.
            BenchScale::Tiny => Fft { log2_n: 14, pulse_amp: 16384.0 },
            // 512 K points: 4 MB against the 1 MB per-core LLC share.
            BenchScale::Bench => Fft { log2_n: 19, pulse_amp: 0.0 },
        }
    }

    #[inline]
    fn n(&self) -> usize {
        1 << self.log2_n
    }

    /// One record per sample: the complex pair. SoA keeps the planar
    /// re/im arrays of the historical port; AoS stores interleaved
    /// complex values, the other textbook FFT memory layout.
    fn schema() -> RecordSchema {
        RecordSchema::new("cpx", vec![FieldSpec::approx_f32("re"), FieldSpec::approx_f32("im")])
    }
}

/// Field indices into [`Fft::schema`].
const RE: usize = 0;
const IM: usize = 1;

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new(
            "fft",
            &[u64::from(self.log2_n), u64::from(self.pulse_amp.to_bits())],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // log2(n) butterfly passes over planar re/im — the suite's long
        // pole (~45× the lightest workloads in simulated blocks).
        (self.n() as u64) * u64::from(self.log2_n) * 4
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let n = self.n();
        // Approximable: the complex working arrays, placed by the layout.
        let map = Layout::new(Self::schema(), layout).instantiate(vm, n);

        // Input: a full-band linear chirp sweeping DC → Nyquist, written
        // directly in bit-reversed positions so the passes run in order —
        // a textbook scatter, issued in index chunks. No amplitude window:
        // a windowed chirp's band powers follow the window's envelope,
        // which would starve the edge bands; the bare chirp keeps all 16
        // output bands comparably powered.
        const CHUNK: usize = 1024;
        let nf = n as f64;
        let mut sc_idx = vec![0u32; CHUNK];
        let mut sc_val = vec![0f32; CHUNK];
        for start in (0..n).step_by(CHUNK) {
            let len = CHUNK.min(n - start);
            for o in 0..len {
                let i = start + o;
                let t = i as f64 / nf;
                let phase = std::f64::consts::PI * nf * 0.5 * t * t;
                let chirp = phase.cos() as f32;
                // Tiny-scale pulse (see `pulse_amp`); the bench-scale
                // branch (pulse_amp == 0) writes the exact pre-knob chirp
                // stream.
                let rev = ((i as u64).reverse_bits() >> (64 - self.log2_n)) as usize;
                sc_idx[o] = map.elem(RE, rev);
                sc_val[o] = if self.pulse_amp != 0.0 && i == PULSE_T {
                    chirp + self.pulse_amp
                } else {
                    chirp
                };
            }
            vm.compute(14 * len as u64);
            vm.write_f32s_scatter(map.base(), &sc_idx[..len], &sc_val[..len]);
        }
        // The imaginary plane starts at zero everywhere.
        let zeros = vec![0f32; n];
        map.write_f32s(vm, IM, 0, &zeros);

        // Iterative Cooley–Tukey: log2(n) passes over the full arrays.
        // Each butterfly group's a/b halves are contiguous, so one group
        // is four bulk loads + four bulk stores.
        let mut ar = vec![0f32; n / 2];
        let mut ai = vec![0f32; n / 2];
        let mut br = vec![0f32; n / 2];
        let mut bi = vec![0f32; n / 2];
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            for start in (0..n).step_by(len) {
                map.read_f32s(vm, RE, start, &mut ar[..half]);
                map.read_f32s(vm, IM, start, &mut ai[..half]);
                map.read_f32s(vm, RE, start + half, &mut br[..half]);
                map.read_f32s(vm, IM, start + half, &mut bi[..half]);
                for k in 0..half {
                    let (wr, wi) = {
                        let a = ang * k as f64;
                        (a.cos() as f32, a.sin() as f32)
                    };
                    let tr = wr * br[k] - wi * bi[k];
                    let ti = wr * bi[k] + wi * br[k];
                    let (a_r, a_i) = (ar[k], ai[k]);
                    ar[k] = a_r + tr;
                    ai[k] = a_i + ti;
                    br[k] = a_r - tr;
                    bi[k] = a_i - ti;
                }
                vm.compute(12 * half as u64);
                map.write_f32s(vm, RE, start, &ar[..half]);
                map.write_f32s(vm, IM, start, &ai[..half]);
                map.write_f32s(vm, RE, start + half, &br[..half]);
                map.write_f32s(vm, IM, start + half, &bi[..half]);
            }
            len <<= 1;
        }

        // Output: power per frequency band over the positive spectrum,
        // read band-by-band with two bulk loads.
        let half = n / 2;
        let per_band = half / BANDS;
        let mut out = Vec::with_capacity(BANDS);
        let mut re_band = vec![0f32; per_band];
        let mut im_band = vec![0f32; per_band];
        for b in 0..BANDS {
            map.read_f32s(vm, RE, b * per_band, &mut re_band);
            map.read_f32s(vm, IM, b * per_band, &mut im_band);
            vm.compute(3 * per_band as u64);
            let acc: f64 = re_band
                .iter()
                .zip(&im_band)
                .map(|(&r, &i)| {
                    let (r, i) = (r as f64, i as f64);
                    r * r + i * i
                })
                .sum();
            out.push(acc / per_band as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn exact_spectrum_is_deterministic_and_broadband() {
        let w = Fft::at_scale(BenchScale::Tiny);
        let mut vm1 = ExactVm::new();
        let o1 = w.run(&mut vm1);
        let mut vm2 = ExactVm::new();
        let o2 = w.run(&mut vm2);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), BANDS);
        // The chirp powers every band: min/max within two orders of
        // magnitude keeps relative error well-conditioned.
        let max = o1.iter().cloned().fold(f64::MIN, f64::max);
        let min = o1.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.0, "dead band in chirp spectrum");
        assert!(max / min < 100.0, "spectrum too peaky: {max} / {min}");
    }

    #[test]
    fn avr_error_is_bounded_on_tiny_run() {
        let w = Fft::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.06, "fft AVR error {}", m.output_error);
        assert!(m.cycles > 0);
    }
}
