//! `fft` — radix-2 FFT spectral analysis (AxBench's fft, the extension
//! suite's second workload beyond the paper's seven). An iterative
//! decimation-in-time FFT transforms a full-band linear chirp (no
//! amplitude window — see the input loop); approximable data: the planar
//! re/im working arrays (every pass streams both, so the paper's
//! compress-on-evict machinery sees the data at each stage of the
//! transform). Twiddle factors are computed precisely on the fly.
//!
//! The chirp sweeps the whole band, so the output — power integrated over
//! 16 equal frequency bands — has no near-zero entries and the mean
//! relative error stays a meaningful quality metric (AxBench's fft is also
//! judged on average relative error of the spectrum).

use crate::runner::{BenchScale, Workload};
use avr_core::Vm;
use avr_types::{DataType, PhysAddr};

/// Number of output frequency bands.
const BANDS: usize = 16;

/// Sample index carrying the tiny-scale pulse (see [`Fft::pulse_amp`]):
/// close to t = 0, so the pulse's spectral phase `e^{-2πik·t₀/n}` turns
/// slowly in k and the spectrum is locally smooth.
const PULSE_T: usize = 8;

/// The FFT spectral-analysis benchmark. `log2_n` fixes the transform size.
pub struct Fft {
    pub log2_n: u32,
    /// `BenchScale`-aware input shaping: amplitude of a single-sample
    /// pulse superposed on the chirp (`0.0` = pure chirp, the bench-scale
    /// input, bit-identical to before the knob existed). A chirp's
    /// spectrum has pseudo-random phase bin-to-bin, so the tiny-scale
    /// re/im arrays ended their run 100 % outlier blocks and smoke runs
    /// never exercised the compressor (ROADMAP PR-2 note). The pulse adds
    /// a flat, slowly-turning spectral floor of amplitude `pulse_amp`;
    /// against it the chirp's ~√n-magnitude bins read as relative noise,
    /// so `pulse_amp` is sized (empirically, via `diag_compressibility`)
    /// to land blocks *around* the T1 boundary: partially compressible
    /// final/in-flight states without collapsing the simulated traffic.
    /// Band powers stay flat (the pulse is all-band), keeping the output
    /// metric well-conditioned.
    pub pulse_amp: f32,
}

impl Fft {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            // 16 K points: 128 KB of planar re/im against the 64 KB tiny
            // LLC, so every pass spills and recompresses.
            BenchScale::Tiny => Fft { log2_n: 14, pulse_amp: 16384.0 },
            // 512 K points: 4 MB against the 1 MB per-core LLC share.
            BenchScale::Bench => Fft { log2_n: 19, pulse_amp: 0.0 },
        }
    }

    #[inline]
    fn n(&self) -> usize {
        1 << self.log2_n
    }
}

#[inline]
fn addr(base: PhysAddr, idx: usize) -> PhysAddr {
    PhysAddr(base.0 + 4 * idx as u64)
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        let n = self.n();
        // Approximable: the planar complex working arrays.
        let re = vm.approx_malloc(4 * n, DataType::F32).base;
        let im = vm.approx_malloc(4 * n, DataType::F32).base;

        // Input: a full-band linear chirp sweeping DC → Nyquist, written
        // directly in bit-reversed positions so the passes run in order.
        // No amplitude window: a windowed chirp's band powers follow the
        // window's envelope, which would starve the edge bands; the bare
        // chirp keeps all 16 output bands comparably powered.
        let nf = n as f64;
        for i in 0..n {
            let t = i as f64 / nf;
            let phase = std::f64::consts::PI * nf * 0.5 * t * t;
            let rev = (i as u64).reverse_bits() >> (64 - self.log2_n);
            let chirp = phase.cos() as f32;
            // Tiny-scale pulse (see `pulse_amp`); the bench-scale branch
            // (pulse_amp == 0) writes the exact pre-knob chirp stream.
            let v =
                if self.pulse_amp != 0.0 && i == PULSE_T { chirp + self.pulse_amp } else { chirp };
            vm.compute(14);
            vm.write_f32(addr(re, rev as usize), v);
            vm.write_f32(addr(im, rev as usize), 0.0);
        }

        // Iterative Cooley–Tukey: log2(n) passes over the full arrays.
        let mut len = 2usize;
        while len <= n {
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            for start in (0..n).step_by(len) {
                for k in 0..len / 2 {
                    let (wr, wi) = {
                        let a = ang * k as f64;
                        (a.cos() as f32, a.sin() as f32)
                    };
                    let i0 = start + k;
                    let i1 = start + k + len / 2;
                    let ar = vm.read_f32(addr(re, i0));
                    let ai = vm.read_f32(addr(im, i0));
                    let br = vm.read_f32(addr(re, i1));
                    let bi = vm.read_f32(addr(im, i1));
                    let tr = wr * br - wi * bi;
                    let ti = wr * bi + wi * br;
                    vm.compute(12);
                    vm.write_f32(addr(re, i0), ar + tr);
                    vm.write_f32(addr(im, i0), ai + ti);
                    vm.write_f32(addr(re, i1), ar - tr);
                    vm.write_f32(addr(im, i1), ai - ti);
                }
            }
            len <<= 1;
        }

        // Output: power per frequency band over the positive spectrum.
        let half = n / 2;
        let per_band = half / BANDS;
        let mut out = Vec::with_capacity(BANDS);
        for b in 0..BANDS {
            let mut acc = 0.0f64;
            for k in b * per_band..(b + 1) * per_band {
                let r = vm.read_f32(addr(re, k)) as f64;
                let i = vm.read_f32(addr(im, k)) as f64;
                acc += r * r + i * i;
                vm.compute(3);
            }
            out.push(acc / per_band as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn exact_spectrum_is_deterministic_and_broadband() {
        let w = Fft::at_scale(BenchScale::Tiny);
        let mut vm1 = ExactVm::new();
        let o1 = w.run(&mut vm1);
        let mut vm2 = ExactVm::new();
        let o2 = w.run(&mut vm2);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), BANDS);
        // The chirp powers every band: min/max within two orders of
        // magnitude keeps relative error well-conditioned.
        let max = o1.iter().cloned().fold(f64::MIN, f64::max);
        let min = o1.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.0, "dead band in chirp spectrum");
        assert!(max / min < 100.0, "spectrum too peaky: {max} / {min}");
    }

    #[test]
    fn avr_error_is_bounded_on_tiny_run() {
        let w = Fft::at_scale(BenchScale::Tiny);
        let m = run_on_design(&w, &SystemConfig::tiny(), DesignKind::Avr);
        assert!(m.output_error < 0.06, "fft AVR error {}", m.output_error);
        assert!(m.cycles > 0);
    }
}
