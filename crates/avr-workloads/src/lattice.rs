//! `lattice` — 2-D lattice-Boltzmann (D2Q9, Ansumali'03) simulating air
//! flow over a solid object; the paper's input is a car silhouette, which
//! we rasterize procedurally. Approximable data: the particle distribution
//! functions ("P and M"); output: velocity and pressure fields.
#![allow(clippy::needless_range_loop)] // parallel gather/scatter arrays read clearer indexed

use crate::runner::{BenchScale, Workload};
use crate::terrain::car_silhouette;
use avr_core::Vm;
use avr_types::{DataType, PhysAddr};

/// D2Q9 lattice velocities and weights.
const EX: [i32; 9] = [0, 1, 0, -1, 0, 1, -1, -1, 1];
const EY: [i32; 9] = [0, 0, 1, 0, -1, 1, 1, -1, -1];
const W: [f32; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
/// Opposite-direction index (bounce-back).
const OPP: [usize; 9] = [0, 3, 4, 1, 2, 7, 8, 5, 6];

/// The 2-D lattice-Boltzmann benchmark.
pub struct Lattice {
    pub width: usize,
    pub height: usize,
    pub iters: usize,
    /// Inlet velocity (lattice units).
    pub u0: f32,
    /// BGK relaxation time.
    pub tau: f32,
}

impl Lattice {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => Lattice { width: 64, height: 32, iters: 4, u0: 0.06, tau: 0.8 },
            // 2 x 9 x H x W x 4 B ≈ 2.7 MB of distributions (~86 %
            // approximable), the paper's 5 MB/core shape.
            BenchScale::Bench => Lattice { width: 288, height: 128, iters: 6, u0: 0.06, tau: 0.8 },
        }
    }

    #[inline]
    fn f_at(base: PhysAddr, i: usize, idx: usize, cells: usize) -> PhysAddr {
        PhysAddr(base.0 + 4 * (i * cells + idx) as u64)
    }

    #[inline]
    fn at(base: PhysAddr, idx: usize) -> PhysAddr {
        PhysAddr(base.0 + 4 * idx as u64)
    }

    fn feq(i: usize, rho: f32, ux: f32, uy: f32) -> f32 {
        let eu = EX[i] as f32 * ux + EY[i] as f32 * uy;
        let u2 = ux * ux + uy * uy;
        W[i] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * u2)
    }
}

impl Workload for Lattice {
    fn name(&self) -> &'static str {
        "lattice"
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        let (w, h) = (self.width, self.height);
        let cells = w * h;
        // Approximable: both copies of the nine distribution functions.
        let f = vm.approx_malloc(4 * 9 * cells, DataType::F32).base;
        let f2 = vm.approx_malloc(4 * 9 * cells, DataType::F32).base;
        // Precise: the obstacle mask and the output fields.
        let mask = vm.malloc(4 * cells).base;
        let vel_out = vm.malloc(4 * cells).base;
        let p_out = vm.malloc(4 * cells).base;

        let solid = car_silhouette(w, h);
        for (idx, &s) in solid.iter().enumerate() {
            vm.write_u32(Self::at(mask, idx), s as u32);
        }

        // Equilibrium init at uniform inflow — both buffers, so boundary
        // entries the streaming step never writes hold sane values.
        for idx in 0..cells {
            for i in 0..9 {
                let v = Self::feq(i, 1.0, self.u0, 0.0);
                vm.compute(10);
                vm.write_f32(Self::f_at(f, i, idx, cells), v);
                vm.write_f32(Self::f_at(f2, i, idx, cells), v);
            }
        }

        let (mut src, mut dst) = (f, f2);
        for _step in 0..self.iters {
            for y in 0..h {
                for x in 0..w {
                    let idx = y * w + x;
                    let is_solid = vm.read_u32(Self::at(mask, idx)) != 0;
                    // Gather distributions.
                    let mut fi = [0f32; 9];
                    for i in 0..9 {
                        fi[i] = vm.read_f32(Self::f_at(src, i, idx, cells));
                    }
                    let mut post = [0f32; 9];
                    if is_solid {
                        // Full bounce-back.
                        for i in 0..9 {
                            post[OPP[i]] = fi[i];
                        }
                        vm.compute(9);
                    } else {
                        // BGK collision.
                        let rho: f32 = fi.iter().sum();
                        let ux = fi.iter().enumerate().map(|(i, &v)| EX[i] as f32 * v).sum::<f32>()
                            / rho;
                        let uy = fi.iter().enumerate().map(|(i, &v)| EY[i] as f32 * v).sum::<f32>()
                            / rho;
                        for i in 0..9 {
                            let eq = Self::feq(i, rho, ux, uy);
                            post[i] = fi[i] - (fi[i] - eq) / self.tau;
                        }
                        vm.compute(90);
                    }
                    // Streaming (periodic wrap vertically, clamped
                    // horizontally; the inlet/outlet overwrite below).
                    for i in 0..9 {
                        let nx = x as i32 + EX[i];
                        let ny = (y as i32 + EY[i]).rem_euclid(h as i32) as usize;
                        if nx < 0 || nx >= w as i32 {
                            continue;
                        }
                        let nidx = ny * w + nx as usize;
                        vm.write_f32(Self::f_at(dst, i, nidx, cells), post[i]);
                    }
                }
            }
            // Inlet (west): equilibrium at u0. Outlet (east): copy.
            for y in 0..h {
                for i in 0..9 {
                    let v = Self::feq(i, 1.0, self.u0, 0.0);
                    vm.write_f32(Self::f_at(dst, i, y * w, cells), v);
                    let inner = vm.read_f32(Self::f_at(dst, i, y * w + w - 2, cells));
                    vm.write_f32(Self::f_at(dst, i, y * w + w - 1, cells), inner);
                }
                vm.compute(40);
            }
            std::mem::swap(&mut src, &mut dst);
        }

        // Output pass: velocity magnitude and pressure (rho / 3).
        let mut out = Vec::with_capacity(2 * cells);
        for idx in 0..cells {
            let mut fi = [0f32; 9];
            for i in 0..9 {
                fi[i] = vm.read_f32(Self::f_at(src, i, idx, cells));
            }
            let rho: f32 = fi.iter().sum();
            let ux = fi.iter().enumerate().map(|(i, &v)| EX[i] as f32 * v).sum::<f32>() / rho;
            let uy = fi.iter().enumerate().map(|(i, &v)| EY[i] as f32 * v).sum::<f32>() / rho;
            let vmag = (ux * ux + uy * uy).sqrt();
            let p = rho / 3.0;
            vm.compute(30);
            vm.write_f32(Self::at(vel_out, idx), vmag);
            vm.write_f32(Self::at(p_out, idx), p);
            out.push(vmag as f64);
            out.push(p as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn flow_is_finite_and_mass_is_conserved() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        assert_eq!(out.len(), 2 * 64 * 32);
        assert!(out.iter().all(|v| v.is_finite()));
        // Mean pressure stays near the initial rho/3 = 1/3 (inlet/outlet
        // allow slight drift).
        let mean_p: f64 = out.iter().skip(1).step_by(2).sum::<f64>() / (64.0 * 32.0);
        assert!((mean_p - 1.0 / 3.0).abs() < 0.05, "mean pressure {mean_p}");
    }

    #[test]
    fn obstacle_blocks_flow() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        let solid = car_silhouette(64, 32);
        // Velocity inside the solid is ~0 relative to the free stream.
        let mut inside_max = 0.0f64;
        let mut free = 0.0f64;
        for (idx, &s) in solid.iter().enumerate() {
            let v = out[2 * idx];
            if s {
                inside_max = inside_max.max(v);
            } else {
                free = free.max(v);
            }
        }
        assert!(free > 0.02, "free-stream flow exists: {free}");
        assert!(inside_max < free, "solid interior slower than free stream");
    }

    #[test]
    fn deterministic() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        let mut a = ExactVm::new();
        let mut b = ExactVm::new();
        assert_eq!(w.run(&mut a), w.run(&mut b));
    }

    #[test]
    fn avr_error_is_small() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        let m = run_on_design(&w, &SystemConfig::tiny(), DesignKind::Avr);
        assert!(m.output_error < 0.05, "lattice AVR error {}", m.output_error);
    }
}
