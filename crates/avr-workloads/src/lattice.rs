//! `lattice` — 2-D lattice-Boltzmann (D2Q9, Ansumali'03) simulating air
//! flow over a solid object; the paper's input is a car silhouette, which
//! we rasterize procedurally. Approximable data: the particle distribution
//! functions ("P and M"); output: velocity and pressure fields.
#![allow(clippy::needless_range_loop)] // parallel gather/scatter arrays read clearer indexed

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use crate::terrain::car_silhouette;
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};
use avr_types::PhysAddr;

/// D2Q9 lattice velocities and weights.
const EX: [i32; 9] = [0, 1, 0, -1, 0, 1, -1, -1, 1];
const EY: [i32; 9] = [0, 0, 1, 0, -1, 1, 1, -1, -1];
const W: [f32; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
/// Opposite-direction index (bounce-back).
const OPP: [usize; 9] = [0, 3, 4, 1, 2, 7, 8, 5, 6];

/// The 2-D lattice-Boltzmann benchmark.
pub struct Lattice {
    pub width: usize,
    pub height: usize,
    pub iters: usize,
    /// Inlet velocity (lattice units).
    pub u0: f32,
    /// BGK relaxation time.
    pub tau: f32,
}

impl Lattice {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => Lattice { width: 64, height: 32, iters: 4, u0: 0.06, tau: 0.8 },
            // 2 x 9 x H x W x 4 B ≈ 2.7 MB of distributions (~86 %
            // approximable), the paper's 5 MB/core shape.
            BenchScale::Bench => Lattice { width: 288, height: 128, iters: 6, u0: 0.06, tau: 0.8 },
        }
    }

    #[inline]
    fn at(base: PhysAddr, idx: usize) -> PhysAddr {
        PhysAddr(base.0 + 4 * idx as u64)
    }

    /// One record per lattice cell: the nine distribution functions.
    /// `packed()` keeps SoA plane-major inside a single region — the
    /// historical layout, where the per-cell gather is a plane-strided
    /// read; AoS turns that same gather into one contiguous 9-word read.
    fn schema() -> RecordSchema {
        const NAMES: [&str; 9] = ["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"];
        RecordSchema::new("dist", NAMES.iter().map(|&n| FieldSpec::approx_f32(n)).collect())
            .packed()
    }

    fn feq(i: usize, rho: f32, ux: f32, uy: f32) -> f32 {
        let eu = EX[i] as f32 * ux + EY[i] as f32 * uy;
        let u2 = ux * ux + uy * uy;
        W[i] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * u2)
    }
}

impl Workload for Lattice {
    fn name(&self) -> &'static str {
        "lattice"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new(
            "lattice",
            &[
                self.width as u64,
                self.height as u64,
                self.iters as u64,
                u64::from(self.u0.to_bits()),
                u64::from(self.tau.to_bits()),
            ],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // Nine distributions × (stream gather + collide + write) per cell
        // per iteration.
        (self.width * self.height * self.iters * 9 * 6) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let (w, h) = (self.width, self.height);
        let cells = w * h;
        // Approximable: both copies of the nine distribution functions.
        let map_f = Layout::new(Self::schema(), layout).instantiate(vm, cells);
        let map_f2 = Layout::new(Self::schema(), layout).instantiate(vm, cells);
        // Precise: the obstacle mask and the output fields.
        let mask = vm.malloc(4 * cells).base;
        let vel_out = vm.malloc(4 * cells).base;
        let p_out = vm.malloc(4 * cells).base;

        let solid = car_silhouette(w, h);
        let mask_words: Vec<u32> = solid.iter().map(|&s| s as u32).collect();
        vm.write_u32s(mask, &mask_words);

        // Equilibrium init at uniform inflow — both buffers, so boundary
        // entries the streaming step never writes hold sane values. Each
        // distribution plane is a constant, stored with one bulk write.
        let eq0: [f32; 9] = std::array::from_fn(|i| Self::feq(i, 1.0, self.u0, 0.0));
        let mut plane = vec![0f32; cells];
        for (i, &v) in eq0.iter().enumerate() {
            plane.fill(v);
            vm.compute(10 * cells as u64);
            map_f.write_f32s(vm, i, 0, &plane);
            map_f2.write_f32s(vm, i, 0, &plane);
        }

        // Under packed SoA the per-cell record read resolves to a
        // plane-strided gather and the streaming step scatters across
        // planes; under AoS both collapse to (near-)contiguous accesses.
        let mut mask_row = vec![0u32; w];
        let (mut src, mut dst) = (&map_f, &map_f2);
        for _step in 0..self.iters {
            for y in 0..h {
                vm.read_u32s(Self::at(mask, y * w), &mut mask_row);
                for x in 0..w {
                    let idx = y * w + x;
                    let is_solid = mask_row[x] != 0;
                    // Gather the cell's nine distributions.
                    let mut fi = [0f32; 9];
                    src.read_record_f32s(vm, idx, &mut fi);
                    let mut post = [0f32; 9];
                    if is_solid {
                        // Full bounce-back.
                        for i in 0..9 {
                            post[OPP[i]] = fi[i];
                        }
                        vm.compute(9);
                    } else {
                        // BGK collision.
                        let rho: f32 = fi.iter().sum();
                        let ux = fi.iter().enumerate().map(|(i, &v)| EX[i] as f32 * v).sum::<f32>()
                            / rho;
                        let uy = fi.iter().enumerate().map(|(i, &v)| EY[i] as f32 * v).sum::<f32>()
                            / rho;
                        for i in 0..9 {
                            let eq = Self::feq(i, rho, ux, uy);
                            post[i] = fi[i] - (fi[i] - eq) / self.tau;
                        }
                        vm.compute(90);
                    }
                    // Streaming (periodic wrap vertically, clamped
                    // horizontally; the inlet/outlet overwrite below): one
                    // scatter over the in-bounds directions.
                    let mut sc_idx = [0u32; 9];
                    let mut sc_val = [0f32; 9];
                    let mut m = 0;
                    for i in 0..9 {
                        let nx = x as i32 + EX[i];
                        let ny = (y as i32 + EY[i]).rem_euclid(h as i32) as usize;
                        if nx < 0 || nx >= w as i32 {
                            continue;
                        }
                        let nidx = ny * w + nx as usize;
                        sc_idx[m] = dst.elem(i, nidx);
                        sc_val[m] = post[i];
                        m += 1;
                    }
                    vm.write_f32s_scatter(dst.base(), &sc_idx[..m], &sc_val[..m]);
                }
            }
            // Inlet (west): equilibrium at u0. Outlet (east): copy — each
            // one whole-record access.
            let mut inner = [0f32; 9];
            for y in 0..h {
                dst.write_record_f32s(vm, y * w, &eq0);
                dst.read_record_f32s(vm, y * w + w - 2, &mut inner);
                dst.write_record_f32s(vm, y * w + w - 1, &inner);
                vm.compute(40);
            }
            std::mem::swap(&mut src, &mut dst);
        }

        // Output pass: velocity magnitude and pressure (rho / 3), stored
        // row-wise with two bulk writes per row.
        let mut out = Vec::with_capacity(2 * cells);
        let mut vel_row = vec![0f32; w];
        let mut p_row = vec![0f32; w];
        for y in 0..h {
            for x in 0..w {
                let idx = y * w + x;
                let mut fi = [0f32; 9];
                src.read_record_f32s(vm, idx, &mut fi);
                let rho: f32 = fi.iter().sum();
                let ux = fi.iter().enumerate().map(|(i, &v)| EX[i] as f32 * v).sum::<f32>() / rho;
                let uy = fi.iter().enumerate().map(|(i, &v)| EY[i] as f32 * v).sum::<f32>() / rho;
                let vmag = (ux * ux + uy * uy).sqrt();
                let p = rho / 3.0;
                vm.compute(30);
                vel_row[x] = vmag;
                p_row[x] = p;
                out.push(vmag as f64);
                out.push(p as f64);
            }
            vm.write_f32s(Self::at(vel_out, y * w), &vel_row);
            vm.write_f32s(Self::at(p_out, y * w), &p_row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn flow_is_finite_and_mass_is_conserved() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        assert_eq!(out.len(), 2 * 64 * 32);
        assert!(out.iter().all(|v| v.is_finite()));
        // Mean pressure stays near the initial rho/3 = 1/3 (inlet/outlet
        // allow slight drift).
        let mean_p: f64 = out.iter().skip(1).step_by(2).sum::<f64>() / (64.0 * 32.0);
        assert!((mean_p - 1.0 / 3.0).abs() < 0.05, "mean pressure {mean_p}");
    }

    #[test]
    fn obstacle_blocks_flow() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        let solid = car_silhouette(64, 32);
        // Velocity inside the solid is ~0 relative to the free stream.
        let mut inside_max = 0.0f64;
        let mut free = 0.0f64;
        for (idx, &s) in solid.iter().enumerate() {
            let v = out[2 * idx];
            if s {
                inside_max = inside_max.max(v);
            } else {
                free = free.max(v);
            }
        }
        assert!(free > 0.02, "free-stream flow exists: {free}");
        assert!(inside_max < free, "solid interior slower than free stream");
    }

    #[test]
    fn deterministic() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        let mut a = ExactVm::new();
        let mut b = ExactVm::new();
        assert_eq!(w.run(&mut a), w.run(&mut b));
    }

    #[test]
    fn avr_error_is_small() {
        let w = Lattice::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.05, "lattice AVR error {}", m.output_error);
    }
}
