//! `orbit` — the FLASH two-particle orbit problem: two bodies orbit their
//! common center of mass while a smooth gas field is evolved on a 3-D
//! grid. Approximable data: the tabulated physics field ("Phys. data") —
//! about half the footprint. The gas density is a smooth background with
//! mild body-centered perturbations (FLASH evolves gas, not bare 1/r
//! potentials), which is why the paper sees a near-perfect 16:1 ratio.
//!
//! Feedback: each body feels, besides exact mutual gravity, a gas-coupling
//! acceleration sampled from the *stored* density gradient — so
//! approximation error in the field perturbs the trajectories.

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};

/// The two-body orbit benchmark.
pub struct Orbit {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub steps: usize,
}

impl Orbit {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => Orbit { nx: 32, ny: 32, nz: 16, steps: 4 },
            // rho_gas (approx) + rho deposit (precise) at 2 MB each: the
            // 50/50 approximable split of the paper's orbit configuration.
            BenchScale::Bench => Orbit { nx: 128, ny: 128, nz: 32, steps: 6 },
        }
    }

    /// One record per grid cell: the approximable tabulated gas density
    /// next to the precise mass-deposit accumulator. Conservative AoS
    /// therefore forfeits approximation entirely (the precise deposit
    /// rides in every record); partitioned placement recovers it.
    fn schema() -> RecordSchema {
        RecordSchema::new("cell", vec![FieldSpec::approx_f32("gas"), FieldSpec::precise_f32("rho")])
    }
}

/// Field indices into [`Orbit::schema`].
const GAS: usize = 0;
const RHO: usize = 1;

impl Workload for Orbit {
    fn name(&self) -> &'static str {
        "orbit"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new(
            "orbit",
            &[self.nx as u64, self.ny as u64, self.nz as u64, self.steps as u64],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // Per step: re-tabulate the gas field (one write per cell) plus
        // the gathered stencil probes.
        (self.nx * self.ny * self.nz * self.steps * 2) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos, LayoutKind::Partitioned]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let cells = nx * ny * nz;
        let idx_of = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;

        // Approximable gas field + precise deposit grid, placed by the
        // layout (the "physics data" halves of the FLASH configuration).
        let map = Layout::new(Self::schema(), layout).instantiate(vm, cells);

        // Two equal masses orbiting their center of mass (grid center).
        let m = 50.0f32;
        let center = (nx as f32 / 2.0, ny as f32 / 2.0, nz as f32 / 2.0);
        let sep = nx as f32 / 4.0;
        let d = sep / 2.0;
        // Circular two-body orbit: v² = G m / (4 d), G = 1.
        let v = (m / (4.0 * d)).sqrt();
        let mut p1 = (center.0 - d, center.1, center.2);
        let mut p2 = (center.0 + d, center.1, center.2);
        let mut v1 = (0.0f32, v, 0.0f32);
        let mut v2 = (0.0f32, -v, 0.0f32);
        let dt = 0.1f32;

        // Gas parameters: broad Gaussian wakes around each body on a
        // uniform background.
        let rho0 = 1000.0f32;
        // Distinct wake amplitudes/widths per body: real FLASH fields have
        // no exact mirror symmetry (and symmetric fields would make
        // Doppelgänger's dedup accidentally lossless).
        let (amp1, amp2) = (0.12f32, 0.09f32);
        let (sigma1, sigma2) = (nx as f32 / 4.0, nx as f32 / 4.6);
        let gas_coupling = 0.8f32;

        let mut trajectory = Vec::new();
        let mut gas_row = vec![0f32; nx];
        for _step in 0..self.steps {
            // (1) Tabulate the gas density on the grid, one bulk row store
            // per x-row.
            for z in 0..nz {
                for y in 0..ny {
                    let (yf, zf) = (y as f32, z as f32);
                    for (x, g) in gas_row.iter_mut().enumerate() {
                        let xf = x as f32;
                        let r1 = (xf - p1.0).powi(2) + (yf - p1.1).powi(2) + (zf - p1.2).powi(2);
                        let r2 = (xf - p2.0).powi(2) + (yf - p2.1).powi(2) + (zf - p2.2).powi(2);
                        let s1 = 2.0 * sigma1 * sigma1;
                        let s2 = 2.0 * sigma2 * sigma2;
                        *g = rho0 * (1.0 + amp1 * (-r1 / s1).exp() + amp2 * (-r2 / s2).exp());
                    }
                    vm.compute(24 * nx as u64);
                    map.write_f32s(vm, GAS, idx_of(0, y, z), &gas_row);
                }
            }
            // (2) Deposit particle mass into the precise density grid.
            for p in [p1, p2] {
                let (x, y, z) = (
                    (p.0.round() as usize).min(nx - 1),
                    (p.1.round() as usize).min(ny - 1),
                    (p.2.round() as usize).min(nz - 1),
                );
                let rec = idx_of(x, y, z);
                let old = map.read_f32(vm, RHO, rec);
                map.write_f32(vm, RHO, rec, old + m);
                vm.compute(6);
            }
            // (3) Accelerations: exact mutual gravity + the gas-coupling
            // term sampled from the *stored* (possibly approximated) field.
            let grav = |a: (f32, f32, f32), b: (f32, f32, f32)| {
                let (dx, dy, dz) = (b.0 - a.0, b.1 - a.1, b.2 - a.2);
                let r2 = dx * dx + dy * dy + dz * dz + 1e-3;
                let inv_r3 = 1.0 / (r2 * r2.sqrt());
                (m * dx * inv_r3, m * dy * inv_r3, m * dz * inv_r3)
            };
            let mut gas_grad = |pos: (f32, f32, f32)| {
                let (xi, yi, zi) = (
                    (pos.0.round() as i64).clamp(1, nx as i64 - 2) as usize,
                    (pos.1.round() as i64).clamp(1, ny as i64 - 2) as usize,
                    (pos.2.round() as i64).clamp(1, nz as i64 - 2) as usize,
                );
                // The 6-point central-difference stencil is one gather;
                // `elem` folds the layout's field placement into the
                // element indices.
                let idx = [
                    map.elem(GAS, idx_of(xi + 1, yi, zi)),
                    map.elem(GAS, idx_of(xi - 1, yi, zi)),
                    map.elem(GAS, idx_of(xi, yi + 1, zi)),
                    map.elem(GAS, idx_of(xi, yi - 1, zi)),
                    map.elem(GAS, idx_of(xi, yi, zi + 1)),
                    map.elem(GAS, idx_of(xi, yi, zi - 1)),
                ];
                let mut g = [0f32; 6];
                vm.read_f32s_gather(map.base(), &idx, &mut g);
                let [gx1, gx0, gy1, gy0, gz1, gz0] = g;
                vm.compute(30);
                // Gas pushes bodies down-gradient, scaled by the coupling.
                (
                    -gas_coupling * (gx1 - gx0) / (2.0 * rho0),
                    -gas_coupling * (gy1 - gy0) / (2.0 * rho0),
                    -gas_coupling * (gz1 - gz0) / (2.0 * rho0),
                )
            };
            let g12 = grav(p1, p2);
            let g21 = grav(p2, p1);
            let d1 = gas_grad(p1);
            let d2 = gas_grad(p2);
            let a1 = (g12.0 + d1.0, g12.1 + d1.1, g12.2 + d1.2);
            let a2 = (g21.0 + d2.0, g21.1 + d2.1, g21.2 + d2.2);
            // (4) Semi-implicit Euler.
            v1 = (v1.0 + a1.0 * dt, v1.1 + a1.1 * dt, v1.2 + a1.2 * dt);
            v2 = (v2.0 + a2.0 * dt, v2.1 + a2.1 * dt, v2.2 + a2.2 * dt);
            p1 = (p1.0 + v1.0 * dt, p1.1 + v1.1 * dt, p1.2 + v1.2 * dt);
            p2 = (p2.0 + v2.0 * dt, p2.1 + v2.1 * dt, p2.2 + v2.2 * dt);
            trajectory.extend_from_slice(&[
                p1.0 as f64,
                p1.1 as f64,
                p1.2 as f64,
                p2.0 as f64,
                p2.1 as f64,
                p2.2 as f64,
            ]);
        }

        // Output: trajectories + a sample of the final field (the paper's
        // output is the physics data itself) — every 7th cell, one bulk
        // strided read whatever the layout.
        let mut out = trajectory;
        let mut sample = vec![0f32; cells.div_ceil(7)];
        map.read_f32s_every(vm, GAS, 0, 7, &mut sample);
        out.extend(sample.iter().map(|&v| v as f64));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn bodies_stay_bound_and_separated() {
        let w = Orbit::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        for step in 0..w.steps {
            let p1 = (out[6 * step], out[6 * step + 1], out[6 * step + 2]);
            let p2 = (out[6 * step + 3], out[6 * step + 4], out[6 * step + 5]);
            let d = ((p1.0 - p2.0).powi(2) + (p1.1 - p2.1).powi(2) + (p1.2 - p2.2).powi(2)).sqrt();
            assert!(d > 1.0, "bodies collapsed at step {step}: d={d}");
            assert!(d < 32.0, "bodies escaped at step {step}: d={d}");
            assert!((0.0..32.0).contains(&p1.0) && (0.0..32.0).contains(&p2.0));
        }
    }

    #[test]
    fn gas_field_is_positive_and_near_background() {
        let w = Orbit::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        let field = &out[6 * w.steps..];
        assert!(!field.is_empty());
        assert!(field.iter().all(|&p| (900.0..1400.0).contains(&p)), "density out of band");
    }

    #[test]
    fn orbital_motion_is_symmetric_about_com() {
        let w = Orbit::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        let last = w.steps - 1;
        let p1y = out[6 * last + 1];
        let p2y = out[6 * last + 4];
        let com_y = (p1y + p2y) / 2.0;
        assert!((com_y - 16.0).abs() < 1.0, "CoM drifted: {com_y}");
    }

    #[test]
    fn avr_error_is_tiny() {
        let w = Orbit::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        // Paper: <0.05 % for orbit under AVR; tolerate tiny-scale slack.
        assert!(m.output_error < 0.02, "orbit AVR error {}", m.output_error);
    }
}
