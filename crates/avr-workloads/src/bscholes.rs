//! `bscholes` — Black-Scholes option pricing (AxBench): predicts option
//! prices from historical parameters. Approximable data: the option
//! parameters ("Options"); output: the prices. The input has repeated
//! field values across entries (the property Doppelgänger exploits), and
//! the benchmark is compute-bound — the paper sees little impact from any
//! design here.

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use crate::terrain::hash01;
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};

/// The Black-Scholes benchmark.
pub struct BlackScholes {
    pub options: usize,
}

impl BlackScholes {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => BlackScholes { options: 4096 },
            // 7 arrays x 4 B x N ≈ 6 MB, matching the paper's footprint;
            // ~29 % of it approximable (spot + strike).
            BenchScale::Bench => BlackScholes { options: 220_000 },
        }
    }

    /// One record per option: the AxBench seven-field option structure.
    /// Only spot and strike are approximable, so conservative AoS prices
    /// the whole record precise (the granularity gap), while partitioned
    /// placement splits the record into an approximable {spot, strike}
    /// pair and a precise five-field remainder.
    fn schema() -> RecordSchema {
        RecordSchema::new(
            "option",
            vec![
                FieldSpec::approx_f32("spot"),
                FieldSpec::approx_f32("strike"),
                FieldSpec::precise_f32("expiry"),
                FieldSpec::precise_f32("rate"),
                FieldSpec::precise_f32("vol"),
                FieldSpec::precise_f32("call"),
                FieldSpec::precise_f32("put"),
            ],
        )
    }
}

/// Field indices into [`BlackScholes::schema`].
const SPOT: usize = 0;
const STRIKE: usize = 1;
const EXPIRY: usize = 2;
const RATE: usize = 3;
const VOL: usize = 4;
const CALL: usize = 5;
const PUT: usize = 6;

/// Standard normal CDF via the Abramowitz–Stegun polynomial (the usual
/// blackscholes-kernel approximation).
fn norm_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if x >= 0.0 {
        1.0 - pdf * poly
    } else {
        pdf * poly
    }
}

impl Workload for BlackScholes {
    fn name(&self) -> &'static str {
        "bscholes"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new("bscholes", &[self.options as u64], 0))
    }

    fn cost_hint(&self) -> u64 {
        // Seven input/output arrays streamed once, plus the kernel math.
        (self.options * 8) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos, LayoutKind::Partitioned]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let n = self.options;
        // The seven option fields (approximable spot/strike, precise
        // rest), placed by the layout.
        let map = Layout::new(Self::schema(), layout).instantiate(vm, n);

        // Inputs: clustered around a handful of underlyings, so many
        // entries share identical field values (AxBench-style data).
        // Chunked generation: one bulk store per field per chunk.
        const CHUNK: usize = 2048;
        let mut buf_s = vec![0f32; CHUNK];
        let mut buf_k = vec![0f32; CHUNK];
        let mut buf_t = vec![0f32; CHUNK];
        let mut buf_r = vec![0f32; CHUNK];
        let mut buf_v = vec![0f32; CHUNK];
        for start in (0..n).step_by(CHUNK) {
            let len = CHUNK.min(n - start);
            for o in 0..len {
                let i = start + o;
                // Underlying groups are block-aligned (256 entries = one
                // AVR memory block), entries within a group drift gently,
                // and a sprinkle of idiosyncratic quotes provides the
                // outliers that hold the ratio near the paper's 4.7:1.
                let underlying = 40.0 + 20.0 * ((i / 256) % 8) as f32;
                let mut s = underlying + (i % 256) as f32 * 0.002;
                if i % 16 == 7 {
                    s += 4.0 + 8.0 * hash01(i as u64, 0xB5);
                }
                buf_s[o] = s;
                buf_k[o] = underlying * 0.85 + 0.3 * ((i / 64) % 4) as f32;
                buf_t[o] = 0.25 + 0.25 * ((i / 256) % 4) as f32;
                buf_r[o] = 0.02 + 0.0 * hash01(i as u64, 3);
                buf_v[o] = 0.20 + 0.10 * ((i / 32) % 3) as f32;
            }
            vm.compute(24 * len as u64);
            map.write_f32s(vm, SPOT, start, &buf_s[..len]);
            map.write_f32s(vm, STRIKE, start, &buf_k[..len]);
            map.write_f32s(vm, EXPIRY, start, &buf_t[..len]);
            map.write_f32s(vm, RATE, start, &buf_r[..len]);
            map.write_f32s(vm, VOL, start, &buf_v[..len]);
        }

        // Price every option: stream the five input fields chunk-wise and
        // store each chunk's call/put prices with two bulk writes.
        let mut buf_c = vec![0f32; CHUNK];
        let mut buf_p = vec![0f32; CHUNK];
        for start in (0..n).step_by(CHUNK) {
            let len = CHUNK.min(n - start);
            map.read_f32s(vm, SPOT, start, &mut buf_s[..len]);
            map.read_f32s(vm, STRIKE, start, &mut buf_k[..len]);
            map.read_f32s(vm, EXPIRY, start, &mut buf_t[..len]);
            map.read_f32s(vm, RATE, start, &mut buf_r[..len]);
            map.read_f32s(vm, VOL, start, &mut buf_v[..len]);
            for o in 0..len {
                let s = buf_s[o] as f64;
                let k = buf_k[o] as f64;
                let t = buf_t[o] as f64;
                let r = buf_r[o] as f64;
                let v = buf_v[o] as f64;
                let sqrt_t = t.sqrt();
                let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * sqrt_t);
                let d2 = d1 - v * sqrt_t;
                let c = s * norm_cdf(d1) - k * (-r * t).exp() * norm_cdf(d2);
                let p = k * (-r * t).exp() * norm_cdf(-d2) - s * norm_cdf(-d1);
                buf_c[o] = c as f32;
                buf_p[o] = p as f32;
            }
            // The kernel costs ~200 scalar ops (ln, exp, sqrt, divisions,
            // two CDF polynomials): this is what makes it compute-bound.
            vm.compute(420 * len as u64);
            map.write_f32s(vm, CALL, start, &buf_c[..len]);
            map.write_f32s(vm, PUT, start, &buf_p[..len]);
        }

        // Output: the predicted prices (every 16th option).
        let samples = n.div_ceil(16);
        let mut out_c = vec![0f32; samples];
        let mut out_p = vec![0f32; samples];
        map.read_f32s_every(vm, CALL, 0, 16, &mut out_c);
        map.read_f32s_every(vm, PUT, 0, 16, &mut out_p);
        let mut out = Vec::with_capacity(2 * samples);
        for (c, p) in out_c.iter().zip(&out_p) {
            out.push(*c as f64);
            out.push(*p as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn norm_cdf_sanity() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(norm_cdf(3.0) > 0.998);
        assert!(norm_cdf(-3.0) < 0.002);
        // Symmetry.
        assert!((norm_cdf(1.2) + norm_cdf(-1.2) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn prices_respect_no_arbitrage_bounds() {
        let w = BlackScholes::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        // Calls and puts are nonnegative and bounded by the underlying /
        // strike scale.
        for pair in out.chunks(2) {
            assert!(pair[0] >= -1e-6, "negative call {}", pair[0]);
            assert!(pair[1] >= -1e-6, "negative put {}", pair[1]);
            assert!(pair[0] < 200.0 && pair[1] < 200.0);
        }
    }

    #[test]
    fn put_call_parity_holds_on_exact_run() {
        // C - P = S - K e^{-rT}; spot-check one configuration.
        let s = 60.0f64;
        let k = 57.0f64;
        let (t, r, v) = (0.5f64, 0.02f64, 0.25f64);
        let sqrt_t = t.sqrt();
        let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * sqrt_t);
        let d2 = d1 - v * sqrt_t;
        let c = s * norm_cdf(d1) - k * (-r * t).exp() * norm_cdf(d2);
        let p = k * (-r * t).exp() * norm_cdf(-d2) - s * norm_cdf(-d1);
        assert!((c - p - (s - k * (-r * t).exp())).abs() < 1e-6);
    }

    #[test]
    fn avr_error_is_small() {
        let w = BlackScholes::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.05, "bscholes AVR error {}", m.output_error);
    }
}
