//! `heat` — 2-D thermodynamics (Quinn): Jacobi iteration propagating heat
//! over a grid. Approximable data: the two temperature grids (the paper
//! approximates "Temps"; output is also temperatures). The temperature
//! field is spatially smooth, which is why the paper sees a 10.5:1
//! compression ratio and an ~8× footprint reduction.
//!
//! The initial condition is `BenchScale`-aware (the sobel/fft treatment,
//! ROADMAP PR-3): a 1 KB block is 256 consecutive f32 values regardless of
//! grid size, so the 96-px tiny grid packs ~2.7 *rows* per block where the
//! 928-px bench grid packs a third of one row — the tiny field's per-pixel
//! gradients are ~10× steeper against the same fixed block granularity,
//! and the hard `x == 0` hot-wall jump (500 vs. ~20) lands inside *every*
//! tiny block instead of one block in four. Both together made 100 % of
//! tiny blocks outlier-incompressible, so smoke runs never exercised the
//! compressor path. The tiny scale therefore softens the per-pixel
//! profile: gentler spot amplitudes and an exponentially tapered west
//! wall (same 500-peak, decay length ≫ the 16-value anchor stride). The
//! bench-scale field is bit-identical to what it always was (`wall_taper
//! = 0` takes the exact hard-wall branch).

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};
use avr_types::PhysAddr;

/// Cool-plate base temperature.
const PLATE: f32 = 20.0;
/// West-wall peak temperature.
const WALL: f32 = 500.0;

/// The heat-diffusion benchmark.
pub struct Heat {
    pub width: usize,
    pub height: usize,
    pub iters: usize,
    /// Gaussian hot-spot amplitudes (scale-aware; see module docs).
    pub spot_amp: (f32, f32),
    /// West-wall profile: `0` = the paper-style hard `x == 0` wall at
    /// `WALL` (bench); `> 0` = exponential taper with this pixel decay
    /// length (tiny — smooth at the fixed 1 KB block granularity).
    pub wall_taper: f32,
}

impl Heat {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            // Spot amplitudes ×0.15 and a 48-px wall taper land tiny
            // blocks *astride* the outlier threshold (diag_compressibility:
            // a healthy compressible fraction with real outliers left), so
            // smoke runs exercise compression, outlier packing and the
            // failure path alike.
            BenchScale::Tiny => {
                Heat { width: 96, height: 96, iters: 4, spot_amp: (67.5, 45.0), wall_taper: 48.0 }
            }
            // ~6.8 MB of approximable grids against the 1 MB per-core LLC
            // share: footprint >> LLC, like the paper's 8.2 MB/core.
            BenchScale::Bench => Heat {
                width: 928,
                height: 928,
                iters: 4,
                spot_amp: (450.0, 300.0),
                wall_taper: 0.0,
            },
        }
    }

    #[inline]
    fn addr(base: PhysAddr, idx: usize) -> PhysAddr {
        PhysAddr(base.0 + 4 * idx as u64)
    }

    /// One record per grid cell: the two temperature planes. Both are
    /// approximable, so every layout keeps the field fully compressible;
    /// what AoS changes is that each block interleaves this-iteration and
    /// last-iteration values word by word.
    fn schema() -> RecordSchema {
        RecordSchema::new("cell", vec![FieldSpec::approx_f32("a"), FieldSpec::approx_f32("b")])
    }
}

/// Field indices into [`Heat::schema`].
const A: usize = 0;
const B: usize = 1;

impl Workload for Heat {
    fn name(&self) -> &'static str {
        "heat"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        // Pure function of every field: grid shape, trip count, and the
        // scale-aware initial-condition knobs.
        Some(GoldenKey::new(
            "heat",
            &[
                self.width as u64,
                self.height as u64,
                self.iters as u64,
                u64::from(self.spot_amp.0.to_bits()),
                u64::from(self.spot_amp.1.to_bits()),
                u64::from(self.wall_taper.to_bits()),
            ],
            0,
        ))
    }

    fn cost_hint(&self) -> u64 {
        // Five stencil reads + one write per cell per Jacobi iteration.
        (self.width * self.height * self.iters * 6) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let (w, h) = (self.width, self.height);
        let n = w * h;
        // Approximable: both temperature grids, placed by the layout.
        let map = Layout::new(Self::schema(), layout).instantiate(vm, n);
        // Precise: per-row heat totals used as a convergence monitor.
        let rowsum = vm.malloc(4 * h).base;

        // Initial condition: two Gaussian hot spots on a cool plate, plus a
        // hot west wall — smooth, like a physical temperature field. Rows
        // are generated into a buffer and stored with one bulk write each.
        let mut row = vec![0f32; w];
        for y in 0..h {
            let yf = y as f32;
            for (x, t) in row.iter_mut().enumerate() {
                let xf = x as f32;
                let spot = |cx: f32, cy: f32, s: f32, amp: f32| {
                    let d2 = (xf - cx).powi(2) + (yf - cy).powi(2);
                    amp * (-d2 / (2.0 * s * s)).exp()
                };
                // Spot *widths* scale with the grid; the amplitudes and
                // the wall profile are the scale-aware knobs (see module
                // docs — bench takes the exact pre-knob computation).
                let mut v = PLATE;
                v += spot(w as f32 * 0.3, h as f32 * 0.4, w as f32 * 0.3, self.spot_amp.0);
                v += spot(w as f32 * 0.7, h as f32 * 0.65, w as f32 * 0.35, self.spot_amp.1);
                if self.wall_taper > 0.0 {
                    v += (WALL - PLATE) * (-xf / self.wall_taper).exp();
                } else if x == 0 {
                    v = WALL;
                }
                *t = v;
            }
            vm.compute(12 * w as u64);
            map.write_f32s(vm, A, y * w, &row);
        }

        // Jacobi sweeps (fixed boundaries): each destination row reads the
        // row above, the row below and its own row as three contiguous
        // slices — the 5-point stencil expressed at cacheline granularity.
        let mut up = vec![0f32; w];
        let mut cur = vec![0f32; w];
        let mut down = vec![0f32; w];
        let mut next = vec![0f32; w - 2];
        let mut col = vec![0f32; h];
        let (mut src, mut dst) = (A, B);
        for _ in 0..self.iters {
            for y in 1..h - 1 {
                map.read_f32s(vm, src, (y - 1) * w, &mut up);
                map.read_f32s(vm, src, (y + 1) * w, &mut down);
                map.read_f32s(vm, src, y * w, &mut cur);
                let mut acc = 0.0f32;
                for x in 1..w - 1 {
                    let t = 0.25 * (up[x] + down[x] + cur[x - 1] + cur[x + 1]);
                    next[x - 1] = t;
                    acc += t;
                }
                vm.compute(6 * (w - 2) as u64 + 2);
                map.write_f32s(vm, dst, y * w + 1, &next);
                vm.write_f32(Self::addr(rowsum, y), acc);
            }
            // Copy the fixed boundary rows/cols into dst so reads next
            // iteration see them. The column walks step one grid row per
            // element (`step = w`), whatever the physical stride.
            map.read_f32s(vm, src, 0, &mut cur);
            map.write_f32s(vm, dst, 0, &cur);
            map.read_f32s(vm, src, (h - 1) * w, &mut cur);
            map.write_f32s(vm, dst, (h - 1) * w, &cur);
            map.read_f32s_every(vm, src, 0, w, &mut col);
            map.write_f32s_every(vm, dst, 0, w, &col);
            map.read_f32s_every(vm, src, w - 1, w, &mut col);
            map.write_f32s_every(vm, dst, w - 1, w, &col);
            std::mem::swap(&mut src, &mut dst);
        }

        // Output: the final temperature field.
        let mut field = vec![0f32; n];
        map.read_f32s(vm, src, 0, &mut field);
        field.iter().map(|&t| t as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn exact_run_is_deterministic_and_physical() {
        let w = Heat::at_scale(BenchScale::Tiny);
        let mut vm1 = ExactVm::new();
        let o1 = w.run(&mut vm1);
        let mut vm2 = ExactVm::new();
        let o2 = w.run(&mut vm2);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 96 * 96);
        // Temperatures stay within [cool plate, west wall].
        assert!(o1.iter().all(|&t| (19.0..=680.0).contains(&t)), "temps out of range");
        // Diffusion keeps interior warmer than the initial cool plate near
        // the hot wall.
        assert!(o1[48 * 96 + 1] > 100.0);
    }

    #[test]
    fn diffusion_smooths_the_field() {
        let w = Heat::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let out = w.run(&mut vm);
        // Total variation along a row is modest after smoothing.
        let row: Vec<f64> = out[48 * 96..49 * 96].to_vec();
        let tv: f64 = row.windows(2).map(|p| (p[1] - p[0]).abs()).sum();
        let range = row.iter().cloned().fold(f64::MIN, f64::max)
            - row.iter().cloned().fold(f64::MAX, f64::min);
        assert!(tv < 4.0 * range + 1.0, "field too jagged: tv={tv} range={range}");
    }

    #[test]
    fn avr_error_is_small_on_tiny_run() {
        let w = Heat::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.05, "heat AVR error {}", m.output_error);
        assert!(m.cycles > 0);
    }
}
