//! Shared synthetic-input generators.
//!
//! Two of the paper's inputs are external artifacts we cannot ship: the car
//! silhouette used as the lattice obstacle and the Swedish topological
//! survey used as the k-means input. Both are replaced by procedural
//! equivalents with the same role (DESIGN.md §4): a rasterized car-shaped
//! mask and a midpoint-displacement fractal elevation profile with
//! realistic spatial correlation.

/// Minimal deterministic PRNG (splitmix64) so the generators need no
/// external RNG crate; sequences are stable across platforms and releases.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f32 in [lo, hi).
    fn gen_range(&mut self, range: std::ops::Range<f32>) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// 1-D fractal terrain via midpoint displacement.
///
/// `roughness` in (0,1): higher = rougher (H = 1 - roughness). The result
/// is deterministic in `seed` and sized to exactly `n` samples.
pub fn fractal_terrain(n: usize, base: f32, amplitude: f32, roughness: f32, seed: u64) -> Vec<f32> {
    assert!(n >= 2);
    let mut rng = SplitMix64(seed);
    // Work on a power-of-two + 1 grid, then truncate.
    let size = (n - 1).next_power_of_two() + 1;
    let mut h = vec![0f32; size];
    h[0] = base + rng.gen_range(-amplitude..amplitude);
    h[size - 1] = base + rng.gen_range(-amplitude..amplitude);
    let mut step = size - 1;
    let mut amp = amplitude;
    while step > 1 {
        let half = step / 2;
        let mut i = half;
        while i < size {
            let mid = (h[i - half] + h[(i + half).min(size - 1)]) * 0.5;
            h[i] = mid + rng.gen_range(-amp..amp);
            i += step;
        }
        step = half;
        amp *= 0.5f32.powf(1.0 - roughness);
    }
    h.truncate(n);
    h
}

/// A 2-D obstacle mask shaped like a car silhouette (side view): a body
/// box, a cabin box and two wheels, placed in the left third of the domain.
/// Returns row-major booleans (`true` = solid).
pub fn car_silhouette(width: usize, height: usize) -> Vec<bool> {
    let mut mask = vec![false; width * height];
    let w = width as f32;
    let h = height as f32;
    // Geometry in fractional coordinates.
    let body = (0.10 * w, 0.40 * h, 0.38 * w, 0.62 * h); // x0,y0,x1,y1
    let cabin = (0.17 * w, 0.28 * h, 0.30 * w, 0.42 * h);
    let wheels = [(0.16 * w, 0.66 * h), (0.33 * w, 0.66 * h)];
    let wheel_r = 0.06 * h.min(w);
    for y in 0..height {
        for x in 0..width {
            let (xf, yf) = (x as f32, y as f32);
            let in_box = |b: (f32, f32, f32, f32)| xf >= b.0 && xf <= b.2 && yf >= b.1 && yf <= b.3;
            let in_wheel = wheels
                .iter()
                .any(|(cx, cy)| (xf - cx).powi(2) + (yf - cy).powi(2) <= wheel_r * wheel_r);
            if in_box(body) || in_box(cabin) || in_wheel {
                mask[y * width + x] = true;
            }
        }
    }
    mask
}

/// Deterministic pseudo-random f32 in [0,1) from an index (for workloads
/// that need cheap per-element randomness without an RNG object).
#[inline]
pub fn hash01(i: u64, salt: u64) -> f32 {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x >> 40) as f32 / (1u64 << 24) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terrain_is_deterministic_and_sized() {
        let a = fractal_terrain(1000, 350.0, 120.0, 0.6, 42);
        let b = fractal_terrain(1000, 350.0, 120.0, 0.6, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn terrain_respects_amplitude_scale() {
        let t = fractal_terrain(4096, 500.0, 100.0, 0.5, 7);
        let (min, max) = t.iter().fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!(min > 0.0, "elevations stay positive: {min}");
        assert!(max - min > 50.0, "terrain has relief: {}", max - min);
        assert!(max - min < 1000.0, "relief bounded: {}", max - min);
    }

    #[test]
    fn rougher_terrain_has_more_local_variation() {
        let smooth = fractal_terrain(4096, 0.0, 100.0, 0.2, 9);
        let rough = fractal_terrain(4096, 0.0, 100.0, 0.9, 9);
        let tv = |t: &[f32]| -> f32 { t.windows(2).map(|w| (w[1] - w[0]).abs()).sum() };
        assert!(tv(&rough) > 2.0 * tv(&smooth));
    }

    #[test]
    fn car_mask_is_solid_in_the_left_third() {
        let (w, h) = (128, 64);
        let mask = car_silhouette(w, h);
        let solid = mask.iter().filter(|&&s| s).count();
        assert!(solid > 0);
        // Everything solid lies in the left half.
        for y in 0..h {
            for x in w / 2..w {
                assert!(!mask[y * w + x], "solid at ({x},{y})");
            }
        }
        // Body center is solid.
        assert!(mask[(h / 2) * w + w / 5]);
    }

    #[test]
    fn hash01_is_uniform_ish() {
        let n = 10_000;
        let mean: f32 = (0..n).map(|i| hash01(i, 1)).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
