//! Memoization of the design-invariant **golden runs**.
//!
//! Every measured cell of a (workload × design × backend) grid needs the
//! workload's *exact* output — the [`avr_core::ExactVm`] "golden" run that
//! Table 3's mean-relative-error metric compares against. That run is a
//! pure function of the workload instance: it does not depend on the
//! design, the device error-model backend, or the thread the cell happens
//! to execute on. Recomputing it per cell made the goldens a dominant
//! share of `bench_e2e` wall time once the timed engine got fast
//! (ROADMAP PR-5 note): a five-design grid paid the same exact run five
//! times, and every backend axis paid it again.
//!
//! [`golden_run`] computes each golden **once per process** and shares it
//! across designs, backends and pool widths. The cache key is
//! [`GoldenKey`]: the workload's name, a fingerprint of its
//! size-determining parameters (which is what distinguishes the `tiny`
//! from the `bench` scale — and also keeps user-constructed custom sizes
//! apart), and a seed slot for stochastic workloads. Workloads opt in by
//! implementing [`crate::Workload::golden_key`]; the default (`None`)
//! keeps third-party workloads on the always-recompute path, so a
//! workload whose `run` is *not* a pure function of its fields can never
//! be served a stale output.
//!
//! # Memoization contract
//!
//! * The cached output is **bit-identical** to a fresh [`ExactVm`] run
//!   (`tests/golden_cache.rs` pins memoized vs. recomputed per workload,
//!   across designs, backends and thread widths). This holds because
//!   `ExactVm` is deterministic and `run` draws no ambient state.
//! * Under concurrency each key is computed **exactly once**: racing pool
//!   workers block on the per-key [`OnceLock`] instead of duplicating the
//!   run (the [`stats`] counters make this assertable).
//! * `AVR_NO_GOLDEN_CACHE=1` (checked once per process) disables the
//!   cache for A/B timing; [`clear`] empties it for cold-cache sections
//!   and tests.

use crate::runner::Workload;
use avr_core::ExactVm;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identity of one golden run: `(workload, parameter fingerprint, seed)`.
///
/// The fingerprint captures the *scale* — every field that changes the
/// simulated input or trip counts must be folded in, or two instances
/// would collide on one cached output. [`GoldenKey::new`] hashes the
/// provided parameter words with splitmix64 so callers just list their
/// size-determining fields (floats via `to_bits`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GoldenKey {
    /// The workload's `name()`.
    pub workload: &'static str,
    /// Splitmix64 fold of the size-determining parameters.
    pub params: u64,
    /// Seed slot for stochastic workloads (the deterministic nine use 0).
    pub seed: u64,
}

impl GoldenKey {
    /// Build a key from the workload name, its size-determining parameter
    /// words, and a seed.
    pub fn new(workload: &'static str, params: &[u64], seed: u64) -> Self {
        let mut h = 0x243F_6A88_85A3_08D3u64; // π digits: an arbitrary non-zero start
        for &p in params {
            // splitmix64 round over the running fold — cheap, stable, and
            // collision-resistant far beyond a nine-workload grid.
            let mut z = h ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h = z ^ (z >> 31);
        }
        GoldenKey { workload, params: h, seed }
    }
}

/// Cache hit/compute counters (process-global, for tests and bench logs).
pub mod stats {
    use super::*;

    pub(super) static HITS: AtomicU64 = AtomicU64::new(0);
    pub(super) static COMPUTES: AtomicU64 = AtomicU64::new(0);

    /// Lookups served from an already-computed entry.
    pub fn hits() -> u64 {
        HITS.load(Ordering::Relaxed)
    }

    /// Golden runs actually executed through the cache (equals the number
    /// of distinct keys seen since the last [`super::clear`], even under
    /// concurrent lookups).
    pub fn computes() -> u64 {
        COMPUTES.load(Ordering::Relaxed)
    }
}

type Entry = Arc<OnceLock<Arc<Vec<f64>>>>;

fn map() -> &'static Mutex<HashMap<GoldenKey, Entry>> {
    static MAP: OnceLock<Mutex<HashMap<GoldenKey, Entry>>> = OnceLock::new();
    MAP.get_or_init(Mutex::default)
}

fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("AVR_NO_GOLDEN_CACHE").map_or(true, |v| v != "1"))
}

/// Empty the cache (cold-cache timing sections, test isolation). Counters
/// in [`stats`] keep accumulating; diff around a region instead.
pub fn clear() {
    map().lock().unwrap().clear();
}

/// The workload's golden (exact-execution) output — memoized across
/// designs, backends and threads when the workload provides a
/// [`crate::Workload::golden_key`], recomputed otherwise. See the module
/// docs for the contract.
pub fn golden_run(workload: &dyn Workload) -> Arc<Vec<f64>> {
    let compute = || {
        let mut exact = ExactVm::new();
        Arc::new(workload.run(&mut exact))
    };
    let Some(key) = workload.golden_key().filter(|_| enabled()) else {
        return compute();
    };
    // Entry resolution holds the map lock only for the HashMap probe; the
    // golden run itself executes under the per-key once-cell, so two
    // workers racing on *different* keys compute in parallel and two
    // racing on the *same* key compute it once (the loser blocks — it has
    // nothing else to do before its timed run needs this output anyway).
    let entry: Entry = {
        let mut m = map().lock().unwrap();
        Arc::clone(m.entry(key).or_default())
    };
    let mut computed = false;
    let out = entry.get_or_init(|| {
        computed = true;
        stats::COMPUTES.fetch_add(1, Ordering::Relaxed);
        compute()
    });
    if !computed {
        stats::HITS.fetch_add(1, Ordering::Relaxed);
    }
    Arc::clone(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_distinguishes_params_and_seed() {
        let a = GoldenKey::new("w", &[96, 96, 4], 0);
        let b = GoldenKey::new("w", &[96, 96, 5], 0);
        let c = GoldenKey::new("w", &[96, 96, 4], 1);
        assert_ne!(a, b, "param change must change the key");
        assert_ne!(a, c, "seed change must change the key");
        assert_eq!(a, GoldenKey::new("w", &[96, 96, 4], 0), "keys are pure");
    }

    #[test]
    fn order_of_params_matters() {
        // (width=2, height=3) and (width=3, height=2) are different runs.
        let a = GoldenKey::new("w", &[2, 3], 0);
        let b = GoldenKey::new("w", &[3, 2], 0);
        assert_ne!(a.params, b.params);
    }
}
