//! `particles` — a 2-D particle/cell-list step (molecular-dynamics style),
//! added with the layout axis as the suite's genuinely mixed-criticality
//! record: each particle carries four approximable f32 fields (position,
//! velocity) *and* a precise i32 cell index in the same logical record.
//!
//! This is the workload the granularity gap is about. Under SoA the cell
//! indices live in their own precise region and approximation is free to
//! work on the float planes. Under AoS the record is interleaved at word
//! granularity, and the schema's **aggressive** placement policy keeps the
//! region approximable anyway — marking the index words critical so the
//! *device* backends protect them, while the AVR codec (which only sees
//! 1 KB blocks) may still smear them. The kernel therefore treats every
//! cell index read from memory as untrusted and clamps it before use:
//! corruption degrades the output, it must never crash the run.

use crate::golden::GoldenKey;
use crate::runner::{BenchScale, Workload};
use crate::terrain::hash01;
use avr_core::{FieldSpec, Layout, LayoutKind, RecordSchema, Vm};

/// Output stripes (rows of cells) for counts and mean speeds.
const STRIPES: usize = 16;

/// The particle-in-cell benchmark.
pub struct Particles {
    /// Particle count.
    pub n: usize,
    /// Cell grid side (the domain is `side × side` unit cells).
    pub side: usize,
    pub steps: usize,
}

impl Particles {
    pub fn at_scale(scale: BenchScale) -> Self {
        match scale {
            BenchScale::Tiny => Particles { n: 8192, side: 16, steps: 4 },
            // 5 words x 256 K particles ≈ 5 MB of records (80 %
            // approximable under SoA), the suite's footprint shape.
            BenchScale::Bench => Particles { n: 1 << 18, side: 64, steps: 6 },
        }
    }

    /// The mixed-criticality record. `aggressive()` is the point: under
    /// AoS the interleaved region *stays* approximable, with the index
    /// words marked critical for the device error models.
    fn schema() -> RecordSchema {
        RecordSchema::new(
            "particle",
            vec![
                FieldSpec::approx_f32("x"),
                FieldSpec::approx_f32("y"),
                FieldSpec::approx_f32("vx"),
                FieldSpec::approx_f32("vy"),
                FieldSpec::precise_i32("ci"),
            ],
        )
        .aggressive()
    }
}

/// Field indices into [`Particles::schema`].
const X: usize = 0;
const Y: usize = 1;
const VX: usize = 2;
const VY: usize = 3;
const CI: usize = 4;

impl Workload for Particles {
    fn name(&self) -> &'static str {
        "particles"
    }

    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new("particles", &[self.n as u64, self.side as u64, self.steps as u64], 0))
    }

    fn cost_hint(&self) -> u64 {
        // Five record words streamed + the force/update math per particle
        // per step.
        (self.n * self.steps * 8) as u64
    }

    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos, LayoutKind::Partitioned]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let n = self.n;
        let side = self.side;
        let cells = side * side;
        let sidef = side as f32;

        let map = Layout::new(Self::schema(), layout).instantiate(vm, n);
        // Precise: the per-cell occupancy histogram, rebuilt every step.
        let hist = vm.malloc(4 * cells).base;

        // Init: particles scattered over the unit-cell domain with a mild
        // deterministic velocity field. Chunked bulk stores per field.
        const CHUNK: usize = 1024;
        let mut bx = vec![0f32; CHUNK];
        let mut by = vec![0f32; CHUNK];
        let mut bvx = vec![0f32; CHUNK];
        let mut bvy = vec![0f32; CHUNK];
        let mut bci = vec![0u32; CHUNK];
        for start in (0..n).step_by(CHUNK) {
            let len = CHUNK.min(n - start);
            for o in 0..len {
                let i = (start + o) as u64;
                let x = hash01(i, 0xA11) * sidef;
                let y = hash01(i, 0xB22) * sidef;
                bx[o] = x;
                by[o] = y;
                bvx[o] = 0.4 * (hash01(i, 0xC33) - 0.5);
                bvy[o] = 0.4 * (hash01(i, 0xD44) - 0.5);
                bci[o] = (y as usize).min(side - 1) as u32 * side as u32
                    + (x as usize).min(side - 1) as u32;
            }
            vm.compute(20 * len as u64);
            map.write_f32s(vm, X, start, &bx[..len]);
            map.write_f32s(vm, Y, start, &by[..len]);
            map.write_f32s(vm, VX, start, &bvx[..len]);
            map.write_f32s(vm, VY, start, &bvy[..len]);
            map.write_u32s(vm, CI, start, &bci[..len]);
        }

        let dt = 0.1f32;
        let spring = 0.8f32;
        let swirl = 0.15f32;
        let center = sidef / 2.0;
        let mut counts = vec![0u32; cells];
        let mut speed_sum = [0f64; STRIPES];
        let mut stripe_n = [0u64; STRIPES];
        for _step in 0..self.steps {
            counts.fill(0);
            speed_sum.fill(0.0);
            stripe_n.fill(0);
            for start in (0..n).step_by(CHUNK) {
                let len = CHUNK.min(n - start);
                map.read_f32s(vm, X, start, &mut bx[..len]);
                map.read_f32s(vm, Y, start, &mut by[..len]);
                map.read_f32s(vm, VX, start, &mut bvx[..len]);
                map.read_f32s(vm, VY, start, &mut bvy[..len]);
                map.read_u32s(vm, CI, start, &mut bci[..len]);
                for o in 0..len {
                    // The stored index is untrusted (an aggressive AoS
                    // block may have smeared it): clamp before indexing.
                    let ci = (bci[o] as usize).min(cells - 1);
                    let (cx, cy) = ((ci % side) as f32 + 0.5, (ci / side) as f32 + 0.5);
                    // Spring toward the *stored* cell center + a global
                    // swirl: corrupted positions/indices bend trajectories
                    // but everything stays bounded.
                    let ax = spring * (cx - bx[o]) + swirl * (center - by[o]);
                    let ay = spring * (cy - by[o]) - swirl * (center - bx[o]);
                    bvx[o] += ax * dt;
                    bvy[o] += ay * dt;
                    bx[o] = (bx[o] + bvx[o] * dt).rem_euclid(sidef);
                    by[o] = (by[o] + bvy[o] * dt).rem_euclid(sidef);
                    // Re-bin.
                    let nci =
                        (by[o] as usize).min(side - 1) * side + (bx[o] as usize).min(side - 1);
                    bci[o] = nci as u32;
                    counts[nci] += 1;
                    let stripe = (by[o] / sidef * STRIPES as f32) as usize % STRIPES;
                    let sp = (bvx[o] * bvx[o] + bvy[o] * bvy[o]).sqrt();
                    speed_sum[stripe] += sp as f64;
                    stripe_n[stripe] += 1;
                }
                vm.compute(40 * len as u64);
                map.write_f32s(vm, X, start, &bx[..len]);
                map.write_f32s(vm, Y, start, &by[..len]);
                map.write_f32s(vm, VX, start, &bvx[..len]);
                map.write_f32s(vm, VY, start, &bvy[..len]);
                map.write_u32s(vm, CI, start, &bci[..len]);
            }
            // Commit the occupancy histogram (precise output surface).
            vm.write_u32s(hist, &counts);
        }

        // Output: per-stripe occupancy + per-stripe mean speed from the
        // final step, with the histogram re-read from (precise) memory.
        let mut final_counts = vec![0u32; cells];
        vm.read_u32s(hist, &mut final_counts);
        vm.compute(2 * cells as u64);
        let rows_per_stripe = side.div_ceil(STRIPES).max(1);
        let mut out = vec![0f64; STRIPES];
        for (ci, &c) in final_counts.iter().enumerate() {
            let stripe = ((ci / side) / rows_per_stripe).min(STRIPES - 1);
            out[stripe] += c as f64;
        }
        out.extend((0..STRIPES).map(|s| speed_sum[s] / stripe_n[s].max(1) as f64));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_on_design;
    use avr_core::{DesignKind, ExactVm, SystemConfig};

    #[test]
    fn exact_run_is_deterministic_and_conserves_particles() {
        let w = Particles::at_scale(BenchScale::Tiny);
        let mut vm1 = ExactVm::new();
        let o1 = w.run(&mut vm1);
        let mut vm2 = ExactVm::new();
        let o2 = w.run(&mut vm2);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 2 * STRIPES);
        // Every particle lands in exactly one stripe.
        let total: f64 = o1[..STRIPES].iter().sum();
        assert_eq!(total, w.n as f64);
        // Speeds are positive and bounded (the spring/swirl field cannot
        // accelerate without bound at dt = 0.1).
        assert!(o1[STRIPES..].iter().all(|&s| s > 0.0 && s < 10.0));
    }

    #[test]
    fn every_layout_is_bit_identical_on_the_exact_vm() {
        // The layout contract: placement must not change functional
        // behavior when nothing corrupts memory.
        let w = Particles::at_scale(BenchScale::Tiny);
        let mut vm = ExactVm::new();
        let golden = w.run(&mut vm);
        for layout in [LayoutKind::Aos, LayoutKind::Partitioned] {
            let mut vm = ExactVm::new();
            assert_eq!(w.run_in(&mut vm, layout), golden, "{layout:?} diverged");
        }
    }

    #[test]
    fn corrupted_cell_indices_are_clamped_not_fatal() {
        // Poison the stored indices mid-schema-contract: a run whose CI
        // words decode to garbage must still complete with a conserved
        // particle count. We emulate this by checking the clamp in
        // isolation — indices ≥ cells map to the last cell.
        let w = Particles::at_scale(BenchScale::Tiny);
        let cells = w.side * w.side;
        for raw in [0u32, cells as u32 - 1, cells as u32, u32::MAX] {
            let ci = (raw as usize).min(cells - 1);
            assert!(ci < cells);
        }
    }

    #[test]
    fn avr_error_is_moderate_on_soa() {
        let w = Particles::at_scale(BenchScale::Tiny);
        // Codec-only band: pin the exact device so an AVR_BACKEND
        // override can't smear it (fault behavior is covered by
        // tests/fault_injection.rs).
        let cfg = SystemConfig::tiny().with_backend(avr_core::BackendKind::Exact);
        let m = run_on_design(&w, &cfg, DesignKind::Avr);
        assert!(m.output_error < 0.15, "particles AVR error {}", m.output_error);
        assert!(m.cycles > 0);
    }
}
