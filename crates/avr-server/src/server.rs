//! The sweep server: a TCP accept loop, per-connection sessions, and one
//! engine thread that feeds submitted batches into a [`SimPool`].
//!
//! # Determinism contract
//!
//! A submitted batch produces results **bit-identical to running the same
//! cells serially** with `run_on_design_in` — at any worker width, any
//! submission interleaving, and across client disconnects. The contract
//! holds because
//!
//! * each cell is an independent deterministic simulation whose config is
//!   resolved from the cell spec alone ([`CellSpec::config`] pins the
//!   backend, so the server's own environment never leaks into results);
//! * the pool writes each cell's result into its own preallocated slot, so
//!   scheduling affects only *when* a cell finishes, never *what* it
//!   computes;
//! * result lines are rendered once, server-side, by the shared
//!   [`crate::proto`] encoder and stored per cell — every subscriber
//!   (including one that reconnects mid-batch) replays the same bytes.
//!
//! Batches run one at a time, in submission order, on the full pool —
//! cells within a batch are claimed heaviest-first by
//! [`Workload::cost_hint`], with the first cell of each distinct
//! (workload, scale) boosted so memoized golden runs compute early
//! (mirroring `run_grid_layouts`).

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

use avr_core::pool::env_threads;
use avr_core::{PoolControl, SimPool};
use avr_types::{BenchScale, CellSpec, SystemConfig};
use avr_workloads::runner::GOLDEN_CELL_BOOST;
use avr_workloads::{golden, run_on_design_in, workload_by_name, workload_names, Workload};

use crate::json::Json;
use crate::proto::{self, Request};

/// The scale-default base config a cell's overrides apply to — the same
/// mapping the bench harness uses, so a wire cell with no overrides is the
/// exact config of the corresponding direct run.
pub fn base_config(scale: BenchScale) -> SystemConfig {
    match scale {
        BenchScale::Tiny => SystemConfig::tiny(),
        BenchScale::Bench => SystemConfig::per_core_scaled(),
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    Accepting,
    Draining,
    Shutdown,
}

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Accepting => "accepting",
            Phase::Draining => "draining",
            Phase::Shutdown => "shutdown",
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum JobPhase {
    Queued,
    Running,
    Done { completed: usize, cancelled: usize },
}

impl JobPhase {
    fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done { .. } => "done",
        }
    }
}

/// Everything the server remembers about one submitted batch. Results are
/// pre-rendered wire lines, stored per cell under `inner`'s lock — the
/// same lock that registers subscribers, so a replay-then-subscribe can
/// neither miss nor duplicate an event.
struct JobState {
    id: u64,
    tag: Option<String>,
    specs: Vec<CellSpec>,
    ctl: PoolControl,
    inner: Mutex<JobInner>,
}

struct JobInner {
    phase: JobPhase,
    results: Vec<Option<Arc<String>>>,
    done_line: Option<Arc<String>>,
    subs: Vec<mpsc::Sender<Arc<String>>>,
}

impl JobState {
    fn new(id: u64, tag: Option<String>, specs: Vec<CellSpec>) -> Self {
        let cells = specs.len();
        JobState {
            id,
            tag,
            specs,
            ctl: PoolControl::new(),
            inner: Mutex::new(JobInner {
                phase: JobPhase::Queued,
                results: vec![None; cells],
                done_line: None,
                subs: Vec::new(),
            }),
        }
    }

    /// Store a finished cell's wire line and fan it out to live
    /// subscribers; dead ones (writer gone) are pruned.
    fn publish(&self, cell: usize, line: String) {
        let mut inner = self.inner.lock().unwrap();
        let line = Arc::new(line);
        inner.results[cell] = Some(line.clone());
        inner.subs.retain(|tx| tx.send(line.clone()).is_ok());
    }

    /// Seal the job: record the terminal event and release subscribers.
    fn finish(&self, completed: usize, cancelled: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.phase = JobPhase::Done { completed, cancelled };
        let line = Arc::new(proto::job_done_event(self.id, completed, cancelled));
        inner.done_line = Some(line.clone());
        for tx in inner.subs.drain(..) {
            let _ = tx.send(line.clone());
        }
    }

    /// Replay finished cells with index >= `from` (ascending), then either
    /// deliver the terminal event (done jobs) or attach `tx` as a live
    /// subscriber. Atomic w.r.t. [`JobState::publish`], so a reconnecting
    /// client sees every event exactly once.
    fn subscribe(&self, from: usize, tx: &mpsc::Sender<Arc<String>>) {
        let mut inner = self.inner.lock().unwrap();
        for line in inner.results.iter().skip(from).flatten() {
            let _ = tx.send(line.clone());
        }
        if let JobPhase::Done { .. } = inner.phase {
            if let Some(done) = &inner.done_line {
                let _ = tx.send(done.clone());
            }
        } else {
            inner.subs.push(tx.clone());
        }
    }

    fn status_json(&self) -> Json {
        let inner = self.inner.lock().unwrap();
        let (completed, cancelled) = match inner.phase {
            JobPhase::Queued => (0, 0),
            JobPhase::Running => (self.ctl.finished(), 0),
            JobPhase::Done { completed, cancelled } => (completed, cancelled),
        };
        let mut fields = vec![
            ("job".to_string(), Json::from(self.id)),
            ("state".to_string(), Json::from(inner.phase.label())),
            ("cells".to_string(), Json::from(self.specs.len())),
            ("completed".to_string(), Json::from(completed)),
            ("cancelled".to_string(), Json::from(cancelled)),
        ];
        if let Some(tag) = &self.tag {
            fields.insert(1, ("tag".to_string(), Json::from(tag.as_str())));
        }
        Json::Obj(fields)
    }
}

struct QueueState {
    phase: Phase,
    queue: VecDeque<Arc<JobState>>,
}

struct ServerState {
    pool: SimPool,
    addr: SocketAddr,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    jobs: Mutex<BTreeMap<u64, Arc<JobState>>>,
    next_job: AtomicU64,
    current: Mutex<Option<Arc<JobState>>>,
    completed_cells: AtomicU64,
    worker_busy: Vec<AtomicBool>,
    worker_cells: Vec<AtomicU64>,
    engine_done: AtomicBool,
}

/// A bound-but-not-yet-running sweep server. [`SweepServer::run`] blocks
/// until a `drain` or `shutdown` request completes; [`SweepServer::spawn`]
/// does the same on a background thread.
pub struct SweepServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl SweepServer {
    /// Bind on `addr` (use port 0 for an OS-assigned port) with a pool
    /// sized by `AVR_SERVER_THREADS`, defaulting to the host parallelism.
    pub fn bind(addr: &str) -> std::io::Result<SweepServer> {
        let host = thread::available_parallelism().map_or(1, |n| n.get());
        let threads = env_threads("AVR_SERVER_THREADS", host);
        Self::bind_with(addr, SimPool::new(threads))
    }

    /// Bind with an explicit pool (tests pin widths this way).
    pub fn bind_with(addr: &str, pool: SimPool) -> std::io::Result<SweepServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = pool.threads();
        let state = Arc::new(ServerState {
            pool,
            addr,
            queue: Mutex::new(QueueState { phase: Phase::Accepting, queue: VecDeque::new() }),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_job: AtomicU64::new(0),
            current: Mutex::new(None),
            completed_cells: AtomicU64::new(0),
            worker_busy: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            worker_cells: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            engine_done: AtomicBool::new(false),
        });
        Ok(SweepServer { listener, state })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Pool width serving batches.
    pub fn threads(&self) -> usize {
        self.state.pool.threads()
    }

    /// Serve until drained or shut down. Each connection gets a reader
    /// (requests) and a writer (replies + subscribed events) thread;
    /// batches execute on the engine thread's pool, one at a time.
    pub fn run(self) -> std::io::Result<()> {
        let state = self.state;
        let engine = {
            let state = state.clone();
            thread::spawn(move || {
                engine_loop(&state);
                state.engine_done.store(true, Ordering::SeqCst);
                // Unblock the acceptor with a throwaway connection.
                let _ = TcpStream::connect(state.addr);
            })
        };
        for conn in self.listener.incoming() {
            if state.engine_done.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = state.clone();
            thread::spawn(move || session(&state, stream));
        }
        engine.join().map_err(|_| std::io::Error::other("engine panicked"))
    }

    /// Run on a background thread, returning the bound address and the
    /// handle to join after a drain/shutdown request.
    pub fn spawn(self) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
        let addr = self.local_addr();
        (addr, thread::spawn(move || self.run()))
    }
}

/// Pop-and-run until the phase forbids further work. On `drain` the queue
/// empties first; on `shutdown` queued jobs are sealed as fully cancelled
/// without touching the pool.
fn engine_loop(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut q = state.queue.lock().unwrap();
            loop {
                if q.phase == Phase::Shutdown {
                    let leftovers: Vec<_> = q.queue.drain(..).collect();
                    drop(q);
                    for job in leftovers {
                        job.ctl.cancel();
                        job.finish(0, job.specs.len());
                    }
                    return;
                }
                if let Some(job) = q.queue.pop_front() {
                    break job;
                }
                if q.phase == Phase::Draining {
                    return;
                }
                q = state.queue_cv.wait(q).unwrap();
            }
        };
        run_batch(state, &job);
    }
}

/// Execute one batch on the pool. Cells were validated at submit, so the
/// registry lookups here cannot fail.
fn run_batch(state: &Arc<ServerState>, job: &Arc<JobState>) {
    *state.current.lock().unwrap() = Some(job.clone());
    {
        let mut inner = job.inner.lock().unwrap();
        inner.phase = JobPhase::Running;
    }

    struct Resolved {
        workload: Box<dyn Workload>,
        cfg: SystemConfig,
        spec_index: usize,
        weight: u64,
    }
    let mut seen: HashSet<(&str, BenchScale)> = HashSet::new();
    let resolved: Vec<Resolved> = job
        .specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let workload =
                workload_by_name(&spec.workload, spec.scale).expect("validated at submit");
            let cfg = spec.config(&base_config(spec.scale));
            let hint = workload.cost_hint().max(1);
            let weight = if seen.insert((workload.name(), spec.scale)) {
                hint.saturating_mul(GOLDEN_CELL_BOOST)
            } else {
                hint
            };
            Resolved { workload, cfg, spec_index: i, weight }
        })
        .collect();

    let out = state.pool.run_jobs_weighted_ctl(
        resolved.len(),
        |i| resolved[i].weight,
        |ctx| {
            let r = &resolved[ctx.index];
            let spec = &job.specs[r.spec_index];
            state.worker_busy[ctx.worker].store(true, Ordering::Relaxed);
            let metrics = run_on_design_in(r.workload.as_ref(), &r.cfg, spec.design, spec.layout);
            job.publish(r.spec_index, proto::result_event(job.id, r.spec_index, spec, &metrics));
            state.worker_cells[ctx.worker].fetch_add(1, Ordering::Relaxed);
            state.completed_cells.fetch_add(1, Ordering::Relaxed);
            state.worker_busy[ctx.worker].store(false, Ordering::Relaxed);
        },
        &job.ctl,
    );
    let completed = out.iter().filter(|cell| cell.is_some()).count();
    job.finish(completed, resolved.len() - completed);
    *state.current.lock().unwrap() = None;
}

/// One connection: a blocking reader loop here, plus a writer thread that
/// owns the outbox channel. Responses and subscribed events share the
/// outbox, so everything a session emits is serialized in one place.
fn session(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = mpsc::channel::<Arc<String>>();
    let writer = thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for line in rx {
            if out.write_all(line.as_bytes()).is_err()
                || out.write_all(b"\n").is_err()
                || out.flush().is_err()
            {
                // Dropping `rx` makes every subsequent subscriber send
                // fail, which prunes this session from job fan-out lists.
                break;
            }
        }
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if dispatch(state, &line, &tx).is_err() {
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Handle one request line; `Err` means the outbox is gone and the session
/// should end. A malformed request earns an error reply, never a
/// disconnect — the connection stays usable.
fn dispatch(
    state: &Arc<ServerState>,
    line: &str,
    tx: &mpsc::Sender<Arc<String>>,
) -> Result<(), ()> {
    let send = |reply: String| tx.send(Arc::new(reply)).map_err(|_| ());
    match Request::parse(line) {
        Err(e) => send(proto::error_response(&e)),
        Ok(Request::Submit { tag, cells }) => submit(state, tag, cells, tx),
        Ok(Request::Results { job, from }) => results(state, job, from, tx),
        Ok(Request::Status) => send(status(state)),
        Ok(Request::Cancel { job }) => send(cancel(state, job)),
        Ok(Request::Drain) => send(set_phase(state, Phase::Draining)),
        Ok(Request::Shutdown) => send(set_phase(state, Phase::Shutdown)),
    }
}

fn submit(
    state: &Arc<ServerState>,
    tag: Option<String>,
    cells: Vec<CellSpec>,
    tx: &mpsc::Sender<Arc<String>>,
) -> Result<(), ()> {
    let send = |reply: String| tx.send(Arc::new(reply)).map_err(|_| ());
    if state.queue.lock().unwrap().phase != Phase::Accepting {
        return send(proto::error_response("server is draining; submissions are closed"));
    }
    for (i, spec) in cells.iter().enumerate() {
        let Some(w) = workload_by_name(&spec.workload, spec.scale) else {
            return send(proto::error_response(&format!(
                "cell {i}: unknown workload {:?} (known: {})",
                spec.workload,
                workload_names().join(", ")
            )));
        };
        if !w.layouts().contains(&spec.layout) {
            return send(proto::error_response(&format!(
                "cell {i}: workload {:?} does not support layout {:?}",
                spec.workload,
                spec.layout.label()
            )));
        }
    }
    let id = state.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    let cell_count = cells.len();
    let job = Arc::new(JobState::new(id, tag, cells));
    state.jobs.lock().unwrap().insert(id, job.clone());
    // Ack before enqueueing: the job cannot start until it is queued, so
    // the ack is guaranteed to precede this job's events on this session.
    send(
        Json::obj([
            ("ok", Json::from(true)),
            ("job", Json::from(id)),
            ("cells", Json::from(cell_count)),
        ])
        .render(),
    )?;
    job.subscribe(0, tx);
    let mut q = state.queue.lock().unwrap();
    q.queue.push_back(job);
    state.queue_cv.notify_all();
    Ok(())
}

fn results(
    state: &Arc<ServerState>,
    job_id: u64,
    from: usize,
    tx: &mpsc::Sender<Arc<String>>,
) -> Result<(), ()> {
    let send = |reply: String| tx.send(Arc::new(reply)).map_err(|_| ());
    let Some(job) = state.jobs.lock().unwrap().get(&job_id).cloned() else {
        return send(proto::error_response(&format!("unknown job {job_id}")));
    };
    let label = job.inner.lock().unwrap().phase.label();
    send(
        Json::obj([
            ("ok", Json::from(true)),
            ("job", Json::from(job_id)),
            ("cells", Json::from(job.specs.len())),
            ("state", Json::from(label)),
        ])
        .render(),
    )?;
    job.subscribe(from, tx);
    Ok(())
}

fn cancel(state: &Arc<ServerState>, job_id: u64) -> String {
    let Some(job) = state.jobs.lock().unwrap().get(&job_id).cloned() else {
        return proto::error_response(&format!("unknown job {job_id}"));
    };
    // In-flight cells run to completion (results are never torn); cells
    // not yet started are skipped. Cancelling a done job is a no-op.
    job.ctl.cancel();
    Json::obj([("ok", Json::from(true)), ("job", Json::from(job_id))]).render()
}

fn status(state: &Arc<ServerState>) -> String {
    let (phase, queue_depth) = {
        let q = state.queue.lock().unwrap();
        (q.phase, q.queue.len())
    };
    let running = match state.current.lock().unwrap().as_ref() {
        Some(job) => Json::obj([
            ("job", Json::from(job.id)),
            ("cells", Json::from(job.specs.len())),
            ("started", Json::from(job.ctl.started())),
            ("finished", Json::from(job.ctl.finished())),
            ("in_flight", Json::from(job.ctl.in_flight())),
        ]),
        None => Json::Null,
    };
    let workers = Json::Arr(
        (0..state.pool.threads())
            .map(|w| {
                Json::obj([
                    ("busy", Json::from(state.worker_busy[w].load(Ordering::Relaxed))),
                    ("cells_done", Json::from(state.worker_cells[w].load(Ordering::Relaxed))),
                ])
            })
            .collect(),
    );
    let jobs =
        Json::Arr(state.jobs.lock().unwrap().values().map(|job| job.status_json()).collect());
    Json::obj([
        ("ok", Json::from(true)),
        ("phase", Json::from(phase.label())),
        ("queue_depth", Json::from(queue_depth)),
        ("running", running),
        ("workers", Json::from(state.pool.threads())),
        ("worker_util", workers),
        ("completed_cells", Json::from(state.completed_cells.load(Ordering::Relaxed))),
        (
            "golden",
            Json::obj([
                ("hits", Json::from(golden::stats::hits())),
                ("computes", Json::from(golden::stats::computes())),
            ]),
        ),
        ("jobs", jobs),
    ])
    .render()
}

fn set_phase(state: &Arc<ServerState>, to: Phase) -> String {
    let mut q = state.queue.lock().unwrap();
    if to > q.phase {
        q.phase = to;
    }
    let phase = q.phase;
    if phase == Phase::Shutdown {
        for job in &q.queue {
            job.ctl.cancel();
        }
        if let Some(job) = state.current.lock().unwrap().as_ref() {
            job.ctl.cancel();
        }
    }
    state.queue_cv.notify_all();
    Json::obj([("ok", Json::from(true)), ("phase", Json::from(phase.label()))]).render()
}
