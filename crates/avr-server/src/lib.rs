//! Sweep server: a queue-driven simulation job service on top of the
//! deterministic `SimPool` engine.
//!
//! Configuration sweeps over the (workload × design × backend × layout)
//! grid are embarrassingly parallel but long-running; this crate turns the
//! in-process grid runner into a small TCP service so sweeps can be
//! submitted, watched, extended and cancelled without restarting the
//! simulator (the shape follows distributed sweep harnesses around
//! approximate-memory studies, cf. arXiv:2105.14151). Everything is
//! `std`-only: the wire format is hand-rolled line-delimited JSON
//! ([`json::Json`]), one request or event per line.
//!
//! The headline property is the **determinism contract**: batch results
//! are bit-identical to running the same cells serially, at any worker
//! width, any submission interleaving, and across client disconnects (see
//! [`server`] docs; `tests/server.rs` in the workspace root pins it over
//! the full suite).
//!
//! # Quickstart
//!
//! ```no_run
//! use avr_server::{Client, SweepServer};
//! use avr_types::CellSpec;
//!
//! let (addr, handle) = SweepServer::bind("127.0.0.1:0")?.spawn();
//! let mut client = Client::connect(addr)?;
//! let job = client.submit(vec![CellSpec::new("heat"), CellSpec::new("fft")])?;
//! let outcome = client.collect_job(job)?;
//! assert_eq!(outcome.completed, 2);
//! client.shutdown()?;
//! handle.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{Client, JobOutcome};
pub use json::Json;
pub use proto::{
    cell_from_json, cell_to_json, error_response, job_done_event, metrics_to_json, result_event,
    Request,
};
pub use server::{base_config, SweepServer};
