//! Wire protocol of the sweep server: line-delimited JSON, one request or
//! reply per line.
//!
//! Requests are objects with a `"cmd"` key:
//!
//! ```json
//! {"cmd":"submit","tag":"pr9","cells":[{"workload":"heat","design":"AVR"}]}
//! {"cmd":"status"}
//! {"cmd":"results","job":1,"from":0}
//! {"cmd":"cancel","job":1}
//! {"cmd":"drain"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Replies are objects with `"ok"` (direct responses) or `"event"`
//! (asynchronous per-cell results and job completions). Every event carries
//! the job id, so a client that reconnects can resume a stream with
//! `results`. The result encoding is total: every `RunMetrics` field rides
//! the wire, integers as exact decimals (see [`crate::json`]).

use crate::json::Json;
use avr_sim::{Counters, EnergyBreakdown, RunMetrics};
use avr_types::{BackendKind, BenchScale, CellSpec, ConfigOverrides, DesignKind, LayoutKind};

/// One parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Enqueue a batch of cells; the reply acks with the job id, then the
    /// submitting connection streams the job's events.
    Submit { tag: Option<String>, cells: Vec<CellSpec> },
    /// Queue depth, in-flight job, worker utilization, golden-cache stats.
    Status,
    /// (Re-)subscribe to a job's event stream, replaying finished cells
    /// with index >= `from` first.
    Results { job: u64, from: usize },
    /// Cancel a queued or running job; finished cells keep their results.
    Cancel { job: u64 },
    /// Stop accepting submissions, finish the queue, then exit.
    Drain,
    /// Cancel everything in flight and exit as soon as possible.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("bad json: {e}"))?;
        let cmd =
            doc.get("cmd").and_then(Json::as_str).ok_or_else(|| "missing \"cmd\"".to_string())?;
        match cmd {
            "submit" => {
                let tag = doc.get("tag").and_then(Json::as_str).map(str::to_string);
                let cells = doc
                    .get("cells")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "submit needs a \"cells\" array".to_string())?;
                if cells.is_empty() {
                    return Err("submit needs at least one cell".to_string());
                }
                let cells = cells
                    .iter()
                    .enumerate()
                    .map(|(i, c)| cell_from_json(c).map_err(|e| format!("cell {i}: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Submit { tag, cells })
            }
            "status" => Ok(Request::Status),
            "results" => Ok(Request::Results {
                job: req_job(&doc)?,
                from: doc
                    .get("from")
                    .map(|v| v.as_u64().ok_or_else(|| "bad \"from\"".to_string()))
                    .transpose()?
                    .unwrap_or(0) as usize,
            }),
            "cancel" => Ok(Request::Cancel { job: req_job(&doc)? }),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd {other:?}")),
        }
    }

    /// Encode this request as one wire line (client side).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit { tag, cells } => {
                let mut fields = vec![("cmd".to_string(), Json::from("submit"))];
                if let Some(tag) = tag {
                    fields.push(("tag".to_string(), Json::from(tag.as_str())));
                }
                fields.push((
                    "cells".to_string(),
                    Json::Arr(cells.iter().map(cell_to_json).collect()),
                ));
                Json::Obj(fields)
            }
            Request::Status => Json::obj([("cmd", Json::from("status"))]),
            Request::Results { job, from } => Json::obj([
                ("cmd", Json::from("results")),
                ("job", Json::from(*job)),
                ("from", Json::from(*from)),
            ]),
            Request::Cancel { job } => {
                Json::obj([("cmd", Json::from("cancel")), ("job", Json::from(*job))])
            }
            Request::Drain => Json::obj([("cmd", Json::from("drain"))]),
            Request::Shutdown => Json::obj([("cmd", Json::from("shutdown"))]),
        }
    }
}

fn req_job(doc: &Json) -> Result<u64, String> {
    doc.get("job").and_then(Json::as_u64).ok_or_else(|| "missing \"job\"".to_string())
}

/// Encode a cell spec; defaulted fields are omitted so the encoding of
/// `CellSpec::new(w)` is just `{"workload":w}`.
pub fn cell_to_json(cell: &CellSpec) -> Json {
    let mut fields = vec![("workload".to_string(), Json::from(cell.workload.as_str()))];
    let mut put = |key: &str, value: Json| fields.push((key.to_string(), value));
    if cell.scale != BenchScale::Tiny {
        put("scale", Json::from(cell.scale.label()));
    }
    if cell.design != DesignKind::Avr {
        put("design", Json::from(cell.design.label()));
    }
    if cell.layout != LayoutKind::Soa {
        put("layout", Json::from(cell.layout.label()));
    }
    if let Some(backend) = cell.backend {
        put("backend", Json::from(backend.label()));
    }
    if let Some(seed) = cell.seed {
        put("seed", Json::from(seed));
    }
    let o = &cell.overrides;
    if let Some(v) = o.t1 {
        put("t1", Json::from(v));
    }
    if let Some(v) = o.t2 {
        put("t2", Json::from(v));
    }
    if let Some(v) = o.retention_fail_per_bit {
        put("retention_fail_per_bit", Json::from(v));
    }
    if let Some(v) = o.refresh_multiplier {
        put("refresh_multiplier", Json::from(v));
    }
    if let Some(v) = o.mram_p01 {
        put("mram_p01", Json::from(v));
    }
    if let Some(v) = o.mram_p10 {
        put("mram_p10", Json::from(v));
    }
    if let Some(v) = o.retry_budget {
        put("retry_budget", Json::from(v));
    }
    Json::Obj(fields)
}

/// Decode a cell spec, rejecting unknown labels (not unknown keys — extra
/// keys are ignored so the wire format can grow).
pub fn cell_from_json(doc: &Json) -> Result<CellSpec, String> {
    let workload = doc
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"workload\"".to_string())?;
    let mut cell = CellSpec::new(workload);
    if let Some(v) = doc.get("scale") {
        let label = v.as_str().ok_or_else(|| "bad \"scale\"".to_string())?;
        cell.scale =
            BenchScale::from_label(label).ok_or_else(|| format!("unknown scale {label:?}"))?;
    }
    if let Some(v) = doc.get("design") {
        let label = v.as_str().ok_or_else(|| "bad \"design\"".to_string())?;
        cell.design =
            DesignKind::from_label(label).ok_or_else(|| format!("unknown design {label:?}"))?;
    }
    if let Some(v) = doc.get("layout") {
        let label = v.as_str().ok_or_else(|| "bad \"layout\"".to_string())?;
        cell.layout =
            LayoutKind::from_label(label).ok_or_else(|| format!("unknown layout {label:?}"))?;
    }
    if let Some(v) = doc.get("backend") {
        let label = v.as_str().ok_or_else(|| "bad \"backend\"".to_string())?;
        cell.backend = Some(
            BackendKind::from_label(label).ok_or_else(|| format!("unknown backend {label:?}"))?,
        );
    }
    if let Some(v) = doc.get("seed") {
        cell.seed = Some(v.as_u64().ok_or_else(|| "bad \"seed\"".to_string())?);
    }
    let f = |key: &str| -> Result<Option<f64>, String> {
        doc.get(key).map(|v| v.as_f64().ok_or_else(|| format!("bad {key:?}"))).transpose()
    };
    let u = |key: &str| -> Result<Option<u64>, String> {
        doc.get(key).map(|v| v.as_u64().ok_or_else(|| format!("bad {key:?}"))).transpose()
    };
    cell.overrides = ConfigOverrides {
        t1: f("t1")?,
        t2: f("t2")?,
        retention_fail_per_bit: f("retention_fail_per_bit")?,
        refresh_multiplier: u("refresh_multiplier")?,
        mram_p01: f("mram_p01")?,
        mram_p10: f("mram_p10")?,
        retry_budget: u("retry_budget")?,
    };
    Ok(cell)
}

/// Serialize every field of a [`RunMetrics`] — nothing summarized away, so
/// a wire result is as complete as the in-process struct.
pub fn metrics_to_json(m: &RunMetrics) -> Json {
    Json::obj([
        ("design", Json::from(m.design.as_str())),
        ("benchmark", Json::from(m.benchmark.as_str())),
        ("cycles", Json::from(m.cycles)),
        ("exec_seconds", Json::from(m.exec_seconds)),
        ("ipc", Json::from(m.ipc)),
        ("output_error", Json::from(m.output_error)),
        ("compression_ratio", Json::from(m.compression_ratio)),
        ("approx_blocks", Json::from(m.approx_blocks)),
        ("compressible_blocks", Json::from(m.compressible_blocks)),
        ("footprint_fraction", Json::from(m.footprint_fraction)),
        ("llc_cms_fraction", Json::from(m.llc_cms_fraction)),
        ("counters", counters_to_json(&m.counters)),
        ("energy", energy_to_json(&m.energy)),
    ])
}

fn counters_to_json(c: &Counters) -> Json {
    Json::obj([
        ("instructions", Json::from(c.instructions)),
        ("loads", Json::from(c.loads)),
        ("stores", Json::from(c.stores)),
        ("l1_hits", Json::from(c.l1_hits)),
        ("l2_hits", Json::from(c.l2_hits)),
        ("llc_requests_total", Json::from(c.llc_requests_total)),
        ("llc_misses_total", Json::from(c.llc_misses_total)),
        (
            "approx_requests",
            Json::obj([
                ("miss", Json::from(c.approx_requests.miss)),
                ("uncompressed_hit", Json::from(c.approx_requests.uncompressed_hit)),
                ("dbuf_hit", Json::from(c.approx_requests.dbuf_hit)),
                ("compressed_hit", Json::from(c.approx_requests.compressed_hit)),
            ]),
        ),
        (
            "evictions",
            Json::obj([
                ("recompress", Json::from(c.evictions.recompress)),
                ("lazy_writeback", Json::from(c.evictions.lazy_writeback)),
                ("fetch_recompress", Json::from(c.evictions.fetch_recompress)),
                ("uncompressed_writeback", Json::from(c.evictions.uncompressed_writeback)),
            ]),
        ),
        (
            "traffic",
            Json::obj([
                ("approx_read_bytes", Json::from(c.traffic.approx_read_bytes)),
                ("approx_write_bytes", Json::from(c.traffic.approx_write_bytes)),
                ("nonapprox_read_bytes", Json::from(c.traffic.nonapprox_read_bytes)),
                ("nonapprox_write_bytes", Json::from(c.traffic.nonapprox_write_bytes)),
                ("metadata_bytes", Json::from(c.traffic.metadata_bytes)),
            ]),
        ),
        ("amat_cycles_sum", Json::from(c.amat_cycles_sum)),
        ("amat_count", Json::from(c.amat_count)),
        ("miss_lat_sum", Json::from(c.miss_lat_sum)),
        ("miss_lat_count", Json::from(c.miss_lat_count)),
        ("miss_lat_max", Json::from(c.miss_lat_max)),
        ("compressed_hit_cycles_sum", Json::from(c.compressed_hit_cycles_sum)),
        ("blocks_compressed", Json::from(c.blocks_compressed)),
        ("blocks_decompressed", Json::from(c.blocks_decompressed)),
        ("compression_failures", Json::from(c.compression_failures)),
        ("compression_skips", Json::from(c.compression_skips)),
        ("block_reuse_sum", Json::from(c.block_reuse_sum)),
        ("block_reuse_count", Json::from(c.block_reuse_count)),
        (
            "faults",
            Json::obj([
                ("injected_bit_flips", Json::from(c.faults.injected_bit_flips)),
                ("faulted_lines", Json::from(c.faults.faulted_lines)),
                ("retries", Json::from(c.faults.retries)),
                ("degraded_lines", Json::from(c.faults.degraded_lines)),
                ("sanitized_values", Json::from(c.faults.sanitized_values)),
                ("ecc_scrubs", Json::from(c.faults.ecc_scrubs)),
            ]),
        ),
        (
            "memo",
            Json::obj([
                ("in_probes", Json::from(c.memo.in_probes)),
                ("in_hits", Json::from(c.memo.in_hits)),
                ("in_inserts", Json::from(c.memo.in_inserts)),
                ("in_served", Json::from(c.memo.in_served)),
                ("out_windows", Json::from(c.memo.out_windows)),
                ("out_elided", Json::from(c.memo.out_elided)),
                ("out_commits", Json::from(c.memo.out_commits)),
            ]),
        ),
    ])
}

fn energy_to_json(e: &EnergyBreakdown) -> Json {
    Json::obj([
        ("core", Json::from(e.core)),
        ("l1l2", Json::from(e.l1l2)),
        ("llc", Json::from(e.llc)),
        ("dram", Json::from(e.dram)),
        ("compressor", Json::from(e.compressor)),
    ])
}

/// One finished cell, rendered as a wire line. The `cell` index is the
/// position in the submitted batch, so a client can reassemble the grid in
/// submission order regardless of completion order.
pub fn result_event(job: u64, cell: usize, spec: &CellSpec, metrics: &RunMetrics) -> String {
    Json::obj([
        ("event", Json::from("result")),
        ("job", Json::from(job)),
        ("cell", Json::from(cell)),
        ("spec", cell_to_json(spec)),
        ("metrics", metrics_to_json(metrics)),
    ])
    .render()
}

/// Terminal event of a job: all cells accounted for (completed + cancelled
/// = batch size).
pub fn job_done_event(job: u64, completed: usize, cancelled: usize) -> String {
    Json::obj([
        ("event", Json::from("job_done")),
        ("job", Json::from(job)),
        ("completed", Json::from(completed)),
        ("cancelled", Json::from(cancelled)),
    ])
    .render()
}

/// An error reply; the connection stays usable afterwards.
pub fn error_response(message: &str) -> String {
    Json::obj([("ok", Json::from(false)), ("error", Json::from(message))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_the_wire() {
        let mut cell = CellSpec::new("heat");
        cell.design = DesignKind::Baseline;
        cell.layout = LayoutKind::Aos;
        cell.backend = Some(BackendKind::RelaxedDram);
        cell.seed = Some(7);
        cell.overrides.refresh_multiplier = Some(8);
        cell.overrides.t1 = Some(0.125);
        let req = Request::Submit {
            tag: Some("sweep".to_string()),
            cells: vec![CellSpec::new("fft"), cell],
        };
        let line = req.to_json().render();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn default_cell_encodes_minimally() {
        let line = cell_to_json(&CellSpec::new("lbm")).render();
        assert_eq!(line, "{\"workload\":\"lbm\"}");
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Status,
            Request::Results { job: 3, from: 17 },
            Request::Cancel { job: 9 },
            Request::Drain,
            Request::Shutdown,
        ] {
            let line = req.to_json().render();
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn bad_requests_name_the_problem() {
        let err = Request::parse(
            "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"heat\",\"design\":\"warp\"}]}",
        )
        .unwrap_err();
        assert!(err.contains("cell 0") && err.contains("warp"), "{err}");
        assert!(Request::parse("{\"cmd\":\"results\"}").unwrap_err().contains("job"));
        assert!(Request::parse("not json").unwrap_err().contains("bad json"));
        assert!(Request::parse("{\"cmd\":\"fly\"}").unwrap_err().contains("fly"));
        assert!(Request::parse("{\"cmd\":\"submit\",\"cells\":[]}").is_err());
    }

    #[test]
    fn metrics_serialization_is_total_and_exact() {
        let mut m = RunMetrics {
            design: "AVR".to_string(),
            benchmark: "heat".to_string(),
            cycles: u64::MAX,
            exec_seconds: 0.1,
            ..Default::default()
        };
        m.counters.instructions = 123;
        m.counters.faults.ecc_scrubs = 9;
        m.energy.dram = 1.0 / 3.0;
        let doc = metrics_to_json(&m);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.render(), text, "wire text must be stable");
        assert_eq!(parsed.get("cycles").unwrap(), &Json::U64(u64::MAX));
        assert_eq!(parsed.get("counters").unwrap().get("instructions").unwrap(), &Json::U64(123));
        assert_eq!(
            parsed.get("counters").unwrap().get("faults").unwrap().get("ecc_scrubs"),
            Some(&Json::U64(9))
        );
        assert_eq!(parsed.get("energy").unwrap().get("dram").unwrap().as_f64(), Some(1.0 / 3.0));
    }
}
