//! Standalone sweep-server daemon.
//!
//! ```text
//! sweep_server [--addr HOST:PORT]
//! ```
//!
//! Binds (default `127.0.0.1:0`, an OS-assigned port), prints the bound
//! address on stdout as `listening on <addr>`, then serves until a client
//! sends `drain` or `shutdown`. Pool width comes from
//! `AVR_SERVER_THREADS` (default: host parallelism).

use avr_server::SweepServer;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:0".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr needs a HOST:PORT value");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: sweep_server [--addr HOST:PORT]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let server = match SweepServer::bind(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    eprintln!("pool width: {} worker(s)", server.threads());
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}
