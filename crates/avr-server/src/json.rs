//! Hand-rolled JSON tree, parser and writer — the whole wire format of the
//! sweep server, with no dependency beyond `std`.
//!
//! The codec is built for *bit-exact* round-trips of simulation results:
//!
//! * unsigned integers ride as [`Json::U64`] and render as plain decimal,
//!   so 64-bit counters never pass through a double;
//! * floats render with Rust's `{}` formatting, which emits the shortest
//!   string that parses back to the identical bits — so parse → re-render
//!   reproduces the exact text the server wrote.
//!
//! Objects keep their field order (they are a `Vec` of pairs, not a map):
//! two renders of the same tree are the same bytes, which is what the
//! bit-identity tests compare.

use std::fmt::Write as _;

/// One JSON value. Numbers are split three ways so integers stay exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Any non-negative integer literal (no fraction, no exponent).
    U64(u64),
    /// Any negative integer literal that fits i64.
    I64(i64),
    /// Everything else numeric.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, keeping their order.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned view of a number (only exact: `U64`, or a non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Lossy numeric view: any of the three number variants as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` is shortest-round-trip: parsing the text yields
                    // the identical bits, and re-rendering the same text.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at offset {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?,
                            );
                        }
                        b => return Err(format!("bad escape '\\{}'", b as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Some(digits) = text.strip_prefix('-') {
                // "-0" stays a float so negative zero re-renders as "-0".
                if let Ok(v) = digits.parse::<u64>() {
                    if v != 0 {
                        if let Ok(i) = i64::try_from(v) {
                            return Ok(Json::I64(-i));
                        }
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_stay_exact_through_parse_and_render() {
        let v = Json::U64(u64::MAX);
        let text = v.render();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(Json::parse(&text).unwrap(), v);
        let neg = Json::parse("-42").unwrap();
        assert_eq!(neg, Json::I64(-42));
        assert_eq!(neg.render(), "-42");
    }

    #[test]
    fn floats_round_trip_to_identical_text() {
        for v in
            [0.1_f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1.7976931348623157e308, -0.0, 6.02e23, 1e-9]
        {
            let text = Json::F64(v).render();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.render(), text, "text must be stable for {v}");
            match parsed {
                Json::F64(p) => assert_eq!(p.to_bits(), v.to_bits()),
                // Small whole floats parse as integers; decimal text is
                // still identical, which is what the wire contract needs.
                other => assert_eq!(other.as_f64(), Some(v)),
            }
        }
    }

    #[test]
    fn objects_preserve_field_order_and_escapes() {
        let v = Json::obj([
            ("b", Json::from("x\"y\n")),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.render();
        assert_eq!(text, "{\"b\":\"x\\\"y\\n\",\"a\":[null,true]}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_raw_utf8_parse() {
        let v = Json::parse("\"\\u00e9\\ud83d\\ude00é\"").unwrap();
        assert_eq!(v, Json::Str("é😀é".to_string()));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "truth",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "--3",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
