//! A minimal blocking client for the sweep server, used by the examples,
//! the bench harness, and the loopback tests. One TCP connection, one
//! request/reply conversation — asynchronous events that arrive while a
//! direct reply is awaited are buffered and yielded later in order.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use avr_types::CellSpec;

use crate::json::Json;
use crate::proto::Request;

/// Blocking sweep-server client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    pending: VecDeque<Json>,
}

/// Everything one job streamed back: per-cell result events (indexed by
/// cell position in the submitted batch; `None` for cancelled cells) and
/// the terminal completed/cancelled counts.
#[derive(Debug)]
pub struct JobOutcome {
    pub job: u64,
    pub completed: u64,
    pub cancelled: u64,
    /// Full `result` events in batch order (`spec` + `metrics` objects).
    pub results: Vec<Option<Json>>,
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, pending: VecDeque::new() })
    }

    fn read_message(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return Json::parse(trimmed).map_err(bad_data);
        }
    }

    /// Send a request and return its direct reply; events received in the
    /// meantime are buffered for [`Client::next_event`].
    pub fn request(&mut self, req: &Request) -> io::Result<Json> {
        let mut line = req.to_json().render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        loop {
            let msg = self.read_message()?;
            if msg.get("event").is_some() {
                self.pending.push_back(msg);
            } else {
                return Ok(msg);
            }
        }
    }

    /// The next asynchronous event (buffered or read off the wire).
    pub fn next_event(&mut self) -> io::Result<Json> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(msg);
        }
        self.read_message()
    }

    /// Submit a batch; returns the job id from the ack.
    pub fn submit(&mut self, cells: Vec<CellSpec>) -> io::Result<u64> {
        self.submit_tagged(None, cells)
    }

    pub fn submit_tagged(&mut self, tag: Option<String>, cells: Vec<CellSpec>) -> io::Result<u64> {
        let reply = self.request(&Request::Submit { tag, cells })?;
        expect_ok(&reply)?;
        reply
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad_data("submit ack without a job id"))
    }

    /// Re-subscribe to `job`, replaying finished cells from index `from`.
    pub fn results(&mut self, job: u64, from: usize) -> io::Result<Json> {
        let reply = self.request(&Request::Results { job, from })?;
        expect_ok(&reply)?;
        Ok(reply)
    }

    pub fn status(&mut self) -> io::Result<Json> {
        let reply = self.request(&Request::Status)?;
        expect_ok(&reply)?;
        Ok(reply)
    }

    pub fn cancel(&mut self, job: u64) -> io::Result<Json> {
        let reply = self.request(&Request::Cancel { job })?;
        expect_ok(&reply)?;
        Ok(reply)
    }

    pub fn drain(&mut self) -> io::Result<Json> {
        let reply = self.request(&Request::Drain)?;
        expect_ok(&reply)?;
        Ok(reply)
    }

    pub fn shutdown(&mut self) -> io::Result<Json> {
        let reply = self.request(&Request::Shutdown)?;
        expect_ok(&reply)?;
        Ok(reply)
    }

    /// Consume this job's event stream until its `job_done`, collecting
    /// result events by cell index. Events for other jobs are ignored.
    pub fn collect_job(&mut self, job: u64) -> io::Result<JobOutcome> {
        let mut results: Vec<Option<Json>> = Vec::new();
        loop {
            let event = self.next_event()?;
            if event.get("job").and_then(Json::as_u64) != Some(job) {
                continue;
            }
            match event.get("event").and_then(Json::as_str) {
                Some("result") => {
                    let cell = event
                        .get("cell")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad_data("result event without a cell index"))?
                        as usize;
                    if results.len() <= cell {
                        results.resize(cell + 1, None);
                    }
                    results[cell] = Some(event);
                }
                Some("job_done") => {
                    let count = |key: &str| {
                        event
                            .get(key)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| bad_data(format!("job_done without {key:?}")))
                    };
                    return Ok(JobOutcome {
                        job,
                        completed: count("completed")?,
                        cancelled: count("cancelled")?,
                        results,
                    });
                }
                _ => {}
            }
        }
    }
}

fn expect_ok(reply: &Json) -> io::Result<()> {
    if reply.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(());
    }
    let msg = reply.get("error").and_then(Json::as_str).unwrap_or("server rejected the request");
    Err(io::Error::other(msg.to_string()))
}
