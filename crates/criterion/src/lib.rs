//! A tiny, dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmarking harness, implementing exactly the API surface the
//! `avr-bench` benches use. The build environment has no network access to
//! crates.io, so the real criterion cannot be a dependency; this shim keeps
//! `cargo bench` working with the same bench sources.
//!
//! Measurement model: each `bench_function` target is warmed up for a fixed
//! wall-clock budget, then sampled `sample_size` times; the reported figure
//! is the median of per-iteration times. Results print in a criterion-like
//! `name  time: [..]` format and are also collected in-process so callers
//! (e.g. the `bench_codec` JSON emitter) can consume them via
//! [`Criterion::results`].

use std::time::{Duration, Instant};

/// How a batched-iteration setup cost is amortized. The shim times only the
/// routine, matching criterion's semantics closely enough for our kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One measured benchmark target.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of measurement samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl BenchResult {
    /// Iterations per second implied by the median sample.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.median_ns > 0.0 {
            1e9 / self.median_ns
        } else {
            f64::INFINITY
        }
    }
}

/// The per-target timing driver handed to `bench_function` closures.
pub struct Bencher {
    /// (sample durations, iterations per sample) recorded by `iter*`.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    warm_up: Duration,
}

impl Bencher {
    fn new(sample_count: usize, warm_up: Duration) -> Self {
        Bencher { samples: Vec::new(), iters_per_sample: 1, sample_count, warm_up }
    }

    /// Time `routine`, criterion-style: warm up, pick an iteration count
    /// that makes one sample take a measurable slice, then sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the budget elapses, counting iterations to
        // calibrate the per-sample batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as u64 / warm_iters.max(1);
        // Target ~2 ms per sample so short kernels are averaged over many
        // iterations and the Instant overhead vanishes.
        let iters = (2_000_000 / per_iter.max(1)).clamp(1, 10_000_000);
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Batched variant: `setup` produces the input consumed by `routine`.
    /// The shim times setup + routine per call but runs one iteration per
    /// sample when setup is present, so setup noise stays visible but small
    /// kernels still get many samples.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std::hint::black_box(routine(input));
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as u64 / warm_iters.max(1);
        let iters = (2_000_000 / per_iter.max(1)).clamp(1, 10_000_000);
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                let input = setup();
                std::hint::black_box(routine(input));
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn result(&self, name: &str) -> BenchResult {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample.max(1) as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median_ns = if per_iter.is_empty() { 0.0 } else { per_iter[per_iter.len() / 2] };
        let mean_ns = if per_iter.is_empty() {
            0.0
        } else {
            per_iter.iter().sum::<f64>() / per_iter.len() as f64
        };
        BenchResult {
            name: name.to_string(),
            median_ns,
            mean_ns,
            samples: per_iter.len(),
            iters_per_sample: self.iters_per_sample,
        }
    }
}

/// The bench registry / driver.
pub struct Criterion {
    sample_count: usize,
    warm_up: Duration,
    results: Vec<BenchResult>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // AVR_BENCH_FAST=1 shrinks the measurement so CI smoke runs stay
        // in seconds; default settings give stable medians for the JSON
        // trajectory files.
        let fast = std::env::var("AVR_BENCH_FAST").is_ok();
        Criterion {
            sample_count: if fast { 10 } else { 30 },
            warm_up: if fast { Duration::from_millis(50) } else { Duration::from_millis(300) },
            results: Vec::new(),
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Criterion-compatible knob: number of measurement samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Criterion-compatible knob: warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Criterion-compatible knob: measurement time (the shim derives its
    /// sampling from sample_size instead; accepted for API compatibility).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one benchmark target.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::new(self.sample_count, self.warm_up);
        f(&mut b);
        let r = b.result(name);
        println!(
            "{:<40} time: [{:>10.1} ns] ({} samples x {} iters)",
            r.name, r.median_ns, r.samples, r.iters_per_sample
        );
        self.results.push(r);
        self
    }

    /// All results measured so far (shim extension; not in real criterion).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Final report hook, called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("{} benchmark target(s) measured", self.results.len());
    }
}

/// `black_box` re-export for criterion API compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group, criterion-style. Both the simple form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`
/// are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default().sample_size(3).warm_up_time(Duration::from_millis(5));
        c.filter = None;
        target(&mut c);
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.name, "shim_smoke");
        assert!(r.median_ns >= 0.0);
        assert!(r.samples >= 3);
    }

    #[test]
    fn iter_batched_also_records() {
        let mut c = Criterion::default().sample_size(3).warm_up_time(Duration::from_millis(5));
        c.filter = None;
        c.bench_function("batched", |b| b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput));
        assert_eq!(c.results().len(), 1);
    }
}
