//! The prefetch engine (paper §3.3).
//!
//! "When a new compressed block arrives for decompression, a prefetching
//! engine (PFE) is consulted to decide whether any of the remaining
//! decompressed cachelines in DBUF should be written in the LLC before they
//! are replaced by the new block. The PFE employs a simple threshold
//! strategy, prefetching all lines from a block where at least half have
//! been explicitly requested."

use crate::dbuf::DbufEviction;
use crate::llc::ClMask;
use avr_types::LINES_PER_BLOCK;

/// The threshold-based prefetch engine.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchEngine {
    /// Fraction of lines that must have been requested (paper: 0.5).
    threshold: f64,
    pub consults: u64,
    pub prefetches_issued: u64,
    pub lines_prefetched: u64,
}

impl PrefetchEngine {
    pub fn new(threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold));
        PrefetchEngine { threshold, consults: 0, prefetches_issued: 0, lines_prefetched: 0 }
    }

    /// Decide which of the evicted DBUF block's lines to save into the LLC.
    /// Returns the cl-id mask of the lines to insert — the lines *not* yet
    /// requested (requested lines were already promoted on their hits).
    pub fn decide(&mut self, ev: &DbufEviction) -> ClMask {
        self.consults += 1;
        let requested = ev.requested_mask.count_ones() as usize;
        if (requested as f64) < self.threshold * LINES_PER_BLOCK as f64 {
            return ClMask::default();
        }
        let to_save = ClMask(!ev.requested_mask);
        if !to_save.is_empty() {
            self.prefetches_issued += 1;
            self.lines_prefetched += to_save.count() as u64;
        }
        to_save
    }
}

impl Default for PrefetchEngine {
    fn default() -> Self {
        PrefetchEngine::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::BlockAddr;

    fn ev(mask: u16) -> DbufEviction {
        DbufEviction { block: BlockAddr(1), requested_mask: mask }
    }

    #[test]
    fn below_threshold_saves_nothing() {
        let mut pfe = PrefetchEngine::default();
        // 7 of 16 requested < half.
        let lines = pfe.decide(&ev(0b0000_0000_0111_1111));
        assert!(lines.is_empty());
        assert_eq!(pfe.prefetches_issued, 0);
        assert_eq!(pfe.consults, 1);
    }

    #[test]
    fn at_threshold_saves_the_rest() {
        let mut pfe = PrefetchEngine::default();
        // Exactly 8 of 16 requested -> save the other 8.
        let lines = pfe.decide(&ev(0b0000_0000_1111_1111));
        assert_eq!(lines.to_vec(), vec![8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(pfe.lines_prefetched, 8);
    }

    #[test]
    fn fully_requested_block_has_nothing_left_to_save() {
        let mut pfe = PrefetchEngine::default();
        let lines = pfe.decide(&ev(0xFFFF));
        assert!(lines.is_empty());
        assert_eq!(pfe.prefetches_issued, 0, "nothing issued when nothing to save");
    }

    #[test]
    fn zero_threshold_always_prefetches() {
        let mut pfe = PrefetchEngine::new(0.0);
        let lines = pfe.decide(&ev(0));
        assert_eq!(lines.count() as usize, LINES_PER_BLOCK);
    }

    #[test]
    fn unity_threshold_never_prefetches() {
        let mut pfe = PrefetchEngine::new(1.0);
        assert!(pfe.decide(&ev(0x7FFF)).is_empty());
        // All requested: threshold met but nothing left.
        assert!(pfe.decide(&ev(0xFFFF)).is_empty());
    }
}
