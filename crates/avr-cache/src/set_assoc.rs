//! Conventional set-associative write-back cache (metadata only).
//!
//! Used for the private L1/L2 levels and for the baseline LLC. True-LRU
//! replacement via per-set recency counters.

use avr_types::{CacheGeometry, LineAddr};

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_evictions: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A line evicted to make room.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    pub line: LineAddr,
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    dirty: bool,
    lru: u64,
    valid: bool,
}

const INVALID: Way = Way { tag: 0, dirty: false, lru: 0, valid: false };

/// The cache. Lines are identified by [`LineAddr`]; the set index is the low
/// `log2(sets)` bits of the line address, the tag the remaining bits.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    latency: u64,
    entries: Vec<Way>,
    clock: u64,
    pub stats: CacheStats,
}

impl SetAssocCache {
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        assert!(sets.is_power_of_two() && sets > 0);
        SetAssocCache {
            sets,
            ways: geom.ways,
            latency: geom.latency,
            entries: vec![INVALID; sets * geom.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Access latency in CPU cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 >> self.sets.trailing_zeros()
    }

    fn set_slice(&mut self, set: usize) -> &mut [Way] {
        let start = set * self.ways;
        &mut self.entries[start..start + self.ways]
    }

    /// Look up a line; on hit refresh its recency (and optionally mark it
    /// dirty for a store). Updates hit/miss statistics.
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag_of(line);
        let set = self.set_of(line);
        for w in self.set_slice(set) {
            if w.valid && w.tag == tag {
                w.lru = clock;
                if write {
                    w.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Closed-form batch of `n` guaranteed hits to a resident line: one
    /// tag probe, the recency clock advanced by `n`, dirty set on writes,
    /// `n` hits counted. Bit-identical final state to `n` sequential
    /// [`Self::access`] calls — the loop would stamp the line with each
    /// intermediate clock value, but only the last stamp survives, so
    /// advancing the clock once and stamping once lands on the same LRU
    /// state (and therefore the same eviction order forever after).
    ///
    /// Panics if the line is not resident: the caller owns the residency
    /// proof (in the simulator, a span's leading access just touched it).
    pub fn access_hit_n(&mut self, line: LineAddr, n: u64, write: bool) {
        if n == 0 {
            return;
        }
        self.clock += n;
        let clock = self.clock;
        let tag = self.tag_of(line);
        let set = self.set_of(line);
        let way = self
            .set_slice(set)
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
            .expect("access_hit_n: line not resident");
        way.lru = clock;
        if write {
            way.dirty = true;
        }
        self.stats.hits += n;
    }

    /// Is the line present? No LRU update, no statistics.
    pub fn contains(&self, line: LineAddr) -> bool {
        let tag = self.tag_of(line);
        let start = self.set_of(line) * self.ways;
        self.entries[start..start + self.ways].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Insert a line (after a miss), evicting the LRU victim if the set is
    /// full. Re-inserting a present line just refreshes it.
    pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag_of(line);
        let set = self.set_of(line);
        let sets = self.sets;
        let ways = self.set_slice(set);

        // Already present?
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = clock;
            w.dirty |= dirty;
            return None;
        }
        // Free way?
        if let Some(w) = ways.iter_mut().find(|w| !w.valid) {
            *w = Way { tag, dirty, lru: clock, valid: true };
            return None;
        }
        // Evict LRU.
        let victim = ways.iter_mut().min_by_key(|w| w.lru).expect("non-zero associativity");
        let evicted = Eviction {
            line: LineAddr((victim.tag << sets.trailing_zeros()) | set as u64),
            dirty: victim.dirty,
        };
        *victim = Way { tag, dirty, lru: clock, valid: true };
        self.stats.evictions += 1;
        if evicted.dirty {
            self.stats.dirty_evictions += 1;
        }
        Some(evicted)
    }

    /// Drop a line (back-invalidation), returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let tag = self.tag_of(line);
        let set = self.set_of(line);
        for w in self.set_slice(set) {
            if w.valid && w.tag == tag {
                let dirty = w.dirty;
                *w = INVALID;
                return Some(dirty);
            }
        }
        None
    }

    /// Iterate over all resident lines (diagnostics / tests).
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, bool)> + '_ {
        let idx_bits = self.sets.trailing_zeros();
        self.entries.iter().enumerate().filter(|(_, w)| w.valid).map(move |(i, w)| {
            let set = (i / self.ways) as u64;
            (LineAddr((w.tag << idx_bits) | set), w.dirty)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::CacheGeometry;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways.
        SetAssocCache::new(CacheGeometry { capacity: 4 * 2 * 64, ways: 2, latency: 1 })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let l = LineAddr(0x40);
        assert!(!c.access(l, false));
        c.insert(l, false);
        assert!(c.access(l, false));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines in the same set (set 0): 0x0, 0x4, 0x8 (4 sets).
        let (a, b, d) = (LineAddr(0x0), LineAddr(0x4), LineAddr(0x8));
        assert!(c.insert(a, false).is_none());
        assert!(c.insert(b, false).is_none());
        // Touch a so b is LRU.
        c.access(a, false);
        let ev = c.insert(d, false).expect("eviction");
        assert_eq!(ev.line, b);
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn dirty_propagates_through_eviction() {
        let mut c = tiny();
        let (a, b, d) = (LineAddr(0x0), LineAddr(0x4), LineAddr(0x8));
        c.insert(a, false);
        c.access(a, true); // store -> dirty
        c.insert(b, false);
        c.access(a, false); // keep a MRU
        let ev = c.insert(d, false).unwrap();
        assert_eq!(ev.line, b);
        assert!(!ev.dirty);
        c.access(d, false);
        let ev2 = c.insert(LineAddr(0xC), false).unwrap();
        assert_eq!(ev2.line, a);
        assert!(ev2.dirty);
        assert_eq!(c.stats.dirty_evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = tiny();
        let a = LineAddr(0x0);
        c.insert(a, false);
        assert!(c.insert(a, true).is_none());
        let resident: Vec<_> = c.resident_lines().collect();
        assert_eq!(resident.len(), 1);
        assert_eq!(resident[0], (a, true));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        let a = LineAddr(0x3);
        c.insert(a, true);
        assert_eq!(c.invalidate(a), Some(true));
        assert_eq!(c.invalidate(a), None);
        assert!(!c.contains(a));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4u64 {
            assert!(c.insert(LineAddr(i), false).is_none());
            assert!(c.insert(LineAddr(i + 4), false).is_none());
        }
        for i in 0..8u64 {
            assert!(c.contains(LineAddr(i)));
        }
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = tiny();
        let a = LineAddr(0x1234 << 2 | 0x1); // set 1, some tag
        c.insert(a, false);
        c.insert(LineAddr(0x5678 << 2 | 0x1), false);
        let ev = c.insert(LineAddr(0x9abc << 2 | 0x1), false).unwrap();
        assert_eq!(ev.line, a);
    }

    #[test]
    fn batched_hits_match_sequential_hits_exactly() {
        // Interleave batched and per-access hits across two caches and
        // assert the *entire* metadata state (tags, dirty, lru, clock,
        // stats) stays identical — this is what pins eviction order.
        let (a, b, d) = (LineAddr(0x0), LineAddr(0x4), LineAddr(0x8));
        let mut seq = tiny();
        let mut bat = tiny();
        for c in [&mut seq, &mut bat] {
            c.insert(a, false);
            c.insert(b, false);
        }
        for _ in 0..5 {
            seq.access(a, false);
        }
        bat.access_hit_n(a, 5, false);
        for _ in 0..3 {
            seq.access(b, true);
        }
        bat.access_hit_n(b, 3, true);
        seq.access(a, false);
        bat.access_hit_n(a, 1, false);
        assert_eq!(seq.clock, bat.clock);
        assert_eq!(seq.stats, bat.stats);
        let sl: Vec<_> = seq.entries.iter().map(|w| (w.valid, w.tag, w.dirty, w.lru)).collect();
        let bl: Vec<_> = bat.entries.iter().map(|w| (w.valid, w.tag, w.dirty, w.lru)).collect();
        assert_eq!(sl, bl, "way metadata diverged");
        // The LRU victim (eviction order) must agree on both.
        let ev_s = seq.insert(d, false).expect("eviction");
        let ev_b = bat.insert(d, false).expect("eviction");
        assert_eq!(ev_s, ev_b);
        assert_eq!(ev_s.line, b, "a was refreshed last (lru 11 vs 10)");
    }

    #[test]
    fn batched_hit_marks_dirty_once() {
        let mut c = tiny();
        let a = LineAddr(0x3);
        c.insert(a, false);
        c.access_hit_n(a, 4, true);
        assert_eq!(c.invalidate(a), Some(true));
        assert_eq!(c.stats.hits, 4);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn batched_hit_requires_residency() {
        let mut c = tiny();
        c.access_hit_n(LineAddr(0x40), 2, false);
    }

    #[test]
    fn paper_l1_geometry() {
        let c = SetAssocCache::new(CacheGeometry { capacity: 64 << 10, ways: 4, latency: 1 });
        assert_eq!(c.sets, 256);
        assert_eq!(c.latency(), 1);
    }
}
