//! Cache structures for the AVR reproduction.
//!
//! * [`set_assoc`] — a conventional set-associative write-back cache used
//!   for the private L1/L2 levels and the baseline LLC. The simulator keeps
//!   data in a central backing store, so caches track only presence,
//!   dirtiness and recency.
//! * [`llc`] — the decoupled AVR last-level cache (paper §3.4, Fig. 6):
//!   a block-granularity tag array, a line-granularity data array and the
//!   back-pointer array tying them together; it co-locates uncompressed
//!   cachelines (UCL) and compressed memory sub-blocks (CMS).
//! * [`cmt`] — the Compression Metadata Table (paper §3.2, Fig. 3) and its
//!   on-chip cache.
//! * [`dbuf`] — the decompressed-block buffer.
//! * [`pfe`] — the prefetch engine deciding which DBUF lines to save.

pub mod cmt;
pub mod dbuf;
pub mod llc;
pub mod pfe;
pub mod set_assoc;

pub use cmt::{CmtCache, CmtEntry, CmtTable};
pub use dbuf::Dbuf;
pub use llc::{AvrLlc, ClMask, EvictList, Evicted};
pub use pfe::PrefetchEngine;
pub use set_assoc::{CacheStats, Eviction, SetAssocCache};
