//! The Compression Metadata Table (paper §3.2, Fig. 3).
//!
//! One 24-bit entry per 1 KB memory block (four per 4 KB page): a compressed
//! flag, the compressed size, the number of lazily evicted lines parked in
//! the block's free space, the compression method, the exponent bias, and
//! the failed/skipped compression-attempt history. The table lives in main
//! memory and is cached on-chip in a TLB-like structure ([`CmtCache`]);
//! cache misses cost metadata bandwidth.

use avr_types::{BlockAddr, LINES_PER_BLOCK};
use std::collections::HashMap;

/// Per-block metadata. Field widths follow Fig. 3: size 3 b, method 2 b,
/// bias 8 b, #lazy 4 b, #failed 4 b, #skipped 2 b (= 23 b) plus the leading
/// compressed flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmtEntry {
    /// Is the block currently stored compressed in memory?
    pub compressed: bool,
    /// Compressed size in cachelines, 1..=8, encoded as size-1 in 3 bits.
    /// Meaningless when `compressed` is false.
    pub size_lines: u8,
    /// Lazily evicted uncompressed lines currently parked in the block.
    pub n_lazy: u8,
    /// The 2-bit method field (layout x datatype).
    pub method: u8,
    /// Exponent bias of the stored summary.
    pub bias: i8,
    /// Consecutive failed compression attempts (saturating, 4 bits).
    pub n_failed: u8,
    /// Recompression attempts skipped since the last real attempt (2 bits).
    pub n_skipped: u8,
}

impl CmtEntry {
    /// Free lines available for lazy evictions.
    pub fn lazy_space(&self) -> u8 {
        if !self.compressed {
            return 0;
        }
        (LINES_PER_BLOCK as u8) - self.size_lines - self.n_lazy
    }

    /// Should the next compression attempt be skipped? The paper keeps a
    /// failure count and skips "a number of recompression attempts"
    /// accordingly; our policy (documented in DESIGN.md) skips
    /// `min(n_failed, 3)` attempts after `n_failed` consecutive failures.
    pub fn should_skip(&self) -> bool {
        self.n_skipped < self.n_failed.min(3)
    }

    /// Record a skipped attempt.
    pub fn record_skip(&mut self) {
        self.n_skipped = (self.n_skipped + 1).min(3);
    }

    /// Record the outcome of a real compression attempt.
    pub fn record_attempt(&mut self, success: bool) {
        self.n_skipped = 0;
        if success {
            self.n_failed = 0;
        } else {
            self.n_failed = (self.n_failed + 1).min(15);
        }
    }

    /// Pack into the 24-bit hardware format (1 + 23 bits).
    pub fn encode(&self) -> u32 {
        debug_assert!(self.size_lines >= 1 || !self.compressed);
        debug_assert!(self.size_lines <= 8);
        debug_assert!(self.n_lazy < 16);
        debug_assert!(self.method < 4);
        debug_assert!(self.n_failed < 16);
        debug_assert!(self.n_skipped < 4);
        let size_field = if self.compressed { (self.size_lines - 1) as u32 } else { 0 };
        (self.compressed as u32)
            | size_field << 1
            | (self.n_lazy as u32) << 4
            | (self.method as u32) << 8
            | ((self.bias as u8) as u32) << 10
            | (self.n_failed as u32) << 18
            | (self.n_skipped as u32) << 22
    }

    /// Unpack from the 24-bit hardware format.
    pub fn decode(bits: u32) -> Self {
        let compressed = bits & 1 == 1;
        CmtEntry {
            compressed,
            size_lines: if compressed { ((bits >> 1) & 0x7) as u8 + 1 } else { 0 },
            n_lazy: ((bits >> 4) & 0xF) as u8,
            method: ((bits >> 8) & 0x3) as u8,
            bias: ((bits >> 10) & 0xFF) as u8 as i8,
            n_failed: ((bits >> 18) & 0xF) as u8,
            n_skipped: ((bits >> 22) & 0x3) as u8,
        }
    }
}

/// The in-memory table: one entry per approximable block.
#[derive(Clone, Debug, Default)]
pub struct CmtTable {
    entries: HashMap<BlockAddr, CmtEntry>,
}

impl CmtTable {
    pub fn get(&self, block: BlockAddr) -> CmtEntry {
        self.entries.get(&block).copied().unwrap_or_default()
    }

    pub fn get_mut(&mut self, block: BlockAddr) -> &mut CmtEntry {
        self.entries.entry(block).or_default()
    }

    pub fn set(&mut self, block: BlockAddr, e: CmtEntry) {
        self.entries.insert(block, e);
    }

    /// Iterate all populated entries (footprint accounting).
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &CmtEntry)> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The on-chip CMT cache, updated in pair with the TLB: page-granularity,
/// fully associative LRU over `capacity_pages` entries. A miss costs a
/// metadata fetch (~12 B: 4 entries x 23 bits + the TLB approx bit).
#[derive(Clone, Debug)]
pub struct CmtCache {
    capacity_pages: usize,
    resident: HashMap<u64, u64>, // page -> last-use clock
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

/// Metadata bytes transferred on a CMT-cache miss (93 bits rounded up).
pub const CMT_MISS_BYTES: u64 = 12;

impl CmtCache {
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0);
        CmtCache {
            capacity_pages,
            resident: HashMap::with_capacity(capacity_pages + 1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touch the page holding `block`'s metadata; returns `true` on hit.
    /// On a miss the caller charges [`CMT_MISS_BYTES`] of traffic.
    pub fn touch(&mut self, block: BlockAddr) -> bool {
        self.clock += 1;
        let page = block.page();
        if let Some(t) = self.resident.get_mut(&page) {
            *t = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() >= self.capacity_pages {
            // Evict the LRU page.
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &t)| t) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(page, self.clock);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_encodes_into_24_bits() {
        let e = CmtEntry {
            compressed: true,
            size_lines: 8,
            n_lazy: 15,
            method: 3,
            bias: -128,
            n_failed: 15,
            n_skipped: 3,
        };
        let bits = e.encode();
        assert!(bits < 1 << 24, "entry must fit 1+23 bits, got {bits:#x}");
        assert_eq!(CmtEntry::decode(bits), e);
    }

    #[test]
    fn encode_round_trips_edge_values() {
        for compressed in [false, true] {
            for size in 1..=8u8 {
                for bias in [-128i8, -1, 0, 1, 127] {
                    let e = CmtEntry {
                        compressed,
                        size_lines: if compressed { size } else { 0 },
                        n_lazy: size % 8,
                        method: size % 4,
                        bias,
                        n_failed: size,
                        n_skipped: size % 4,
                    };
                    assert_eq!(CmtEntry::decode(e.encode()), e);
                }
            }
        }
    }

    #[test]
    fn lazy_space_accounting() {
        let e = CmtEntry { compressed: true, size_lines: 3, n_lazy: 5, ..Default::default() };
        assert_eq!(e.lazy_space(), 8);
        let full = CmtEntry { compressed: true, size_lines: 8, n_lazy: 8, ..Default::default() };
        assert_eq!(full.lazy_space(), 0);
        let uncomp = CmtEntry::default();
        assert_eq!(uncomp.lazy_space(), 0);
    }

    #[test]
    fn skip_policy_backs_off_with_failures() {
        let mut e = CmtEntry::default();
        // First failure -> skip 1 attempt.
        e.record_attempt(false);
        assert!(e.should_skip());
        e.record_skip();
        assert!(!e.should_skip());
        // Second consecutive failure -> skip 2.
        e.record_attempt(false);
        assert_eq!(e.n_failed, 2);
        assert!(e.should_skip());
        e.record_skip();
        assert!(e.should_skip());
        e.record_skip();
        assert!(!e.should_skip());
        // Success clears the history.
        e.record_attempt(true);
        assert_eq!(e.n_failed, 0);
        assert!(!e.should_skip());
    }

    #[test]
    fn failures_saturate_at_15_and_skips_cap_at_3() {
        let mut e = CmtEntry::default();
        for _ in 0..40 {
            e.record_attempt(false);
        }
        assert_eq!(e.n_failed, 15);
        assert!(e.should_skip());
        for _ in 0..3 {
            e.record_skip();
        }
        // Even with 15 failures, at most 3 skips before retrying.
        assert!(!e.should_skip());
    }

    #[test]
    fn table_defaults_to_uncompressed() {
        let t = CmtTable::default();
        let e = t.get(BlockAddr(42));
        assert!(!e.compressed);
        assert_eq!(e.n_lazy, 0);
    }

    #[test]
    fn cmt_cache_hits_after_touch() {
        let mut c = CmtCache::new(2);
        let b = BlockAddr(4); // page 1
        assert!(!c.touch(b));
        assert!(c.touch(b));
        assert!(c.touch(BlockAddr(5))); // same page
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn cmt_cache_evicts_lru_page() {
        let mut c = CmtCache::new(2);
        let (p0, p1, p2) = (BlockAddr(0), BlockAddr(4), BlockAddr(8));
        c.touch(p0);
        c.touch(p1);
        c.touch(p0); // p1 is now LRU
        c.touch(p2); // evicts p1
        assert!(c.touch(p0));
        assert!(!c.touch(p1), "p1 must have been evicted");
    }
}
