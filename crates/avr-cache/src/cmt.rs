//! The Compression Metadata Table (paper §3.2, Fig. 3).
//!
//! One 24-bit entry per 1 KB memory block (four per 4 KB page): a compressed
//! flag, the compressed size, the number of lazily evicted lines parked in
//! the block's free space, the compression method, the exponent bias, and
//! the failed/skipped compression-attempt history. The table lives in main
//! memory and is cached on-chip in a TLB-like structure ([`CmtCache`]);
//! cache misses cost metadata bandwidth.

use avr_types::{BlockAddr, LINES_PER_BLOCK};

/// Per-block metadata. Field widths follow Fig. 3: size 3 b, method 2 b,
/// bias 8 b, #lazy 4 b, #failed 4 b, #skipped 2 b (= 23 b) plus the leading
/// compressed flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmtEntry {
    /// Is the block currently stored compressed in memory?
    pub compressed: bool,
    /// Compressed size in cachelines, 1..=8, encoded as size-1 in 3 bits.
    /// Meaningless when `compressed` is false.
    pub size_lines: u8,
    /// Lazily evicted uncompressed lines currently parked in the block.
    pub n_lazy: u8,
    /// The 2-bit method field (layout x datatype).
    pub method: u8,
    /// Exponent bias of the stored summary.
    pub bias: i8,
    /// Consecutive failed compression attempts (saturating, 4 bits).
    pub n_failed: u8,
    /// Recompression attempts skipped since the last real attempt (2 bits).
    pub n_skipped: u8,
}

impl CmtEntry {
    /// Free lines available for lazy evictions.
    pub fn lazy_space(&self) -> u8 {
        if !self.compressed {
            return 0;
        }
        (LINES_PER_BLOCK as u8) - self.size_lines - self.n_lazy
    }

    /// Should the next compression attempt be skipped? The paper keeps a
    /// failure count and skips "a number of recompression attempts"
    /// accordingly; our policy (documented in DESIGN.md) skips
    /// `min(n_failed, 3)` attempts after `n_failed` consecutive failures.
    pub fn should_skip(&self) -> bool {
        self.n_skipped < self.n_failed.min(3)
    }

    /// Record a skipped attempt.
    pub fn record_skip(&mut self) {
        self.n_skipped = (self.n_skipped + 1).min(3);
    }

    /// Record the outcome of a real compression attempt.
    pub fn record_attempt(&mut self, success: bool) {
        self.n_skipped = 0;
        if success {
            self.n_failed = 0;
        } else {
            self.n_failed = (self.n_failed + 1).min(15);
        }
    }

    /// Pack into the 24-bit hardware format (1 + 23 bits).
    pub fn encode(&self) -> u32 {
        debug_assert!(self.size_lines >= 1 || !self.compressed);
        debug_assert!(self.size_lines <= 8);
        debug_assert!(self.n_lazy < 16);
        debug_assert!(self.method < 4);
        debug_assert!(self.n_failed < 16);
        debug_assert!(self.n_skipped < 4);
        let size_field = if self.compressed { (self.size_lines - 1) as u32 } else { 0 };
        (self.compressed as u32)
            | size_field << 1
            | (self.n_lazy as u32) << 4
            | (self.method as u32) << 8
            | ((self.bias as u8) as u32) << 10
            | (self.n_failed as u32) << 18
            | (self.n_skipped as u32) << 22
    }

    /// Unpack from the 24-bit hardware format.
    pub fn decode(bits: u32) -> Self {
        let compressed = bits & 1 == 1;
        CmtEntry {
            compressed,
            size_lines: if compressed { ((bits >> 1) & 0x7) as u8 + 1 } else { 0 },
            n_lazy: ((bits >> 4) & 0xF) as u8,
            method: ((bits >> 8) & 0x3) as u8,
            bias: ((bits >> 10) & 0xFF) as u8 as i8,
            n_failed: ((bits >> 18) & 0xF) as u8,
            n_skipped: ((bits >> 22) & 0x3) as u8,
        }
    }
}

/// Blocks covered by one lazily-allocated table segment: 4096 blocks =
/// 4 MB of simulated memory per 32 KB segment.
const CMT_SEG_BLOCKS: usize = 1 << 12;

/// The in-memory table: one entry per approximable block, stored as a
/// paged flat array indexed by block number. `get`/`get_mut` are O(1)
/// direct indexing (the hardware's table *is* a flat region of physical
/// memory); segments materialize on first write, so sparse address spaces
/// stay cheap and the steady-state access path never allocates.
#[derive(Clone, Debug, Default)]
pub struct CmtTable {
    segments: Vec<Option<Box<[CmtEntry; CMT_SEG_BLOCKS]>>>,
}

impl CmtTable {
    #[inline]
    fn split(block: BlockAddr) -> (usize, usize) {
        ((block.0 as usize) / CMT_SEG_BLOCKS, (block.0 as usize) % CMT_SEG_BLOCKS)
    }

    pub fn get(&self, block: BlockAddr) -> CmtEntry {
        let (seg, idx) = Self::split(block);
        match self.segments.get(seg) {
            Some(Some(s)) => s[idx],
            _ => CmtEntry::default(),
        }
    }

    pub fn get_mut(&mut self, block: BlockAddr) -> &mut CmtEntry {
        let (seg, idx) = Self::split(block);
        if seg >= self.segments.len() {
            self.segments.resize_with(seg + 1, || None);
        }
        let slot = &mut self.segments[seg];
        if slot.is_none() {
            *slot = Some(Box::new([CmtEntry::default(); CMT_SEG_BLOCKS]));
        }
        &mut slot.as_mut().expect("just materialized")[idx]
    }

    pub fn set(&mut self, block: BlockAddr, e: CmtEntry) {
        *self.get_mut(block) = e;
    }

    /// Iterate all non-default entries (footprint accounting).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &CmtEntry)> {
        let default = CmtEntry::default();
        self.segments.iter().enumerate().flat_map(move |(si, seg)| {
            seg.iter().flat_map(move |s| {
                s.iter()
                    .enumerate()
                    .filter(move |(_, e)| **e != default)
                    .map(move |(i, e)| (BlockAddr((si * CMT_SEG_BLOCKS + i) as u64), e))
            })
        })
    }

    /// Number of non-default entries.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The on-chip CMT cache, updated in pair with the TLB: page-granularity,
/// fully associative LRU over `capacity_pages` entries. A miss costs a
/// metadata fetch (~12 B: 4 entries x 23 bits + the TLB approx bit).
///
/// Residency is tracked in a flat open-addressed table (linear probing,
/// backward-shift deletion) sized at construction: the per-access hit path
/// probes a few adjacent slots and never allocates. LRU decisions are
/// exactly those of a fully-associative cache (each entry carries its
/// last-use clock; eviction scans for the minimum, which only runs on
/// misses with a full cache).
#[derive(Clone, Debug)]
pub struct CmtCache {
    capacity_pages: usize,
    slots: Vec<CacheSlot>,
    mask: usize,
    len: usize,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct CacheSlot {
    used: bool,
    page: u64,
    last_use: u64,
}

/// Metadata bytes transferred on a CMT-cache miss (93 bits rounded up).
pub const CMT_MISS_BYTES: u64 = 12;

impl CmtCache {
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0);
        // 2x capacity keeps probe chains short; power of two for masking.
        let table = (capacity_pages * 2).next_power_of_two();
        CmtCache {
            capacity_pages,
            slots: vec![CacheSlot::default(); table],
            mask: table - 1,
            len: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn home(&self, page: u64) -> usize {
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & self.mask
    }

    /// Backward-shift deletion keeps probe chains compact (no tombstones).
    fn remove_at(&mut self, mut i: usize) {
        self.len -= 1;
        loop {
            self.slots[i].used = false;
            let mut j = i;
            loop {
                j = (j + 1) & self.mask;
                if !self.slots[j].used {
                    return;
                }
                let home = self.home(self.slots[j].page);
                // Can entry j legally move up to the hole at i?
                if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                    self.slots[i] = self.slots[j];
                    i = j;
                    break;
                }
            }
        }
    }

    /// Touch the page holding `block`'s metadata; returns `true` on hit.
    /// On a miss the caller charges [`CMT_MISS_BYTES`] of traffic.
    pub fn touch(&mut self, block: BlockAddr) -> bool {
        self.clock += 1;
        let page = block.page();
        let mut i = self.home(page);
        while self.slots[i].used {
            if self.slots[i].page == page {
                self.slots[i].last_use = self.clock;
                self.hits += 1;
                return true;
            }
            i = (i + 1) & self.mask;
        }
        self.misses += 1;
        if self.len >= self.capacity_pages {
            // Evict the LRU page (full scan; runs only on capacity misses,
            // like the min-scan of the fully-associative model).
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.used)
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
                .expect("cache is full");
            self.remove_at(victim);
        }
        // Re-probe: the backward shift may have moved entries around.
        let mut i = self.home(page);
        while self.slots[i].used {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = CacheSlot { used: true, page, last_use: self.clock };
        self.len += 1;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_encodes_into_24_bits() {
        let e = CmtEntry {
            compressed: true,
            size_lines: 8,
            n_lazy: 15,
            method: 3,
            bias: -128,
            n_failed: 15,
            n_skipped: 3,
        };
        let bits = e.encode();
        assert!(bits < 1 << 24, "entry must fit 1+23 bits, got {bits:#x}");
        assert_eq!(CmtEntry::decode(bits), e);
    }

    #[test]
    fn encode_round_trips_edge_values() {
        for compressed in [false, true] {
            for size in 1..=8u8 {
                for bias in [-128i8, -1, 0, 1, 127] {
                    let e = CmtEntry {
                        compressed,
                        size_lines: if compressed { size } else { 0 },
                        n_lazy: size % 8,
                        method: size % 4,
                        bias,
                        n_failed: size,
                        n_skipped: size % 4,
                    };
                    assert_eq!(CmtEntry::decode(e.encode()), e);
                }
            }
        }
    }

    #[test]
    fn lazy_space_accounting() {
        let e = CmtEntry { compressed: true, size_lines: 3, n_lazy: 5, ..Default::default() };
        assert_eq!(e.lazy_space(), 8);
        let full = CmtEntry { compressed: true, size_lines: 8, n_lazy: 8, ..Default::default() };
        assert_eq!(full.lazy_space(), 0);
        let uncomp = CmtEntry::default();
        assert_eq!(uncomp.lazy_space(), 0);
    }

    #[test]
    fn skip_policy_backs_off_with_failures() {
        let mut e = CmtEntry::default();
        // First failure -> skip 1 attempt.
        e.record_attempt(false);
        assert!(e.should_skip());
        e.record_skip();
        assert!(!e.should_skip());
        // Second consecutive failure -> skip 2.
        e.record_attempt(false);
        assert_eq!(e.n_failed, 2);
        assert!(e.should_skip());
        e.record_skip();
        assert!(e.should_skip());
        e.record_skip();
        assert!(!e.should_skip());
        // Success clears the history.
        e.record_attempt(true);
        assert_eq!(e.n_failed, 0);
        assert!(!e.should_skip());
    }

    #[test]
    fn failures_saturate_at_15_and_skips_cap_at_3() {
        let mut e = CmtEntry::default();
        for _ in 0..40 {
            e.record_attempt(false);
        }
        assert_eq!(e.n_failed, 15);
        assert!(e.should_skip());
        for _ in 0..3 {
            e.record_skip();
        }
        // Even with 15 failures, at most 3 skips before retrying.
        assert!(!e.should_skip());
    }

    #[test]
    fn table_defaults_to_uncompressed() {
        let t = CmtTable::default();
        let e = t.get(BlockAddr(42));
        assert!(!e.compressed);
        assert_eq!(e.n_lazy, 0);
    }

    #[test]
    fn cmt_cache_hits_after_touch() {
        let mut c = CmtCache::new(2);
        let b = BlockAddr(4); // page 1
        assert!(!c.touch(b));
        assert!(c.touch(b));
        assert!(c.touch(BlockAddr(5))); // same page
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn table_indexes_sparse_blocks_across_segments() {
        let mut t = CmtTable::default();
        let far = [BlockAddr(0), BlockAddr(4095), BlockAddr(4096), BlockAddr(1 << 22)];
        for (i, &b) in far.iter().enumerate() {
            t.get_mut(b).n_lazy = i as u8 + 1;
        }
        for (i, &b) in far.iter().enumerate() {
            assert_eq!(t.get(b).n_lazy, i as u8 + 1);
        }
        // Untouched neighbours read as default without materializing.
        assert_eq!(t.get(BlockAddr(4097)), CmtEntry::default());
        assert_eq!(t.len(), far.len());
        let mut seen: Vec<u64> = t.iter().map(|(b, _)| b.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 4095, 4096, 1 << 22]);
    }

    #[test]
    fn cmt_cache_matches_naive_lru_model() {
        // The open-addressed cache must make exactly the decisions of a
        // fully-associative LRU over random page streams.
        let mut state = 0xC3A7u64;
        for capacity in [1usize, 2, 7, 64] {
            let mut cache = CmtCache::new(capacity);
            let mut model: Vec<u64> = Vec::new(); // MRU at the back
            for _ in 0..4000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let page = (state >> 33) % 97;
                let block = BlockAddr(page * 4); // 4 blocks per page
                let hit = cache.touch(block);
                let model_hit = model.contains(&page);
                assert_eq!(hit, model_hit, "page {page} cap {capacity}");
                model.retain(|&p| p != page);
                if !model_hit && model.len() == capacity {
                    model.remove(0); // evict LRU
                }
                model.push(page);
            }
        }
    }

    #[test]
    fn cmt_cache_evicts_lru_page() {
        let mut c = CmtCache::new(2);
        let (p0, p1, p2) = (BlockAddr(0), BlockAddr(4), BlockAddr(8));
        c.touch(p0);
        c.touch(p1);
        c.touch(p0); // p1 is now LRU
        c.touch(p2); // evicts p1
        assert!(c.touch(p0));
        assert!(!c.touch(p1), "p1 must have been evicted");
    }
}
