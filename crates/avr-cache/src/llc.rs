//! The decoupled AVR Last-Level Cache (paper §3.4, Fig. 6).
//!
//! Following Seznec's Decoupled Sectored Cache, the tag array works at
//! *memory-block* granularity (16 cachelines) while the data array and its
//! back-pointer array (BPA) work at *cacheline* granularity. A single tag
//! entry is shared by all of a block's resident lines: its uncompressed
//! cachelines (UCL) and the sub-blocks of its compressed image (CMS).
//!
//! Indexing (Fig. 6): with `n` index bits, a block's tag and its CMS₀ live
//! at set `block mod 2^n` (the *tag index*), CMSᵢ at the `i`-th subsequent
//! set, and a UCL at set `line mod 2^n` (the *UCL index*). UCLs and CMSs of
//! one block therefore map to different sets and do not reduce effective
//! associativity.
//!
//! The simulator keeps data in the central backing store; entries here hold
//! presence/dirtiness/recency plus the full back-pointer (the hardware
//! stores only `tag-way` + 4-bit `CL-id`; the cost model in
//! `avr-core::overhead` charges the paper's 18 bits per entry).

use avr_types::{BlockAddr, CacheGeometry, LineAddr, LINES_PER_BLOCK};

/// An entity pushed out of the LLC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evicted {
    /// An uncompressed cacheline left the cache.
    Ucl { line: LineAddr, dirty: bool },
    /// The compressed image of `block` left the cache (evicting any CMS
    /// evicts them all — partial compressed blocks are useless).
    CmsBlock { block: BlockAddr, dirty: bool, size_lines: u8 },
}

const EVICT_NONE: Evicted = Evicted::Ucl { line: LineAddr(0), dirty: false };

/// Worst-case eviction events from a single LLC operation: `insert_cms`
/// may evict a victim tag's whole block (16 UCLs + 1 CMS image), place up
/// to 16 CMS lines (one data-way eviction each), and re-ensure the tag
/// (another whole block) — 51 events. 56 leaves headroom.
const EVICT_CAP: usize = 56;

/// Inline fixed-capacity list of eviction events — LLC operations return
/// one of these instead of allocating a `Vec` per call.
#[derive(Clone, Copy)]
pub struct EvictList {
    len: u8,
    items: [Evicted; EVICT_CAP],
}

impl EvictList {
    pub const fn new() -> Self {
        EvictList { len: 0, items: [EVICT_NONE; EVICT_CAP] }
    }

    #[inline]
    fn push(&mut self, e: Evicted) {
        assert!((self.len as usize) < EVICT_CAP, "eviction burst exceeds EVICT_CAP");
        self.items[self.len as usize] = e;
        self.len += 1;
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn as_slice(&self) -> &[Evicted] {
        &self.items[..self.len as usize]
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Evicted> {
        self.as_slice().iter()
    }
}

impl Default for EvictList {
    fn default() -> Self {
        EvictList::new()
    }
}

impl std::fmt::Debug for EvictList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl IntoIterator for EvictList {
    type Item = Evicted;
    type IntoIter = std::iter::Take<std::array::IntoIter<Evicted, EVICT_CAP>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a EvictList {
    type Item = &'a Evicted;
    type IntoIter = std::slice::Iter<'a, Evicted>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Set of cacheline ids (0..16) within one block, as a bitmask — what
/// `ucls_of`/`dirty_ucls_of` return instead of a `Vec<u8>`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct ClMask(pub u16);

impl ClMask {
    #[inline]
    pub fn contains(self, cl: u8) -> bool {
        (self.0 >> cl) & 1 == 1
    }

    #[inline]
    pub fn insert(&mut self, cl: u8) {
        self.0 |= 1 << cl;
    }

    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Ascending cl-ids in the mask.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..LINES_PER_BLOCK as u8).filter(move |&cl| self.contains(cl))
    }

    /// Materialize as a `Vec` (test/diagnostic convenience; allocates).
    pub fn to_vec(self) -> Vec<u8> {
        self.iter().collect()
    }
}

impl std::fmt::Debug for ClMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClKind {
    Ucl { cl_id: u8 },
    Cms { idx: u8 },
}

#[derive(Clone, Copy, Debug)]
struct BpaEntry {
    valid: bool,
    kind: ClKind,
    /// Owning block (hardware: derived via tag-way + CL-id; kept whole here
    /// for assertions and O(1) reverse lookups).
    block: BlockAddr,
    dirty: bool,
    lru: u64,
}

const BPA_INVALID: BpaEntry = BpaEntry {
    valid: false,
    kind: ClKind::Ucl { cl_id: 0 },
    block: BlockAddr(0),
    dirty: false,
    lru: 0,
};

#[derive(Clone, Copy, Debug)]
struct TagEntry {
    valid: bool,
    block: BlockAddr,
    /// Cachelines of the compressed image resident (0 = absent).
    cms_count: u8,
    /// Uncompressed cachelines of the block resident.
    ucl_count: u8,
    /// The compressed image differs from memory.
    block_dirty: bool,
    lru: u64,
}

const TAG_INVALID: TagEntry = TagEntry {
    valid: false,
    block: BlockAddr(0),
    cms_count: 0,
    ucl_count: 0,
    block_dirty: false,
    lru: 0,
};

/// LLC activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LlcStats {
    pub ucl_hits: u64,
    pub misses: u64,
    pub tag_evictions: u64,
}

/// The decoupled AVR LLC.
#[derive(Clone, Debug)]
pub struct AvrLlc {
    sets: usize,
    ways: usize,
    latency: u64,
    tags: Vec<TagEntry>,
    bpa: Vec<BpaEntry>,
    clock: u64,
    pub stats: LlcStats,
}

impl AvrLlc {
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        assert!(sets.is_power_of_two() && sets >= LINES_PER_BLOCK);
        AvrLlc {
            sets,
            ways: geom.ways,
            latency: geom.latency,
            tags: vec![TAG_INVALID; sets * geom.ways],
            bpa: vec![BPA_INVALID; sets * geom.ways],
            clock: 0,
            stats: LlcStats::default(),
        }
    }

    pub fn latency(&self) -> u64 {
        self.latency
    }

    #[inline]
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    #[inline]
    fn tag_index(&self, block: BlockAddr) -> usize {
        (block.0 as usize) & (self.sets - 1)
    }

    #[inline]
    fn ucl_index(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }

    #[inline]
    fn cms_set(&self, block: BlockAddr, idx: u8) -> usize {
        (self.tag_index(block) + idx as usize) & (self.sets - 1)
    }

    fn find_tag(&self, block: BlockAddr) -> Option<usize> {
        let base = self.tag_index(block) * self.ways;
        (base..base + self.ways).find(|&i| self.tags[i].valid && self.tags[i].block == block)
    }

    fn find_bpa(&self, set: usize, block: BlockAddr, kind: ClKind) -> Option<usize> {
        let base = set * self.ways;
        (base..base + self.ways)
            .find(|&i| self.bpa[i].valid && self.bpa[i].block == block && self.bpa[i].kind == kind)
    }

    // ------------------------------------------------------------------
    // Lookups
    // ------------------------------------------------------------------

    /// Non-destructive presence check for a UCL.
    pub fn probe_ucl(&self, line: LineAddr) -> bool {
        self.find_bpa(
            self.ucl_index(line),
            line.block(),
            ClKind::Ucl { cl_id: line.cl_offset() as u8 },
        )
        .is_some()
    }

    /// Presence check for the compressed image of `block`; returns its size.
    pub fn probe_cms(&self, block: BlockAddr) -> Option<u8> {
        let t = self.find_tag(block)?;
        let c = self.tags[t].cms_count;
        (c > 0).then_some(c)
    }

    /// UCL lookup (paper Fig. 6): on a hit the UCL's recency refreshes, the
    /// block tag's LRU refreshes, and the block's CMS entries refresh too
    /// ("the CMS LRU bits are updated when any UCL of the block is
    /// accessed"). Counts hit/miss statistics.
    pub fn access_ucl(&mut self, line: LineAddr, write: bool) -> bool {
        let now = self.tick();
        let block = line.block();
        let kind = ClKind::Ucl { cl_id: line.cl_offset() as u8 };
        match self.find_bpa(self.ucl_index(line), block, kind) {
            Some(i) => {
                self.bpa[i].lru = now;
                if write {
                    self.bpa[i].dirty = true;
                }
                if let Some(t) = self.find_tag(block) {
                    self.tags[t].lru = now;
                    let count = self.tags[t].cms_count;
                    for idx in 0..count {
                        let set = self.cms_set(block, idx);
                        if let Some(c) = self.find_bpa(set, block, ClKind::Cms { idx }) {
                            self.bpa[c].lru = now;
                        }
                    }
                }
                self.stats.ucl_hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Was the UCL dirty? (no LRU effect)
    pub fn ucl_dirty(&self, line: LineAddr) -> Option<bool> {
        self.find_bpa(
            self.ucl_index(line),
            line.block(),
            ClKind::Ucl { cl_id: line.cl_offset() as u8 },
        )
        .map(|i| self.bpa[i].dirty)
    }

    /// cl-ids of the block's resident UCLs, as a bitmask (no allocation).
    pub fn ucls_of(&self, block: BlockAddr) -> ClMask {
        let mut out = ClMask::default();
        for cl in 0..LINES_PER_BLOCK as u8 {
            let line = block.line(cl as usize);
            if self.probe_ucl(line) {
                out.insert(cl);
            }
        }
        out
    }

    /// cl-ids of the block's *dirty* resident UCLs, as a bitmask.
    pub fn dirty_ucls_of(&self, block: BlockAddr) -> ClMask {
        let mut out = ClMask::default();
        for cl in self.ucls_of(block).iter() {
            if self.ucl_dirty(block.line(cl as usize)) == Some(true) {
                out.insert(cl);
            }
        }
        out
    }

    /// Mark all the block's UCLs clean (after their data was folded into a
    /// recompression that reached memory).
    pub fn clean_ucls_of(&mut self, block: BlockAddr) {
        for cl in 0..LINES_PER_BLOCK as u8 {
            let line = block.line(cl as usize);
            let kind = ClKind::Ucl { cl_id: cl };
            if let Some(i) = self.find_bpa(self.ucl_index(line), block, kind) {
                self.bpa[i].dirty = false;
            }
        }
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Ensure a tag entry exists for `block`, evicting a victim block
    /// entirely if the tag set is full. Appends eviction events to the
    /// caller-provided scratch list and returns the tag slot.
    fn ensure_tag(&mut self, block: BlockAddr, out: &mut EvictList) -> usize {
        let now = self.tick();
        if let Some(i) = self.find_tag(block) {
            return i;
        }
        let base = self.tag_index(block) * self.ways;
        // Free way?
        if let Some(i) = (base..base + self.ways).find(|&i| !self.tags[i].valid) {
            self.tags[i] = TagEntry { valid: true, block, lru: now, ..TAG_INVALID };
            self.tags[i].valid = true;
            return i;
        }
        // Evict the LRU tag and everything it maps.
        let victim =
            (base..base + self.ways).min_by_key(|&i| self.tags[i].lru).expect("nonzero ways");
        let victim_block = self.tags[victim].block;
        self.evict_block_into(victim_block, out);
        self.stats.tag_evictions += 1;
        self.tags[victim] = TagEntry { valid: true, block, lru: now, ..TAG_INVALID };
        self.tags[victim].valid = true;
        victim
    }

    /// Remove every trace of `block` (tag + all UCLs + CMS image),
    /// reporting what fell out.
    pub fn evict_block(&mut self, block: BlockAddr) -> EvictList {
        let mut out = EvictList::new();
        self.evict_block_into(block, &mut out);
        out
    }

    fn evict_block_into(&mut self, block: BlockAddr, out: &mut EvictList) {
        let Some(t) = self.find_tag(block) else {
            return;
        };
        let cms_count = self.tags[t].cms_count;
        // UCLs first.
        for cl in 0..LINES_PER_BLOCK as u8 {
            let line = block.line(cl as usize);
            let kind = ClKind::Ucl { cl_id: cl };
            if let Some(i) = self.find_bpa(self.ucl_index(line), block, kind) {
                out.push(Evicted::Ucl { line, dirty: self.bpa[i].dirty });
                self.bpa[i] = BPA_INVALID;
            }
        }
        // CMS image.
        if cms_count > 0 {
            for idx in 0..cms_count {
                let set = self.cms_set(block, idx);
                if let Some(i) = self.find_bpa(set, block, ClKind::Cms { idx }) {
                    self.bpa[i] = BPA_INVALID;
                }
            }
            out.push(Evicted::CmsBlock {
                block,
                dirty: self.tags[t].block_dirty,
                size_lines: cms_count,
            });
        }
        self.tags[t] = TAG_INVALID;
    }

    /// Pick a victim way in a BPA set (UCLs and CMSs compete equally by
    /// LRU) and evict it. A CMS victim drags its whole compressed block out.
    fn evict_for(&mut self, set: usize, out: &mut EvictList) -> usize {
        let base = set * self.ways;
        if let Some(i) = (base..base + self.ways).find(|&i| !self.bpa[i].valid) {
            return i;
        }
        let victim =
            (base..base + self.ways).min_by_key(|&i| self.bpa[i].lru).expect("nonzero ways");
        let e = self.bpa[victim];
        match e.kind {
            ClKind::Ucl { cl_id } => {
                out.push(Evicted::Ucl { line: e.block.line(cl_id as usize), dirty: e.dirty });
                self.bpa[victim] = BPA_INVALID;
                if let Some(t) = self.find_tag(e.block) {
                    self.tags[t].ucl_count -= 1;
                    if self.tags[t].ucl_count == 0 && self.tags[t].cms_count == 0 {
                        self.tags[t] = TAG_INVALID;
                    }
                }
            }
            ClKind::Cms { .. } => {
                // Evicting one CMS evicts the whole compressed image; the
                // tag survives if it still maps UCLs (Fig. 8 / §3.4).
                let block = e.block;
                if let Some(t) = self.find_tag(block) {
                    let count = self.tags[t].cms_count;
                    for idx in 0..count {
                        let s = self.cms_set(block, idx);
                        if let Some(i) = self.find_bpa(s, block, ClKind::Cms { idx }) {
                            self.bpa[i] = BPA_INVALID;
                        }
                    }
                    out.push(Evicted::CmsBlock {
                        block,
                        dirty: self.tags[t].block_dirty,
                        size_lines: count,
                    });
                    self.tags[t].cms_count = 0;
                    self.tags[t].block_dirty = false;
                    if self.tags[t].ucl_count == 0 {
                        self.tags[t] = TAG_INVALID;
                    }
                } else {
                    debug_assert!(false, "CMS entry without tag");
                    self.bpa[victim] = BPA_INVALID;
                }
            }
        }
        debug_assert!(!self.bpa[victim].valid);
        victim
    }

    /// Insert (or refresh) a UCL. Returns everything evicted to make room.
    pub fn insert_ucl(&mut self, line: LineAddr, dirty: bool) -> EvictList {
        let block = line.block();
        let cl_id = line.cl_offset() as u8;
        let kind = ClKind::Ucl { cl_id };
        let set = self.ucl_index(line);
        let now = self.tick();
        let mut evictions = EvictList::new();

        if let Some(i) = self.find_bpa(set, block, kind) {
            self.bpa[i].lru = now;
            self.bpa[i].dirty |= dirty;
            if let Some(t) = self.find_tag(block) {
                self.tags[t].lru = now;
            }
            return evictions;
        }

        self.ensure_tag(block, &mut evictions);
        // The data-way eviction below may hit any entry — including this
        // block's *own* CMS image (a UCL set can coincide with one of the
        // block's CMS sets). Evicting that image with ucl_count still 0
        // frees the tag we just installed, so re-ensure it afterwards.
        let slot = self.evict_for(set, &mut evictions);
        self.bpa[slot] = BpaEntry { valid: true, kind, block, dirty, lru: now };
        let t = match self.find_tag(block) {
            Some(t) => t,
            None => self.ensure_tag(block, &mut evictions),
        };
        self.tags[t].ucl_count += 1;
        self.tags[t].lru = now;
        evictions
    }

    /// Drop a UCL (e.g. superseded), returning whether it was dirty.
    pub fn invalidate_ucl(&mut self, line: LineAddr) -> Option<bool> {
        let block = line.block();
        let kind = ClKind::Ucl { cl_id: line.cl_offset() as u8 };
        let i = self.find_bpa(self.ucl_index(line), block, kind)?;
        let dirty = self.bpa[i].dirty;
        self.bpa[i] = BPA_INVALID;
        if let Some(t) = self.find_tag(block) {
            self.tags[t].ucl_count -= 1;
            if self.tags[t].ucl_count == 0 && self.tags[t].cms_count == 0 {
                self.tags[t] = TAG_INVALID;
            }
        }
        Some(dirty)
    }

    /// Install the compressed image of `block` (`size_lines` CMSs at
    /// consecutive sets starting from the tag index). Replaces any previous
    /// image. Returns eviction events for displaced entries.
    pub fn insert_cms(&mut self, block: BlockAddr, size_lines: u8, dirty: bool) -> EvictList {
        assert!(size_lines >= 1 && size_lines as usize <= LINES_PER_BLOCK);
        let mut evictions = EvictList::new();
        let t = self.ensure_tag(block, &mut evictions);

        // Drop a stale image (recompression may change the size).
        let old = self.tags[t].cms_count;
        for idx in 0..old {
            let s = self.cms_set(block, idx);
            if let Some(i) = self.find_bpa(s, block, ClKind::Cms { idx }) {
                self.bpa[i] = BPA_INVALID;
            }
        }

        let now = self.tick();
        for idx in 0..size_lines {
            let set = self.cms_set(block, idx);
            let slot = self.evict_for(set, &mut evictions);
            self.bpa[slot] =
                BpaEntry { valid: true, kind: ClKind::Cms { idx }, block, dirty: false, lru: now };
        }
        // `evict_for` cannot drop a freshly-inserted CMS of this block
        // (consecutive sets are distinct for size <= 16 <= sets), but it
        // *can* evict the block's last UCL, freeing the tag while
        // cms_count is still 0 — re-ensure it.
        let t = match self.find_tag(block) {
            Some(t) => t,
            None => self.ensure_tag(block, &mut evictions),
        };
        self.tags[t].cms_count = size_lines;
        self.tags[t].block_dirty = dirty;
        // "The LRU of a block tag is updated ... when the block is
        // recompressed."
        self.tags[t].lru = now;
        evictions
    }

    /// Remove the compressed image (e.g. after writing it back), keeping
    /// UCLs and the tag if any remain. Returns (dirty, size).
    pub fn remove_cms(&mut self, block: BlockAddr) -> Option<(bool, u8)> {
        let t = self.find_tag(block)?;
        let count = self.tags[t].cms_count;
        if count == 0 {
            return None;
        }
        for idx in 0..count {
            let s = self.cms_set(block, idx);
            if let Some(i) = self.find_bpa(s, block, ClKind::Cms { idx }) {
                self.bpa[i] = BPA_INVALID;
            }
        }
        let dirty = self.tags[t].block_dirty;
        self.tags[t].cms_count = 0;
        self.tags[t].block_dirty = false;
        if self.tags[t].ucl_count == 0 {
            self.tags[t] = TAG_INVALID;
        }
        Some((dirty, count))
    }

    /// Mark the resident compressed image dirty (it was updated on-chip).
    pub fn mark_cms_dirty(&mut self, block: BlockAddr) {
        if let Some(t) = self.find_tag(block) {
            if self.tags[t].cms_count > 0 {
                self.tags[t].block_dirty = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Fraction of data-array entries holding CMSs (the paper reports AVR
    /// devotes 2–16 % of LLC capacity to compressed blocks).
    pub fn cms_fraction(&self) -> f64 {
        let cms =
            self.bpa.iter().filter(|e| e.valid && matches!(e.kind, ClKind::Cms { .. })).count();
        cms as f64 / self.bpa.len() as f64
    }

    /// Number of valid data-array entries.
    pub fn occupancy(&self) -> usize {
        self.bpa.iter().filter(|e| e.valid).count()
    }

    /// Internal consistency check: every BPA entry's block has a valid
    /// tag, and tag counts match the BPA contents. The HashMap walk is
    /// compiled only under `debug_assertions` (tests / debug builds) so
    /// release simulation loops that call it defensively pay nothing.
    pub fn check_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            use std::collections::HashMap;
            let mut ucls: HashMap<BlockAddr, u8> = HashMap::new();
            let mut cmss: HashMap<BlockAddr, u8> = HashMap::new();
            for e in self.bpa.iter().filter(|e| e.valid) {
                match e.kind {
                    ClKind::Ucl { .. } => *ucls.entry(e.block).or_default() += 1,
                    ClKind::Cms { .. } => *cmss.entry(e.block).or_default() += 1,
                }
            }
            for t in self.tags.iter().filter(|t| t.valid) {
                assert_eq!(
                    t.ucl_count,
                    ucls.get(&t.block).copied().unwrap_or(0),
                    "ucl_count mismatch for {:?}",
                    t.block
                );
                assert_eq!(
                    t.cms_count,
                    cmss.get(&t.block).copied().unwrap_or(0),
                    "cms_count mismatch for {:?}",
                    t.block
                );
            }
            for (b, _) in ucls.iter().chain(cmss.iter()) {
                assert!(self.find_tag(*b).is_some(), "orphan BPA entries for {b:?}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::CacheGeometry;

    /// 64 sets x 4 ways = 16 KB — small enough to force evictions.
    fn llc() -> AvrLlc {
        AvrLlc::new(CacheGeometry { capacity: 64 * 4 * 64, ways: 4, latency: 15 })
    }

    #[test]
    fn ucl_miss_then_hit() {
        let mut c = llc();
        let line = BlockAddr(5).line(3);
        assert!(!c.access_ucl(line, false));
        let evs = c.insert_ucl(line, false);
        assert!(evs.is_empty());
        assert!(c.access_ucl(line, false));
        assert!(c.probe_ucl(line));
        c.check_invariants();
    }

    #[test]
    fn ucl_and_cms_coexist_for_one_tag() {
        let mut c = llc();
        let b = BlockAddr(9);
        c.insert_cms(b, 3, false);
        c.insert_ucl(b.line(0), false);
        c.insert_ucl(b.line(7), true);
        assert_eq!(c.probe_cms(b), Some(3));
        assert!(c.probe_ucl(b.line(0)));
        assert_eq!(c.ucls_of(b).to_vec(), vec![0, 7]);
        assert_eq!(c.dirty_ucls_of(b).to_vec(), vec![7]);
        c.check_invariants();
    }

    #[test]
    fn cms_sets_are_consecutive_from_tag_index() {
        let c = llc();
        let b = BlockAddr(10);
        assert_eq!(c.cms_set(b, 0), 10);
        assert_eq!(c.cms_set(b, 5), 15);
        // Wraps modulo set count.
        let b2 = BlockAddr(63);
        assert_eq!(c.cms_set(b2, 2), 1);
    }

    #[test]
    fn evicting_one_cms_evicts_whole_image() {
        let mut c = llc();
        let b = BlockAddr(20);
        c.insert_cms(b, 4, true);
        // Fill set 21 (= CMS idx 1's set) with UCLs from other blocks whose
        // lines index to set 21.
        let mut evs = Vec::new();
        for k in 0..4u64 {
            // line addr ≡ 21 (mod 64): use blocks far apart.
            let line = LineAddr(21 + 64 * (k + 1) * 16);
            evs.extend(c.insert_ucl(line, false));
        }
        // One of those insertions must have displaced the CMS, dragging the
        // whole compressed image out, dirty.
        assert!(
            evs.iter().any(|e| matches!(
                e,
                Evicted::CmsBlock { block, dirty: true, size_lines: 4 } if *block == b
            )),
            "{evs:?}"
        );
        assert_eq!(c.probe_cms(b), None);
        c.check_invariants();
    }

    #[test]
    fn tag_survives_cms_eviction_if_ucls_remain() {
        let mut c = llc();
        let b = BlockAddr(30);
        c.insert_cms(b, 2, false);
        c.insert_ucl(b.line(4), true);
        c.remove_cms(b);
        assert_eq!(c.probe_cms(b), None);
        assert!(c.probe_ucl(b.line(4)), "UCL must survive");
        c.check_invariants();
    }

    #[test]
    fn tag_eviction_spills_every_line_of_victim_block() {
        let mut c = llc();
        // 4 ways of tags at tag set 0: blocks 0, 64, 128, 192 (mod 64 = 0).
        for k in 0..4u64 {
            let b = BlockAddr(64 * k);
            c.insert_ucl(b.line(1), true);
            c.insert_ucl(b.line(2), false);
        }
        // A fifth block at the same tag set forces a tag eviction; victim
        // is block 0 (LRU).
        let evs = c.insert_ucl(BlockAddr(256).line(1), false);
        let dirty_ucls: Vec<_> =
            evs.iter().filter(|e| matches!(e, Evicted::Ucl { dirty: true, .. })).collect();
        assert_eq!(dirty_ucls.len(), 1, "block 0's dirty line 1 must spill: {evs:?}");
        assert_eq!(evs.len(), 2, "both UCLs of the victim leave");
        assert!(!c.probe_ucl(BlockAddr(0).line(1)));
        c.check_invariants();
    }

    #[test]
    fn recompression_replaces_image_and_updates_size() {
        let mut c = llc();
        let b = BlockAddr(40);
        c.insert_cms(b, 6, false);
        assert_eq!(c.probe_cms(b), Some(6));
        let evs = c.insert_cms(b, 2, true);
        assert!(evs.is_empty(), "shrinking in place evicts nothing: {evs:?}");
        assert_eq!(c.probe_cms(b), Some(2));
        c.check_invariants();
    }

    #[test]
    fn mark_cms_dirty_then_remove_reports_dirty() {
        let mut c = llc();
        let b = BlockAddr(50);
        c.insert_cms(b, 3, false);
        c.mark_cms_dirty(b);
        assert_eq!(c.remove_cms(b), Some((true, 3)));
        assert_eq!(c.remove_cms(b), None);
        c.check_invariants();
    }

    #[test]
    fn invalidate_ucl_frees_tag_when_last() {
        let mut c = llc();
        let b = BlockAddr(11);
        c.insert_ucl(b.line(3), true);
        assert_eq!(c.invalidate_ucl(b.line(3)), Some(true));
        assert_eq!(c.invalidate_ucl(b.line(3)), None);
        // Tag must be gone: inserting a new block in the same tag set
        // should not trigger a tag eviction.
        let before = c.stats.tag_evictions;
        for k in 1..=4u64 {
            c.insert_ucl(BlockAddr(11 + 64 * k).line(0), false);
        }
        assert_eq!(c.stats.tag_evictions, before);
        c.check_invariants();
    }

    #[test]
    fn ucl_access_refreshes_block_cms_recency() {
        let mut c = llc();
        let b = BlockAddr(2);
        c.insert_cms(b, 1, false); // CMS0 at set 2
        c.insert_ucl(b.line(5), false);
        // Age the CMS by inserting other UCLs into set 2.
        for k in 1..=3u64 {
            c.insert_ucl(LineAddr(2 + 16 * 64 * k), false);
        }
        // Touch the block's UCL: its CMS becomes MRU again.
        c.access_ucl(b.line(5), false);
        // Now overflow set 2: the victim must be one of the other UCLs,
        // not the CMS.
        let evs = c.insert_ucl(LineAddr(2 + 16 * 64 * 9), false);
        assert!(
            evs.iter().all(|e| matches!(e, Evicted::Ucl { .. })),
            "CMS must have been protected by the UCL touch: {evs:?}"
        );
        assert_eq!(c.probe_cms(b), Some(1));
        c.check_invariants();
    }

    #[test]
    fn ucl_and_cms_of_one_block_map_to_distinct_roles() {
        let mut c = llc();
        let b = BlockAddr(0);
        // cl 0's UCL set = 0 = CMS0's set; both can coexist in different
        // ways of the same set.
        c.insert_cms(b, 1, false);
        c.insert_ucl(b.line(0), false);
        assert!(c.probe_ucl(b.line(0)));
        assert_eq!(c.probe_cms(b), Some(1));
        c.check_invariants();
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = llc();
        let l = BlockAddr(7).line(0);
        c.access_ucl(l, false);
        c.insert_ucl(l, false);
        c.access_ucl(l, false);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.ucl_hits, 1);
    }

    #[test]
    fn cms_fraction_reflects_occupancy() {
        let mut c = llc();
        assert_eq!(c.cms_fraction(), 0.0);
        c.insert_cms(BlockAddr(1), 8, false);
        let expect = 8.0 / (64.0 * 4.0);
        assert!((c.cms_fraction() - expect).abs() < 1e-12);
    }
}
