//! The decompressed-block buffer (paper §3.3, "Prefetching decompressed
//! cachelines").
//!
//! After decompressing a block, only the requested cacheline goes to the
//! LLC; the rest stay in the DBUF until the next decompression overwrites
//! them. Requests hitting the DBUF are served from it (and promoted to the
//! LLC); when a new block arrives, the PFE inspects the old block's request
//! mask to decide which remaining lines to save.

use avr_types::{BlockAddr, LineAddr, LINES_PER_BLOCK};

/// Snapshot of the block being replaced, handed to the prefetch engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbufEviction {
    pub block: BlockAddr,
    /// Lines explicitly requested while the block was buffered.
    pub requested_mask: u16,
}

/// The single-block decompressed buffer.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dbuf {
    block: Option<BlockAddr>,
    requested_mask: u16,
    pub hits: u64,
}

impl Dbuf {
    pub fn new() -> Self {
        Dbuf::default()
    }

    /// The currently buffered block, if any.
    pub fn current(&self) -> Option<BlockAddr> {
        self.block
    }

    /// Bitmask of lines requested from the current block.
    pub fn requested_mask(&self) -> u16 {
        self.requested_mask
    }

    /// Number of lines explicitly requested from the current block.
    pub fn requested_count(&self) -> u32 {
        self.requested_mask.count_ones()
    }

    /// Does the buffer hold this line?
    pub fn contains(&self, line: LineAddr) -> bool {
        self.block == Some(line.block())
    }

    /// Serve a request: returns `true` on a DBUF hit and records the line
    /// in the request mask.
    pub fn request(&mut self, line: LineAddr) -> bool {
        if self.contains(line) {
            self.requested_mask |= 1 << line.cl_offset();
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Load a freshly decompressed block, marking `first_request` as
    /// already requested. Returns the replaced block's snapshot for the PFE.
    pub fn load(&mut self, block: BlockAddr, first_request: Option<usize>) -> Option<DbufEviction> {
        let old =
            self.block.map(|b| DbufEviction { block: b, requested_mask: self.requested_mask });
        self.block = Some(block);
        self.requested_mask = first_request.map_or(0, |cl| {
            debug_assert!(cl < LINES_PER_BLOCK);
            1 << cl
        });
        old
    }

    /// Drop the buffered block (e.g. it was invalidated by a writeback).
    pub fn invalidate(&mut self) -> Option<DbufEviction> {
        let old =
            self.block.map(|b| DbufEviction { block: b, requested_mask: self.requested_mask });
        self.block = None;
        self.requested_mask = 0;
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_misses() {
        let mut d = Dbuf::new();
        assert!(!d.request(BlockAddr(3).line(0)));
        assert_eq!(d.hits, 0);
    }

    #[test]
    fn loaded_block_serves_all_its_lines() {
        let mut d = Dbuf::new();
        d.load(BlockAddr(3), Some(2));
        for i in 0..LINES_PER_BLOCK {
            assert!(d.request(BlockAddr(3).line(i)));
        }
        assert!(!d.request(BlockAddr(4).line(0)));
        assert_eq!(d.hits, LINES_PER_BLOCK as u64);
        assert_eq!(d.requested_count(), LINES_PER_BLOCK as u32);
    }

    #[test]
    fn request_mask_accumulates() {
        let mut d = Dbuf::new();
        d.load(BlockAddr(9), Some(0));
        d.request(BlockAddr(9).line(5));
        d.request(BlockAddr(9).line(5)); // repeat does not double count
        d.request(BlockAddr(9).line(15));
        assert_eq!(d.requested_mask(), 1 | 1 << 5 | 1 << 15);
        assert_eq!(d.requested_count(), 3);
    }

    #[test]
    fn load_returns_previous_snapshot() {
        let mut d = Dbuf::new();
        assert!(d.load(BlockAddr(1), Some(4)).is_none());
        d.request(BlockAddr(1).line(6));
        let ev = d.load(BlockAddr(2), None).expect("snapshot");
        assert_eq!(ev.block, BlockAddr(1));
        assert_eq!(ev.requested_mask, 1 << 4 | 1 << 6);
        assert_eq!(d.requested_count(), 0);
    }

    #[test]
    fn invalidate_clears() {
        let mut d = Dbuf::new();
        d.load(BlockAddr(5), Some(1));
        let ev = d.invalidate().unwrap();
        assert_eq!(ev.block, BlockAddr(5));
        assert_eq!(d.current(), None);
        assert!(!d.request(BlockAddr(5).line(1)));
    }
}
