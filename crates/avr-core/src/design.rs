//! Pluggable design policies (ROADMAP item 2): the design axis behind a
//! trait, the way `avr_dram::backend` put the device axis behind one.
//!
//! A [`DesignPolicy`] owns everything that makes one evaluated design
//! different from another: its LLC variant, the per-request routing, the
//! served-line sizing, the writeback/compression behavior, and the
//! end-of-run compression-ratio summary. The [`System`] owns everything the
//! designs share — core, L1/L2, DRAM backend, backing store, counters —
//! and dispatches each LLC-level request/writeback through the trait. The
//! seven shipped designs:
//!
//! * [`ConventionalPolicy`] — `Baseline` (approx annotations ignored) and
//!   `Truncate` (fp32→fp16-style line truncation, 2:1 traffic) over a
//!   conventional set-associative LLC.
//! * [`DedupPolicy`] — `Doppelganger`, the approximate-dedup LLC.
//! * [`crate::avr_ops::DecoupledPolicy`] — `ZeroAvr` and `Avr`, the paper's
//!   decoupled UCL/CMS cache with the Fig. 7/8 request and eviction flows.
//! * [`crate::memo::MemoInPolicy`] / [`crate::memo::MemoOutPolicy`] — the
//!   HPAC-style input/output memoization designs recast as memory-system
//!   techniques (see `memo.rs`).
//!
//! # Determinism
//!
//! A policy's behavior must be a deterministic function of (config,
//! workload, design) alone — bit-identical at any `SimPool` thread width,
//! with the per-word and batched timed walks, and with or without SIMD
//! codec kernels. Every shipped policy achieves this the same way the
//! device backends do: all policy state lives inside the owning `System`
//! (one per simulated run; nothing global), and every decision is a pure
//! function of line *content* and architected state — no RNG anywhere in
//! the design layer. The memoization designs' threshold matches and
//! sliding-window gates are plain arithmetic over the backing store's
//! values, so they inherit the same guarantee (`tests/designs.rs` pins
//! both the legacy designs' bit-identity and the memo designs'
//! thread-width invariance).
//!
//! # Value-feedback contract
//!
//! The backing store ([`avr_sim::PhysMem`]) always holds the latest
//! *architecturally visible* values; caches track presence only. Any
//! policy that serves lossy data must rewrite the backing store at the
//! architecturally correct moment (truncation on fetch, reconstruction
//! after compression, dedup mapping, memo-table canonicalization), so
//! approximation error feeds back into the running application and the
//! workload runner's output-error measurement stays honest.
//!
//! # Adding an eighth design
//!
//! 1. Add a variant to `avr_types::DesignKind` (and its `label()` /
//!    `ALL`), plus any new knobs in an `ErrorModelParams`-style config
//!    block (`MemoParams` is the template) on `SystemConfig`.
//! 2. Implement [`DesignPolicy`] in a new module here. Route every DRAM
//!    transfer through the `System` helpers (`dram_write_line`,
//!    `count_traffic`, `device_line_faults`) so traffic accounting and the
//!    device error-model hooks keep working; honor the value-feedback
//!    contract above. Preallocate any per-region state in
//!    [`DesignPolicy::on_region`] so the steady-state request path never
//!    allocates (`tests/zero_alloc.rs` pins this).
//! 3. Register the variant in [`policy_for`].
//! 4. That is the whole integration: the grid runners, figure sweeps,
//!    sweep server, `bench_e2e` design axis, and the determinism /
//!    fault-injection / layout test suites all iterate
//!    `DesignKind::ALL`, so they pick the new design up automatically.
//!    Regenerate the committed `BENCH_PRn.json` (the `--check` gate
//!    hard-fails on design-set drift by design).

use avr_baselines::truncate::{truncate_line, TRUNCATED_LINE_BYTES};
use avr_cache::set_assoc::SetAssocCache;
use avr_dram::AccessKind;
use avr_sim::vm::Region;
use avr_types::{DesignKind, LineAddr, SystemConfig, CL_BYTES};

use crate::summary::BlockScan;
use crate::system::System;

/// One evaluated design's policy: LLC variant, request routing, writeback
/// behavior, and summary accounting. See the module docs for the contract
/// and the extension guide.
///
/// `Send` because a `System` (which owns its policy) migrates across
/// `SimPool` workers.
pub trait DesignPolicy: Send {
    /// Which design this policy implements.
    fn kind(&self) -> DesignKind;

    /// Whether this design honors approx annotations (`false` for
    /// Baseline/ZeroAVR: they treat every region as precise).
    fn honor_approx(&self) -> bool;

    /// Serve an LLC-level request for `line` issued at cycle `t`,
    /// returning the completion cycle. The `System` has already counted
    /// `llc_requests_total` and the LLC tag touch.
    fn request(&mut self, sys: &mut System, line: LineAddr, t: u64) -> u64;

    /// Accept a dirty line cast out of L2 at cycle `now` (write-buffered:
    /// costs traffic and events, never request latency).
    fn writeback(&mut self, sys: &mut System, line: LineAddr, now: u64);

    /// Allocation hook: called once per `malloc`/`approx_malloc`, in
    /// region order, so policies can size per-region state up front and
    /// keep the steady-state access path allocation-free.
    fn on_region(&mut self, _region: &Region) {}

    /// Does this design power a compressor module (static energy)?
    fn has_compressor(&self) -> bool {
        false
    }

    /// Codec lifetime stats: `(blocks_compressed, compression_failures)`.
    fn codec_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Fraction of LLC capacity holding compressed images at end of run.
    fn llc_cms_fraction(&self) -> f64 {
        0.0
    }

    /// End-of-run compression summary: the design's footprint compression
    /// ratio plus the Table 4 block scan (non-compressing designs return
    /// ratio 1.0 and an empty scan).
    fn summary(&mut self, _sys: &mut System) -> (f64, BlockScan) {
        (1.0, BlockScan::default())
    }

    /// Downcast support for tests and diagnostics.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Construct the policy implementing `design` under `cfg` — the one place
/// that maps the `DesignKind` enum onto concrete policies.
pub fn policy_for(design: DesignKind, cfg: &SystemConfig) -> Box<dyn DesignPolicy> {
    match design {
        DesignKind::Baseline | DesignKind::Truncate => {
            Box::new(ConventionalPolicy::new(design, cfg))
        }
        DesignKind::Doppelganger => Box::new(DedupPolicy::new(cfg)),
        DesignKind::ZeroAvr | DesignKind::Avr => {
            Box::new(crate::avr_ops::DecoupledPolicy::new(design, cfg))
        }
        DesignKind::MemoIn => Box::new(crate::memo::MemoInPolicy::new(cfg)),
        DesignKind::MemoOut => Box::new(crate::memo::MemoOutPolicy::new(cfg)),
    }
}

// ----------------------------------------------------------------------
// Baseline / Truncate: a conventional set-associative LLC
// ----------------------------------------------------------------------

/// `Baseline` and `Truncate` over a conventional LLC. Baseline ignores
/// approx annotations entirely; Truncate moves approximable lines as 32 B
/// truncated transfers and feeds the truncation back into the backing
/// store on every DRAM crossing.
pub struct ConventionalPolicy {
    kind: DesignKind,
    llc: SetAssocCache,
}

impl ConventionalPolicy {
    pub(crate) fn new(kind: DesignKind, cfg: &SystemConfig) -> Self {
        debug_assert!(matches!(kind, DesignKind::Baseline | DesignKind::Truncate));
        ConventionalPolicy { kind, llc: SetAssocCache::new(cfg.llc) }
    }

    /// Write `line` to DRAM, truncating approximable lines under the
    /// Truncate design (value feedback: memory only holds truncated data).
    fn write_line(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        let approx = sys.approx_of(line);
        let bytes = match (self.kind, approx) {
            (DesignKind::Truncate, Some(dt)) => {
                let truncated = truncate_line(&sys.mem.read_line(line), dt);
                sys.mem.write_line(line, &truncated);
                TRUNCATED_LINE_BYTES as usize
            }
            _ => CL_BYTES,
        };
        sys.dram.access_bytes(line, AccessKind::Write, now, bytes);
        sys.count_traffic(approx.is_some(), true, bytes as u64);
        sys.device_line_faults(line, AccessKind::Write, now);
    }
}

impl DesignPolicy for ConventionalPolicy {
    fn kind(&self) -> DesignKind {
        self.kind
    }

    fn honor_approx(&self) -> bool {
        self.kind == DesignKind::Truncate
    }

    fn request(&mut self, sys: &mut System, line: LineAddr, t: u64) -> u64 {
        let llc_lat = sys.cfg.llc.latency;
        let approx = sys.approx_of(line);
        if self.llc.access(line, false) {
            if approx.is_some() {
                sys.counters.approx_requests.uncompressed_hit += 1;
            }
            return t + llc_lat;
        }
        // Miss: fetch from DRAM.
        sys.counters.llc_misses_total += 1;
        if approx.is_some() {
            sys.counters.approx_requests.miss += 1;
        }
        let bytes = match (self.kind, approx) {
            (DesignKind::Truncate, Some(_)) => TRUNCATED_LINE_BYTES as usize,
            _ => CL_BYTES,
        };
        let resp = sys.dram.access_bytes(line, AccessKind::Read, t + llc_lat, bytes);
        sys.count_traffic(approx.is_some(), false, bytes as u64);
        if let (DesignKind::Truncate, Some(dt)) = (self.kind, approx) {
            // Value feedback: memory only holds truncated data.
            let truncated = truncate_line(&sys.mem.read_line(line), dt);
            sys.mem.write_line(line, &truncated);
        }
        sys.device_line_faults(line, AccessKind::Read, resp.complete_at);
        if let Some(ev) = self.llc.insert(line, false) {
            if ev.dirty {
                self.write_line(sys, ev.line, resp.complete_at);
            }
        }
        resp.complete_at
    }

    fn writeback(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        if self.llc.contains(line) {
            self.llc.access(line, true);
        } else if let Some(ev) = self.llc.insert(line, true) {
            if ev.dirty {
                self.write_line(sys, ev.line, now);
            }
        }
    }

    fn summary(&mut self, _sys: &mut System) -> (f64, BlockScan) {
        let ratio = match self.kind {
            DesignKind::Truncate => 2.0,
            _ => 1.0,
        };
        (ratio, BlockScan::default())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ----------------------------------------------------------------------
// Doppelganger: the approximate-dedup LLC
// ----------------------------------------------------------------------

/// `Doppelganger`: similar approximable lines share one data entry in the
/// dedup LLC; mapping a line to a representative rewrites the backing
/// store (destructive dedup — readers observe the representative).
pub struct DedupPolicy {
    llc: avr_baselines::doppelganger::DoppelLlc,
}

impl DedupPolicy {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        DedupPolicy { llc: avr_baselines::doppelganger::DoppelLlc::new(cfg.llc) }
    }
}

impl DesignPolicy for DedupPolicy {
    fn kind(&self) -> DesignKind {
        DesignKind::Doppelganger
    }

    fn honor_approx(&self) -> bool {
        true
    }

    fn request(&mut self, sys: &mut System, line: LineAddr, t: u64) -> u64 {
        let llc_lat = sys.cfg.llc.latency;
        let approx = sys.approx_of(line);
        if self.llc.access(line, false) {
            if approx.is_some() {
                sys.counters.approx_requests.uncompressed_hit += 1;
            }
            return t + llc_lat;
        }
        sys.counters.llc_misses_total += 1;
        if approx.is_some() {
            sys.counters.approx_requests.miss += 1;
        }
        let resp = sys.dram.access(line, AccessKind::Read, t + llc_lat);
        sys.count_traffic(approx.is_some(), false, CL_BYTES as u64);
        // Corrupt before the dedup insert so the map ingests what the
        // device actually delivered.
        sys.device_line_faults(line, AccessKind::Read, resp.complete_at);
        let values = sys.mem.read_line(line);
        let out = self.llc.insert(line, &values, approx.is_some(), false);
        if let Some(rep) = out.mapped_to {
            sys.mem.write_line(line, &rep);
        }
        for (l, dirty) in out.evicted {
            if dirty {
                sys.dram_write_line(l, resp.complete_at);
            }
        }
        resp.complete_at
    }

    fn writeback(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        let approx = sys.approx_of(line).is_some();
        if self.llc.contains(line) {
            self.llc.access(line, true);
        } else {
            let values = sys.mem.read_line(line);
            let out = self.llc.insert(line, &values, approx, true);
            if let Some(rep) = out.mapped_to {
                // Destructive dedup: readers observe the representative
                // from now on.
                sys.mem.write_line(line, &rep);
            }
            for (l, dirty) in out.evicted {
                if dirty {
                    sys.dram_write_line(l, now);
                }
            }
        }
    }

    fn summary(&mut self, _sys: &mut System) -> (f64, BlockScan) {
        (self.llc.dedup_factor(), BlockScan::default())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
