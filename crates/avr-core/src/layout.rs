//! Layout-transform layer: one record schema, three physical layouts.
//!
//! A workload describes its data as a *record schema* — an ordered list of
//! fields with a dtype and a criticality bit — and the harness picks the
//! physical arrangement ([`avr_types::LayoutKind`]) as a grid axis, exactly
//! like the design and the device backend:
//!
//! * **SoA** — one array per field (or one packed multi-plane region for
//!   lattice-style schemas). This is the layout every workload used before
//!   this module existed; instantiating a schema as SoA performs the *same
//!   allocation calls in the same order*, so addresses, timing, and values
//!   are bit-identical to the hand-written ports.
//! * **AoS** — records interleaved in a single region, field `f` of record
//!   `r` at word `r * nf + f`. Under the `Conservative` policy a mixed
//!   schema collapses to a fully-precise region (approximation is simply
//!   lost); under `Aggressive` the whole region is approximable and the
//!   critical words ride along inside approximate 1 KB blocks.
//! * **Partitioned** — hot/cold split: the approximable fields interleave
//!   in one `approx_malloc` region, the critical fields interleave in a
//!   separate precise region.
//!
//! This is the granularity-gap experiment (see `vm_api`'s criticality
//! contract) made a first-class axis: block-level approximation assumes
//! spatially-segregated approximable data, and the AoS/Partitioned variants
//! let the bench stack measure what interleaving does to compressibility
//! and output error *per layout*, with no per-workload layout code.
//!
//! The device-noise side of the split rides on [`RegionOpts`]: a layout can
//! scale per-region fault rates (`Layout::with_fault_scale`), and an
//! `Aggressive` AoS region carries a repeating critical-word pattern so the
//! device backends ECC-protect the critical words even though the codec
//! cannot distinguish them.

use avr_sim::vm::{Region, RegionOpts};
use avr_types::{DataType, LayoutKind, PhysAddr};

use crate::vm_api::Vm;

/// Declared dtype of one record field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldType {
    /// IEEE-754 single — the approximable workhorse.
    F32,
    /// Fixed-point 32-bit (codec treats high bits as precision-critical).
    Fixed32,
    /// 32-bit integer — indices, counters. Approximating these is the
    /// granularity-gap hazard: when an `Aggressive` AoS region smears an
    /// `I32` field, the codec treats its bits as f32 payload.
    I32,
}

impl FieldType {
    fn dtype(self) -> DataType {
        match self {
            // An i32 caught inside an approx region has no honest dtype;
            // F32 is what the block codec will assume for the whole block.
            FieldType::F32 | FieldType::I32 => DataType::F32,
            FieldType::Fixed32 => DataType::Fixed32,
        }
    }
}

/// One field of a record: name (for reports), dtype, criticality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldSpec {
    pub name: &'static str,
    pub ty: FieldType,
    /// `true` ⇒ the field tolerates approximation (candidate for
    /// `approx_malloc`); `false` ⇒ precision-critical.
    pub approx: bool,
}

impl FieldSpec {
    pub const fn approx_f32(name: &'static str) -> FieldSpec {
        FieldSpec { name, ty: FieldType::F32, approx: true }
    }
    pub const fn approx_fixed32(name: &'static str) -> FieldSpec {
        FieldSpec { name, ty: FieldType::Fixed32, approx: true }
    }
    pub const fn precise_f32(name: &'static str) -> FieldSpec {
        FieldSpec { name, ty: FieldType::F32, approx: false }
    }
    pub const fn precise_i32(name: &'static str) -> FieldSpec {
        FieldSpec { name, ty: FieldType::I32, approx: false }
    }
}

/// How the SoA variant groups its per-field arrays.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SoaGrouping {
    /// One region per field (separate `malloc`/`approx_malloc` calls —
    /// the historical shape of heat, bscholes, fft, …).
    #[default]
    PerField,
    /// All same-criticality fields packed plane-major into one region
    /// (field `f` starts at word `f * records` — the historical shape of
    /// the lattice/lbm distribution grids).
    Packed,
}

/// What to do with a *mixed* schema when the layout forces critical and
/// approximable fields into one region (AoS).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Never put a critical word in an approx region: a mixed AoS record
    /// makes the whole region precise. Correctness is preserved but
    /// block-level compression gets nothing — the "approximation lost"
    /// side of the granularity gap.
    #[default]
    Conservative,
    /// Approximate the region if *any* field is approximable. Critical
    /// fields are shielded from *device* faults via
    /// [`RegionOpts::with_crit_pattern`], but the block codec still smears
    /// them — the "criticals corrupted" side of the granularity gap.
    Aggressive,
}

/// A workload's logical record: ordered fields + layout policy knobs.
#[derive(Clone, Debug)]
pub struct RecordSchema {
    pub name: &'static str,
    pub fields: Vec<FieldSpec>,
    pub soa: SoaGrouping,
    pub policy: PlacementPolicy,
}

impl RecordSchema {
    pub fn new(name: &'static str, fields: Vec<FieldSpec>) -> RecordSchema {
        assert!(!fields.is_empty(), "schema {name:?} needs at least one field");
        assert!(
            fields.len() <= 64,
            "schema {name:?}: criticality patterns cap records at 64 words"
        );
        RecordSchema {
            name,
            fields,
            soa: SoaGrouping::PerField,
            policy: PlacementPolicy::Conservative,
        }
    }

    /// Switch the SoA variant to plane-major packing ([`SoaGrouping::Packed`]).
    pub fn packed(mut self) -> Self {
        self.soa = SoaGrouping::Packed;
        self
    }

    /// Switch mixed-record placement to [`PlacementPolicy::Aggressive`].
    pub fn aggressive(mut self) -> Self {
        self.policy = PlacementPolicy::Aggressive;
        self
    }

    fn approx_indices(&self) -> Vec<usize> {
        (0..self.fields.len()).filter(|&f| self.fields[f].approx).collect()
    }

    fn precise_indices(&self) -> Vec<usize> {
        (0..self.fields.len()).filter(|&f| !self.fields[f].approx).collect()
    }

    /// Dtype for a region holding the given fields: uniform Fixed32 stays
    /// Fixed32, anything else decays to F32 (the codec's assumption for
    /// mixed blocks).
    fn group_dtype(&self, idx: &[usize]) -> DataType {
        if idx.iter().all(|&f| self.fields[f].ty == FieldType::Fixed32) {
            DataType::Fixed32
        } else {
            DataType::F32
        }
    }
}

/// A schema bound to a concrete [`LayoutKind`] (plus optional device-noise
/// scaling for its approx regions): call [`Layout::instantiate`] to allocate
/// and get back the address map.
#[derive(Clone, Debug)]
pub struct Layout {
    pub schema: RecordSchema,
    pub kind: LayoutKind,
    fault_scale: f64,
}

impl Layout {
    pub fn new(schema: RecordSchema, kind: LayoutKind) -> Layout {
        Layout { schema, kind, fault_scale: 1.0 }
    }

    /// Scale the device fault rates of every *approx* region this layout
    /// allocates (see [`RegionOpts::with_fault_scale`]); precise regions
    /// are unaffected. `1.0` (the default) is nominal.
    pub fn with_fault_scale(mut self, scale: f64) -> Layout {
        assert!(scale.is_finite() && scale >= 0.0, "fault scale must be finite and non-negative");
        self.fault_scale = scale;
        self
    }

    fn base_opts(&self) -> RegionOpts {
        if self.fault_scale == 1.0 {
            RegionOpts::default()
        } else {
            RegionOpts::with_fault_scale(self.fault_scale)
        }
    }

    /// Allocate `records` records through `vm` and return the field → address
    /// map. Allocation order is deterministic: schema order for
    /// `Soa`/`PerField`, approx group then precise group otherwise.
    pub fn instantiate(&self, vm: &mut dyn Vm, records: usize) -> LayoutMap {
        let fields = &self.schema.fields;
        let nf = fields.len();
        let opts = self.base_opts();
        let mut views = vec![FieldView { base: PhysAddr(0), stride_words: 0 }; nf];
        let mut regions = Vec::new();

        match self.kind {
            LayoutKind::Soa => match self.schema.soa {
                SoaGrouping::PerField => {
                    for (f, spec) in fields.iter().enumerate() {
                        let r = if spec.approx {
                            vm.approx_malloc_with(4 * records, spec.ty.dtype(), opts)
                        } else {
                            vm.malloc(4 * records)
                        };
                        views[f] = FieldView { base: r.base, stride_words: 1 };
                        regions.push(r);
                    }
                }
                SoaGrouping::Packed => {
                    for (approx, group) in [
                        (true, self.schema.approx_indices()),
                        (false, self.schema.precise_indices()),
                    ] {
                        if group.is_empty() {
                            continue;
                        }
                        let len = 4 * group.len() * records;
                        let r = if approx {
                            vm.approx_malloc_with(len, self.schema.group_dtype(&group), opts)
                        } else {
                            vm.malloc(len)
                        };
                        for (j, &f) in group.iter().enumerate() {
                            let base = PhysAddr(r.base.0 + (4 * j * records) as u64);
                            views[f] = FieldView { base, stride_words: 1 };
                        }
                        regions.push(r);
                    }
                }
            },
            LayoutKind::Aos => {
                let n_approx = self.schema.approx_indices().len();
                let approximate = match self.schema.policy {
                    PlacementPolicy::Conservative => n_approx == nf,
                    PlacementPolicy::Aggressive => n_approx > 0,
                };
                let len = 4 * nf * records;
                let r = if approximate {
                    let mut o = opts;
                    if n_approx < nf {
                        // Repeating record: protect the critical word
                        // offsets from *device* faults. The codec cannot
                        // see this mask — that asymmetry is the point.
                        let mut pattern = 0u64;
                        for (f, spec) in fields.iter().enumerate() {
                            if !spec.approx {
                                pattern |= 1 << f;
                            }
                        }
                        o.crit_period_words = nf as u32;
                        o.crit_pattern = pattern;
                    }
                    let all: Vec<usize> = (0..nf).collect();
                    vm.approx_malloc_with(len, self.schema.group_dtype(&all), o)
                } else {
                    vm.malloc(len)
                };
                for (f, view) in views.iter_mut().enumerate() {
                    *view = FieldView {
                        base: PhysAddr(r.base.0 + 4 * f as u64),
                        stride_words: nf as u64,
                    };
                }
                regions.push(r);
            }
            LayoutKind::Partitioned => {
                for (approx, group) in
                    [(true, self.schema.approx_indices()), (false, self.schema.precise_indices())]
                {
                    if group.is_empty() {
                        continue;
                    }
                    let len = 4 * group.len() * records;
                    let r = if approx {
                        vm.approx_malloc_with(len, self.schema.group_dtype(&group), opts)
                    } else {
                        vm.malloc(len)
                    };
                    for (j, &f) in group.iter().enumerate() {
                        views[f] = FieldView {
                            base: PhysAddr(r.base.0 + 4 * j as u64),
                            stride_words: group.len() as u64,
                        };
                    }
                    regions.push(r);
                }
            }
        }

        let pitch = uniform_pitch(&views);
        LayoutMap { kind: self.kind, records, views, regions, pitch }
    }
}

/// Where one field lives: base address of record 0's word, and the word
/// distance between consecutive records.
#[derive(Clone, Copy, Debug)]
pub struct FieldView {
    pub base: PhysAddr,
    pub stride_words: u64,
}

/// Constant byte distance between consecutive fields *of the same record*,
/// if one exists (it does for AoS — 4 — and for packed SoA — `4*records`;
/// per-field SoA regions are uniform only when page rounding cooperates).
fn uniform_pitch(views: &[FieldView]) -> Option<u64> {
    if views.len() < 2 {
        return None;
    }
    let d = views[1].base.0.wrapping_sub(views[0].base.0);
    let s = views[0].stride_words;
    let ok = views
        .windows(2)
        .all(|w| w[1].base.0.wrapping_sub(w[0].base.0) == d && w[1].stride_words == s);
    (ok && d > 0 && d < i64::MAX as u64).then_some(d)
}

/// The instantiated layout: field/record indices → physical addresses, plus
/// bulk helpers that dispatch each logical access onto the cheapest existing
/// `Vm` entry point (contiguous when the stride is one word, strided
/// otherwise, per-word as a last resort for ragged record ops).
#[derive(Clone, Debug)]
pub struct LayoutMap {
    kind: LayoutKind,
    records: usize,
    views: Vec<FieldView>,
    regions: Vec<Region>,
    pitch: Option<u64>,
}

impl LayoutMap {
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    pub fn records(&self) -> usize {
        self.records
    }

    pub fn num_fields(&self) -> usize {
        self.views.len()
    }

    /// The regions this map allocated (group order; see
    /// [`Layout::instantiate`]).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Lowest region base — the origin for [`Self::elem`] gather indices.
    pub fn base(&self) -> PhysAddr {
        PhysAddr(self.regions.iter().map(|r| r.base.0).min().unwrap())
    }

    /// Address of field `f` of record `rec`.
    #[inline]
    pub fn addr(&self, f: usize, rec: usize) -> PhysAddr {
        let v = &self.views[f];
        PhysAddr(v.base.0 + 4 * v.stride_words * rec as u64)
    }

    /// Element index of (field, record) relative to [`Self::base`] — the
    /// index space `read_f32s_gather`/`write_f32s_scatter` expect.
    #[inline]
    pub fn elem(&self, f: usize, rec: usize) -> u32 {
        ((self.addr(f, rec).0 - self.base().0) / 4) as u32
    }

    /// Byte stride between consecutive records within field `f`.
    #[inline]
    pub fn stride_bytes(&self, f: usize) -> u64 {
        4 * self.views[f].stride_words
    }

    // -- scalar accessors ------------------------------------------------

    #[inline]
    pub fn read_f32(&self, vm: &mut dyn Vm, f: usize, rec: usize) -> f32 {
        vm.read_f32(self.addr(f, rec))
    }

    #[inline]
    pub fn write_f32(&self, vm: &mut dyn Vm, f: usize, rec: usize, val: f32) {
        vm.write_f32(self.addr(f, rec), val);
    }

    #[inline]
    pub fn read_u32(&self, vm: &mut dyn Vm, f: usize, rec: usize) -> u32 {
        vm.read_u32(self.addr(f, rec))
    }

    #[inline]
    pub fn write_u32(&self, vm: &mut dyn Vm, f: usize, rec: usize, val: u32) {
        vm.write_u32(self.addr(f, rec), val);
    }

    // -- one field, a run of records -------------------------------------

    /// Read `out.len()` consecutive records of field `f` starting at
    /// `first`. Contiguous `Vm` call when the layout makes the field dense,
    /// strided otherwise.
    pub fn read_f32s(&self, vm: &mut dyn Vm, f: usize, first: usize, out: &mut [f32]) {
        self.read_f32s_every(vm, f, first, 1, out);
    }

    pub fn write_f32s(&self, vm: &mut dyn Vm, f: usize, first: usize, vals: &[f32]) {
        self.write_f32s_every(vm, f, first, 1, vals);
    }

    /// Read records `first, first+step, first+2*step, …` of field `f` —
    /// the layout-generic form of a column walk or a decimated sample.
    pub fn read_f32s_every(
        &self,
        vm: &mut dyn Vm,
        f: usize,
        first: usize,
        step: usize,
        out: &mut [f32],
    ) {
        let stride = self.views[f].stride_words * step as u64;
        if stride == 1 {
            vm.read_f32s(self.addr(f, first), out);
        } else {
            vm.read_f32s_strided(self.addr(f, first), 4 * stride, out);
        }
    }

    pub fn write_f32s_every(
        &self,
        vm: &mut dyn Vm,
        f: usize,
        first: usize,
        step: usize,
        vals: &[f32],
    ) {
        let stride = self.views[f].stride_words * step as u64;
        if stride == 1 {
            vm.write_f32s(self.addr(f, first), vals);
        } else {
            vm.write_f32s_strided(self.addr(f, first), 4 * stride, vals);
        }
    }

    pub fn read_u32s(&self, vm: &mut dyn Vm, f: usize, first: usize, out: &mut [u32]) {
        let stride = self.views[f].stride_words;
        if stride == 1 {
            vm.read_u32s(self.addr(f, first), out);
        } else {
            vm.read_u32s_strided(self.addr(f, first), 4 * stride, out);
        }
    }

    pub fn write_u32s(&self, vm: &mut dyn Vm, f: usize, first: usize, vals: &[u32]) {
        let stride = self.views[f].stride_words;
        if stride == 1 {
            vm.write_u32s(self.addr(f, first), vals);
        } else {
            vm.write_u32s_strided(self.addr(f, first), 4 * stride, vals);
        }
    }

    // -- one record, all fields ------------------------------------------

    /// Read every field of record `rec` (f32 view) into `out`. AoS resolves
    /// to one contiguous read; packed SoA to one plane-strided read (the
    /// historical lattice/lbm per-cell access); ragged layouts fall back to
    /// per-word reads.
    pub fn read_record_f32s(&self, vm: &mut dyn Vm, rec: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.views.len(), "record buffer must cover every field");
        match self.pitch {
            Some(4) => vm.read_f32s(self.addr(0, rec), out),
            Some(d) => vm.read_f32s_strided(self.addr(0, rec), d, out),
            None => {
                for (f, o) in out.iter_mut().enumerate() {
                    *o = vm.read_f32(self.addr(f, rec));
                }
            }
        }
    }

    pub fn write_record_f32s(&self, vm: &mut dyn Vm, rec: usize, vals: &[f32]) {
        assert_eq!(vals.len(), self.views.len(), "record buffer must cover every field");
        match self.pitch {
            Some(4) => vm.write_f32s(self.addr(0, rec), vals),
            Some(d) => vm.write_f32s_strided(self.addr(0, rec), d, vals),
            None => {
                for (f, &v) in vals.iter().enumerate() {
                    vm.write_f32(self.addr(f, rec), v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm_api::ExactVm;

    fn mixed_schema() -> RecordSchema {
        RecordSchema::new(
            "mix",
            vec![
                FieldSpec::approx_f32("x"),
                FieldSpec::approx_f32("y"),
                FieldSpec::precise_i32("tag"),
            ],
        )
    }

    #[test]
    fn soa_perfield_reproduces_legacy_allocation_sequence() {
        let n = 300;
        let mut vm = ExactVm::new();
        let map = Layout::new(mixed_schema(), LayoutKind::Soa).instantiate(&mut vm, n);

        let mut legacy = ExactVm::new();
        let a = legacy.approx_malloc(4 * n, DataType::F32);
        let b = legacy.approx_malloc(4 * n, DataType::F32);
        let c = legacy.malloc(4 * n);

        assert_eq!(map.addr(0, 0), a.base);
        assert_eq!(map.addr(1, 0), b.base);
        assert_eq!(map.addr(2, 0), c.base);
        for f in 0..3 {
            assert_eq!(map.stride_bytes(f), 4);
        }
        assert_eq!(map.regions().len(), 3);
        assert_eq!(map.regions()[0].approx, Some(DataType::F32));
        assert_eq!(map.regions()[2].approx, None);
    }

    #[test]
    fn aos_interleaves_fields_word_by_word() {
        let mut vm = ExactVm::new();
        let map = Layout::new(mixed_schema(), LayoutKind::Aos).instantiate(&mut vm, 64);
        let base = map.base().0;
        for rec in 0..64 {
            for f in 0..3 {
                assert_eq!(map.addr(f, rec).0, base + 4 * (3 * rec + f) as u64);
                assert_eq!(map.elem(f, rec), (3 * rec + f) as u32);
            }
        }
        // Conservative policy + a critical field ⇒ the whole region is
        // precise: approximation lost, not criticals corrupted.
        assert_eq!(map.regions().len(), 1);
        assert_eq!(map.regions()[0].approx, None);
    }

    #[test]
    fn aggressive_aos_approximates_and_marks_critical_words() {
        let mut vm = ExactVm::new();
        let schema = mixed_schema().aggressive();
        let map = Layout::new(schema, LayoutKind::Aos).instantiate(&mut vm, 64);
        let r = &map.regions()[0];
        assert_eq!(r.approx, Some(DataType::F32));
        assert_eq!(r.opts.crit_period_words, 3);
        assert_eq!(r.opts.crit_pattern, 0b100); // field 2 ("tag") is critical
                                                // Word 2, 5, 8, … of the region are device-protected.
        let mask = r.critical_mask_of_line(r.base.line());
        assert_eq!(mask, (1 << 2) | (1 << 5) | (1 << 8) | (1 << 11) | (1 << 14));
    }

    #[test]
    fn partitioned_splits_by_criticality() {
        let n = 100;
        let mut vm = ExactVm::new();
        let map = Layout::new(mixed_schema(), LayoutKind::Partitioned).instantiate(&mut vm, n);
        assert_eq!(map.regions().len(), 2);
        let (ar, pr) = (&map.regions()[0], &map.regions()[1]);
        assert_eq!(ar.approx, Some(DataType::F32));
        assert_eq!(ar.len_bytes, 4 * 2 * n);
        assert_eq!(pr.approx, None);
        assert_eq!(pr.len_bytes, 4 * n);
        // x/y interleave at stride 2 in the approx half; tag is dense.
        assert_eq!(map.addr(0, 0), ar.base);
        assert_eq!(map.addr(1, 0).0, ar.base.0 + 4);
        assert_eq!(map.stride_bytes(0), 8);
        assert_eq!(map.addr(2, 7).0, pr.base.0 + 28);
        assert_eq!(map.stride_bytes(2), 4);
    }

    #[test]
    fn packed_soa_shares_one_region_with_plane_major_fields() {
        let n = 128;
        let schema = RecordSchema::new(
            "planes",
            vec![
                FieldSpec::approx_f32("p0"),
                FieldSpec::approx_f32("p1"),
                FieldSpec::approx_f32("p2"),
            ],
        )
        .packed();
        let mut vm = ExactVm::new();
        let map = Layout::new(schema, LayoutKind::Soa).instantiate(&mut vm, n);
        assert_eq!(map.regions().len(), 1);
        let base = map.regions()[0].base.0;
        for f in 0..3 {
            assert_eq!(map.addr(f, 0).0, base + (4 * f * n) as u64);
            assert_eq!(map.stride_bytes(f), 4);
            assert_eq!(map.elem(f, 5), (f * n + 5) as u32);
        }
        // Plane-major packing has a uniform record pitch of 4*records —
        // the historical lattice per-cell strided access.
        assert_eq!(map.pitch, Some((4 * n) as u64));
    }

    #[test]
    fn values_roundtrip_identically_in_every_layout() {
        let n = 50;
        for kind in LayoutKind::ALL {
            let mut vm = ExactVm::new();
            let map = Layout::new(mixed_schema().aggressive(), kind).instantiate(&mut vm, n);
            for rec in 0..n {
                map.write_record_f32s(&mut vm, rec, &[rec as f32, -(rec as f32), 0.0]);
                map.write_u32(&mut vm, 2, rec, rec as u32 * 3);
            }
            // Field-run reads see what record writes stored.
            let mut xs = vec![0.0f32; n];
            map.read_f32s(&mut vm, 0, 0, &mut xs);
            let mut tags = vec![0u32; n];
            map.read_u32s(&mut vm, 2, 0, &mut tags);
            for rec in 0..n {
                assert_eq!(xs[rec], rec as f32, "{kind:?}");
                assert_eq!(map.read_f32(&mut vm, 1, rec), -(rec as f32), "{kind:?}");
                assert_eq!(tags[rec], rec as u32 * 3, "{kind:?}");
            }
            // Decimated walk: every third record of field 0.
            let mut every = vec![0.0f32; n / 3];
            map.read_f32s_every(&mut vm, 0, 1, 3, &mut every);
            for (k, v) in every.iter().enumerate() {
                assert_eq!(*v, (1 + 3 * k) as f32, "{kind:?}");
            }
        }
    }

    #[test]
    fn fault_scale_lands_on_approx_regions_only() {
        let mut vm = ExactVm::new();
        let layout = Layout::new(mixed_schema(), LayoutKind::Partitioned).with_fault_scale(2.5);
        let map = layout.instantiate(&mut vm, 64);
        assert_eq!(map.regions()[0].opts.fault_scale(), 2.5);
        assert_eq!(map.regions()[1].opts, RegionOpts::default());
    }
}
