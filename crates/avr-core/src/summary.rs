//! Parallel end-of-run compression summary (Table 4).
//!
//! `System::finish` re-compresses every approximable block from its final
//! memory values to report the footprint-weighted compression ratio. The
//! seed did this serially with a throwaway scratch per block; here the scan
//! partitions across workers, each owning one [`Compressor`] whose scratch
//! is reused for every block it claims — so each worker performs **zero
//! steady-state heap allocations** (`tests/zero_alloc.rs` pins this with a
//! counting allocator), and the whole scan stays bit-deterministic because
//! the per-block byte counts are summed with associative integer adds.

use crate::pool::PaddedCursor;
use avr_compress::{Compressor, Thresholds};
use avr_sim::vm::PhysMem;
use avr_types::addr::BLOCK_BYTES;
use avr_types::{BlockAddr, DataType, CL_BYTES};
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Blocks claimed per atomic fetch: large enough to amortize contention,
/// small enough to load-balance a sweep whose blocks compress unevenly.
const CLAIM_CHUNK: usize = 32;

/// Below this many blocks the spawn cost dominates; scan inline.
const PARALLEL_MIN_BLOCKS: usize = 2 * CLAIM_CHUNK;

/// Totals of one end-of-run block scan. All fields are plain sums, so
/// partial scans merge associatively (the parallel partition cannot change
/// the result).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockScan {
    /// Raw footprint of the scanned blocks (`blocks * 1 KB`).
    pub raw_bytes: u64,
    /// Footprint after compression (incompressible blocks stored raw).
    pub stored_bytes: u64,
    /// Blocks scanned.
    pub blocks: u64,
    /// Blocks the codec accepted. `compressible / blocks` is the
    /// compressible-block fraction the layout axis reports per layout.
    pub compressible: u64,
}

impl BlockScan {
    /// Fold another partial scan into this one (plain field sums).
    pub fn merge(&mut self, other: BlockScan) {
        self.raw_bytes += other.raw_bytes;
        self.stored_bytes += other.stored_bytes;
        self.blocks += other.blocks;
        self.compressible += other.compressible;
    }
}

/// Scan `blocks`, compressing each from its final values in `mem`. The hot
/// loop reuses `comp`'s scratch and allocates nothing.
pub fn scan_blocks(
    comp: &mut Compressor,
    mem: &PhysMem,
    blocks: &[(BlockAddr, DataType)],
) -> BlockScan {
    let mut scan = BlockScan::default();
    for &(b, dt) in blocks {
        let data = mem.read_block(b);
        scan.blocks += 1;
        scan.raw_bytes += BLOCK_BYTES as u64;
        scan.stored_bytes += match comp.compress(&data, dt) {
            Ok(o) => {
                scan.compressible += 1;
                (o.compressed.size_lines() * CL_BYTES) as u64
            }
            Err(_) => BLOCK_BYTES as u64, // incompressible: stored raw
        };
    }
    scan
}

/// The parallel block scan: partition `blocks` across `threads` workers
/// (each with its own reusable [`Compressor`] scratch) and return the
/// summed [`BlockScan`].
///
/// Bit-deterministic for any `threads`: per-block contributions are `u64`
/// adds, so the partition cannot change the totals.
pub fn parallel_summary(
    mem: &PhysMem,
    blocks: &[(BlockAddr, DataType)],
    th: Thresholds,
    max_lines: usize,
    threads: usize,
) -> BlockScan {
    if threads <= 1 || blocks.len() < PARALLEL_MIN_BLOCKS {
        let mut comp = Compressor::new(th, max_lines);
        return scan_blocks(&mut comp, mem, blocks);
    }
    // The claim cursor rides the pool engine's padded cell so chunk
    // claims never false-share with the totals mutex or worker stacks.
    let cursor = PaddedCursor::new();
    let totals = Mutex::new(BlockScan::default());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Worker setup (the only allocations): one compressor whose
                // scratch then serves every claimed block.
                let mut comp = Compressor::new(th, max_lines);
                let mut local = BlockScan::default();
                loop {
                    let start = cursor.0.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                    if start >= blocks.len() {
                        break;
                    }
                    let end = (start + CLAIM_CHUNK).min(blocks.len());
                    local.merge(scan_blocks(&mut comp, mem, &blocks[start..end]));
                }
                totals.lock().unwrap().merge(local);
            });
        }
    });
    totals.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_sim::vm::AddressSpace;
    use avr_types::PhysAddr;

    /// A memory image with a mix of smooth (compressible) and noisy
    /// (incompressible) approximable blocks.
    fn mixed_image(blocks: usize) -> (PhysMem, Vec<(BlockAddr, DataType)>) {
        let mut mem = PhysMem::new();
        let mut space = AddressSpace::new();
        let region = space.approx_malloc(blocks * BLOCK_BYTES, DataType::F32);
        for i in 0..(blocks * BLOCK_BYTES / 4) as u64 {
            let block = i / 256;
            let v = if block % 3 == 2 {
                // Noise block: incompressible.
                f32::from_bits(0x3F80_0000 | ((i.wrapping_mul(2654435761) as u32) & 0x7F_FFFF))
            } else {
                100.0 + (i % 256) as f32 * 0.01
            };
            mem.write_u32(PhysAddr(region.base.0 + 4 * i), v.to_bits());
        }
        let list: Vec<_> = space.approx_blocks().collect();
        assert_eq!(list.len(), blocks);
        (mem, list)
    }

    #[test]
    fn parallel_summary_matches_serial_for_any_width() {
        let (mem, blocks) = mixed_image(300);
        let th = Thresholds::paper_default();
        let serial = parallel_summary(&mem, &blocks, th, 8, 1);
        for threads in [2, 3, 8] {
            let par = parallel_summary(&mem, &blocks, th, 8, threads);
            assert_eq!(par, serial, "{threads} threads diverged");
        }
        assert_eq!(serial.raw_bytes, 300 * BLOCK_BYTES as u64);
        assert_eq!(serial.blocks, 300);
        assert!(serial.stored_bytes < serial.raw_bytes, "smooth blocks must compress");
        assert!(serial.stored_bytes > serial.raw_bytes / 16, "noise blocks must store raw");
        // 2 of every 3 blocks are smooth; the codec must accept exactly those.
        assert_eq!(serial.compressible, 200);
    }

    #[test]
    fn tiny_scans_run_inline() {
        let (mem, blocks) = mixed_image(8);
        let th = Thresholds::paper_default();
        // Under PARALLEL_MIN_BLOCKS this must not spawn (observable only as
        // "it works and matches"; the inline path is the same scan).
        let a = parallel_summary(&mem, &blocks, th, 8, 8);
        let b = parallel_summary(&mem, &blocks, th, 8, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_scan_is_zero() {
        let mem = PhysMem::new();
        let scan = parallel_summary(&mem, &[], Thresholds::paper_default(), 8, 4);
        assert_eq!(scan, BlockScan::default());
    }
}
