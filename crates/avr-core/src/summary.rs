//! Parallel end-of-run compression summary (Table 4).
//!
//! `System::finish` re-compresses every approximable block from its final
//! memory values to report the footprint-weighted compression ratio. The
//! seed did this serially with a throwaway scratch per block; here the scan
//! partitions across workers, each owning one [`Compressor`] whose scratch
//! is reused for every block it claims — so each worker performs **zero
//! steady-state heap allocations** (`tests/zero_alloc.rs` pins this with a
//! counting allocator), and the whole scan stays bit-deterministic because
//! the per-block byte counts are summed with associative integer adds.

use crate::pool::PaddedCursor;
use avr_compress::{Compressor, Thresholds};
use avr_sim::vm::PhysMem;
use avr_types::addr::BLOCK_BYTES;
use avr_types::{BlockAddr, DataType, CL_BYTES};
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Blocks claimed per atomic fetch: large enough to amortize contention,
/// small enough to load-balance a sweep whose blocks compress unevenly.
const CLAIM_CHUNK: usize = 32;

/// Below this many blocks the spawn cost dominates; scan inline.
const PARALLEL_MIN_BLOCKS: usize = 2 * CLAIM_CHUNK;

/// Scan `blocks`, compressing each from its final values in `mem`, and
/// return `(raw_bytes, stored_bytes)`. The hot loop reuses `comp`'s scratch
/// and allocates nothing.
pub fn scan_blocks(
    comp: &mut Compressor,
    mem: &PhysMem,
    blocks: &[(BlockAddr, DataType)],
) -> (u64, u64) {
    let mut raw = 0u64;
    let mut stored = 0u64;
    for &(b, dt) in blocks {
        let data = mem.read_block(b);
        raw += BLOCK_BYTES as u64;
        stored += match comp.compress(&data, dt) {
            Ok(o) => (o.compressed.size_lines() * CL_BYTES) as u64,
            Err(_) => BLOCK_BYTES as u64, // incompressible: stored raw
        };
    }
    (raw, stored)
}

/// The parallel block scan: partition `blocks` across `threads` workers
/// (each with its own reusable [`Compressor`] scratch) and return the
/// summed `(raw_bytes, stored_bytes)`.
///
/// Bit-deterministic for any `threads`: per-block contributions are `u64`
/// adds, so the partition cannot change the totals.
pub fn parallel_summary(
    mem: &PhysMem,
    blocks: &[(BlockAddr, DataType)],
    th: Thresholds,
    max_lines: usize,
    threads: usize,
) -> (u64, u64) {
    if threads <= 1 || blocks.len() < PARALLEL_MIN_BLOCKS {
        let mut comp = Compressor::new(th, max_lines);
        return scan_blocks(&mut comp, mem, blocks);
    }
    // The claim cursor rides the pool engine's padded cell so chunk
    // claims never false-share with the totals mutex or worker stacks.
    let cursor = PaddedCursor::new();
    let totals = Mutex::new((0u64, 0u64));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Worker setup (the only allocations): one compressor whose
                // scratch then serves every claimed block.
                let mut comp = Compressor::new(th, max_lines);
                let (mut raw, mut stored) = (0u64, 0u64);
                loop {
                    let start = cursor.0.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                    if start >= blocks.len() {
                        break;
                    }
                    let end = (start + CLAIM_CHUNK).min(blocks.len());
                    let (r, s) = scan_blocks(&mut comp, mem, &blocks[start..end]);
                    raw += r;
                    stored += s;
                }
                let mut t = totals.lock().unwrap();
                t.0 += raw;
                t.1 += stored;
            });
        }
    });
    totals.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_sim::vm::AddressSpace;
    use avr_types::PhysAddr;

    /// A memory image with a mix of smooth (compressible) and noisy
    /// (incompressible) approximable blocks.
    fn mixed_image(blocks: usize) -> (PhysMem, Vec<(BlockAddr, DataType)>) {
        let mut mem = PhysMem::new();
        let mut space = AddressSpace::new();
        let region = space.approx_malloc(blocks * BLOCK_BYTES, DataType::F32);
        for i in 0..(blocks * BLOCK_BYTES / 4) as u64 {
            let block = i / 256;
            let v = if block % 3 == 2 {
                // Noise block: incompressible.
                f32::from_bits(0x3F80_0000 | ((i.wrapping_mul(2654435761) as u32) & 0x7F_FFFF))
            } else {
                100.0 + (i % 256) as f32 * 0.01
            };
            mem.write_u32(PhysAddr(region.base.0 + 4 * i), v.to_bits());
        }
        let list: Vec<_> = space.approx_blocks().collect();
        assert_eq!(list.len(), blocks);
        (mem, list)
    }

    #[test]
    fn parallel_summary_matches_serial_for_any_width() {
        let (mem, blocks) = mixed_image(300);
        let th = Thresholds::paper_default();
        let serial = parallel_summary(&mem, &blocks, th, 8, 1);
        for threads in [2, 3, 8] {
            let par = parallel_summary(&mem, &blocks, th, 8, threads);
            assert_eq!(par, serial, "{threads} threads diverged");
        }
        let (raw, stored) = serial;
        assert_eq!(raw, 300 * BLOCK_BYTES as u64);
        assert!(stored < raw, "smooth blocks must compress");
        assert!(stored > raw / 16, "noise blocks must store raw");
    }

    #[test]
    fn tiny_scans_run_inline() {
        let (mem, blocks) = mixed_image(8);
        let th = Thresholds::paper_default();
        // Under PARALLEL_MIN_BLOCKS this must not spawn (observable only as
        // "it works and matches"; the inline path is the same scan).
        let a = parallel_summary(&mem, &blocks, th, 8, 8);
        let b = parallel_summary(&mem, &blocks, th, 8, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_scan_is_zero() {
        let mem = PhysMem::new();
        assert_eq!(parallel_summary(&mem, &[], Thresholds::paper_default(), 8, 4), (0, 0));
    }
}
