//! The AVR memory operations (paper §3.5): the LLC request flow of Fig. 7
//! and the eviction flow of Fig. 8, orchestrated over the decoupled LLC,
//! the compressor module, the CMT, the DBUF and the PFE.
//!
//! ### Value-feedback semantics
//!
//! The backing store always holds the *latest architecturally visible*
//! values. Each successful compression writes `reconstruct(compress(block))`
//! back to the store (outliers exact), so later readers — whether they hit
//! the compressed image in the LLC, the DBUF, or fetch from memory — observe
//! exactly what the hardware would decode. Overlaying lazily evicted lines
//! and dirty UCLs during recompaction needs no special handling: their
//! values are already current in the store. The one simplification (noted
//! in DESIGN.md): a recompression folds in the values of *all* lines of the
//! block, including ones whose UCLs are still dirty upstream, which is a
//! latest-value resolution of an ordering the paper leaves unspecified.

use avr_cache::llc::{EvictList, Evicted};
use avr_dram::AccessKind;
use avr_types::{BlockAddr, DataType, DesignKind, LineAddr, CL_BYTES, LINES_PER_BLOCK};

use crate::system::{LlcVariant, System};

impl System {
    fn llc_decoupled(&mut self) -> &mut avr_cache::llc::AvrLlc {
        match &mut self.llc {
            LlcVariant::Decoupled(llc) => llc,
            _ => unreachable!("decoupled ops on non-decoupled design"),
        }
    }

    // ------------------------------------------------------------------
    // Fig. 7: LLC requests
    // ------------------------------------------------------------------

    /// Request `line` at cycle `t` from the decoupled LLC (ZeroAVR + AVR).
    pub(crate) fn decoupled_request(&mut self, line: LineAddr, t: u64) -> u64 {
        let llc_lat = self.cfg.llc.latency;
        match self.approx_of(line) {
            None => {
                // Conventional UCL path for precise lines.
                if self.llc_decoupled().access_ucl(line, false) {
                    return t + llc_lat;
                }
                self.counters.llc_misses_total += 1;
                let resp = self.dram.access(line, AccessKind::Read, t + llc_lat);
                self.count_traffic(false, false, CL_BYTES as u64);
                self.device_line_faults(line, AccessKind::Read, resp.complete_at);
                let evs = self.llc_decoupled().insert_ucl(line, false);
                self.handle_avr_evictions(evs, resp.complete_at);
                resp.complete_at
            }
            Some(dt) => self.avr_request(line, dt, t),
        }
    }

    /// The approximate-request flow of Fig. 7.
    fn avr_request(&mut self, line: LineAddr, dt: DataType, t: u64) -> u64 {
        let llc_lat = self.cfg.llc.latency;
        let block = line.block();

        // (a) DBUF lookup (accessed in parallel with the LLC tag array).
        if self.cfg.avr.enable_dbuf && self.dbuf.request(line) {
            self.counters.approx_requests.dbuf_hit += 1;
            // "the UCL is also written from DBUF to the LLC".
            let evs = self.llc_decoupled().insert_ucl(line, false);
            self.handle_avr_evictions(evs, t);
            return t + llc_lat;
        }

        // (b) UCL lookup.
        if self.llc_decoupled().access_ucl(line, false) {
            self.counters.approx_requests.uncompressed_hit += 1;
            return t + llc_lat;
        }

        // (c) CMS lookup: the compressed block is resident — read all its
        // sub-blocks (one LLC access each) and decompress.
        if let Some(count) = self.llc_decoupled().probe_cms(block) {
            self.counters.approx_requests.compressed_hit += 1;
            self.llc_line_touches += count as u64;
            let lat = llc_lat * count as u64 + self.compressor.latency.decompress_total();
            self.counters.compressed_hit_cycles_sum += lat;
            self.counters.blocks_decompressed += 1;
            self.load_dbuf(block, line, t);
            let evs = self.llc_decoupled().insert_ucl(line, false);
            self.handle_avr_evictions(evs, t + lat);
            return t + lat;
        }

        // (d) Full miss: consult the CMT and go to memory.
        self.counters.approx_requests.miss += 1;
        self.counters.llc_misses_total += 1;
        self.cmt_touch(block);
        let entry = self.cmt.get(block);

        if !entry.compressed {
            // Block stored uncompressed: fetch just the requested line.
            let resp = self.dram.access(line, AccessKind::Read, t + llc_lat);
            self.count_traffic(true, false, CL_BYTES as u64);
            self.device_line_faults(line, AccessKind::Read, resp.complete_at);
            let evs = self.llc_decoupled().insert_ucl(line, false);
            self.handle_avr_evictions(evs, resp.complete_at);
            return resp.complete_at;
        }

        // Compressed block (+ any lazily evicted lines) comes on-chip.
        // The demand request is served as soon as the compressed image
        // (summary + bitmap + outliers) arrives and decompresses; the lazy
        // lines stream in behind it and only gate the background
        // recompaction, not the core.
        let resp = self.dram.access_burst(
            block.line(0),
            entry.size_lines as usize,
            AccessKind::Read,
            t + llc_lat,
        );
        if entry.n_lazy > 0 {
            self.dram.access_burst(
                block.line(entry.size_lines as usize),
                entry.n_lazy as usize,
                AccessKind::Read,
                t + llc_lat,
            );
        }
        let lines = (entry.size_lines + entry.n_lazy) as usize;
        self.count_traffic(true, false, (lines * CL_BYTES) as u64);
        // The compressed image + lazy lines occupy the block's first
        // `lines` device lines — that is the exposed fault surface, applied
        // (before any recompression below reads the block) to the
        // reconstructed data the backing store holds for them.
        self.device_burst_faults(block.line(0), lines, AccessKind::Read, resp.complete_at);
        self.counters.blocks_decompressed += 1;
        let completion = resp.complete_at + self.compressor.latency.decompress_total();

        if entry.n_lazy > 0 {
            // Incorporate the lazy lines and immediately recompress
            // (values are already current in the backing store).
            let data = self.mem.read_block(block);
            match self.compressor.compress(&data, dt) {
                Ok(o) => {
                    self.mem.write_block(block, &o.reconstructed);
                    let size = o.compressed.size_lines() as u8;
                    let e = self.cmt.get_mut(block);
                    e.compressed = true;
                    e.size_lines = size;
                    e.n_lazy = 0;
                    e.method = o.compressed.method.encode();
                    e.bias = o.compressed.bias;
                    e.record_attempt(true);
                    if self.cfg.avr.store_cms_in_llc {
                        // Dirty: memory's image is stale until written back.
                        let evs = self.llc_decoupled().insert_cms(block, size, true);
                        self.handle_avr_evictions(evs, completion);
                        self.llc_line_touches += size as u64;
                    } else {
                        // Without LLC co-location the recompacted image goes
                        // straight back to memory.
                        self.dram.access_burst(
                            block.line(0),
                            size as usize,
                            AccessKind::Write,
                            completion,
                        );
                        self.count_traffic(true, true, size as u64 * CL_BYTES as u64);
                        self.device_burst_faults(
                            block.line(0),
                            size as usize,
                            AccessKind::Write,
                            completion,
                        );
                    }
                }
                Err(_) => {
                    // The updated block no longer compresses: it reverts to
                    // uncompressed storage, written back in full.
                    let e = self.cmt.get_mut(block);
                    e.compressed = false;
                    e.n_lazy = 0;
                    e.record_attempt(false);
                    self.dram.access_burst(
                        block.line(0),
                        LINES_PER_BLOCK,
                        AccessKind::Write,
                        completion,
                    );
                    self.count_traffic(true, true, (LINES_PER_BLOCK * CL_BYTES) as u64);
                    self.device_burst_faults(
                        block.line(0),
                        LINES_PER_BLOCK,
                        AccessKind::Write,
                        completion,
                    );
                }
            }
        } else if self.cfg.avr.store_cms_in_llc {
            // Store the compressed image in the LLC as-is (clean).
            let evs = self.llc_decoupled().insert_cms(block, entry.size_lines, false);
            self.handle_avr_evictions(evs, completion);
            self.llc_line_touches += entry.size_lines as u64;
        }

        self.load_dbuf(block, line, completion);
        let evs = self.llc_decoupled().insert_ucl(line, false);
        self.handle_avr_evictions(evs, completion);
        completion
    }

    /// Replace the DBUF contents with `block`, consulting the PFE about the
    /// outgoing block's unsaved lines (§3.3).
    fn load_dbuf(&mut self, block: BlockAddr, requested: LineAddr, now: u64) {
        debug_assert_eq!(requested.block(), block);
        if !self.cfg.avr.enable_dbuf {
            return;
        }
        let old = self.dbuf.load(block, Some(requested.cl_offset()));
        if let Some(ev) = old {
            self.counters.block_reuse_sum += ev.requested_mask.count_ones() as u64;
            self.counters.block_reuse_count += 1;
            let save = self.pfe.decide(&ev);
            for cl in save.iter() {
                let l = ev.block.line(cl as usize);
                if !self.llc_decoupled().probe_ucl(l) {
                    let evs = self.llc_decoupled().insert_ucl(l, false);
                    self.handle_avr_evictions(evs, now);
                    self.llc_line_touches += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fig. 8: LLC evictions
    // ------------------------------------------------------------------

    /// Run the eviction state machine over everything the LLC pushed out.
    /// Evictions are write-buffered: they cost traffic and events but do
    /// not extend the triggering request's latency.
    ///
    /// The work queue is owned by the `System` and reused across calls
    /// (recompressions enqueue follow-on evictions), so the steady-state
    /// path performs no allocation.
    pub(crate) fn handle_avr_evictions(&mut self, evs: EvictList, now: u64) {
        if evs.is_empty() {
            return;
        }
        let mut work = std::mem::take(&mut self.evict_queue);
        work.clear();
        work.extend(evs);
        let mut next = 0;
        while next < work.len() {
            let ev = work[next];
            next += 1;
            match ev {
                Evicted::Ucl { line, dirty } => {
                    if !dirty {
                        continue;
                    }
                    match self.approx_of(line) {
                        None => {
                            self.dram.access(line, AccessKind::Write, now);
                            self.count_traffic(false, true, CL_BYTES as u64);
                            self.device_line_faults(line, AccessKind::Write, now);
                        }
                        Some(dt) => self.evict_dirty_approx_ucl(line, dt, now, &mut work),
                    }
                }
                Evicted::CmsBlock { block, dirty, size_lines } => {
                    if !dirty {
                        continue; // memory's image is current
                    }
                    self.writeback_dirty_image(block, size_lines, now);
                }
            }
        }
        self.evict_queue = work;
    }

    /// Fig. 8, dirty-UCL path.
    fn evict_dirty_approx_ucl(
        &mut self,
        line: LineAddr,
        dt: DataType,
        now: u64,
        work: &mut Vec<Evicted>,
    ) {
        let block = line.block();

        // Compressed block resident in LLC? -> update + recompress on-chip.
        if let Some(count) = self.llc_decoupled().probe_cms(block) {
            self.llc_line_touches += count as u64;
            self.counters.blocks_decompressed += 1;
            let data = self.mem.read_block(block);
            if let Ok(o) = self.compressor.compress(&data, dt) {
                self.counters.evictions.recompress += 1;
                self.mem.write_block(block, &o.reconstructed);
                let size = o.compressed.size_lines() as u8;
                debug_assert!(self.cfg.avr.store_cms_in_llc, "CMS hit implies co-location");
                let evs = self.llc_decoupled().insert_cms(block, size, true);
                work.extend(evs);
                // The block's other dirty UCLs folded into the dirty image
                // ("Overlay Dirty UCLs", Fig. 8): they are clean now.
                self.llc_decoupled().clean_ucls_of(block);
                self.llc_line_touches += size as u64;
                return;
            }
            // Recompression failed: fall through to the lazy/fetch paths.
        }

        self.cmt_touch(block);
        let entry = self.cmt.get(block);

        if self.cfg.avr.enable_lazy && entry.compressed && entry.lazy_space() > 0 {
            // Lazy writeback: park the line uncompressed in the block's
            // free space.
            self.counters.evictions.lazy_writeback += 1;
            self.dram.access(line, AccessKind::Write, now);
            self.count_traffic(true, true, CL_BYTES as u64);
            self.device_line_faults(line, AccessKind::Write, now);
            self.cmt.get_mut(block).n_lazy += 1;
            return;
        }

        if entry.compressed {
            // No free space: fetch, merge, recompress, write back.
            self.counters.evictions.fetch_recompress += 1;
            let lines = (entry.size_lines + entry.n_lazy) as usize;
            self.dram.access_burst(block.line(0), lines, AccessKind::Read, now);
            self.count_traffic(true, false, (lines * CL_BYTES) as u64);
            self.device_burst_faults(block.line(0), lines, AccessKind::Read, now);
            self.counters.blocks_decompressed += 1;
            if self.compress_to_memory(block, dt, now) {
                self.llc_decoupled().clean_ucls_of(block);
            }
            return;
        }

        // Block is uncompressed in memory. Honor the skip history before
        // re-attempting compression (§3.5 last paragraph).
        if self.cfg.avr.enable_skip_history && entry.should_skip() {
            self.counters.evictions.uncompressed_writeback += 1;
            self.counters.compression_skips += 1;
            self.cmt.get_mut(block).record_skip();
            self.dram.access(line, AccessKind::Write, now);
            self.count_traffic(true, true, CL_BYTES as u64);
            self.device_line_faults(line, AccessKind::Write, now);
            return;
        }

        // Attempt to compress the whole block: read its other 15 lines.
        self.counters.evictions.fetch_recompress += 1;
        self.dram.access_burst(block.line(0), LINES_PER_BLOCK - 1, AccessKind::Read, now);
        self.count_traffic(true, false, ((LINES_PER_BLOCK - 1) * CL_BYTES) as u64);
        self.device_burst_faults(block.line(0), LINES_PER_BLOCK - 1, AccessKind::Read, now);
        if self.compress_to_memory(block, dt, now) {
            // Sibling dirty UCLs folded in ("Overlay Dirty UCLs", Fig. 8).
            self.llc_decoupled().clean_ucls_of(block);
        } else {
            // Failure: the dirty line goes back as-is.
            self.counters.evictions.fetch_recompress -= 1;
            self.counters.evictions.uncompressed_writeback += 1;
            self.dram.access(line, AccessKind::Write, now);
            self.count_traffic(true, true, CL_BYTES as u64);
            self.device_line_faults(line, AccessKind::Write, now);
        }
    }

    /// Compress `block` from its current values and write the result to
    /// memory, updating the CMT. Returns `false` on compression failure
    /// (CMT then marks the block uncompressed; the caller handles the data
    /// writeback).
    fn compress_to_memory(&mut self, block: BlockAddr, dt: DataType, now: u64) -> bool {
        let data = self.mem.read_block(block);
        match self.compressor.compress(&data, dt) {
            Ok(o) => {
                self.mem.write_block(block, &o.reconstructed);
                let size = o.compressed.size_lines();
                self.dram.access_burst(block.line(0), size, AccessKind::Write, now);
                self.count_traffic(true, true, (size * CL_BYTES) as u64);
                self.device_burst_faults(block.line(0), size, AccessKind::Write, now);
                let e = self.cmt.get_mut(block);
                e.compressed = true;
                e.size_lines = size as u8;
                e.n_lazy = 0;
                e.method = o.compressed.method.encode();
                e.bias = o.compressed.bias;
                e.record_attempt(true);
                true
            }
            Err(_) => {
                let e = self.cmt.get_mut(block);
                let was_compressed = e.compressed;
                e.compressed = false;
                e.n_lazy = 0;
                e.record_attempt(false);
                if was_compressed {
                    // The block reverts to uncompressed storage in full.
                    self.dram.access_burst(block.line(0), LINES_PER_BLOCK, AccessKind::Write, now);
                    self.count_traffic(true, true, (LINES_PER_BLOCK * CL_BYTES) as u64);
                    self.device_burst_faults(
                        block.line(0),
                        LINES_PER_BLOCK,
                        AccessKind::Write,
                        now,
                    );
                }
                false
            }
        }
    }

    /// Fig. 8, dirty-CMS path: a dirty compressed image leaves the LLC.
    /// Dirty UCLs of the block fold in (their values are already current in
    /// the backing store) and become clean.
    fn writeback_dirty_image(&mut self, block: BlockAddr, size_lines: u8, now: u64) {
        debug_assert!(size_lines > 0);
        let Some(dt) = self.approx_of(block.line(0)) else {
            debug_assert!(false, "compressed image of a precise block");
            return;
        };
        self.cmt_touch(block);
        self.counters.blocks_decompressed += 1;
        self.llc_line_touches += size_lines as u64;
        if !self.compress_to_memory(block, dt, now) {
            // Failed after the update: the block was written back
            // uncompressed by compress_to_memory's failure path only if it
            // was previously compressed — it was (an image existed).
        }
        self.llc_decoupled().clean_ucls_of(block);
        if matches!(self.design, DesignKind::Avr) && self.dbuf.current() == Some(block) {
            // The buffered decompressed copy served stale data fine (values
            // identical), keep it: requests continue to hit.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm_api::Vm;
    use avr_types::{PhysAddr, SystemConfig};

    fn avr_sys() -> System {
        System::new(SystemConfig::tiny(), DesignKind::Avr)
    }

    /// Write a smooth field into an approx region, then stream enough
    /// precise data to flush the hierarchy.
    fn warm_and_flush(s: &mut System, approx_bytes: usize) -> avr_sim::vm::Region {
        let r = s.approx_malloc(approx_bytes, DataType::F32);
        for i in 0..(approx_bytes / 4) as u64 {
            let v = 100.0 + (i as f32) * 0.001;
            s.write_f32(PhysAddr(r.base.0 + 4 * i), v);
        }
        let flush = s.malloc(1 << 18);
        for i in (0..1 << 18).step_by(64) {
            s.read_u32(PhysAddr(flush.base.0 + i as u64));
        }
        r
    }

    #[test]
    fn dirty_evictions_trigger_compression() {
        let mut s = avr_sys();
        warm_and_flush(&mut s, 64 << 10);
        assert!(s.compressor.attempts > 0, "evictions must attempt compression");
        assert!(
            s.compressor.blocks_compressed > 0,
            "smooth data must compress ({} attempts, {} failures)",
            s.compressor.attempts,
            s.compressor.failures
        );
    }

    #[test]
    fn compressed_reads_fetch_fewer_lines() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 64 << 10);
        let before = s.counters.traffic.approx_read_bytes;
        // Re-read the whole region: compressed blocks come back as short
        // bursts.
        for i in (0..64 << 10).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        let read_bytes = s.counters.traffic.approx_read_bytes - before;
        assert!(read_bytes < (64 << 10) / 2, "re-read moved {read_bytes} B for a 65536 B region");
    }

    #[test]
    fn reads_after_compression_see_bounded_error() {
        // Pin the exact backend: the 2% per-value band leaves no headroom
        // for injected device faults under an AVR_BACKEND override.
        let cfg = SystemConfig::tiny().with_backend(avr_types::BackendKind::Exact);
        let mut s = System::new(cfg, DesignKind::Avr);
        let r = warm_and_flush(&mut s, 64 << 10);
        for i in 0..(64 << 10) / 4_u64 {
            let expect = 100.0 + (i as f32) * 0.001;
            let got = s.read_f32(PhysAddr(r.base.0 + 4 * i));
            let rel = ((got - expect) / expect).abs();
            assert!(rel <= 0.02 + 1e-6, "value {i}: {got} vs {expect} (rel {rel})");
        }
    }

    #[test]
    fn dbuf_and_compressed_hits_appear() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 64 << 10);
        for i in (0..64 << 10).step_by(4) {
            s.read_f32(PhysAddr(r.base.0 + i as u64));
        }
        let b = s.counters.approx_requests;
        assert!(b.dbuf_hit > 0, "sequential block reads must hit DBUF: {b:?}");
        assert!(b.total() > 0);
    }

    #[test]
    fn rough_data_fails_and_backs_off() {
        let mut s = avr_sys();
        let r = s.approx_malloc(16 << 10, DataType::F32);
        // White noise: incompressible.
        let mut state = 0x9E3779B9u32;
        for i in 0..(16 << 10) / 4_u64 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let v = (state as f32 / u32::MAX as f32) * 1000.0 - 500.0;
            s.write_f32(PhysAddr(r.base.0 + 4 * i), v);
        }
        // Flush repeatedly so the same blocks see repeated eviction
        // attempts; each round rewrites fresh noise (still incompressible).
        let flush = s.malloc(1 << 18);
        for _round in 0..3 {
            for i in 0..(16 << 10) / 4_u64 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = (state as f32 / u32::MAX as f32) * 1000.0 - 500.0;
                s.write_f32(PhysAddr(r.base.0 + 4 * i), v);
            }
            for i in (0..1 << 18).step_by(64) {
                s.read_u32(PhysAddr(flush.base.0 + i as u64));
            }
        }
        assert!(s.compressor.failures > 0, "noise must fail compression");
        assert!(s.counters.compression_skips > 0, "skip history must suppress some attempts");
        assert!(s.counters.evictions.uncompressed_writeback > 0);
    }

    #[test]
    fn lazy_writebacks_fill_free_space() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 64 << 10);
        // Dirty a single line per block and flush: the block is compressed
        // in memory, absent from the LLC, and has free space -> lazy WB.
        for blk in 0..((64 << 10) / 1024) as u64 {
            s.write_f32(PhysAddr(r.base.0 + blk * 1024), 101.5);
        }
        let flush = s.malloc(1 << 18);
        for i in (0..1 << 18).step_by(64) {
            s.read_u32(PhysAddr(flush.base.0 + i as u64));
        }
        assert!(
            s.counters.evictions.lazy_writeback > 0,
            "expected lazy writebacks: {:?}",
            s.counters.evictions
        );
    }

    #[test]
    fn metrics_report_compression_ratio() {
        let mut s = avr_sys();
        warm_and_flush(&mut s, 64 << 10);
        let m = s.finish("smoke");
        assert!(
            m.compression_ratio > 4.0,
            "smooth ramp should compress well, got {}",
            m.compression_ratio
        );
        assert!(m.footprint_fraction < 1.0);
    }

    #[test]
    fn cmt_invariants_hold_after_activity() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 32 << 10);
        for i in (0..32 << 10).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        for (_, e) in s.cmt.iter() {
            if e.compressed {
                assert!((1..=8).contains(&e.size_lines));
                assert!(e.size_lines + e.n_lazy <= 16);
            }
            let _ = e.encode(); // must fit 24 bits (debug asserts inside)
        }
        if let LlcVariant::Decoupled(llc) = &s.llc {
            llc.check_invariants();
        }
    }
}
