//! The AVR memory operations (paper §3.5) as a [`DesignPolicy`]: the LLC
//! request flow of Fig. 7 and the eviction flow of Fig. 8, orchestrated
//! over the decoupled LLC, the compressor module, the CMT, the DBUF and
//! the PFE. Implements both `ZeroAvr` (the decoupled cache with the
//! compression path disabled by construction: approx annotations are not
//! honored, so every line takes the precise UCL path) and `Avr`.
//!
//! ### Value-feedback semantics
//!
//! The backing store always holds the *latest architecturally visible*
//! values. Each successful compression writes `reconstruct(compress(block))`
//! back to the store (outliers exact), so later readers — whether they hit
//! the compressed image in the LLC, the DBUF, or fetch from memory — observe
//! exactly what the hardware would decode. Overlaying lazily evicted lines
//! and dirty UCLs during recompaction needs no special handling: their
//! values are already current in the store. The one simplification (noted
//! in DESIGN.md): a recompression folds in the values of *all* lines of the
//! block, including ones whose UCLs are still dirty upstream, which is a
//! latest-value resolution of an ordering the paper leaves unspecified.

use avr_cache::cmt::{CmtCache, CmtTable, CMT_MISS_BYTES};
use avr_cache::dbuf::Dbuf;
use avr_cache::llc::{AvrLlc, EvictList, Evicted};
use avr_cache::pfe::PrefetchEngine;
use avr_compress::{Compressor, Thresholds};
use avr_dram::AccessKind;
use avr_types::{
    BlockAddr, DataType, DesignKind, LineAddr, SystemConfig, CL_BYTES, LINES_PER_BLOCK,
};

use crate::design::DesignPolicy;
use crate::summary::BlockScan;
use crate::system::System;

/// `ZeroAvr` and `Avr`: the decoupled UCL/CMS cache plus the AVR block
/// machinery (compressor, CMT + its on-chip cache, DBUF, PFE).
pub struct DecoupledPolicy {
    kind: DesignKind,
    pub(crate) llc: AvrLlc,
    pub(crate) compressor: Compressor,
    pub(crate) cmt: CmtTable,
    cmt_cache: CmtCache,
    dbuf: Dbuf,
    pfe: PrefetchEngine,
    /// Reusable eviction work queue (capacity retained across requests so
    /// the steady-state eviction machine never allocates).
    evict_queue: Vec<Evicted>,
}

impl DecoupledPolicy {
    pub(crate) fn new(kind: DesignKind, cfg: &SystemConfig) -> Self {
        debug_assert!(matches!(kind, DesignKind::ZeroAvr | DesignKind::Avr));
        let thresholds = Thresholds::new(cfg.avr.t1, cfg.avr.t2);
        DecoupledPolicy {
            kind,
            llc: AvrLlc::new(cfg.llc),
            compressor: Compressor::new(thresholds, cfg.avr.max_compressed_lines),
            cmt: CmtTable::default(),
            cmt_cache: CmtCache::new(cfg.avr.cmt_cache_pages),
            dbuf: Dbuf::new(),
            pfe: PrefetchEngine::new(cfg.avr.pfe_threshold),
            evict_queue: Vec::with_capacity(256),
        }
    }

    /// Consult the CMT through its on-chip cache; misses cost metadata
    /// bandwidth (§3.2).
    fn cmt_touch(&mut self, sys: &mut System, block: BlockAddr) {
        if !self.cmt_cache.touch(block) {
            sys.counters.traffic.metadata_bytes += CMT_MISS_BYTES;
        }
    }

    // ------------------------------------------------------------------
    // Fig. 7: LLC requests
    // ------------------------------------------------------------------

    /// The approximate-request flow of Fig. 7.
    fn avr_request(&mut self, sys: &mut System, line: LineAddr, dt: DataType, t: u64) -> u64 {
        let llc_lat = sys.cfg.llc.latency;
        let block = line.block();

        // (a) DBUF lookup (accessed in parallel with the LLC tag array).
        if sys.cfg.avr.enable_dbuf && self.dbuf.request(line) {
            sys.counters.approx_requests.dbuf_hit += 1;
            // "the UCL is also written from DBUF to the LLC".
            let evs = self.llc.insert_ucl(line, false);
            self.handle_avr_evictions(sys, evs, t);
            return t + llc_lat;
        }

        // (b) UCL lookup.
        if self.llc.access_ucl(line, false) {
            sys.counters.approx_requests.uncompressed_hit += 1;
            return t + llc_lat;
        }

        // (c) CMS lookup: the compressed block is resident — read all its
        // sub-blocks (one LLC access each) and decompress.
        if let Some(count) = self.llc.probe_cms(block) {
            sys.counters.approx_requests.compressed_hit += 1;
            sys.llc_line_touches += count as u64;
            let lat = llc_lat * count as u64 + self.compressor.latency.decompress_total();
            sys.counters.compressed_hit_cycles_sum += lat;
            sys.counters.blocks_decompressed += 1;
            self.load_dbuf(sys, block, line, t);
            let evs = self.llc.insert_ucl(line, false);
            self.handle_avr_evictions(sys, evs, t + lat);
            return t + lat;
        }

        // (d) Full miss: consult the CMT and go to memory.
        sys.counters.approx_requests.miss += 1;
        sys.counters.llc_misses_total += 1;
        self.cmt_touch(sys, block);
        let entry = self.cmt.get(block);

        if !entry.compressed {
            // Block stored uncompressed: fetch just the requested line.
            let resp = sys.dram.access(line, AccessKind::Read, t + llc_lat);
            sys.count_traffic(true, false, CL_BYTES as u64);
            sys.device_line_faults(line, AccessKind::Read, resp.complete_at);
            let evs = self.llc.insert_ucl(line, false);
            self.handle_avr_evictions(sys, evs, resp.complete_at);
            return resp.complete_at;
        }

        // Compressed block (+ any lazily evicted lines) comes on-chip.
        // The demand request is served as soon as the compressed image
        // (summary + bitmap + outliers) arrives and decompresses; the lazy
        // lines stream in behind it and only gate the background
        // recompaction, not the core.
        let resp = sys.dram.access_burst(
            block.line(0),
            entry.size_lines as usize,
            AccessKind::Read,
            t + llc_lat,
        );
        if entry.n_lazy > 0 {
            sys.dram.access_burst(
                block.line(entry.size_lines as usize),
                entry.n_lazy as usize,
                AccessKind::Read,
                t + llc_lat,
            );
        }
        let lines = (entry.size_lines + entry.n_lazy) as usize;
        sys.count_traffic(true, false, (lines * CL_BYTES) as u64);
        // The compressed image + lazy lines occupy the block's first
        // `lines` device lines — that is the exposed fault surface, applied
        // (before any recompression below reads the block) to the
        // reconstructed data the backing store holds for them.
        sys.device_burst_faults(block.line(0), lines, AccessKind::Read, resp.complete_at);
        sys.counters.blocks_decompressed += 1;
        let completion = resp.complete_at + self.compressor.latency.decompress_total();

        if entry.n_lazy > 0 {
            // Incorporate the lazy lines and immediately recompress
            // (values are already current in the backing store).
            let data = sys.mem.read_block(block);
            match self.compressor.compress(&data, dt) {
                Ok(o) => {
                    sys.mem.write_block(block, &o.reconstructed);
                    let size = o.compressed.size_lines() as u8;
                    let e = self.cmt.get_mut(block);
                    e.compressed = true;
                    e.size_lines = size;
                    e.n_lazy = 0;
                    e.method = o.compressed.method.encode();
                    e.bias = o.compressed.bias;
                    e.record_attempt(true);
                    if sys.cfg.avr.store_cms_in_llc {
                        // Dirty: memory's image is stale until written back.
                        let evs = self.llc.insert_cms(block, size, true);
                        self.handle_avr_evictions(sys, evs, completion);
                        sys.llc_line_touches += size as u64;
                    } else {
                        // Without LLC co-location the recompacted image goes
                        // straight back to memory.
                        sys.dram.access_burst(
                            block.line(0),
                            size as usize,
                            AccessKind::Write,
                            completion,
                        );
                        sys.count_traffic(true, true, size as u64 * CL_BYTES as u64);
                        sys.device_burst_faults(
                            block.line(0),
                            size as usize,
                            AccessKind::Write,
                            completion,
                        );
                    }
                }
                Err(_) => {
                    // The updated block no longer compresses: it reverts to
                    // uncompressed storage, written back in full.
                    let e = self.cmt.get_mut(block);
                    e.compressed = false;
                    e.n_lazy = 0;
                    e.record_attempt(false);
                    sys.dram.access_burst(
                        block.line(0),
                        LINES_PER_BLOCK,
                        AccessKind::Write,
                        completion,
                    );
                    sys.count_traffic(true, true, (LINES_PER_BLOCK * CL_BYTES) as u64);
                    sys.device_burst_faults(
                        block.line(0),
                        LINES_PER_BLOCK,
                        AccessKind::Write,
                        completion,
                    );
                }
            }
        } else if sys.cfg.avr.store_cms_in_llc {
            // Store the compressed image in the LLC as-is (clean).
            let evs = self.llc.insert_cms(block, entry.size_lines, false);
            self.handle_avr_evictions(sys, evs, completion);
            sys.llc_line_touches += entry.size_lines as u64;
        }

        self.load_dbuf(sys, block, line, completion);
        let evs = self.llc.insert_ucl(line, false);
        self.handle_avr_evictions(sys, evs, completion);
        completion
    }

    /// Replace the DBUF contents with `block`, consulting the PFE about the
    /// outgoing block's unsaved lines (§3.3).
    fn load_dbuf(&mut self, sys: &mut System, block: BlockAddr, requested: LineAddr, now: u64) {
        debug_assert_eq!(requested.block(), block);
        if !sys.cfg.avr.enable_dbuf {
            return;
        }
        let old = self.dbuf.load(block, Some(requested.cl_offset()));
        if let Some(ev) = old {
            sys.counters.block_reuse_sum += ev.requested_mask.count_ones() as u64;
            sys.counters.block_reuse_count += 1;
            let save = self.pfe.decide(&ev);
            for cl in save.iter() {
                let l = ev.block.line(cl as usize);
                if !self.llc.probe_ucl(l) {
                    let evs = self.llc.insert_ucl(l, false);
                    self.handle_avr_evictions(sys, evs, now);
                    sys.llc_line_touches += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fig. 8: LLC evictions
    // ------------------------------------------------------------------

    /// Run the eviction state machine over everything the LLC pushed out.
    /// Evictions are write-buffered: they cost traffic and events but do
    /// not extend the triggering request's latency.
    ///
    /// The work queue is owned by the policy and reused across calls
    /// (recompressions enqueue follow-on evictions), so the steady-state
    /// path performs no allocation.
    fn handle_avr_evictions(&mut self, sys: &mut System, evs: EvictList, now: u64) {
        if evs.is_empty() {
            return;
        }
        let mut work = std::mem::take(&mut self.evict_queue);
        work.clear();
        work.extend(evs);
        let mut next = 0;
        while next < work.len() {
            let ev = work[next];
            next += 1;
            match ev {
                Evicted::Ucl { line, dirty } => {
                    if !dirty {
                        continue;
                    }
                    match sys.approx_of(line) {
                        None => {
                            sys.dram.access(line, AccessKind::Write, now);
                            sys.count_traffic(false, true, CL_BYTES as u64);
                            sys.device_line_faults(line, AccessKind::Write, now);
                        }
                        Some(dt) => self.evict_dirty_approx_ucl(sys, line, dt, now, &mut work),
                    }
                }
                Evicted::CmsBlock { block, dirty, size_lines } => {
                    if !dirty {
                        continue; // memory's image is current
                    }
                    self.writeback_dirty_image(sys, block, size_lines, now);
                }
            }
        }
        self.evict_queue = work;
    }

    /// Fig. 8, dirty-UCL path.
    fn evict_dirty_approx_ucl(
        &mut self,
        sys: &mut System,
        line: LineAddr,
        dt: DataType,
        now: u64,
        work: &mut Vec<Evicted>,
    ) {
        let block = line.block();

        // Compressed block resident in LLC? -> update + recompress on-chip.
        if let Some(count) = self.llc.probe_cms(block) {
            sys.llc_line_touches += count as u64;
            sys.counters.blocks_decompressed += 1;
            let data = sys.mem.read_block(block);
            if let Ok(o) = self.compressor.compress(&data, dt) {
                sys.counters.evictions.recompress += 1;
                sys.mem.write_block(block, &o.reconstructed);
                let size = o.compressed.size_lines() as u8;
                debug_assert!(sys.cfg.avr.store_cms_in_llc, "CMS hit implies co-location");
                let evs = self.llc.insert_cms(block, size, true);
                work.extend(evs);
                // The block's other dirty UCLs folded into the dirty image
                // ("Overlay Dirty UCLs", Fig. 8): they are clean now.
                self.llc.clean_ucls_of(block);
                sys.llc_line_touches += size as u64;
                return;
            }
            // Recompression failed: fall through to the lazy/fetch paths.
        }

        self.cmt_touch(sys, block);
        let entry = self.cmt.get(block);

        if sys.cfg.avr.enable_lazy && entry.compressed && entry.lazy_space() > 0 {
            // Lazy writeback: park the line uncompressed in the block's
            // free space.
            sys.counters.evictions.lazy_writeback += 1;
            sys.dram.access(line, AccessKind::Write, now);
            sys.count_traffic(true, true, CL_BYTES as u64);
            sys.device_line_faults(line, AccessKind::Write, now);
            self.cmt.get_mut(block).n_lazy += 1;
            return;
        }

        if entry.compressed {
            // No free space: fetch, merge, recompress, write back.
            sys.counters.evictions.fetch_recompress += 1;
            let lines = (entry.size_lines + entry.n_lazy) as usize;
            sys.dram.access_burst(block.line(0), lines, AccessKind::Read, now);
            sys.count_traffic(true, false, (lines * CL_BYTES) as u64);
            sys.device_burst_faults(block.line(0), lines, AccessKind::Read, now);
            sys.counters.blocks_decompressed += 1;
            if self.compress_to_memory(sys, block, dt, now) {
                self.llc.clean_ucls_of(block);
            }
            return;
        }

        // Block is uncompressed in memory. Honor the skip history before
        // re-attempting compression (§3.5 last paragraph).
        if sys.cfg.avr.enable_skip_history && entry.should_skip() {
            sys.counters.evictions.uncompressed_writeback += 1;
            sys.counters.compression_skips += 1;
            self.cmt.get_mut(block).record_skip();
            sys.dram.access(line, AccessKind::Write, now);
            sys.count_traffic(true, true, CL_BYTES as u64);
            sys.device_line_faults(line, AccessKind::Write, now);
            return;
        }

        // Attempt to compress the whole block: read its other 15 lines.
        sys.counters.evictions.fetch_recompress += 1;
        sys.dram.access_burst(block.line(0), LINES_PER_BLOCK - 1, AccessKind::Read, now);
        sys.count_traffic(true, false, ((LINES_PER_BLOCK - 1) * CL_BYTES) as u64);
        sys.device_burst_faults(block.line(0), LINES_PER_BLOCK - 1, AccessKind::Read, now);
        if self.compress_to_memory(sys, block, dt, now) {
            // Sibling dirty UCLs folded in ("Overlay Dirty UCLs", Fig. 8).
            self.llc.clean_ucls_of(block);
        } else {
            // Failure: the dirty line goes back as-is.
            sys.counters.evictions.fetch_recompress -= 1;
            sys.counters.evictions.uncompressed_writeback += 1;
            sys.dram.access(line, AccessKind::Write, now);
            sys.count_traffic(true, true, CL_BYTES as u64);
            sys.device_line_faults(line, AccessKind::Write, now);
        }
    }

    /// Compress `block` from its current values and write the result to
    /// memory, updating the CMT. Returns `false` on compression failure
    /// (CMT then marks the block uncompressed; the caller handles the data
    /// writeback).
    fn compress_to_memory(
        &mut self,
        sys: &mut System,
        block: BlockAddr,
        dt: DataType,
        now: u64,
    ) -> bool {
        let data = sys.mem.read_block(block);
        match self.compressor.compress(&data, dt) {
            Ok(o) => {
                sys.mem.write_block(block, &o.reconstructed);
                let size = o.compressed.size_lines();
                sys.dram.access_burst(block.line(0), size, AccessKind::Write, now);
                sys.count_traffic(true, true, (size * CL_BYTES) as u64);
                sys.device_burst_faults(block.line(0), size, AccessKind::Write, now);
                let e = self.cmt.get_mut(block);
                e.compressed = true;
                e.size_lines = size as u8;
                e.n_lazy = 0;
                e.method = o.compressed.method.encode();
                e.bias = o.compressed.bias;
                e.record_attempt(true);
                true
            }
            Err(_) => {
                let e = self.cmt.get_mut(block);
                let was_compressed = e.compressed;
                e.compressed = false;
                e.n_lazy = 0;
                e.record_attempt(false);
                if was_compressed {
                    // The block reverts to uncompressed storage in full.
                    sys.dram.access_burst(block.line(0), LINES_PER_BLOCK, AccessKind::Write, now);
                    sys.count_traffic(true, true, (LINES_PER_BLOCK * CL_BYTES) as u64);
                    sys.device_burst_faults(block.line(0), LINES_PER_BLOCK, AccessKind::Write, now);
                }
                false
            }
        }
    }

    /// Fig. 8, dirty-CMS path: a dirty compressed image leaves the LLC.
    /// Dirty UCLs of the block fold in (their values are already current in
    /// the backing store) and become clean.
    fn writeback_dirty_image(
        &mut self,
        sys: &mut System,
        block: BlockAddr,
        size_lines: u8,
        now: u64,
    ) {
        debug_assert!(size_lines > 0);
        let Some(dt) = sys.approx_of(block.line(0)) else {
            debug_assert!(false, "compressed image of a precise block");
            return;
        };
        self.cmt_touch(sys, block);
        sys.counters.blocks_decompressed += 1;
        sys.llc_line_touches += size_lines as u64;
        if !self.compress_to_memory(sys, block, dt, now) {
            // Failed after the update: the block was written back
            // uncompressed by compress_to_memory's failure path only if it
            // was previously compressed — it was (an image existed).
        }
        self.llc.clean_ucls_of(block);
        if matches!(self.kind, DesignKind::Avr) && self.dbuf.current() == Some(block) {
            // The buffered decompressed copy served stale data fine (values
            // identical), keep it: requests continue to hit.
        }
    }
}

impl DesignPolicy for DecoupledPolicy {
    fn kind(&self) -> DesignKind {
        self.kind
    }

    fn honor_approx(&self) -> bool {
        self.kind == DesignKind::Avr
    }

    /// Request `line` at cycle `t` from the decoupled LLC (ZeroAVR + AVR).
    fn request(&mut self, sys: &mut System, line: LineAddr, t: u64) -> u64 {
        let llc_lat = sys.cfg.llc.latency;
        match sys.approx_of(line) {
            None => {
                // Conventional UCL path for precise lines.
                if self.llc.access_ucl(line, false) {
                    return t + llc_lat;
                }
                sys.counters.llc_misses_total += 1;
                let resp = sys.dram.access(line, AccessKind::Read, t + llc_lat);
                sys.count_traffic(false, false, CL_BYTES as u64);
                sys.device_line_faults(line, AccessKind::Read, resp.complete_at);
                let evs = self.llc.insert_ucl(line, false);
                self.handle_avr_evictions(sys, evs, resp.complete_at);
                resp.complete_at
            }
            Some(dt) => self.avr_request(sys, line, dt, t),
        }
    }

    fn writeback(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        // Decoupled LLC: the dirty line allocates as a UCL; its
        // displacements run the Fig. 8 eviction machine.
        if self.llc.probe_ucl(line) {
            self.llc.access_ucl(line, true);
        } else {
            let evs = self.llc.insert_ucl(line, true);
            self.handle_avr_evictions(sys, evs, now);
        }
    }

    fn has_compressor(&self) -> bool {
        true
    }

    fn codec_stats(&self) -> (u64, u64) {
        (self.compressor.blocks_compressed, self.compressor.failures)
    }

    fn llc_cms_fraction(&self) -> f64 {
        self.llc.cms_fraction()
    }

    fn summary(&mut self, sys: &mut System) -> (f64, BlockScan) {
        let blocks: Vec<_> = sys.space.approx_blocks().collect();
        if blocks.is_empty() || self.kind == DesignKind::ZeroAvr {
            return (1.0, BlockScan::default());
        }
        let scan = crate::summary::parallel_summary(
            &sys.mem,
            &blocks,
            self.compressor.thresholds,
            self.compressor.max_lines,
            sys.summary_threads,
        );
        (scan.raw_bytes as f64 / scan.stored_bytes.max(1) as f64, scan)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm_api::Vm;
    use avr_types::{PhysAddr, SystemConfig};

    fn avr_sys() -> System {
        System::new(SystemConfig::tiny(), DesignKind::Avr)
    }

    fn policy(s: &System) -> &DecoupledPolicy {
        s.policy_as::<DecoupledPolicy>().expect("AVR system runs the decoupled policy")
    }

    /// Write a smooth field into an approx region, then stream enough
    /// precise data to flush the hierarchy.
    fn warm_and_flush(s: &mut System, approx_bytes: usize) -> avr_sim::vm::Region {
        let r = s.approx_malloc(approx_bytes, DataType::F32);
        for i in 0..(approx_bytes / 4) as u64 {
            let v = 100.0 + (i as f32) * 0.001;
            s.write_f32(PhysAddr(r.base.0 + 4 * i), v);
        }
        let flush = s.malloc(1 << 18);
        for i in (0..1 << 18).step_by(64) {
            s.read_u32(PhysAddr(flush.base.0 + i as u64));
        }
        r
    }

    #[test]
    fn dirty_evictions_trigger_compression() {
        let mut s = avr_sys();
        warm_and_flush(&mut s, 64 << 10);
        let c = &policy(&s).compressor;
        assert!(c.attempts > 0, "evictions must attempt compression");
        assert!(
            c.blocks_compressed > 0,
            "smooth data must compress ({} attempts, {} failures)",
            c.attempts,
            c.failures
        );
    }

    #[test]
    fn compressed_reads_fetch_fewer_lines() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 64 << 10);
        let before = s.counters.traffic.approx_read_bytes;
        // Re-read the whole region: compressed blocks come back as short
        // bursts.
        for i in (0..64 << 10).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        let read_bytes = s.counters.traffic.approx_read_bytes - before;
        assert!(read_bytes < (64 << 10) / 2, "re-read moved {read_bytes} B for a 65536 B region");
    }

    #[test]
    fn reads_after_compression_see_bounded_error() {
        // Pin the exact backend: the 2% per-value band leaves no headroom
        // for injected device faults under an AVR_BACKEND override.
        let cfg = SystemConfig::tiny().with_backend(avr_types::BackendKind::Exact);
        let mut s = System::new(cfg, DesignKind::Avr);
        let r = warm_and_flush(&mut s, 64 << 10);
        for i in 0..(64 << 10) / 4_u64 {
            let expect = 100.0 + (i as f32) * 0.001;
            let got = s.read_f32(PhysAddr(r.base.0 + 4 * i));
            let rel = ((got - expect) / expect).abs();
            assert!(rel <= 0.02 + 1e-6, "value {i}: {got} vs {expect} (rel {rel})");
        }
    }

    #[test]
    fn dbuf_and_compressed_hits_appear() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 64 << 10);
        for i in (0..64 << 10).step_by(4) {
            s.read_f32(PhysAddr(r.base.0 + i as u64));
        }
        let b = s.counters.approx_requests;
        assert!(b.dbuf_hit > 0, "sequential block reads must hit DBUF: {b:?}");
        assert!(b.total() > 0);
    }

    #[test]
    fn rough_data_fails_and_backs_off() {
        let mut s = avr_sys();
        let r = s.approx_malloc(16 << 10, DataType::F32);
        // White noise: incompressible.
        let mut state = 0x9E3779B9u32;
        for i in 0..(16 << 10) / 4_u64 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let v = (state as f32 / u32::MAX as f32) * 1000.0 - 500.0;
            s.write_f32(PhysAddr(r.base.0 + 4 * i), v);
        }
        // Flush repeatedly so the same blocks see repeated eviction
        // attempts; each round rewrites fresh noise (still incompressible).
        let flush = s.malloc(1 << 18);
        for _round in 0..3 {
            for i in 0..(16 << 10) / 4_u64 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = (state as f32 / u32::MAX as f32) * 1000.0 - 500.0;
                s.write_f32(PhysAddr(r.base.0 + 4 * i), v);
            }
            for i in (0..1 << 18).step_by(64) {
                s.read_u32(PhysAddr(flush.base.0 + i as u64));
            }
        }
        assert!(policy(&s).compressor.failures > 0, "noise must fail compression");
        assert!(s.counters.compression_skips > 0, "skip history must suppress some attempts");
        assert!(s.counters.evictions.uncompressed_writeback > 0);
    }

    #[test]
    fn lazy_writebacks_fill_free_space() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 64 << 10);
        // Dirty a single line per block and flush: the block is compressed
        // in memory, absent from the LLC, and has free space -> lazy WB.
        for blk in 0..((64 << 10) / 1024) as u64 {
            s.write_f32(PhysAddr(r.base.0 + blk * 1024), 101.5);
        }
        let flush = s.malloc(1 << 18);
        for i in (0..1 << 18).step_by(64) {
            s.read_u32(PhysAddr(flush.base.0 + i as u64));
        }
        assert!(
            s.counters.evictions.lazy_writeback > 0,
            "expected lazy writebacks: {:?}",
            s.counters.evictions
        );
    }

    #[test]
    fn metrics_report_compression_ratio() {
        let mut s = avr_sys();
        warm_and_flush(&mut s, 64 << 10);
        let m = s.finish("smoke");
        assert!(
            m.compression_ratio > 4.0,
            "smooth ramp should compress well, got {}",
            m.compression_ratio
        );
        assert!(m.footprint_fraction < 1.0);
    }

    #[test]
    fn cmt_invariants_hold_after_activity() {
        let mut s = avr_sys();
        let r = warm_and_flush(&mut s, 32 << 10);
        for i in (0..32 << 10).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        let p = policy(&s);
        for (_, e) in p.cmt.iter() {
            if e.compressed {
                assert!((1..=8).contains(&e.size_lines));
                assert!(e.size_lines + e.n_lazy <= 16);
            }
            let _ = e.encode(); // must fit 24 bits (debug asserts inside)
        }
        p.llc.check_invariants();
    }
}
