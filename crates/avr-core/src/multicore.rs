//! SPMD multicore execution (the paper's CMP configuration, Fig. 1).
//!
//! The paper runs 8 cores each executing the same application on its own
//! shard of data (Table 2 gives *per-core* footprints). This runner models
//! that as a **partitioned-share CMP**: each core owns its share of the
//! LLC and of the memory-system bandwidth (`SystemConfig::per_core_scaled`
//! encodes the shares), and shards execute concurrently on OS threads via
//! `std::thread::scope`. Inter-core interference beyond the static shares
//! (set conflicts in a truly shared LLC, bank conflicts between cores) is
//! not modelled; DESIGN.md §3 records the simplification.
//!
//! The aggregate metrics follow the paper's conventions: cycles are the
//! *slowest* core's (makespan), traffic and energy sum across cores.

use crate::pool::SimPool;
use crate::system::System;
use crate::vm_api::Vm;
use avr_sim::RunMetrics;
use avr_types::{DesignKind, SystemConfig};

/// A workload shard factory: builds the closure core `i` of `n` executes.
pub trait ShardedWorkload: Sync {
    /// Run shard `core` of `total` against the core's VM, returning the
    /// shard's output values.
    fn run_shard(&self, core: usize, total: usize, vm: &mut dyn Vm) -> Vec<f64>;

    fn name(&self) -> &'static str;
}

/// Result of a multicore run.
pub struct MulticoreRun {
    /// Per-core metrics, in core order.
    pub per_core: Vec<RunMetrics>,
    /// Concatenated shard outputs (core order).
    pub outputs: Vec<Vec<f64>>,
}

impl MulticoreRun {
    /// Makespan in cycles (the slowest shard).
    pub fn cycles(&self) -> u64 {
        self.per_core.iter().map(|m| m.cycles).max().unwrap_or(0)
    }

    /// Total DRAM traffic over all cores.
    pub fn total_traffic(&self) -> u64 {
        self.per_core.iter().map(|m| m.counters.traffic.total()).sum()
    }

    /// Total energy over all cores.
    pub fn total_energy(&self) -> f64 {
        self.per_core.iter().map(|m| m.energy.total()).sum()
    }

    /// Merged chip-level accumulators: summed counters/energy, makespan
    /// cycles (the paper's multicore conventions).
    pub fn merged(&self) -> avr_sim::MergedRun {
        avr_sim::MergedRun::of(&self.per_core)
    }
}

/// Execute `workload` on `cores` SPMD shards of `design`, each against its
/// per-core share of the paper's hierarchy. One worker thread per shard
/// (the seed behavior); sweeps that run many multicore configurations
/// should share a bounded [`SimPool`] via [`run_multicore_on`] instead.
pub fn run_multicore(
    workload: &dyn ShardedWorkload,
    per_core_cfg: &SystemConfig,
    design: DesignKind,
    cores: usize,
) -> MulticoreRun {
    run_multicore_on(&SimPool::new(cores), workload, per_core_cfg, design, cores)
}

/// Execute `workload` on `cores` SPMD shards of `design`, scheduling the
/// shards on `pool`. Shard results are returned in core order and are
/// bit-identical for any pool width (each shard is an independent
/// deterministic simulation).
pub fn run_multicore_on(
    pool: &SimPool,
    workload: &dyn ShardedWorkload,
    per_core_cfg: &SystemConfig,
    design: DesignKind,
    cores: usize,
) -> MulticoreRun {
    assert!(cores >= 1);
    let shards = pool.run_jobs(cores, |ctx| {
        let mut sys = System::new(per_core_cfg.clone(), design);
        let out = workload.run_shard(ctx.index, cores, &mut sys);
        let metrics = sys.finish(workload.name());
        (metrics, out)
    });
    let (per_core, outputs) = shards.into_iter().unzip();
    MulticoreRun { per_core, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::{DataType, PhysAddr};

    /// Each shard smooths its own strip of a field.
    struct StripSmooth {
        strip_len: usize,
    }

    impl ShardedWorkload for StripSmooth {
        fn name(&self) -> &'static str {
            "strip_smooth"
        }

        fn run_shard(&self, core: usize, _total: usize, vm: &mut dyn Vm) -> Vec<f64> {
            let n = self.strip_len;
            let a = vm.approx_malloc(4 * n, DataType::F32).base;
            // Each core's data differs so shard outputs differ. The strip
            // streams through the bulk API in chunks.
            const CHUNK: usize = 4096;
            let mut buf = vec![0f32; CHUNK];
            for start in (0..n).step_by(CHUNK) {
                let len = CHUNK.min(n - start);
                for (o, v) in buf[..len].iter_mut().enumerate() {
                    *v = 100.0 + core as f32 * 10.0 + ((start + o) as f32) * 0.001;
                }
                vm.write_f32s(PhysAddr(a.0 + 4 * start as u64), &buf[..len]);
            }
            let mut acc = 0.0f64;
            for start in (0..n).step_by(CHUNK) {
                let len = CHUNK.min(n - start);
                vm.read_f32s(PhysAddr(a.0 + 4 * start as u64), &mut buf[..len]);
                vm.compute(4 * len as u64);
                acc += buf[..len].iter().map(|&v| v as f64).sum::<f64>();
            }
            vec![acc / n as f64]
        }
    }

    #[test]
    fn shards_run_concurrently_and_independently() {
        let w = StripSmooth { strip_len: 32 * 1024 };
        let cfg = SystemConfig::tiny();
        let run = run_multicore(&w, &cfg, DesignKind::Avr, 4);
        assert_eq!(run.per_core.len(), 4);
        assert_eq!(run.outputs.len(), 4);
        // Each shard sees its own mean.
        for (core, out) in run.outputs.iter().enumerate() {
            let n = w.strip_len as f64;
            let expect = 100.0 + core as f64 * 10.0 + 0.001 * (n - 1.0) / 2.0;
            assert!((out[0] - expect).abs() < 1.0, "core {core}: {}", out[0]);
        }
        assert!(run.cycles() > 0);
        assert!(run.total_traffic() > 0);
    }

    #[test]
    fn multicore_matches_singlecore_per_shard() {
        // With identical shards, a 2-core run's per-core metrics equal a
        // 1-core run's (partitioned shares are independent).
        let w = StripSmooth { strip_len: 16 * 1024 };
        let cfg = SystemConfig::tiny();
        let one = run_multicore(&w, &cfg, DesignKind::Avr, 1);
        let two = run_multicore(&w, &cfg, DesignKind::Avr, 2);
        assert_eq!(one.per_core[0].cycles, two.per_core[0].cycles);
        assert_eq!(one.per_core[0].counters.traffic, two.per_core[0].counters.traffic);
    }

    #[test]
    fn pooled_shards_match_per_core_threads_exactly() {
        // Scheduling 4 shards on a 2-wide pool must be bit-identical to
        // the thread-per-shard path — and expose the same merged stats.
        let w = StripSmooth { strip_len: 8 * 1024 };
        let cfg = SystemConfig::tiny();
        let wide = run_multicore(&w, &cfg, DesignKind::Avr, 4);
        let pooled = run_multicore_on(&SimPool::new(2), &w, &cfg, DesignKind::Avr, 4);
        assert_eq!(pooled.outputs, wide.outputs);
        for (a, b) in pooled.per_core.iter().zip(&wide.per_core) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.counters.traffic, b.counters.traffic);
        }
        let merged = pooled.merged();
        assert_eq!(merged.runs, 4);
        assert_eq!(merged.makespan_cycles, pooled.cycles());
        assert_eq!(merged.counters.traffic.total(), pooled.total_traffic());
        assert!((merged.energy.total() - pooled.total_energy()).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_and_traffic_is_sum() {
        let w = StripSmooth { strip_len: 8 * 1024 };
        let cfg = SystemConfig::tiny();
        let run = run_multicore(&w, &cfg, DesignKind::Baseline, 3);
        let max = run.per_core.iter().map(|m| m.cycles).max().unwrap();
        let sum: u64 = run.per_core.iter().map(|m| m.counters.traffic.total()).sum();
        assert_eq!(run.cycles(), max);
        assert_eq!(run.total_traffic(), sum);
    }
}
