//! The AVR architecture (paper §3) assembled into runnable full systems,
//! plus the four comparison designs of §4.1.
//!
//! The crate's central type is [`System`]: an execution-driven simulator of
//! one core (or one SPMD shard of a CMP) with an L1/L2/LLC hierarchy, a
//! DDR4 main memory, and — depending on [`avr_types::DesignKind`] — the AVR
//! compressor/decompressor layer, CMT, DBUF and prefetch engine between the
//! LLC and the memory controller (Fig. 1).
//!
//! Workloads drive a system through the [`Vm`] trait — word accesses,
//! batched/strided/gathered bulk transfers, compute accounting — and the
//! system produces a [`avr_sim::RunMetrics`] with every statistic the
//! paper's tables and figures need. [`System`] serves the bulk operations
//! through cacheline-coalesced fast paths that are bit-identical (values,
//! timing, traffic) to the word-at-a-time decomposition.

pub mod avr_ops;
pub mod design;
pub mod layout;
pub mod memo;
pub mod multicore;
pub mod overhead;
pub mod pool;
pub mod summary;
pub mod system;
pub mod vm_api;

pub use design::{policy_for, DesignPolicy};
pub use layout::{
    FieldSpec, FieldType, FieldView, Layout, LayoutMap, PlacementPolicy, RecordSchema, SoaGrouping,
};
pub use multicore::{run_multicore, run_multicore_on, MulticoreRun, ShardedWorkload};
pub use overhead::OverheadReport;
pub use pool::{shard_seed, JobCtx, PoolControl, SimPool};
pub use system::System;
pub use vm_api::{ExactVm, Vm, WordAtATime};

pub use avr_sim::vm::RegionOpts;
pub use avr_types::{BackendKind, DesignKind, ErrorModelParams, LayoutKind, SystemConfig};
