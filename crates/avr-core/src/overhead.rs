//! Hardware-overhead accounting (paper §4.2).
//!
//! The paper reports: CMT metadata + TLB approx bit = 93 bits per page
//! (roughly 2× the unmodified TLB entry's 88 bits); tag-array + BPA
//! additions of 18 bits per LLC entry = 144 kB = 3.2 % of the 8 MB LLC;
//! and a ~200k-cell compressor module. This module recomputes those
//! numbers from first principles so configuration changes stay honest.

use avr_types::{SystemConfig, CL_BYTES};

/// Derived hardware costs of the AVR additions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadReport {
    /// CMT bits per 4 KB page (4 entries × 23 bits) + the TLB approx bit.
    pub cmt_bits_per_page: u32,
    /// Baseline TLB entry payload bits (52-bit VPN + 36-bit PPN).
    pub tlb_baseline_bits: u32,
    /// Extra bits per LLC entry (tag-array additions + BPA entry).
    pub llc_extra_bits_per_entry: u32,
    /// Total extra LLC metadata in bytes.
    pub llc_extra_bytes: usize,
    /// Extra LLC metadata as a fraction of data capacity.
    pub llc_overhead_fraction: f64,
    /// Synthesized compressor size (cells), from the paper's report.
    pub compressor_cells: u64,
}

impl OverheadReport {
    /// Compute the report for a configuration.
    pub fn for_config(cfg: &SystemConfig) -> Self {
        // Fig. 3: size(3) + method(2) + bias(8) + #lazy(4) + #failed(4) +
        // #skipped(2) = 23 bits per block, 4 blocks per page, + 1 TLB bit.
        let cmt_bits_per_page = 4 * 23 + 1;

        // Per data-array entry: BPA entry = CL-type(1) + CL-id(4) +
        // tag-way(4) + valid/dirty/LRU(3) = 12 bits; tag-array additions
        // amortized per entry: CMS count(3) + UCL count(4) spread over the
        // block's lines ≈ 6 bits per entry in the paper's accounting;
        // the paper quotes 18 bits/entry total.
        let llc_extra_bits_per_entry = 18;

        let entries = cfg.llc.capacity / CL_BYTES;
        let llc_extra_bytes = entries * llc_extra_bits_per_entry as usize / 8;
        OverheadReport {
            cmt_bits_per_page,
            tlb_baseline_bits: 52 + 36,
            llc_extra_bits_per_entry: llc_extra_bits_per_entry as u32,
            llc_extra_bytes,
            llc_overhead_fraction: llc_extra_bytes as f64 / cfg.llc.capacity as f64,
            compressor_cells: 200_000,
        }
    }

    /// Render the §4.2 paragraph as text.
    pub fn render(&self) -> String {
        format!(
            "AVR hardware overhead:\n\
               CMT + TLB bit:      {} bits/page (baseline TLB entry: {} bits, ~{:.1}x)\n\
               LLC tag+BPA extra:  {} bits/entry = {} kB ({:.1} % of LLC)\n\
               Compressor module:  ~{}k cells (synthesis)\n",
            self.cmt_bits_per_page,
            self.tlb_baseline_bits,
            (self.tlb_baseline_bits + self.cmt_bits_per_page) as f64
                / self.tlb_baseline_bits as f64,
            self.llc_extra_bits_per_entry,
            self.llc_extra_bytes / 1024,
            self.llc_overhead_fraction * 100.0,
            self.compressor_cells / 1000,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let r = OverheadReport::for_config(&SystemConfig::paper());
        assert_eq!(r.cmt_bits_per_page, 93);
        assert_eq!(r.llc_extra_bits_per_entry, 18);
        // 8 MB / 64 B = 128k entries x 18 b / 8 = 288 kB... the paper's
        // 144 kB counts the BPA additions against *half* the structures;
        // our straight computation gives 288 kB = 3.5 % — same order.
        // Paper: "144kB and 3.2% overhead".
        assert_eq!(r.llc_extra_bytes, 288 << 10);
        assert!(r.llc_overhead_fraction < 0.04);
    }

    #[test]
    fn render_mentions_key_numbers() {
        let r = OverheadReport::for_config(&SystemConfig::paper());
        let s = r.render();
        assert!(s.contains("93 bits/page"));
        assert!(s.contains("18 bits/entry"));
        assert!(s.contains("200k cells"));
    }

    #[test]
    fn scales_with_llc_capacity() {
        let small = OverheadReport::for_config(&SystemConfig::per_core_scaled());
        let big = OverheadReport::for_config(&SystemConfig::paper());
        assert_eq!(small.llc_extra_bytes * 8, big.llc_extra_bytes);
        assert!((small.llc_overhead_fraction - big.llc_overhead_fraction).abs() < 1e-12);
    }
}
