//! The workload-facing virtual-machine interface.
//!
//! Workloads are ordinary Rust programs written against `&mut dyn Vm`: they
//! allocate regions (optionally approximable), move data and report their
//! non-memory instruction counts. The same workload source runs on the
//! timed [`crate::System`] (any design) and on [`ExactVm`] (a functional,
//! loss-free executor used as the golden reference for output-error
//! measurement, Table 3).
//!
//! # Bulk operations
//!
//! The paper's memory system moves data in 1 KB blocks and 64 B
//! cachelines, and the granularity-gap literature (arXiv:2004.01637,
//! arXiv:2101.10605) identifies access granularity and layout as the
//! first-order levers for approximate-memory systems — so the interface
//! speaks that language natively. Beyond the word-at-a-time primitives
//! ([`Vm::read_u32`] / [`Vm::write_u32`]), the trait carries **bulk**
//! operations: contiguous slice transfers ([`Vm::read_f32s`],
//! [`Vm::write_u32s`], …), strided walks for column/planar layouts
//! ([`Vm::read_f32s_strided`]), gather/scatter for irregular index sets
//! ([`Vm::read_f32s_gather`]), and a compute-fused read-modify-write sweep
//! ([`Vm::for_each_f32_mut`]).
//!
//! Every bulk operation has a **default implementation that decomposes it
//! into the word-at-a-time primitives**, with a precisely documented
//! per-element ordering. Two consequences:
//!
//! * **Migration:** a third-party `Vm` implementation written against the
//!   word-at-a-time interface keeps compiling — and behaves identically —
//!   without any change. Implementors override individual bulk methods
//!   only when they can serve them faster, and the contract for any
//!   override is *bit-identical observable behavior* to the default
//!   decomposition (same values moved, same instruction accounting, and —
//!   for timed implementations — the same timing/traffic event sequence).
//! * **Verification:** wrapping any `Vm` in [`WordAtATime`] masks its bulk
//!   overrides and forces the default decomposition, so a fast path can be
//!   checked against the word-at-a-time reference on the same workload
//!   (`tests/bulk_api.rs` pins cycles, traffic and output bits for every
//!   workload × design).
//!
//! # Two-level batching in the timed implementation
//!
//! The timed [`crate::System`] serves a bulk call with **two** independent
//! batching levels, both bit-identical to the per-word decomposition:
//!
//! 1. **Value movement** (since the bulk API landed): translation is
//!    hoisted per cacheline span and the span's values move as one slice
//!    copy, legal because only a span's *leading* access can rewrite the
//!    backing store (fetch-triggered reconstruction/truncation/dedup).
//! 2. **The timed walk itself**: after the leading access, every further
//!    word of the span is by construction a pure-metadata L1 hit, so the
//!    remaining `n-1` accesses fold into closed-form updates of the
//!    interval core (`IntervalCore::issue_complete_short_n`), the L1
//!    recency state (`SetAssocCache::access_hit_n`) and the counters —
//!    cycle-exact against the per-word walk, which is retained behind the
//!    `AVR_NO_BATCHED_WALK=1` escape hatch (and a CI matrix leg) so the
//!    equivalence oracle keeps running against real code forever.
//!
//! # Record schemas, layout, and the criticality contract
//!
//! [`crate::layout`] builds a layout-transform level on top of this trait:
//! a workload declares a record schema ([`crate::RecordSchema`] — field
//! dtypes plus per-field criticality) and instantiates it in any
//! [`avr_types::LayoutKind`]; the resulting [`crate::LayoutMap`] routes
//! logical field/record indices onto the bulk entry points above
//! (contiguous planes for SoA, the strided/gather shapes for interleaved
//! AoS records). Allocation-side, the contract is carried by
//! [`Vm::approx_malloc_with`]: an approximable region may declare
//! [`avr_sim::vm::RegionOpts`] metadata — a device fault-rate multiplier
//! and a repeating *sub-block critical-word pattern*. Device error-model
//! backends must never corrupt a critical word (it is ECC-scrub served,
//! like fully-critical lines), and must scale their fault rates by the
//! region's multiplier; the codec, by contrast, sees no such mask — an
//! interleaved critical word inside an approximable block is compressed
//! lossily like any other word, which is precisely the granularity-gap
//! hazard (arXiv:2101.10605) the layout axis exists to measure.
//! Functional VMs may ignore the metadata entirely (the default
//! [`Vm::approx_malloc_with`] delegates to [`Vm::approx_malloc`]): it
//! changes device behavior, never addresses.

use avr_sim::vm::{AddressSpace, PhysMem, Region, RegionOpts};
use avr_types::{DataType, PhysAddr};

/// What a workload needs from the machine.
pub trait Vm {
    /// Allocate precise (non-approximable) memory.
    fn malloc(&mut self, len_bytes: usize) -> Region;

    /// Allocate approximable memory of the given datatype (the paper's
    /// annotated-malloc wrapper, §3.1/§4.1).
    fn approx_malloc(&mut self, len_bytes: usize, dt: DataType) -> Region;

    /// [`Vm::approx_malloc`] with explicit per-region device metadata
    /// (fault-rate multiplier, sub-block critical-word pattern — see the
    /// module docs). The default ignores the metadata and delegates, which
    /// is correct for functional VMs: `opts` affects device fault behavior
    /// only, never placement, so addresses stay identical either way.
    /// Timed implementations with a device error model must override this
    /// to register `opts` on the region.
    fn approx_malloc_with(&mut self, len_bytes: usize, dt: DataType, opts: RegionOpts) -> Region {
        let _ = opts;
        self.approx_malloc(len_bytes, dt)
    }

    /// Timed 32-bit load.
    fn read_u32(&mut self, addr: PhysAddr) -> u32;

    /// Timed 32-bit store.
    fn write_u32(&mut self, addr: PhysAddr, val: u32);

    /// Account `n` non-memory instructions (ALU/FP work between accesses).
    fn compute(&mut self, n: u64);

    /// Convenience: f32 load.
    fn read_f32(&mut self, addr: PhysAddr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Convenience: f32 store.
    fn write_f32(&mut self, addr: PhysAddr, val: f32) {
        self.write_u32(addr, val.to_bits());
    }

    // ------------------------------------------------------------------
    // Bulk contiguous transfers
    // ------------------------------------------------------------------

    /// Timed load of `out.len()` consecutive words starting at `addr`.
    ///
    /// Equivalent to `out[k] = read_u32(addr + 4k)` for `k` ascending.
    fn read_u32s(&mut self, addr: PhysAddr, out: &mut [u32]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.read_u32(PhysAddr(addr.0 + 4 * k as u64));
        }
    }

    /// Timed store of `vals.len()` consecutive words starting at `addr`.
    ///
    /// Equivalent to `write_u32(addr + 4k, vals[k])` for `k` ascending.
    fn write_u32s(&mut self, addr: PhysAddr, vals: &[u32]) {
        for (k, v) in vals.iter().enumerate() {
            self.write_u32(PhysAddr(addr.0 + 4 * k as u64), *v);
        }
    }

    /// Timed load of `out.len()` consecutive f32 values starting at `addr`.
    fn read_f32s(&mut self, addr: PhysAddr, out: &mut [f32]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.read_f32(PhysAddr(addr.0 + 4 * k as u64));
        }
    }

    /// Timed store of `vals.len()` consecutive f32 values starting at `addr`.
    fn write_f32s(&mut self, addr: PhysAddr, vals: &[f32]) {
        for (k, v) in vals.iter().enumerate() {
            self.write_f32(PhysAddr(addr.0 + 4 * k as u64), *v);
        }
    }

    /// Timed load of `out.len()` consecutive i32 values starting at `addr`
    /// — bit-pattern identical to [`Vm::read_u32s`] (the Fixed32/Q16.16
    /// consumers' view, so fixed-point workloads get the same bulk fast
    /// paths as the float ones).
    fn read_i32s(&mut self, addr: PhysAddr, out: &mut [i32]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.read_u32(PhysAddr(addr.0 + 4 * k as u64)) as i32;
        }
    }

    /// Timed store of `vals.len()` consecutive i32 values starting at
    /// `addr` — bit-pattern identical to [`Vm::write_u32s`].
    fn write_i32s(&mut self, addr: PhysAddr, vals: &[i32]) {
        for (k, v) in vals.iter().enumerate() {
            self.write_u32(PhysAddr(addr.0 + 4 * k as u64), *v as u32);
        }
    }

    // ------------------------------------------------------------------
    // Strided and gathered transfers (stencil columns, planar/SoA data)
    // ------------------------------------------------------------------

    /// Timed strided load: `out[k] = read_f32(base + k * stride_bytes)`,
    /// `k` ascending. A column walk of a row-major grid uses
    /// `stride_bytes = 4 * width`; a planar structure-of-arrays field uses
    /// the plane pitch.
    fn read_f32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, out: &mut [f32]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.read_f32(PhysAddr(base.0 + k as u64 * stride_bytes));
        }
    }

    /// Timed strided store: `write_f32(base + k * stride_bytes, vals[k])`,
    /// `k` ascending.
    fn write_f32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, vals: &[f32]) {
        for (k, v) in vals.iter().enumerate() {
            self.write_f32(PhysAddr(base.0 + k as u64 * stride_bytes), *v);
        }
    }

    /// Timed strided load of raw words: `out[k] = read_u32(base +
    /// k * stride_bytes)`, `k` ascending — the integer-field view of an
    /// interleaved (AoS) record walk.
    fn read_u32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, out: &mut [u32]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.read_u32(PhysAddr(base.0 + k as u64 * stride_bytes));
        }
    }

    /// Timed strided store of raw words: `write_u32(base + k *
    /// stride_bytes, vals[k])`, `k` ascending.
    fn write_u32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, vals: &[u32]) {
        for (k, v) in vals.iter().enumerate() {
            self.write_u32(PhysAddr(base.0 + k as u64 * stride_bytes), *v);
        }
    }

    /// Timed gather: `out[k] = read_f32(base + 4 * idx[k])`, `k` ascending
    /// (indices are element indices relative to `base`, duplicates allowed).
    fn read_f32s_gather(&mut self, base: PhysAddr, idx: &[u32], out: &mut [f32]) {
        assert_eq!(idx.len(), out.len(), "gather index/output shapes must match");
        for (i, o) in idx.iter().zip(out.iter_mut()) {
            *o = self.read_f32(PhysAddr(base.0 + 4 * *i as u64));
        }
    }

    /// Timed scatter: `write_f32(base + 4 * idx[k], vals[k])`, `k`
    /// ascending (on duplicate indices the last write wins, as in the
    /// equivalent loop).
    fn write_f32s_scatter(&mut self, base: PhysAddr, idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter index/value shapes must match");
        for (i, v) in idx.iter().zip(vals.iter()) {
            self.write_f32(PhysAddr(base.0 + 4 * *i as u64), *v);
        }
    }

    // ------------------------------------------------------------------
    // Compute-fused region sweep
    // ------------------------------------------------------------------

    /// Timed read-modify-write sweep over `n` consecutive f32 values
    /// starting at `addr`. Per element, in order: load the old value,
    /// apply `f(element_index, old)`, account `compute_per_value`
    /// non-memory instructions, store the new value. `f` sees each
    /// element exactly once, in ascending order, and must not touch the
    /// VM (it receives only the value).
    fn for_each_f32_mut(
        &mut self,
        addr: PhysAddr,
        n: usize,
        compute_per_value: u64,
        f: &mut dyn FnMut(usize, f32) -> f32,
    ) {
        for k in 0..n {
            let a = PhysAddr(addr.0 + 4 * k as u64);
            let old = self.read_f32(a);
            let new = f(k, old);
            self.compute(compute_per_value);
            self.write_f32(a, new);
        }
    }
}

/// Adapter that masks every bulk override of the wrapped [`Vm`], forcing
/// the trait's default word-at-a-time decompositions.
///
/// This is the reference semantics of the bulk API made runnable: a
/// workload driven through `WordAtATime(&mut sys)` performs exactly the
/// per-word operation sequence the bulk defaults document, so a fast-path
/// implementation can be pinned bit-identical to it (metrics *and* data).
/// It is also what a third-party `Vm` written before the bulk API behaves
/// like without any code change.
pub struct WordAtATime<'a, V: Vm + ?Sized>(pub &'a mut V);

impl<V: Vm + ?Sized> Vm for WordAtATime<'_, V> {
    fn malloc(&mut self, len_bytes: usize) -> Region {
        self.0.malloc(len_bytes)
    }

    fn approx_malloc(&mut self, len_bytes: usize, dt: DataType) -> Region {
        self.0.approx_malloc(len_bytes, dt)
    }

    fn approx_malloc_with(&mut self, len_bytes: usize, dt: DataType, opts: RegionOpts) -> Region {
        // Allocation (like the other four primitives) is forwarded — the
        // wrapper masks bulk *access* overrides only, and dropping the
        // region metadata here would change device fault behavior between
        // a fast path and its word-at-a-time oracle.
        self.0.approx_malloc_with(len_bytes, dt, opts)
    }

    fn read_u32(&mut self, addr: PhysAddr) -> u32 {
        self.0.read_u32(addr)
    }

    fn write_u32(&mut self, addr: PhysAddr, val: u32) {
        self.0.write_u32(addr, val)
    }

    fn compute(&mut self, n: u64) {
        self.0.compute(n)
    }

    // Bulk methods intentionally NOT forwarded: the trait defaults
    // decompose them into the five primitives above.
}

/// Functional executor: exact values, no timing. The golden reference.
#[derive(Default)]
pub struct ExactVm {
    pub mem: PhysMem,
    pub space: AddressSpace,
    pub instructions: u64,
}

impl ExactVm {
    pub fn new() -> Self {
        ExactVm::default()
    }
}

impl Vm for ExactVm {
    fn malloc(&mut self, len_bytes: usize) -> Region {
        self.space.malloc(len_bytes)
    }

    fn approx_malloc(&mut self, len_bytes: usize, dt: DataType) -> Region {
        // The golden run ignores approximability but keeps the layout
        // identical so addresses line up between runs.
        self.space.approx_malloc(len_bytes, dt)
    }

    fn approx_malloc_with(&mut self, len_bytes: usize, dt: DataType, opts: RegionOpts) -> Region {
        // Faults never happen here, but the region must still carry its
        // metadata so layout code can be validated against the exact VM.
        self.space.approx_malloc_with(len_bytes, dt, opts)
    }

    fn read_u32(&mut self, addr: PhysAddr) -> u32 {
        self.instructions += 1;
        self.mem.read_u32(addr)
    }

    fn write_u32(&mut self, addr: PhysAddr, val: u32) {
        self.instructions += 1;
        self.mem.write_u32(addr, val);
    }

    fn compute(&mut self, n: u64) {
        self.instructions += n;
    }

    // Bulk fast paths: one instruction per word like the defaults, but a
    // single address translation and slice copy per call.

    fn read_u32s(&mut self, addr: PhysAddr, out: &mut [u32]) {
        self.instructions += out.len() as u64;
        self.mem.read_words(addr, out);
    }

    fn write_u32s(&mut self, addr: PhysAddr, vals: &[u32]) {
        self.instructions += vals.len() as u64;
        self.mem.write_words(addr, vals);
    }

    fn read_f32s(&mut self, addr: PhysAddr, out: &mut [f32]) {
        self.instructions += out.len() as u64;
        self.mem.read_words_f32(addr, out);
    }

    fn write_f32s(&mut self, addr: PhysAddr, vals: &[f32]) {
        self.instructions += vals.len() as u64;
        self.mem.write_words_f32(addr, vals);
    }

    fn read_i32s(&mut self, addr: PhysAddr, out: &mut [i32]) {
        self.instructions += out.len() as u64;
        self.mem.read_words_i32(addr, out);
    }

    fn write_i32s(&mut self, addr: PhysAddr, vals: &[i32]) {
        self.instructions += vals.len() as u64;
        self.mem.write_words_i32(addr, vals);
    }

    fn read_f32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, out: &mut [f32]) {
        self.instructions += out.len() as u64;
        for (k, o) in out.iter_mut().enumerate() {
            *o = f32::from_bits(self.mem.read_u32(PhysAddr(base.0 + k as u64 * stride_bytes)));
        }
    }

    fn write_f32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, vals: &[f32]) {
        self.instructions += vals.len() as u64;
        for (k, v) in vals.iter().enumerate() {
            self.mem.write_u32(PhysAddr(base.0 + k as u64 * stride_bytes), v.to_bits());
        }
    }

    fn read_u32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, out: &mut [u32]) {
        self.instructions += out.len() as u64;
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.mem.read_u32(PhysAddr(base.0 + k as u64 * stride_bytes));
        }
    }

    fn write_u32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, vals: &[u32]) {
        self.instructions += vals.len() as u64;
        for (k, v) in vals.iter().enumerate() {
            self.mem.write_u32(PhysAddr(base.0 + k as u64 * stride_bytes), *v);
        }
    }

    fn read_f32s_gather(&mut self, base: PhysAddr, idx: &[u32], out: &mut [f32]) {
        assert_eq!(idx.len(), out.len(), "gather index/output shapes must match");
        self.instructions += idx.len() as u64;
        for (i, o) in idx.iter().zip(out.iter_mut()) {
            *o = f32::from_bits(self.mem.read_u32(PhysAddr(base.0 + 4 * *i as u64)));
        }
    }

    fn write_f32s_scatter(&mut self, base: PhysAddr, idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter index/value shapes must match");
        self.instructions += idx.len() as u64;
        for (i, v) in idx.iter().zip(vals.iter()) {
            self.mem.write_u32(PhysAddr(base.0 + 4 * *i as u64), v.to_bits());
        }
    }

    fn for_each_f32_mut(
        &mut self,
        addr: PhysAddr,
        n: usize,
        compute_per_value: u64,
        f: &mut dyn FnMut(usize, f32) -> f32,
    ) {
        // Values are exact and stable here, so the whole sweep can run on
        // one translated pass; instruction accounting matches the default
        // (load + store + compute_per_value per element).
        self.instructions += n as u64 * (2 + compute_per_value);
        for k in 0..n {
            let a = PhysAddr(addr.0 + 4 * k as u64);
            let old = f32::from_bits(self.mem.read_u32(a));
            self.mem.write_u32(a, f(k, old).to_bits());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_vm_reads_what_it_wrote() {
        let mut vm = ExactVm::new();
        let r = vm.approx_malloc(4096, DataType::F32);
        vm.write_f32(r.base, 1.5);
        vm.write_f32(PhysAddr(r.base.0 + 4), -2.5);
        assert_eq!(vm.read_f32(r.base), 1.5);
        assert_eq!(vm.read_f32(PhysAddr(r.base.0 + 4)), -2.5);
        assert_eq!(vm.instructions, 4);
    }

    #[test]
    fn layout_matches_between_allocators() {
        // Identical allocation sequences produce identical addresses, so
        // the exact run and the timed run can be compared element-wise.
        let mut a = ExactVm::new();
        let mut b = ExactVm::new();
        let r1 = a.malloc(100);
        let r2 = b.malloc(100);
        assert_eq!(r1.base, r2.base);
        let r3 = a.approx_malloc(8192, DataType::F32);
        let r4 = b.approx_malloc(8192, DataType::F32);
        assert_eq!(r3.base, r4.base);
    }

    #[test]
    fn compute_counts_instructions() {
        let mut vm = ExactVm::new();
        vm.compute(500);
        assert_eq!(vm.instructions, 500);
    }

    /// Drive the same bulk call pattern through the ExactVm fast paths and
    /// through [`WordAtATime`] (default decompositions); values and
    /// instruction counts must agree exactly.
    #[test]
    fn exact_bulk_paths_match_word_at_a_time() {
        let run = |bulk: bool| {
            let mut vm = ExactVm::new();
            let r = vm.approx_malloc(64 << 10, DataType::F32);
            let base = r.base;
            let drive = |vm: &mut dyn Vm| {
                let vals: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5 - 3.0).collect();
                vm.write_f32s(PhysAddr(base.0 + 12), &vals);
                let mut back = vec![0f32; 1000];
                vm.read_f32s(PhysAddr(base.0 + 12), &mut back);
                assert_eq!(back, vals);
                vm.write_f32s_strided(base, 64, &vals[..100]);
                let mut col = vec![0f32; 100];
                vm.read_f32s_strided(base, 64, &mut col);
                assert_eq!(col, vals[..100]);
                let idx: Vec<u32> = (0..64u32).map(|i| (i * 37) % 1000).collect();
                vm.write_f32s_scatter(base, &idx, &vals[..64]);
                let mut g = vec![0f32; 64];
                vm.read_f32s_gather(base, &idx, &mut g);
                assert_eq!(g, vals[..64]);
                vm.for_each_f32_mut(PhysAddr(base.0 + 12), 500, 3, &mut |k, v| v + k as f32);
                let words: Vec<u32> = (0..77).map(|i| i * 3 + 1).collect();
                vm.write_u32s(PhysAddr(base.0 + 4096), &words);
                let mut wb = vec![0u32; 77];
                vm.read_u32s(PhysAddr(base.0 + 4096), &mut wb);
                assert_eq!(wb, words);
            };
            if bulk {
                drive(&mut vm);
            } else {
                drive(&mut WordAtATime(&mut vm));
            }
            let probe: Vec<u32> =
                (0..(16 << 10)).map(|i| vm.mem.read_u32(PhysAddr(base.0 + 4 * i))).collect();
            (vm.instructions, probe)
        };
        let (fast_instr, fast_mem) = run(true);
        let (word_instr, word_mem) = run(false);
        assert_eq!(fast_instr, word_instr, "instruction accounting diverged");
        assert_eq!(fast_mem, word_mem, "memory contents diverged");
    }
}
