//! The workload-facing virtual-machine interface.
//!
//! Workloads are ordinary Rust programs written against `&mut dyn Vm`: they
//! allocate regions (optionally approximable), load/store 32-bit values and
//! report their non-memory instruction counts. The same workload source
//! runs on the timed [`crate::System`] (any design) and on [`ExactVm`] (a
//! functional, loss-free executor used as the golden reference for output-
//! error measurement, Table 3).

use avr_sim::vm::{AddressSpace, PhysMem, Region};
use avr_types::{DataType, PhysAddr};

/// What a workload needs from the machine.
pub trait Vm {
    /// Allocate precise (non-approximable) memory.
    fn malloc(&mut self, len_bytes: usize) -> Region;

    /// Allocate approximable memory of the given datatype (the paper's
    /// annotated-malloc wrapper, §3.1/§4.1).
    fn approx_malloc(&mut self, len_bytes: usize, dt: DataType) -> Region;

    /// Timed 32-bit load.
    fn read_u32(&mut self, addr: PhysAddr) -> u32;

    /// Timed 32-bit store.
    fn write_u32(&mut self, addr: PhysAddr, val: u32);

    /// Account `n` non-memory instructions (ALU/FP work between accesses).
    fn compute(&mut self, n: u64);

    /// Convenience: f32 load.
    fn read_f32(&mut self, addr: PhysAddr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Convenience: f32 store.
    fn write_f32(&mut self, addr: PhysAddr, val: f32) {
        self.write_u32(addr, val.to_bits());
    }
}

/// Functional executor: exact values, no timing. The golden reference.
#[derive(Default)]
pub struct ExactVm {
    pub mem: PhysMem,
    pub space: AddressSpace,
    pub instructions: u64,
}

impl ExactVm {
    pub fn new() -> Self {
        ExactVm::default()
    }
}

impl Vm for ExactVm {
    fn malloc(&mut self, len_bytes: usize) -> Region {
        self.space.malloc(len_bytes)
    }

    fn approx_malloc(&mut self, len_bytes: usize, dt: DataType) -> Region {
        // The golden run ignores approximability but keeps the layout
        // identical so addresses line up between runs.
        self.space.approx_malloc(len_bytes, dt)
    }

    fn read_u32(&mut self, addr: PhysAddr) -> u32 {
        self.instructions += 1;
        self.mem.read_u32(addr)
    }

    fn write_u32(&mut self, addr: PhysAddr, val: u32) {
        self.instructions += 1;
        self.mem.write_u32(addr, val);
    }

    fn compute(&mut self, n: u64) {
        self.instructions += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_vm_reads_what_it_wrote() {
        let mut vm = ExactVm::new();
        let r = vm.approx_malloc(4096, DataType::F32);
        vm.write_f32(r.base, 1.5);
        vm.write_f32(PhysAddr(r.base.0 + 4), -2.5);
        assert_eq!(vm.read_f32(r.base), 1.5);
        assert_eq!(vm.read_f32(PhysAddr(r.base.0 + 4)), -2.5);
        assert_eq!(vm.instructions, 4);
    }

    #[test]
    fn layout_matches_between_allocators() {
        // Identical allocation sequences produce identical addresses, so
        // the exact run and the timed run can be compared element-wise.
        let mut a = ExactVm::new();
        let mut b = ExactVm::new();
        let r1 = a.malloc(100);
        let r2 = b.malloc(100);
        assert_eq!(r1.base, r2.base);
        let r3 = a.approx_malloc(8192, DataType::F32);
        let r4 = b.approx_malloc(8192, DataType::F32);
        assert_eq!(r3.base, r4.base);
    }

    #[test]
    fn compute_counts_instructions() {
        let mut vm = ExactVm::new();
        vm.compute(500);
        assert_eq!(vm.instructions, 500);
    }
}
