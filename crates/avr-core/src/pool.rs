//! `SimPool` — the parallel end-to-end simulation engine.
//!
//! Every figure and table in the paper is a sweep over independent
//! (workload × configuration) simulations, and the data-partitioning /
//! granularity-gap literature (arXiv:2004.01637, arXiv:2101.10605) shows
//! that approximate-memory conclusions need *many* such configurations.
//! `SimPool` shards those independent runs across OS threads:
//!
//! * **Deterministic**: each job gets a [`JobCtx`] whose `seed` is a pure
//!   function of the job index (splitmix64), and results come back in job
//!   order regardless of thread count or scheduling. A pool of N threads is
//!   bit-identical to the single-threaded path (`tests/determinism.rs`
//!   asserts this for every workload).
//! * **Dependency-free**: plain `std::thread::scope` workers pulling job
//!   indices from a shared atomic — no external thread-pool crate (the
//!   build environment is offline).
//! * **Composable**: the same engine drives the figure sweeps
//!   (`avr_bench::Sweep`), the SPMD multicore runner
//!   ([`crate::multicore::run_multicore_on`]) and the parallel Table 4
//!   block scan ([`crate::summary`]).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Parse a worker-count string: a positive integer, or `None` for
/// anything invalid (`0`, empty, non-numeric, negative). The shared
/// validation for every `AVR_*_THREADS` knob.
pub(crate) fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Resolve a thread-count environment variable, identically for every
/// consumer (`AVR_THREADS` here, `AVR_SUMMARY_THREADS` in
/// `crate::system`): a positive integer is honored; an unset variable
/// silently yields `default`; anything else (`0`, empty, non-numeric)
/// falls back to `default` with a stderr warning. The warning fires once
/// per variable per process — `System::new` runs once per sweep job and
/// must not spam.
pub fn env_threads(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Err(_) => default,
        Ok(raw) => parse_threads(&raw).unwrap_or_else(|| {
            static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
            let mut warned = WARNED.get_or_init(Mutex::default).lock().unwrap();
            if warned.insert(var.to_string()) {
                eprintln!(
                    "warning: {var}={raw:?} is not a positive worker count; \
                     using the default ({default})"
                );
            }
            default
        }),
    }
}

/// Per-job context handed to every pool closure.
#[derive(Clone, Copy, Debug)]
pub struct JobCtx {
    /// This job's index in `0..total` (also its result slot).
    pub index: usize,
    /// Total number of jobs in the batch.
    pub total: usize,
    /// Deterministic per-shard seed: a pure function of `index`, identical
    /// for any thread count. Stochastic workloads must draw all their
    /// randomness from this.
    pub seed: u64,
}

/// Deterministic per-shard seed (splitmix64 over the job index).
#[inline]
pub fn shard_seed(index: usize) -> u64 {
    let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-width pool of simulation workers.
#[derive(Clone, Copy, Debug)]
pub struct SimPool {
    threads: usize,
}

impl Default for SimPool {
    fn default() -> Self {
        SimPool::from_env()
    }
}

impl SimPool {
    /// A pool of exactly `threads` workers (≥ 1).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        SimPool { threads }
    }

    /// Pool width from the environment: `AVR_THREADS` if set to a positive
    /// integer, otherwise the machine's available parallelism (invalid
    /// values fall back to that default with a stderr warning — see
    /// [`env_threads`]).
    pub fn from_env() -> Self {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        SimPool::new(env_threads("AVR_THREADS", default))
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `total` independent jobs and return their results **in job
    /// order**. Jobs are claimed dynamically (an atomic cursor), so uneven
    /// job costs load-balance, but the output order — and, because jobs are
    /// independent and deterministic, every result bit — is identical for
    /// any pool width.
    pub fn run_jobs<T, F>(&self, total: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(JobCtx) -> T + Sync,
    {
        let ctx = |index| JobCtx { index, total, seed: shard_seed(index) };
        if self.threads == 1 || total <= 1 {
            // Inline fast path: no spawn overhead, trivially deterministic.
            return (0..total).map(|i| job(ctx(i))).collect();
        }
        let cursor = AtomicUsize::new(0);
        let done = Mutex::new(Vec::<(usize, T)>::with_capacity(total));
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(total) {
                scope.spawn(|| {
                    // Each worker accumulates locally and publishes once at
                    // the end, keeping the mutex off the per-job path.
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        local.push((i, job(ctx(i))));
                    }
                    done.lock().unwrap().append(&mut local);
                });
            }
        });
        let mut tagged = done.into_inner().unwrap();
        tagged.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(tagged.len(), total);
        tagged.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 7] {
            let pool = SimPool::new(threads);
            let out = pool.run_jobs(100, |ctx| ctx.index * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let pool = SimPool::new(4);
        let a = pool.run_jobs(64, |ctx| ctx.seed);
        let b = SimPool::new(1).run_jobs(64, |ctx| ctx.seed);
        assert_eq!(a, b, "seed must not depend on pool width");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "shard seeds collide");
    }

    #[test]
    fn ctx_reports_batch_shape() {
        let pool = SimPool::new(2);
        let out = pool.run_jobs(5, |ctx| (ctx.index, ctx.total));
        for (i, (idx, total)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*total, 5);
        }
    }

    #[test]
    fn wide_pool_on_few_jobs_is_fine() {
        let pool = SimPool::new(16);
        assert_eq!(pool.run_jobs(2, |ctx| ctx.index), vec![0, 1]);
        assert_eq!(pool.run_jobs(0, |ctx| ctx.index), Vec::<usize>::new());
    }

    #[test]
    fn from_env_honors_avr_threads() {
        // Set/unset is process-global; keep the assertion tolerant of both
        // a preexisting AVR_THREADS and the default path.
        let pool = SimPool::from_env();
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_only_positive_integers() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("16"), Some(16));
        assert_eq!(parse_threads(" 4 "), Some(4), "whitespace is tolerated");
        // The documented-fallback cases: 0, empty, non-numeric, negative.
        for bad in ["0", "", "  ", "four", "-2", "1.5", "0x8", "18446744073709551616"] {
            assert_eq!(parse_threads(bad), None, "{bad:?} must fall back");
        }
    }

    #[test]
    fn env_threads_falls_back_on_unset_or_invalid() {
        // An unset variable silently yields the default. (Invalid *set*
        // values go through parse_threads — covered above — plus a
        // one-time warning; setting env vars in tests races other tests,
        // so the set path is exercised via the CI scalar leg instead.)
        assert_eq!(env_threads("AVR_TEST_THREADS_UNSET_XYZ", 7), 7);
    }
}
