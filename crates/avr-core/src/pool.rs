//! `SimPool` — the parallel end-to-end simulation engine.
//!
//! Every figure and table in the paper is a sweep over independent
//! (workload × configuration) simulations, and the data-partitioning /
//! granularity-gap literature (arXiv:2004.01637, arXiv:2101.10605) shows
//! that approximate-memory conclusions need *many* such configurations.
//! `SimPool` shards those independent runs across OS threads:
//!
//! * **Deterministic**: each job gets a [`JobCtx`] whose `seed` is a pure
//!   function of the job index (splitmix64), and results come back in job
//!   order regardless of thread count, scheduling policy or claiming
//!   granularity. A pool of N threads is bit-identical to the
//!   single-threaded path (`tests/determinism.rs` asserts this for every
//!   workload; `tests/scaling.rs` asserts it for every scheduling policy).
//! * **Dependency-free**: plain `std::thread::scope` workers pulling job
//!   indices from a shared atomic — no external thread-pool crate (the
//!   build environment is offline).
//! * **Composable**: the same engine drives the figure sweeps
//!   (`avr_bench::Sweep`), the SPMD multicore runner
//!   ([`crate::multicore::run_multicore_on`]) and the parallel Table 4
//!   block scan ([`crate::summary`]).
//!
//! # Scheduling policy
//!
//! Workers claim work from a shared cursor; what a claim *means* depends
//! on the entry point:
//!
//! * [`SimPool::run_jobs`] — jobs are claimed in index order, in **chunks**
//!   when the batch is large (`total / (workers × 8)`, clamped to
//!   `1..=64`): one atomic RMW amortizes across a run of jobs, so a
//!   100k-job batch does ~thousands of cursor operations instead of 100k,
//!   while the shrinking tail still load-balances.
//! * [`SimPool::run_jobs_weighted`] — the caller supplies a per-job cost
//!   estimate and jobs are claimed **heaviest-first** (LPT order, one job
//!   per claim). For heavily skewed batches — the nine-workload sweep
//!   spans ~45× between `fft` and the lightest workloads — this keeps the
//!   long pole from being claimed last, which would otherwise bound
//!   speedup by `t_longest + t_rest/N` with the longest job serialized at
//!   the *end* of the schedule. Only the claiming order changes: results
//!   are still returned (and bit-identical) in job order, for any weight
//!   function and any width.
//!
//! # Why the engine is structured this way
//!
//! The PR-2 engine collected `(index, result)` pairs into a mutex-guarded
//! vec and sorted at the end, and its job cursor shared a cache line with
//! whatever the allocator placed next to it. The committed BENCH_PR5/PR6
//! trajectories showed the pooled Table 4 sweep at 0.94–0.97× vs.
//! single-thread — partly a 1-hardware-thread recording host (now recorded
//! as `available_parallelism` provenance in the trajectory JSON), partly
//! real structural overhead. The current engine:
//!
//! * pads the job cursor to its own cache lines (`PaddedCursor`) so
//!   claim traffic never false-shares;
//! * writes each result into a **preallocated slot** owned by its job
//!   index (`ResultSlots`) — no result mutex, no tag, no final sort;
//! * claims in chunks (above) so cursor traffic scales with
//!   `workers × chunks`, not jobs.

use std::cell::UnsafeCell;
use std::collections::BTreeSet;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Parse a worker-count string: a positive integer, or `None` for
/// anything invalid (`0`, empty, non-numeric, negative). The shared
/// validation for every `AVR_*_THREADS` knob.
pub(crate) fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Resolve a thread-count environment variable, identically for every
/// consumer (`AVR_THREADS` here, `AVR_SUMMARY_THREADS` in
/// `crate::system`): a positive integer is honored; an unset variable
/// silently yields `default`; anything else (`0`, empty, non-numeric)
/// falls back to `default` with a stderr warning. The warning fires once
/// per variable per process — `System::new` runs once per sweep job and
/// must not spam.
pub fn env_threads(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Err(_) => default,
        Ok(raw) => parse_threads(&raw).unwrap_or_else(|| {
            static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
            let mut warned = WARNED.get_or_init(Mutex::default).lock().unwrap();
            if warned.insert(var.to_string()) {
                eprintln!(
                    "warning: {var}={raw:?} is not a positive worker count; \
                     using the default ({default})"
                );
            }
            default
        }),
    }
}

/// Per-job context handed to every pool closure.
#[derive(Clone, Copy, Debug)]
pub struct JobCtx {
    /// This job's index in `0..total` (also its result slot).
    pub index: usize,
    /// Total number of jobs in the batch.
    pub total: usize,
    /// Deterministic per-shard seed: a pure function of `index`, identical
    /// for any thread count. Stochastic workloads must draw all their
    /// randomness from this.
    pub seed: u64,
    /// Which pool worker (`0..threads`) is executing this job. Purely
    /// informational — which worker claims which job is a scheduling
    /// accident, and nothing deterministic may depend on it — but it lets
    /// a long-running caller (the sweep server) account per-worker
    /// utilization. The inline single-thread fast path reports worker 0.
    pub worker: usize,
}

/// Shared cancellation + progress state for a pool batch — the hooks a
/// long-running front end (the sweep server) needs around
/// [`SimPool::run_jobs_weighted_ctl`].
///
/// * **Cancellation** is cooperative and job-granular: once
///   [`PoolControl::cancel`] is observed, workers stop *starting* jobs
///   (in-flight jobs run to completion so every produced result is a
///   complete, deterministic simulation — never a torn one).
/// * **Progress** is two monotone counters: jobs started and jobs
///   finished. `started - finished` is the batch's in-flight depth, which
///   a status endpoint can report while the batch runs.
///
/// A `PoolControl` observes one batch; create a fresh one per batch.
#[derive(Debug, Default)]
pub struct PoolControl {
    cancelled: AtomicBool,
    started: AtomicUsize,
    finished: AtomicUsize,
}

impl PoolControl {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation: no further jobs start; jobs already running
    /// complete normally.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Jobs the batch has started executing so far.
    pub fn started(&self) -> usize {
        self.started.load(Ordering::Relaxed)
    }

    /// Jobs the batch has finished executing so far.
    pub fn finished(&self) -> usize {
        self.finished.load(Ordering::Relaxed)
    }

    /// Jobs currently executing (`started - finished`).
    pub fn in_flight(&self) -> usize {
        self.started().saturating_sub(self.finished())
    }
}

/// Deterministic per-shard seed (splitmix64 over the job index).
#[inline]
pub fn shard_seed(index: usize) -> u64 {
    let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A shared claim cursor padded to its own cache lines, so the hot
/// `fetch_add` traffic can never false-share with neighboring state (the
/// result slots, a worker's stack spill, whatever the allocator packs
/// next to it). 128-byte alignment covers the adjacent-line prefetcher
/// pairing lines on modern x86 parts.
#[repr(align(128))]
pub(crate) struct PaddedCursor(pub(crate) AtomicUsize);

impl PaddedCursor {
    pub(crate) fn new() -> Self {
        PaddedCursor(AtomicUsize::new(0))
    }
}

/// Preallocated per-job result storage: each job index owns exactly one
/// slot, written once by whichever worker ran the job and read once after
/// the scope joins. Replaces the PR-2 engine's mutex-guarded
/// `Vec<(index, T)>` + final sort — no lock on the result path, no
/// allocation per result, and job order is structural instead of
/// re-established by sorting.
struct ResultSlots<T> {
    slots: Vec<UnsafeCell<MaybeUninit<T>>>,
    /// Completed-slot count; the completeness check in [`Self::into_vec`].
    filled: AtomicUsize,
}

/// SAFETY: workers write disjoint slots (each job index is claimed by
/// exactly one worker — see the claiming loop) and the main thread reads
/// only after `thread::scope` joins every worker, which provides the
/// happens-before edge for the unsynchronized cell contents.
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(total: usize) -> Self {
        let mut slots = Vec::with_capacity(total);
        slots.resize_with(total, || UnsafeCell::new(MaybeUninit::uninit()));
        ResultSlots { slots, filled: AtomicUsize::new(0) }
    }

    /// Store job `i`'s result.
    ///
    /// SAFETY: each index must be written at most once across all workers
    /// (the claim protocol guarantees exactly once). If a job panics, the
    /// scope unwinds before `into_vec`; already-written non-`Copy` results
    /// are leaked rather than dropped — acceptable for a harness whose
    /// jobs only panic on assertion failures.
    unsafe fn put(&self, i: usize, value: T) {
        unsafe { (*self.slots[i].get()).write(value) };
        // Relaxed: the scope join, not this counter, orders the reads.
        self.filled.fetch_add(1, Ordering::Relaxed);
    }

    /// Take all results in job order. Panics if any slot was left empty
    /// (a claim-protocol bug — better loud than uninitialized reads).
    fn into_vec(self) -> Vec<T> {
        assert_eq!(
            self.filled.load(Ordering::Relaxed),
            self.slots.len(),
            "SimPool claim protocol left result slots unfilled"
        );
        // SAFETY: every slot was written exactly once (checked above).
        self.slots.into_iter().map(|c| unsafe { c.into_inner().assume_init() }).collect()
    }
}

/// Unweighted claiming granularity: aim for ~8 chunks per worker so the
/// tail still load-balances, claim at least 1 and at most 64 jobs per
/// cursor RMW.
const CHUNKS_PER_WORKER: usize = 8;
const MAX_CLAIM_CHUNK: usize = 64;

/// A fixed-width pool of simulation workers.
#[derive(Clone, Copy, Debug)]
pub struct SimPool {
    threads: usize,
}

impl Default for SimPool {
    fn default() -> Self {
        SimPool::from_env()
    }
}

impl SimPool {
    /// A pool of exactly `threads` workers (≥ 1).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        SimPool { threads }
    }

    /// Pool width from the environment: `AVR_THREADS` if set to a positive
    /// integer, otherwise the machine's available parallelism (invalid
    /// values fall back to that default with a stderr warning — see
    /// [`env_threads`]).
    pub fn from_env() -> Self {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        SimPool::new(env_threads("AVR_THREADS", default))
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `total` independent jobs and return their results **in job
    /// order**. Jobs are claimed dynamically in index order (chunked for
    /// large batches — see the module docs), so uneven job costs
    /// load-balance, but the output order — and, because jobs are
    /// independent and deterministic, every result bit — is identical for
    /// any pool width.
    pub fn run_jobs<T, F>(&self, total: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(JobCtx) -> T + Sync,
    {
        self.run_scheduled(total, None, job)
    }

    /// Run `total` independent jobs with **size-aware scheduling**:
    /// `weight(index)` estimates each job's relative cost (arbitrary
    /// units; only the ordering matters), and workers claim jobs
    /// heaviest-first so the longest poles start immediately instead of
    /// possibly last. Ties keep job-index order (the sort is stable), the
    /// schedule is a pure function of the weights, and results are
    /// returned in **job order, bit-identical** to [`SimPool::run_jobs`]
    /// at any width (`tests/scaling.rs` pins this).
    pub fn run_jobs_weighted<T, F, W>(&self, total: usize, weight: W, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(JobCtx) -> T + Sync,
        W: Fn(usize) -> u64,
    {
        if self.threads == 1 || total <= 1 {
            // The schedule cannot change anything single-threaded; skip
            // building it.
            return self.run_scheduled(total, None, job);
        }
        assert!(u32::try_from(total).is_ok(), "batch too large for the u32 schedule");
        let mut order: Vec<u32> = (0..total as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(weight(i as usize)));
        self.run_scheduled(total, Some(order), job)
    }

    /// [`SimPool::run_jobs_weighted`] with **cancellation and progress
    /// hooks**: the sweep-server entry point. Jobs observe `ctl` — once
    /// [`PoolControl::cancel`] fires, workers stop starting jobs and every
    /// not-yet-started job's slot comes back `None`; jobs that did run
    /// return `Some(result)`, bit-identical to what the uncancelled batch
    /// would have produced (each job is an independent deterministic
    /// simulation, so skipping neighbors cannot perturb it). `ctl`'s
    /// started/finished counters advance as jobs execute, giving a
    /// concurrent reader queue-depth/in-flight progress mid-batch.
    ///
    /// Which jobs completed before a cancellation is scheduling-dependent
    /// by nature; everything else — result values, slot order — is not.
    pub fn run_jobs_weighted_ctl<T, F, W>(
        &self,
        total: usize,
        weight: W,
        job: F,
        ctl: &PoolControl,
    ) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(JobCtx) -> T + Sync,
        W: Fn(usize) -> u64,
    {
        // Wrapping keeps the claim/slot machinery untouched: a cancelled
        // job is an ordinary job whose body is a cheap `None` write.
        let observed = |ctx: JobCtx| {
            if ctl.is_cancelled() {
                return None;
            }
            ctl.started.fetch_add(1, Ordering::Relaxed);
            let out = job(ctx);
            ctl.finished.fetch_add(1, Ordering::Relaxed);
            Some(out)
        };
        if self.threads == 1 || total <= 1 {
            return self.run_scheduled(total, None, observed);
        }
        assert!(u32::try_from(total).is_ok(), "batch too large for the u32 schedule");
        let mut order: Vec<u32> = (0..total as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(weight(i as usize)));
        self.run_scheduled(total, Some(order), observed)
    }

    /// The shared engine behind both entry points: claim positions from a
    /// padded cursor (chunked when unscheduled), map them through the
    /// optional heaviest-first schedule, write each result into its job's
    /// preallocated slot.
    fn run_scheduled<T, F>(&self, total: usize, schedule: Option<Vec<u32>>, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(JobCtx) -> T + Sync,
    {
        let ctx = |index, worker| JobCtx { index, total, seed: shard_seed(index), worker };
        if self.threads == 1 || total <= 1 {
            // Inline fast path: no spawn overhead, trivially deterministic.
            return (0..total).map(|i| job(ctx(i, 0))).collect();
        }
        let workers = self.threads.min(total);
        // A weighted schedule claims one job per RMW: its batches are
        // small and skewed (that is why they are weighted), and chunking
        // would hand one worker a run of same-workload cells — including
        // the heavy ones the schedule exists to spread out.
        let chunk = match &schedule {
            Some(_) => 1,
            None => (total / (workers * CHUNKS_PER_WORKER)).clamp(1, MAX_CLAIM_CHUNK),
        };
        let cursor = PaddedCursor::new();
        let slots = ResultSlots::new(total);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                // Shared engine state by reference; only the worker id
                // moves into the closure.
                let (cursor, slots, schedule, job) = (&cursor, &slots, &schedule, &job);
                scope.spawn(move || loop {
                    let start = cursor.0.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    for pos in start..(start + chunk).min(total) {
                        let i = schedule.as_ref().map_or(pos, |o| o[pos] as usize);
                        // SAFETY: `pos` values are claimed exactly once
                        // (monotone fetch_add) and `schedule` is a
                        // permutation, so each slot `i` is written exactly
                        // once.
                        unsafe { slots.put(i, job(ctx(i, worker))) };
                    }
                });
            }
        });
        slots.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 7] {
            let pool = SimPool::new(threads);
            let out = pool.run_jobs(100, |ctx| ctx.index * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn chunked_claiming_covers_large_batches_exactly_once() {
        // 10_000 jobs across 8 workers exercises chunked claims (chunk =
        // 10_000/64 → clamped to 64) including the partial tail chunk.
        let pool = SimPool::new(8);
        let out = pool.run_jobs(10_000, |ctx| ctx.index as u64 + 1);
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    #[test]
    fn weighted_results_match_unweighted_bit_for_bit() {
        let pool = SimPool::new(4);
        let plain = pool.run_jobs(97, |ctx| (ctx.index, ctx.seed));
        // Adversarial weights: reverse-cost (lightest job first in index
        // order), constant ties, and a skewed mix.
        for weight in [
            (|i| 97 - i as u64) as fn(usize) -> u64,
            |_| 7,
            |i| if i % 9 == 0 { 1_000_000 } else { i as u64 },
        ] {
            let weighted = pool.run_jobs_weighted(97, weight, |ctx| (ctx.index, ctx.seed));
            assert_eq!(weighted, plain, "schedule changed results");
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let pool = SimPool::new(4);
        let a = pool.run_jobs(64, |ctx| ctx.seed);
        let b = SimPool::new(1).run_jobs(64, |ctx| ctx.seed);
        assert_eq!(a, b, "seed must not depend on pool width");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "shard seeds collide");
    }

    #[test]
    fn ctx_reports_batch_shape() {
        let pool = SimPool::new(2);
        let out = pool.run_jobs(5, |ctx| (ctx.index, ctx.total));
        for (i, (idx, total)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*total, 5);
        }
    }

    #[test]
    fn wide_pool_on_few_jobs_is_fine() {
        let pool = SimPool::new(16);
        assert_eq!(pool.run_jobs(2, |ctx| ctx.index), vec![0, 1]);
        assert_eq!(pool.run_jobs(0, |ctx| ctx.index), Vec::<usize>::new());
        assert_eq!(pool.run_jobs_weighted(0, |_| 1, |ctx| ctx.index), Vec::<usize>::new());
    }

    #[test]
    fn non_copy_results_round_trip() {
        // ResultSlots handles owned values (the real jobs return
        // RunMetrics with heap payloads).
        let pool = SimPool::new(3);
        let out = pool.run_jobs_weighted(20, |i| i as u64, |ctx| vec![ctx.index; ctx.index % 4]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 4);
            assert!(v.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn ctl_batch_without_cancellation_matches_weighted_run() {
        for threads in [1, 4] {
            let pool = SimPool::new(threads);
            let plain = pool.run_jobs_weighted(33, |i| i as u64, |ctx| (ctx.index, ctx.seed));
            let ctl = PoolControl::new();
            let observed =
                pool.run_jobs_weighted_ctl(33, |i| i as u64, |ctx| (ctx.index, ctx.seed), &ctl);
            let unwrapped: Vec<_> = observed.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(unwrapped, plain, "{threads} threads");
            assert_eq!(ctl.started(), 33);
            assert_eq!(ctl.finished(), 33);
            assert_eq!(ctl.in_flight(), 0);
            assert!(!ctl.is_cancelled());
        }
    }

    #[test]
    fn cancellation_skips_unstarted_jobs_and_keeps_finished_results() {
        for threads in [1, 3] {
            let pool = SimPool::new(threads);
            let ctl = PoolControl::new();
            let out = pool.run_jobs_weighted_ctl(
                50,
                |_| 1,
                |ctx| {
                    // Cancel mid-batch from inside a job: everything that
                    // starts afterward must come back None.
                    if ctl.finished() >= 5 {
                        ctl.cancel();
                    }
                    ctx.index * 2
                },
                &ctl,
            );
            assert_eq!(out.len(), 50);
            let done = out.iter().flatten().count();
            assert!(done < 50, "{threads} threads: cancellation had no effect");
            assert_eq!(done, ctl.finished(), "finished counter tracks produced results");
            for (i, r) in out.iter().enumerate() {
                if let Some(v) = r {
                    assert_eq!(*v, i * 2, "completed results stay correct");
                }
            }
        }
    }

    #[test]
    fn cancel_before_start_runs_nothing() {
        let pool = SimPool::new(4);
        let ctl = PoolControl::new();
        ctl.cancel();
        let out = pool.run_jobs_weighted_ctl(10, |_| 1, |ctx| ctx.index, &ctl);
        assert!(out.iter().all(|r| r.is_none()));
        assert_eq!(ctl.started(), 0);
    }

    #[test]
    fn worker_ids_are_in_range() {
        for threads in [1, 5] {
            let pool = SimPool::new(threads);
            let workers = pool.run_jobs(64, |ctx| ctx.worker);
            assert!(workers.iter().all(|&w| w < threads), "{threads} threads");
        }
        // The inline path always reports worker 0.
        assert_eq!(SimPool::new(1).run_jobs(3, |ctx| ctx.worker), vec![0, 0, 0]);
    }

    #[test]
    fn from_env_honors_avr_threads() {
        // Set/unset is process-global; keep the assertion tolerant of both
        // a preexisting AVR_THREADS and the default path.
        let pool = SimPool::from_env();
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_only_positive_integers() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("16"), Some(16));
        assert_eq!(parse_threads(" 4 "), Some(4), "whitespace is tolerated");
        // The documented-fallback cases: 0, empty, non-numeric, negative.
        for bad in ["0", "", "  ", "four", "-2", "1.5", "0x8", "18446744073709551616"] {
            assert_eq!(parse_threads(bad), None, "{bad:?} must fall back");
        }
    }

    #[test]
    fn env_threads_falls_back_on_unset_or_invalid() {
        // An unset variable silently yields the default. (Invalid *set*
        // values go through parse_threads — covered above — plus a
        // one-time warning; setting env vars in tests races other tests,
        // so the set path is exercised via the CI scalar leg instead.)
        assert_eq!(env_threads("AVR_TEST_THREADS_UNSET_XYZ", 7), 7);
    }
}
