//! The HPAC-style memoization design family (Tziantzioulis et al., IEEE
//! Micro 2018), recast as memory-system designs over a conventional LLC:
//!
//! * [`MemoInPolicy`] (`memoin`) — *input memoization*: a small
//!   content-fingerprint table in the memory controller. On each
//!   approximable writeback the line's content is probed against the
//!   table's canonical entries under a per-value relative-error threshold
//!   (playing the role of AVR's T1); a match stores only an 8 B table
//!   reference instead of the 64 B line, and later fetches of the line are
//!   served from the canonical entry without a DRAM data transfer.
//!   Non-matching lines commit exactly and (FCFS, table never evicts)
//!   seed new canonical entries.
//! * [`MemoOutPolicy`] (`memoout`) — *output memoization*: per-line
//!   temporal prediction. Each approximable line keeps a sliding window of
//!   its recent committed signatures (line means); when the window's
//!   relative standard deviation sits under the threshold *and* the new
//!   content is per-value close to the last committed shadow, the
//!   writeback is elided (8 B of metadata, bounded consecutive elides) and
//!   the line architecturally keeps its previous contents. Unstable lines
//!   commit exactly.
//!
//! Both designs follow the crate's value-feedback contract: every lossy
//! event (serving canonical table content, eliding a commit) rewrites the
//! backing store at that moment, so approximation error feeds back into
//! the running application. Lines carrying a nonzero critical mask
//! (partitioned layouts place exact words inside approx regions) are
//! never memoized — indices and control data always take the exact path.
//!
//! Determinism: all table/window state is per-`System`, content-driven,
//! and RNG-free, so both designs are bit-identical at any `SimPool` width
//! and under the per-word/batched walk toggle. Steady state allocates
//! nothing: the fingerprint table is reserved at construction and the
//! per-line state at `on_region` time (`tests/zero_alloc.rs`).

use avr_cache::set_assoc::SetAssocCache;
use avr_dram::AccessKind;
use avr_sim::vm::Region;
use avr_types::{CacheLine, DataType, DesignKind, LineAddr, MemoParams, SystemConfig, CL_BYTES};

use crate::design::DesignPolicy;
use crate::system::System;

/// Metadata cost of one memo-table reference / elision record.
pub const MEMO_META_BYTES: u64 = 8;

/// Extra cycles to serve a fetch from the controller-side memo table
/// (table lookup + line mux), replacing the DRAM access latency.
const MEMO_SERVE_LAT: u64 = 4;

/// Decode one stored word as the region's value type.
#[inline]
fn decode(w: u32, dt: DataType) -> f64 {
    match dt {
        DataType::F32 => f32::from_bits(w) as f64,
        DataType::Fixed32 => (w as i32) as f64 / 65536.0,
    }
}

/// Relative difference of `a` against reference `b`.
#[inline]
fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-6)
}

/// Mean of a line's decoded values; `None` if any value is non-finite
/// (NaN/Inf content is never memoized).
fn finite_mean(line: &CacheLine, dt: DataType) -> Option<f64> {
    let mut sum = 0.0;
    for &w in line.words.iter() {
        let v = decode(w, dt);
        if !v.is_finite() {
            return None;
        }
        sum += v;
    }
    Some(sum / line.words.len() as f64)
}

/// Is every value of `a` within relative `threshold` of `b`'s?
fn line_close(a: &CacheLine, b: &CacheLine, dt: DataType, threshold: f64) -> bool {
    a.words.iter().zip(b.words.iter()).all(|(&wa, &wb)| {
        let (va, vb) = (decode(wa, dt), decode(wb, dt));
        va.is_finite() && vb.is_finite() && rel(va, vb) <= threshold
    })
}

/// Memoizability of `line` under `sys`: its (region index, line index
/// within region, value type), or `None` for precise lines and for lines
/// carrying critical words (which must never see memo error).
fn memo_dt(sys: &System, line: LineAddr) -> Option<(usize, usize, DataType)> {
    let dt = sys.approx_of(line)?;
    let ri = sys.space.approx_region_index_of_line(line)?;
    let region = sys.space.regions()[ri];
    if region.critical_mask_of_line(line) != 0 {
        return None;
    }
    let li = (line.0 - region.base.line().0) as usize;
    Some((ri, li, dt))
}

/// Per-region line state sizing: one slot per line of an approx region,
/// nothing for precise regions (keeps the vectors parallel to
/// `space.regions()`).
fn region_lines(region: &Region) -> usize {
    if region.approx.is_some() {
        region.len_bytes.div_ceil(CL_BYTES)
    } else {
        0
    }
}

// ----------------------------------------------------------------------
// MemoIn: content-fingerprint input memoization
// ----------------------------------------------------------------------

/// One canonical entry of the fingerprint table.
struct MemoSlot {
    words: CacheLine,
    dt: DataType,
    mean: f64,
}

/// `MemoIn`: conventional LLC + a controller-side content-fingerprint
/// table (see the module docs).
pub struct MemoInPolicy {
    llc: SetAssocCache,
    params: MemoParams,
    /// Canonical entries, FCFS, never evicted; reserved at construction
    /// so steady state never reallocates.
    slots: Vec<MemoSlot>,
    /// Per region: per-line canonical mapping (`slot index + 1`; 0 = the
    /// line is stored exactly). Parallel to `space.regions()`.
    line_map: Vec<Vec<u16>>,
}

impl MemoInPolicy {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        let cap = cfg.memo.table_slots.min(u16::MAX as usize - 1);
        assert!(cap > 0, "memo table needs at least one slot");
        MemoInPolicy {
            llc: SetAssocCache::new(cfg.llc),
            params: cfg.memo,
            slots: Vec::with_capacity(cap),
            line_map: Vec::new(),
        }
    }

    /// Is `line` currently represented by a canonical table entry?
    fn mapped(&self, ri: usize, li: usize) -> bool {
        self.line_map[ri][li] != 0
    }

    /// First canonical entry matching `data` under the relative-error
    /// threshold (linear scan: first match wins, deterministic).
    fn find_match(&self, data: &CacheLine, dt: DataType) -> Option<usize> {
        let mean = finite_mean(data, dt)?;
        let thr = self.params.match_threshold;
        self.slots.iter().position(|s| {
            s.dt == dt && rel(mean, s.mean) <= thr && line_close(data, &s.words, dt, thr)
        })
    }

    /// Commit a dirty line leaving the LLC: match against the table
    /// (reference-only store), or commit exactly and maybe seed a new
    /// canonical entry.
    fn commit_line(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        let Some((ri, li, dt)) = memo_dt(sys, line) else {
            sys.dram_write_line(line, now);
            return;
        };
        sys.counters.memo.in_probes += 1;
        let data = sys.mem.read_line(line);
        if let Some(si) = self.find_match(&data, dt) {
            // Match: store only the table reference; the line's
            // architectural content becomes the canonical entry (value
            // feedback).
            sys.counters.memo.in_hits += 1;
            sys.counters.traffic.metadata_bytes += MEMO_META_BYTES;
            sys.mem.write_line(line, &self.slots[si].words);
            self.line_map[ri][li] = si as u16 + 1;
            return;
        }
        // No match: the line is stored exactly.
        self.line_map[ri][li] = 0;
        sys.dram_write_line(line, now);
        if self.slots.len() < self.slots.capacity() {
            // Seed a canonical entry from what the device actually holds
            // (post-fault), so table serves reproduce memory content.
            let words = sys.mem.read_line(line);
            if let Some(mean) = finite_mean(&words, dt) {
                sys.counters.memo.in_inserts += 1;
                self.slots.push(MemoSlot { words, dt, mean });
                self.line_map[ri][li] = self.slots.len() as u16;
            }
        }
    }
}

impl DesignPolicy for MemoInPolicy {
    fn kind(&self) -> DesignKind {
        DesignKind::MemoIn
    }

    fn honor_approx(&self) -> bool {
        true
    }

    fn request(&mut self, sys: &mut System, line: LineAddr, t: u64) -> u64 {
        let llc_lat = sys.cfg.llc.latency;
        let approx = sys.approx_of(line);
        if self.llc.access(line, false) {
            if approx.is_some() {
                sys.counters.approx_requests.uncompressed_hit += 1;
            }
            return t + llc_lat;
        }
        sys.counters.llc_misses_total += 1;
        if approx.is_some() {
            sys.counters.approx_requests.miss += 1;
        }
        let served = memo_dt(sys, line).is_some_and(|(ri, li, _)| self.mapped(ri, li));
        let completion = if served {
            // The line is stored as a table reference: serve the canonical
            // content from the controller, no DRAM data transfer. The
            // backing store already holds the canonical words (written at
            // commit time), so the value path needs no movement.
            sys.counters.memo.in_served += 1;
            sys.counters.traffic.metadata_bytes += MEMO_META_BYTES;
            t + llc_lat + MEMO_SERVE_LAT
        } else {
            let resp = sys.dram.access(line, AccessKind::Read, t + llc_lat);
            sys.count_traffic(approx.is_some(), false, CL_BYTES as u64);
            sys.device_line_faults(line, AccessKind::Read, resp.complete_at);
            resp.complete_at
        };
        if let Some(ev) = self.llc.insert(line, false) {
            if ev.dirty {
                self.commit_line(sys, ev.line, completion);
            }
        }
        completion
    }

    fn writeback(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        if self.llc.contains(line) {
            self.llc.access(line, true);
        } else if let Some(ev) = self.llc.insert(line, true) {
            if ev.dirty {
                self.commit_line(sys, ev.line, now);
            }
        }
    }

    fn on_region(&mut self, region: &Region) {
        self.line_map.push(vec![0u16; region_lines(region)]);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ----------------------------------------------------------------------
// MemoOut: sliding-window output memoization
// ----------------------------------------------------------------------

/// Per-line temporal state for `MemoOut`.
#[derive(Clone, Default)]
struct OutLine {
    /// The last exactly committed content.
    shadow: CacheLine,
    shadow_valid: bool,
    /// Circular window of recent committed signatures (line means).
    window: [f64; 8],
    len: u8,
    pos: u8,
    /// Consecutive elisions since the last exact commit.
    elides: u8,
}

/// `MemoOut`: conventional LLC + per-line commit elision gated on the
/// sliding window's relative standard deviation (see the module docs).
pub struct MemoOutPolicy {
    llc: SetAssocCache,
    params: MemoParams,
    /// Effective window length (`params.window` clamped to the inline
    /// window storage).
    window: usize,
    /// Per region: per-line temporal state. Parallel to
    /// `space.regions()`.
    lines: Vec<Vec<OutLine>>,
}

impl MemoOutPolicy {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        MemoOutPolicy {
            llc: SetAssocCache::new(cfg.llc),
            params: cfg.memo,
            window: cfg.memo.window.clamp(2, 8),
            lines: Vec::new(),
        }
    }

    /// Relative standard deviation of a full signature window.
    fn window_rsd(window: &[f64]) -> f64 {
        let n = window.len() as f64;
        let mean = window.iter().sum::<f64>() / n;
        let var = window.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        var.sqrt() / mean.abs().max(1e-6)
    }

    /// Commit a dirty line leaving the LLC: push its signature into the
    /// window, elide the writeback if the line is temporally stable,
    /// otherwise commit exactly and refresh the shadow.
    fn commit_line(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        let Some((ri, li, dt)) = memo_dt(sys, line) else {
            sys.dram_write_line(line, now);
            return;
        };
        let params = self.params;
        let w = self.window;
        let data = sys.mem.read_line(line);
        let mean = finite_mean(&data, dt);
        sys.counters.memo.out_windows += 1;
        let st = &mut self.lines[ri][li];
        let stable = match mean {
            Some(m) => {
                st.window[st.pos as usize] = m;
                st.pos = (st.pos + 1) % w as u8;
                st.len = (st.len + 1).min(w as u8);
                st.len as usize == w && Self::window_rsd(&st.window[..w]) <= params.rsd_threshold
            }
            None => {
                // Non-finite content resets the history: never elided.
                st.len = 0;
                st.pos = 0;
                false
            }
        };
        let elide = stable
            && st.shadow_valid
            && (st.elides as u32) < params.max_consecutive_elides
            && line_close(&data, &st.shadow, dt, params.rsd_threshold);
        if elide {
            st.elides += 1;
            let shadow = st.shadow;
            sys.counters.memo.out_elided += 1;
            sys.counters.traffic.metadata_bytes += MEMO_META_BYTES;
            // The line architecturally keeps its previous contents
            // (value feedback: bounded temporal error).
            sys.mem.write_line(line, &shadow);
        } else {
            st.elides = 0;
            sys.counters.memo.out_commits += 1;
            sys.dram_write_line(line, now);
            // Shadow what the device actually holds (post-fault).
            let committed = sys.mem.read_line(line);
            let st = &mut self.lines[ri][li];
            st.shadow = committed;
            st.shadow_valid = true;
        }
    }
}

impl DesignPolicy for MemoOutPolicy {
    fn kind(&self) -> DesignKind {
        DesignKind::MemoOut
    }

    fn honor_approx(&self) -> bool {
        true
    }

    fn request(&mut self, sys: &mut System, line: LineAddr, t: u64) -> u64 {
        let llc_lat = sys.cfg.llc.latency;
        let approx = sys.approx_of(line);
        if self.llc.access(line, false) {
            if approx.is_some() {
                sys.counters.approx_requests.uncompressed_hit += 1;
            }
            return t + llc_lat;
        }
        sys.counters.llc_misses_total += 1;
        if approx.is_some() {
            sys.counters.approx_requests.miss += 1;
        }
        let resp = sys.dram.access(line, AccessKind::Read, t + llc_lat);
        sys.count_traffic(approx.is_some(), false, CL_BYTES as u64);
        sys.device_line_faults(line, AccessKind::Read, resp.complete_at);
        if let Some(ev) = self.llc.insert(line, false) {
            if ev.dirty {
                self.commit_line(sys, ev.line, resp.complete_at);
            }
        }
        resp.complete_at
    }

    fn writeback(&mut self, sys: &mut System, line: LineAddr, now: u64) {
        if self.llc.contains(line) {
            self.llc.access(line, true);
        } else if let Some(ev) = self.llc.insert(line, true) {
            if ev.dirty {
                self.commit_line(sys, ev.line, now);
            }
        }
    }

    fn on_region(&mut self, region: &Region) {
        self.lines.push(vec![OutLine::default(); region_lines(region)]);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
