//! The full-system simulator: core → L1 → L2 → LLC(design) → DDR4.
//!
//! One `System` simulates one core (the figure benches run one SPMD shard
//! against a per-core-scaled hierarchy; see DESIGN.md §3). Data values live
//! in the backing store ([`avr_sim::PhysMem`]); the caches track presence,
//! and every lossy event (AVR compression, fp16 truncation, Doppelgänger
//! dedup) rewrites the backing store at the architecturally correct moment
//! so approximation error feeds back into the running application.

use avr_cache::set_assoc::SetAssocCache;
use avr_dram::{backend_for, AccessKind, DramBackend, FaultCtx};
use avr_sim::energy::{EnergyEvents, EnergyModel};
use avr_sim::vm::{AddressSpace, PhysMem, Region, RegionOpts};
use avr_sim::{Counters, FaultBreakdown, IntervalCore, RunMetrics};
use avr_types::{DataType, DesignKind, LineAddr, PhysAddr, SystemConfig, CL_BYTES};

use crate::design::DesignPolicy;
use crate::vm_api::Vm;

/// One simulated system instance.
pub struct System {
    pub cfg: SystemConfig,
    pub design: DesignKind,
    pub(crate) core: IntervalCore,
    pub(crate) l1: SetAssocCache,
    pub(crate) l2: SetAssocCache,
    /// The design policy: the LLC variant, per-request routing, and
    /// writeback/compression behavior live behind [`DesignPolicy`]
    /// (`crate::design`), the way the device axis lives behind
    /// [`DramBackend`]. Boxed in an `Option` so [`System::with_policy`]
    /// can lend the policy and the `System` to each other without
    /// aliasing.
    policy: Option<Box<dyn DesignPolicy>>,
    /// The device error-model backend (exact DRAM, relaxed-refresh DRAM,
    /// approximate MRAM) behind the shared DDR4 timing engine.
    pub(crate) dram: Box<dyn DramBackend>,
    pub mem: PhysMem,
    pub space: AddressSpace,
    pub counters: Counters,
    /// Worker count for the end-of-run parallel compression summary
    /// (Table 4 scan). Defaults to 1 — sweeps already parallelize across
    /// whole runs (`SimPool`), so nesting stays opt-in: standalone drivers
    /// raise it via [`System::set_summary_threads`] or `AVR_SUMMARY_THREADS`.
    pub summary_threads: usize,
    pub(crate) energy_model: EnergyModel,
    /// 64 B-granularity LLC data accesses (energy accounting).
    pub(crate) llc_line_touches: u64,
    /// Approx annotations honored? (false for Baseline/ZeroAVR)
    honor_approx: bool,
    /// Batched span-level timed walk enabled? Defaults to on;
    /// `AVR_NO_BATCHED_WALK=1` (or [`System::set_batched_walk`]) forces
    /// the retained per-word reference walk.
    batched_walk: bool,
    /// Cached `dram.injects_faults()`: keeps the exact backend's DRAM
    /// paths free of any fault-hook work.
    faults_enabled: bool,
    /// Remaining graceful-degradation budget (timed exact re-serves of
    /// implausible lines).
    retries_left: u64,
    /// Per-region fault accounting, parallel to `space.regions()`.
    region_faults: Vec<FaultBreakdown>,
    /// Once-per-run latch for the span_hits fallback warning.
    span_fallback_warned: bool,
}

/// `AVR_NO_BATCHED_WALK` disables the batched timed walk (any value but
/// `0`/empty), mirroring `AVR_NO_SIMD` for the codec kernels.
fn batched_walk_disabled() -> bool {
    matches!(std::env::var("AVR_NO_BATCHED_WALK"), Ok(v) if !v.is_empty() && v != "0")
}

impl System {
    pub fn new(cfg: SystemConfig, design: DesignKind) -> Self {
        let policy = crate::design::policy_for(design, &cfg);
        let honor_approx = policy.honor_approx();
        let dram = backend_for(&cfg.dram, &cfg.error_model);
        let faults_enabled = dram.injects_faults();
        System {
            core: IntervalCore::new(cfg.issue_width, cfg.rob_size, cfg.mshrs),
            l1: SetAssocCache::new(cfg.l1),
            l2: SetAssocCache::new(cfg.l2),
            policy: Some(policy),
            dram,
            mem: PhysMem::new(),
            space: AddressSpace::new(),
            counters: Counters::default(),
            energy_model: EnergyModel::default(),
            honor_approx,
            llc_line_touches: 0,
            // Same parse-and-fallback semantics as AVR_THREADS (one shared
            // helper); the documented default is 1 — grid-level
            // parallelism usually owns the cores.
            summary_threads: crate::pool::env_threads("AVR_SUMMARY_THREADS", 1),
            batched_walk: !batched_walk_disabled(),
            faults_enabled,
            retries_left: cfg.error_model.retry_budget,
            region_faults: Vec::new(),
            span_fallback_warned: false,
            design,
            cfg,
        }
    }

    /// Lend the design policy and the `System` to each other: the policy
    /// is taken out of its slot for the duration of `f`, so policy code
    /// gets `&mut self` access to the shared machinery (DRAM, backing
    /// store, counters, fault hooks) without aliasing its own state.
    /// Policies never re-enter the LLC dispatch (the access path only
    /// reaches them through `llc_request`/`llc_writeback`), so the empty
    /// slot is unobservable.
    pub(crate) fn with_policy<R>(
        &mut self,
        f: impl FnOnce(&mut dyn DesignPolicy, &mut System) -> R,
    ) -> R {
        let mut p = self.policy.take().expect("design policy present");
        let r = f(p.as_mut(), self);
        self.policy = Some(p);
        r
    }

    /// Downcast the design policy to a concrete type (tests/diagnostics).
    pub fn policy_as<T: 'static>(&self) -> Option<&T> {
        self.policy.as_ref().and_then(|p| p.as_any().downcast_ref())
    }

    /// Force (or re-enable) the batched span-level timed walk. The
    /// per-word walk is the reference semantics; the batched walk is
    /// bit-identical to it (`tests/batched_walk.rs` pins this), so this
    /// knob exists for the equivalence oracle and for debugging, not for
    /// choosing a different simulation.
    pub fn set_batched_walk(&mut self, on: bool) {
        self.batched_walk = on;
    }

    /// Is the batched timed walk active? (Env default:
    /// `AVR_NO_BATCHED_WALK=1` turns it off.)
    pub fn batched_walk(&self) -> bool {
        self.batched_walk
    }

    /// L1 metadata statistics (diagnostics / equivalence tests).
    pub fn l1_stats(&self) -> avr_cache::set_assoc::CacheStats {
        self.l1.stats
    }

    /// L2 metadata statistics (diagnostics / equivalence tests).
    pub fn l2_stats(&self) -> avr_cache::set_assoc::CacheStats {
        self.l2.stats
    }

    /// Set the worker count for the end-of-run compression summary.
    pub fn set_summary_threads(&mut self, threads: usize) {
        assert!(threads >= 1);
        self.summary_threads = threads;
    }

    /// The effective approximability of a line under this design.
    #[inline]
    pub(crate) fn approx_of(&self, line: LineAddr) -> Option<DataType> {
        if self.honor_approx {
            self.space.approx_of_line(line)
        } else {
            None
        }
    }

    /// Which device backend this system runs on.
    pub fn backend_kind(&self) -> avr_types::BackendKind {
        self.dram.kind()
    }

    /// Per-region fault/degradation counters, parallel to
    /// `space.regions()`. Empty slots for runs on the exact backend.
    pub fn region_faults(&self) -> impl Iterator<Item = (&Region, &FaultBreakdown)> {
        self.space.regions().iter().zip(self.region_faults.iter())
    }

    /// Remaining graceful-degradation retry budget.
    pub fn retries_left(&self) -> u64 {
        self.retries_left
    }

    // ------------------------------------------------------------------
    // Device error-model hooks
    // ------------------------------------------------------------------

    /// Is a line's reconstruction implausible — i.e. does it carry damage
    /// the application could never have produced? Injected flips in an f32
    /// exponent show up as NaN/Inf or magnitude blowouts far past the
    /// workloads' dynamic range. Fixed32 has no implausible bit patterns
    /// (every word decodes to a bounded value), so its faults always pass
    /// through as small value noise.
    fn line_implausible(data: &avr_types::CacheLine, dt: DataType) -> bool {
        match dt {
            DataType::F32 => data.to_f32().iter().any(|v| !v.is_finite() || v.abs() > 1e30),
            DataType::Fixed32 => false,
        }
    }

    /// Zero out the implausible values of a degraded line (committed once
    /// the retry budget is exhausted), returning how many were sanitized.
    /// Keeping NaN/Inf out of the backing store bounds the blast radius:
    /// the run stays finite and flagged instead of poisoning every
    /// downstream reduction.
    fn sanitize_line(data: &mut avr_types::CacheLine, dt: DataType) -> u64 {
        if dt != DataType::F32 {
            return 0;
        }
        let mut fixed = 0;
        for w in data.words.iter_mut() {
            let v = f32::from_bits(*w);
            if !v.is_finite() || v.abs() > 1e30 {
                *w = 0f32.to_bits();
                fixed += 1;
            }
        }
        fixed
    }

    /// Device error-model hook: called after every DRAM data transfer of
    /// `line`. Critical (non-approximable under this design) lines are
    /// always served exactly — optionally counting an ECC scrub.
    /// Approximable lines pass through the backend's `corrupt_line`; a
    /// corrupted-but-plausible line commits to the backing store (value
    /// feedback, like every other lossy event), while an implausible one is
    /// re-served exactly by a timed retry until the budget runs out, after
    /// which it commits sanitized and the run is flagged as degraded.
    pub(crate) fn device_line_faults(&mut self, line: LineAddr, kind: AccessKind, now: u64) {
        if !self.faults_enabled {
            return;
        }
        let Some(dt) = self.approx_of(line) else {
            if self.cfg.error_model.ecc_protect_critical {
                self.counters.faults.ecc_scrubs += 1;
            }
            return;
        };
        let Some(ri) = self.space.approx_region_index_of_line(line) else {
            return;
        };
        let region = self.space.regions()[ri];
        let ctx = FaultCtx {
            region_base: region.base.0,
            block: line.block().0,
            rate_scale: region.opts.fault_scale(),
            critical_mask: region.critical_mask_of_line(line),
        };
        let mut data = self.mem.read_line(line);
        let flips = self.dram.corrupt_line(&ctx, kind, &mut data);
        if flips == 0 {
            return;
        }
        self.counters.faults.injected_bit_flips += flips as u64;
        self.counters.faults.faulted_lines += 1;
        self.region_faults[ri].injected_bit_flips += flips as u64;
        self.region_faults[ri].faulted_lines += 1;
        if Self::line_implausible(&data, dt) {
            if self.retries_left > 0 {
                // Graceful degradation, phase 1: spend budget on a timed
                // exact re-serve (refetch on reads, verify-rewrite on
                // writes). The exact values stay in the backing store.
                self.retries_left -= 1;
                self.counters.faults.retries += 1;
                self.region_faults[ri].retries += 1;
                self.dram.access(line, kind, now);
                self.count_traffic(true, kind == AccessKind::Write, CL_BYTES as u64);
                return;
            }
            // Phase 2: budget exhausted — commit, but sanitized, so the
            // run stays finite (flagged via degraded_lines).
            self.counters.faults.degraded_lines += 1;
            self.region_faults[ri].degraded_lines += 1;
            let fixed = Self::sanitize_line(&mut data, dt);
            self.counters.faults.sanitized_values += fixed;
            self.region_faults[ri].sanitized_values += fixed;
        }
        self.mem.write_line(line, &data);
    }

    /// Burst variant of [`Self::device_line_faults`]: `n` consecutive
    /// lines from `first`. Compressed-block transfers proxy their fault
    /// exposure onto the block's leading lines this way — the compressed
    /// image occupies `size_lines` device lines, so that is the exposed
    /// surface, applied to the reconstructed data the backing store holds.
    pub(crate) fn device_burst_faults(
        &mut self,
        first: LineAddr,
        n: usize,
        kind: AccessKind,
        now: u64,
    ) {
        if !self.faults_enabled {
            return;
        }
        for i in 0..n {
            self.device_line_faults(LineAddr(first.0 + i as u64), kind, now);
        }
    }

    // ------------------------------------------------------------------
    // Core-side access path
    // ------------------------------------------------------------------

    fn access(&mut self, addr: PhysAddr, store: Option<u32>) -> u32 {
        self.access_timed(addr.line(), store.is_some());
        match store {
            Some(v) => {
                self.mem.write_u32(addr, v);
                v
            }
            None => self.mem.read_u32(addr),
        }
    }

    /// The timing half of one word access: core issue, cache walk,
    /// counters — everything except the final value movement. This is the
    /// per-word reference walk: the bulk fast paths run it for every
    /// span's *leading* word (and for every word under
    /// `AVR_NO_BATCHED_WALK=1`), then fold the span's remaining
    /// guaranteed-L1-hits into the closed-form [`Self::span_hits`] batch —
    /// cycle-exact, so every counter stays bit-identical to the
    /// word-at-a-time path while values move as one slice copy per span.
    ///
    /// Ordering contract the bulk paths rely on: only a *miss* can touch
    /// the backing store (fetch-triggered reconstruction, truncation,
    /// dedup, eviction writeback). After the first access to a line, the
    /// line is resident in L1 and further accesses to it are pure-metadata
    /// hits — so within one cacheline span, values can be moved once,
    /// after the first timed access, without changing anything observable,
    /// and the hit tail can be folded without changing any counter.
    fn access_timed(&mut self, line: LineAddr, is_write: bool) {
        let t0 = self.core.issue_memory();
        if is_write {
            self.counters.stores += 1;
        } else {
            self.counters.loads += 1;
        }

        let completion = if self.l1.access(line, is_write) {
            self.counters.l1_hits += 1;
            t0 + self.cfg.l1.latency
        } else {
            let t_l1 = t0 + self.cfg.l1.latency;
            if self.l2.access(line, false) {
                self.counters.l2_hits += 1;
                let done = t_l1 + self.cfg.l2.latency;
                self.fill_l1(line, is_write, done);
                done
            } else {
                let t_l2 = t_l1 + self.cfg.l2.latency;
                let done = self.llc_request(line, t_l2);
                self.fill_l2(line, done);
                self.fill_l1(line, is_write, done);
                done
            }
        };
        self.core.complete_memory(t0, completion);
        let lat = completion - t0;
        self.counters.amat_cycles_sum += lat;
        self.counters.amat_count += 1;
        if lat > 50 {
            self.counters.miss_lat_sum += lat;
            self.counters.miss_lat_count += 1;
            self.counters.miss_lat_max = self.counters.miss_lat_max.max(lat);
        }
    }

    /// Split `[addr, addr + 4 * words)` into spans that each stay within
    /// one cacheline: `(span start, span word count)` in address order.
    fn line_spans(addr: PhysAddr, words: usize) -> impl Iterator<Item = (PhysAddr, usize)> {
        let line_words = CL_BYTES as u64 / 4;
        let mut next = addr.0;
        let end = addr.0 + 4 * words as u64;
        std::iter::from_fn(move || {
            if next >= end {
                return None;
            }
            let start = next;
            let line_end = (start - start % CL_BYTES as u64) + CL_BYTES as u64;
            next = line_end.min(end);
            let take = ((next - start) / 4).min(line_words) as usize;
            Some((PhysAddr(start), take))
        })
    }

    /// Do the batched-walk preconditions hold? Beyond the enable knob, the
    /// closed form requires an L1 hit to be a *pure* slot/counter event in
    /// `access_timed`: hidden by the OoO window (no `complete_memory`
    /// side effects) and below the 50-cycle miss-latency diagnostic cut.
    /// Every shipped configuration satisfies both; an exotic one falls
    /// back to the per-word walk rather than approximating.
    #[inline]
    fn batch_hits_ok(&self) -> bool {
        self.batched_walk
            && self.cfg.l1.latency <= self.core.hide_window()
            && self.cfg.l1.latency <= 50
    }

    /// [`Self::batch_hits_ok`], plus a once-per-run stderr warning when the
    /// walk is *enabled* but the latency preconditions fail: a config sweep
    /// that raises L1 latency past the ROB-hide or 50-cycle bound would
    /// otherwise lose the batched speedup invisibly. Explicitly disabling
    /// the walk (`AVR_NO_BATCHED_WALK=1` / `set_batched_walk(false)`) is a
    /// deliberate choice and stays silent.
    #[inline]
    fn batch_hits_ok_or_warn(&mut self) -> bool {
        if self.batch_hits_ok() {
            return true;
        }
        if self.batched_walk && !self.span_fallback_warned {
            self.span_fallback_warned = true;
            eprintln!(
                "avr: batched timed walk falling back to per-word: L1 latency {} exceeds \
                 the ROB-hide window {} or the 50-cycle bound (results stay bit-identical, \
                 bulk accesses just lose their speedup)",
                self.cfg.l1.latency,
                self.core.hide_window()
            );
        }
        false
    }

    /// Has this run warned about the span_hits per-word fallback?
    pub fn span_fallback_warned(&self) -> bool {
        self.span_fallback_warned
    }

    /// `n` guaranteed-L1-hit accesses to `line`. Residency is the caller's
    /// contract: the span's leading access (a full [`Self::access_timed`])
    /// just touched the line, so it is resident in L1 and every further
    /// access to it is a pure-metadata hit (see the ordering contract on
    /// `access_timed`). The closed form folds all `n` per-word walks into
    /// one interval-core batch, one L1 tag probe and one counter update —
    /// bit-identical to `n` per-word walks, which remain reachable via
    /// `AVR_NO_BATCHED_WALK=1`.
    fn span_hits(&mut self, line: LineAddr, n: u64, is_write: bool) {
        if n == 0 {
            return;
        }
        if !self.batch_hits_ok_or_warn() {
            for _ in 0..n {
                self.access_timed(line, is_write);
            }
            return;
        }
        let lat = self.cfg.l1.latency;
        self.core.issue_complete_short_n(n, lat);
        if is_write {
            self.counters.stores += n;
        } else {
            self.counters.loads += n;
        }
        self.l1.access_hit_n(line, n, is_write);
        self.counters.l1_hits += n;
        self.counters.amat_cycles_sum += n * lat;
        self.counters.amat_count += n;
    }

    /// Timed walk of a same-line span — `words` contiguous words starting
    /// at `start`, or a [`Self::line_run`] of strided/gathered elements
    /// whose leading element is `start`: full machinery for the leading
    /// access, closed-form hit batch for the rest.
    #[inline]
    fn span_timed(&mut self, start: PhysAddr, words: usize, is_write: bool) {
        let line = start.line();
        self.access_timed(line, is_write);
        self.span_hits(line, words as u64 - 1, is_write);
    }

    /// Length of the run of consecutive elements starting at `k` (of
    /// `len` total) whose addresses all fall on element `k`'s cacheline;
    /// `addr_of` maps element index → address. Shared by the strided and
    /// gather/scatter fast paths so every same-line run goes through the
    /// one [`Self::span_timed`] leading-access + hit-tail protocol.
    fn line_run(addr_of: impl Fn(usize) -> PhysAddr, k: usize, len: usize) -> usize {
        let line = addr_of(k).line();
        let mut run = 1;
        while k + run < len && addr_of(k + run).line() == line {
            run += 1;
        }
        run
    }

    /// Pre-scan for the gather/scatter fast path: a strictly ascending
    /// index set whose adjacent gaps are all ≥ one cacheline of elements
    /// can never place two consecutive elements on the same (64 B-aligned)
    /// line, so every run is provably length 1 and run-building can be
    /// skipped wholesale. Short-circuits at the first clustered pair, so
    /// the scan costs one early-exiting pass over dense index sets.
    fn indices_non_clustered(idx: &[u32]) -> bool {
        const LINE_ELEMS: u32 = (CL_BYTES / 4) as u32;
        idx.windows(2).all(|w| w[1] >= w[0].saturating_add(LINE_ELEMS))
    }

    fn fill_l1(&mut self, line: LineAddr, dirty: bool, now: u64) {
        if let Some(ev) = self.l1.insert(line, dirty) {
            if ev.dirty {
                // Write back into L2 (allocating): its victim cascades to
                // the LLC off the critical path.
                if let Some(ev2) = self.l2.insert(ev.line, true) {
                    if ev2.dirty {
                        self.llc_writeback(ev2.line, now);
                    }
                }
            }
        }
    }

    fn fill_l2(&mut self, line: LineAddr, now: u64) {
        if let Some(ev) = self.l2.insert(line, false) {
            if ev.dirty {
                self.llc_writeback(ev.line, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // LLC-level request, dispatched per design
    // ------------------------------------------------------------------

    fn llc_request(&mut self, line: LineAddr, t: u64) -> u64 {
        self.counters.llc_requests_total += 1;
        self.llc_line_touches += 1;
        self.with_policy(|p, sys| p.request(sys, line, t))
    }

    fn llc_writeback(&mut self, line: LineAddr, now: u64) {
        self.llc_line_touches += 1;
        self.with_policy(|p, sys| p.writeback(sys, line, now));
    }

    // ------------------------------------------------------------------
    // DRAM helpers with paper-facing traffic accounting
    // ------------------------------------------------------------------

    /// Write a full line to DRAM with traffic accounting and the device
    /// fault hook. Policies with design-specific writeback sizing
    /// (Truncate) implement their own variant; everything else funnels
    /// through here.
    pub(crate) fn dram_write_line(&mut self, line: LineAddr, now: u64) {
        let approx = self.approx_of(line);
        self.dram.access_bytes(line, AccessKind::Write, now, CL_BYTES);
        self.count_traffic(approx.is_some(), true, CL_BYTES as u64);
        self.device_line_faults(line, AccessKind::Write, now);
    }

    pub(crate) fn count_traffic(&mut self, approx: bool, write: bool, bytes: u64) {
        let t = &mut self.counters.traffic;
        match (approx, write) {
            (true, false) => t.approx_read_bytes += bytes,
            (true, true) => t.approx_write_bytes += bytes,
            (false, false) => t.nonapprox_read_bytes += bytes,
            (false, true) => t.nonapprox_write_bytes += bytes,
        }
    }

    // ------------------------------------------------------------------
    // Run finalization
    // ------------------------------------------------------------------

    /// Core diagnostics: (leading misses, trailing misses, stall cycles).
    pub fn core_diag(&self) -> (u64, u64, u64) {
        (self.core.leading_misses, self.core.trailing_misses, self.core.stall_cycles)
    }

    /// Drain the pipeline and assemble the paper-facing metrics.
    pub fn finish(&mut self, benchmark: &str) -> RunMetrics {
        self.core.drain();
        let policy = self.policy.as_ref().expect("design policy present");
        let (blocks_compressed, compression_failures) = policy.codec_stats();
        let has_compressor = policy.has_compressor();
        let llc_cms_fraction = policy.llc_cms_fraction();
        self.counters.instructions = self.core.instructions;
        self.counters.blocks_compressed = blocks_compressed;
        self.counters.compression_failures = compression_failures;

        let cycles = self.core.cycles;
        let exec_seconds = cycles as f64 / self.cfg.clock_hz;

        let events = EnergyEvents {
            instructions: self.core.instructions,
            l1_accesses: self.counters.loads + self.counters.stores,
            l2_accesses: self.l2.stats.hits + self.l2.stats.misses,
            llc_line_accesses: self.llc_line_touches,
            dram_bytes: self.dram.stats().total_bytes(),
            dram_activates: self.dram.stats().activates,
            dram_refreshes: self.dram.stats().refreshes,
            ecc_scrubs: self.counters.faults.ecc_scrubs,
            blocks_compressed,
            blocks_decompressed: self.counters.blocks_decompressed,
        };
        let energy = self.energy_model.breakdown(&events, exec_seconds, 1, has_compressor);

        let (ratio, footprint, scan) = self.compression_summary();

        RunMetrics {
            design: self.design.label().to_string(),
            benchmark: benchmark.to_string(),
            counters: self.counters,
            cycles,
            exec_seconds,
            ipc: self.core.ipc(),
            energy,
            output_error: 0.0, // filled by the workload runner
            compression_ratio: ratio,
            approx_blocks: scan.blocks,
            compressible_blocks: scan.compressible,
            footprint_fraction: footprint,
            llc_cms_fraction,
        }
    }

    /// Table 4: sweep the approximable regions, compress every block from
    /// its final values, and report the footprint-weighted ratio plus the
    /// whole-application footprint fraction. The block scan partitions
    /// across `summary_threads` workers ([`crate::summary`]), each reusing
    /// its own compressor scratch; the totals are thread-count-invariant.
    fn compression_summary(&mut self) -> (f64, f64, crate::summary::BlockScan) {
        let (total, approx) = self.space.footprint();
        if total == 0 {
            return (1.0, 1.0, crate::summary::BlockScan::default());
        }
        let (ratio, scan) = self.with_policy(|p, sys| p.summary(sys));
        let approx_f = approx as f64;
        let nonapprox_f = (total - approx) as f64;
        let effective = if self.honor_approx { approx_f / ratio.max(1.0) } else { approx_f };
        let footprint = (effective + nonapprox_f) / total as f64;
        (ratio, footprint, scan)
    }
}

impl Vm for System {
    fn malloc(&mut self, len_bytes: usize) -> Region {
        // Per-region fault slots (and any per-region policy state) are
        // sized at malloc time so neither the fault hook nor the policy
        // request path allocates in steady state (tests/zero_alloc.rs).
        self.region_faults.push(FaultBreakdown::default());
        let r = self.space.malloc(len_bytes);
        if let Some(p) = self.policy.as_mut() {
            p.on_region(&r);
        }
        r
    }

    fn approx_malloc(&mut self, len_bytes: usize, dt: DataType) -> Region {
        self.region_faults.push(FaultBreakdown::default());
        let r = self.space.approx_malloc(len_bytes, dt);
        if let Some(p) = self.policy.as_mut() {
            p.on_region(&r);
        }
        r
    }

    fn approx_malloc_with(&mut self, len_bytes: usize, dt: DataType, opts: RegionOpts) -> Region {
        self.region_faults.push(FaultBreakdown::default());
        let r = self.space.approx_malloc_with(len_bytes, dt, opts);
        if let Some(p) = self.policy.as_mut() {
            p.on_region(&r);
        }
        r
    }

    fn read_u32(&mut self, addr: PhysAddr) -> u32 {
        self.access(addr, None)
    }

    fn write_u32(&mut self, addr: PhysAddr, val: u32) {
        self.access(addr, Some(val));
    }

    fn compute(&mut self, n: u64) {
        self.core.compute(n);
    }

    // ------------------------------------------------------------------
    // Bulk fast paths: one dyn dispatch per batch, then two batching
    // levels per cacheline span, both bit-identical to the word-at-a-time
    // decomposition (tests/bulk_api.rs and tests/batched_walk.rs pin this
    // per workload × design):
    //
    // * value movement — translation hoisted per span, values moved as
    //   one slice copy;
    // * the timed walk — the span's leading word runs the full
    //   `access_timed` machinery, the remaining words are guaranteed L1
    //   hits folded into closed-form core/cache/counter updates
    //   (`span_hits`; per-word walk retained behind
    //   `AVR_NO_BATCHED_WALK=1`).
    //
    // Value-movement ordering: within one cacheline span, only the first
    // timed access can mutate the backing store (see `access_timed`), so
    // the span's values move in a single slice copy after its timed walk;
    // spans are processed in address order so a later span's miss-path
    // machinery (compression, truncation, dedup of whole blocks) observes
    // every earlier value exactly as the per-word path would.
    // ------------------------------------------------------------------

    fn read_u32s(&mut self, addr: PhysAddr, out: &mut [u32]) {
        let mut done = 0;
        for (start, n) in Self::line_spans(addr, out.len()) {
            self.span_timed(start, n, false);
            self.mem.read_words(start, &mut out[done..done + n]);
            done += n;
        }
    }

    fn write_u32s(&mut self, addr: PhysAddr, vals: &[u32]) {
        let mut done = 0;
        for (start, n) in Self::line_spans(addr, vals.len()) {
            self.span_timed(start, n, true);
            self.mem.write_words(start, &vals[done..done + n]);
            done += n;
        }
    }

    fn read_f32s(&mut self, addr: PhysAddr, out: &mut [f32]) {
        let mut done = 0;
        for (start, n) in Self::line_spans(addr, out.len()) {
            self.span_timed(start, n, false);
            self.mem.read_words_f32(start, &mut out[done..done + n]);
            done += n;
        }
    }

    fn write_f32s(&mut self, addr: PhysAddr, vals: &[f32]) {
        let mut done = 0;
        for (start, n) in Self::line_spans(addr, vals.len()) {
            self.span_timed(start, n, true);
            self.mem.write_words_f32(start, &vals[done..done + n]);
            done += n;
        }
    }

    fn read_f32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, out: &mut [f32]) {
        // Consecutive elements share a line whenever the stride is small
        // (planar sub-line walks, stride-0 broadcasts): batch each
        // same-line run like a contiguous span. Hit accesses never touch
        // the backing store and value moves never touch timing, so
        // hoisting the run's timed walk ahead of its value reads is
        // unobservable (the per-word reference interleaves them).
        let addr_of = |j: usize| PhysAddr(base.0 + j as u64 * stride_bytes);
        // Two addresses ≥ one cacheline apart can never share a line, so
        // wide strides skip the per-element run-building pass outright.
        let wide = stride_bytes >= CL_BYTES as u64;
        let mut k = 0;
        while k < out.len() {
            let run = if wide { 1 } else { Self::line_run(addr_of, k, out.len()) };
            self.span_timed(addr_of(k), run, false);
            for (j, o) in out[k..k + run].iter_mut().enumerate() {
                *o = f32::from_bits(self.mem.read_u32(addr_of(k + j)));
            }
            k += run;
        }
    }

    fn write_f32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, vals: &[f32]) {
        let addr_of = |j: usize| PhysAddr(base.0 + j as u64 * stride_bytes);
        let wide = stride_bytes >= CL_BYTES as u64; // runs are provably length 1
        let mut k = 0;
        while k < vals.len() {
            let run = if wide { 1 } else { Self::line_run(addr_of, k, vals.len()) };
            self.span_timed(addr_of(k), run, true);
            for (j, v) in vals[k..k + run].iter().enumerate() {
                self.mem.write_u32(addr_of(k + j), v.to_bits());
            }
            k += run;
        }
    }

    fn read_u32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, out: &mut [u32]) {
        let addr_of = |j: usize| PhysAddr(base.0 + j as u64 * stride_bytes);
        let wide = stride_bytes >= CL_BYTES as u64;
        let mut k = 0;
        while k < out.len() {
            let run = if wide { 1 } else { Self::line_run(addr_of, k, out.len()) };
            self.span_timed(addr_of(k), run, false);
            for (j, o) in out[k..k + run].iter_mut().enumerate() {
                *o = self.mem.read_u32(addr_of(k + j));
            }
            k += run;
        }
    }

    fn write_u32s_strided(&mut self, base: PhysAddr, stride_bytes: u64, vals: &[u32]) {
        let addr_of = |j: usize| PhysAddr(base.0 + j as u64 * stride_bytes);
        let wide = stride_bytes >= CL_BYTES as u64;
        let mut k = 0;
        while k < vals.len() {
            let run = if wide { 1 } else { Self::line_run(addr_of, k, vals.len()) };
            self.span_timed(addr_of(k), run, true);
            for (j, v) in vals[k..k + run].iter().enumerate() {
                self.mem.write_u32(addr_of(k + j), *v);
            }
            k += run;
        }
    }

    fn read_f32s_gather(&mut self, base: PhysAddr, idx: &[u32], out: &mut [f32]) {
        assert_eq!(idx.len(), out.len(), "gather index/output shapes must match");
        // Gathers over clustered index sets (plane walks, stencil
        // neighborhoods) visit the same line many times in a row —
        // including duplicate indices; batch each same-line run. A sorted
        // index set whose gaps are all at least a cacheline is the
        // opposite extreme: every run is provably length 1, so skip the
        // per-element run-building pass (the gather twin of the wide-
        // stride fast path above).
        let addr_of = |j: usize| PhysAddr(base.0 + 4 * idx[j] as u64);
        let scattered = Self::indices_non_clustered(idx);
        let mut k = 0;
        while k < idx.len() {
            let run = if scattered { 1 } else { Self::line_run(addr_of, k, idx.len()) };
            self.span_timed(addr_of(k), run, false);
            for j in k..k + run {
                out[j] = f32::from_bits(self.mem.read_u32(addr_of(j)));
            }
            k += run;
        }
    }

    fn write_f32s_scatter(&mut self, base: PhysAddr, idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter index/value shapes must match");
        let addr_of = |j: usize| PhysAddr(base.0 + 4 * idx[j] as u64);
        let scattered = Self::indices_non_clustered(idx);
        let mut k = 0;
        while k < idx.len() {
            let run = if scattered { 1 } else { Self::line_run(addr_of, k, idx.len()) };
            self.span_timed(addr_of(k), run, true);
            // Value writes stay in element order: duplicate indices keep
            // last-write-wins semantics exactly like the per-word loop.
            for j in k..k + run {
                self.mem.write_u32(addr_of(j), vals[j].to_bits());
            }
            k += run;
        }
    }

    fn for_each_f32_mut(
        &mut self,
        addr: PhysAddr,
        n: usize,
        compute_per_value: u64,
        f: &mut dyn FnMut(usize, f32) -> f32,
    ) {
        const LINE_WORDS: usize = CL_BYTES / 4;
        let mut old = [0f32; LINE_WORDS];
        let mut new = [0f32; LINE_WORDS];
        let mut done = 0;
        for (start, m) in Self::line_spans(addr, n) {
            let line = start.line();
            // First timed load may fetch/reconstruct the line; snapshot
            // the span's (possibly rewritten) values right after it —
            // every later access in the span is an L1 hit, and the
            // defaults' interleaved stores can't be observed before the
            // splice because nothing reads the backing store in between.
            self.access_timed(line, false);
            self.mem.read_words_f32(start, &mut old[..m]);
            if self.batch_hits_ok_or_warn() {
                // Per-word order is R0 C0 W0 R1 C1 W1 …; everything after
                // R0 is an L1 hit. The one order-sensitive event is MSHR
                // back-pressure, which can only fire at the first issue
                // after R0 — that is W0, and it must see the cycle count
                // *after* element 0's compute — so: compute, then one
                // closed-form batch of the 2m-1 remaining hits (W0 plus
                // m-1 R/W pairs), then the m-1 remaining computes (slot
                // draining is an integer carry; the fold commutes).
                new[0] = f(done, old[0]);
                self.core.compute(compute_per_value);
                let hits = 2 * m as u64 - 1;
                let lat = self.cfg.l1.latency;
                self.core.issue_complete_short_n(hits, lat);
                self.core.compute(compute_per_value * (m as u64 - 1));
                for k in 1..m {
                    new[k] = f(done + k, old[k]);
                }
                self.counters.loads += m as u64 - 1;
                self.counters.stores += m as u64;
                self.l1.access_hit_n(line, hits, true);
                self.counters.l1_hits += hits;
                self.counters.amat_cycles_sum += hits * lat;
                self.counters.amat_count += hits;
            } else {
                for k in 0..m {
                    if k > 0 {
                        self.access_timed(line, false);
                    }
                    new[k] = f(done + k, old[k]);
                    self.core.compute(compute_per_value);
                    self.access_timed(line, true);
                }
            }
            self.mem.write_words_f32(start, &new[..m]);
            done += m;
        }
    }

    fn read_i32s(&mut self, addr: PhysAddr, out: &mut [i32]) {
        let mut done = 0;
        for (start, n) in Self::line_spans(addr, out.len()) {
            self.span_timed(start, n, false);
            self.mem.read_words_i32(start, &mut out[done..done + n]);
            done += n;
        }
    }

    fn write_i32s(&mut self, addr: PhysAddr, vals: &[i32]) {
        let mut done = 0;
        for (start, n) in Self::line_spans(addr, vals.len()) {
            self.span_timed(start, n, true);
            self.mem.write_words_i32(start, &vals[done..done + n]);
            done += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::SystemConfig;

    fn sys(design: DesignKind) -> System {
        System::new(SystemConfig::tiny(), design)
    }

    #[test]
    fn read_after_write_is_exact_on_baseline() {
        let mut s = sys(DesignKind::Baseline);
        let r = s.approx_malloc(8192, DataType::F32);
        for i in 0..128u64 {
            s.write_f32(PhysAddr(r.base.0 + 4 * i), i as f32 * 1.5);
        }
        for i in 0..128u64 {
            assert_eq!(s.read_f32(PhysAddr(r.base.0 + 4 * i)), i as f32 * 1.5);
        }
    }

    #[test]
    fn l1_hits_are_cheap() {
        let mut s = sys(DesignKind::Baseline);
        let r = s.malloc(64);
        s.write_u32(r.base, 7);
        let c0 = s.core.cycles;
        for _ in 0..100 {
            s.read_u32(r.base);
        }
        // 100 L1 hits at width 4 -> ~25 cycles + change.
        assert!(s.core.cycles - c0 < 60, "L1 hits cost {}", s.core.cycles - c0);
        assert!(s.counters.l1_hits >= 100);
    }

    #[test]
    fn misses_reach_dram_and_count_traffic() {
        let mut s = sys(DesignKind::Baseline);
        let r = s.malloc(1 << 20); // 1 MB streams past the tiny hierarchy
        for i in (0..1 << 20).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        assert!(s.counters.llc_misses_total > 10_000);
        assert_eq!(s.counters.traffic.nonapprox_read_bytes, s.counters.llc_misses_total * 64);
    }

    #[test]
    fn truncate_halves_approx_read_traffic() {
        let run = |design| {
            let mut s = sys(design);
            let r = s.approx_malloc(1 << 20, DataType::F32);
            for i in (0..1 << 20).step_by(64) {
                s.read_u32(PhysAddr(r.base.0 + i as u64));
            }
            s.counters.traffic.approx_read_bytes
        };
        let base = run(DesignKind::Baseline);
        let trunc = run(DesignKind::Truncate);
        // Baseline ignores the annotation: bytes land in nonapprox; compare
        // absolute volumes instead.
        assert_eq!(base, 0);
        let mut s = sys(DesignKind::Baseline);
        let r = s.approx_malloc(1 << 20, DataType::F32);
        for i in (0..1 << 20).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        let base_bytes = s.counters.traffic.total();
        assert!((trunc as f64) < 0.6 * base_bytes as f64, "{trunc} vs {base_bytes}");
    }

    #[test]
    fn truncate_loses_low_mantissa_bits() {
        // Pin the exact backend: this test asserts a tight per-value error
        // band that a fault-injecting AVR_BACKEND override would smear.
        let cfg = SystemConfig::tiny().with_backend(avr_types::BackendKind::Exact);
        let mut s = System::new(cfg, DesignKind::Truncate);
        let r = s.approx_malloc(1 << 20, DataType::F32);
        let v = 1.2345678f32;
        s.write_f32(r.base, v);
        // Stream far past the hierarchy so the line is evicted & refetched.
        for i in (64..1 << 20).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        let back = s.read_f32(r.base);
        assert_ne!(back, v, "low bits must have been truncated");
        assert!(((back - v) / v).abs() < 0.01, "error bounded by fp16 cut");
    }

    #[test]
    fn zero_avr_never_compresses() {
        let mut s = sys(DesignKind::ZeroAvr);
        let r = s.approx_malloc(1 << 18, DataType::F32);
        for i in (0..1 << 18).step_by(4) {
            s.write_f32(PhysAddr(r.base.0 + i as u64), (i as f32 * 0.001).sin());
        }
        for i in (0..1 << 18).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
        }
        let p = s.policy_as::<crate::avr_ops::DecoupledPolicy>().unwrap();
        assert_eq!(p.compressor.attempts, 0);
        assert_eq!(s.counters.approx_requests.total(), 0, "no approx classification");
    }

    #[test]
    fn bulk_ops_are_bit_identical_to_word_at_a_time() {
        use crate::vm_api::WordAtATime;
        // Drive the same unaligned, cross-block access pattern through the
        // bulk fast paths and through the default decompositions; every
        // metric and every memory value must match on every design.
        let drive = |vm: &mut dyn Vm| {
            let r = vm.approx_malloc(256 << 10, DataType::F32);
            let scratch = vm.malloc(64 << 10);
            let vals: Vec<f32> = (0..20_000).map(|i| 100.0 + (i as f32) * 0.01).collect();
            // Unaligned base (word 3), spans many 1 KB blocks.
            vm.write_f32s(PhysAddr(r.base.0 + 12), &vals);
            vm.compute(5_000);
            let mut buf = vec![0f32; 20_000];
            vm.read_f32s(PhysAddr(r.base.0 + 12), &mut buf);
            // Column walk (stride = one line) + scatter/gather.
            vm.write_f32s_strided(r.base, 64, &buf[..512]);
            let mut col = vec![0f32; 512];
            vm.read_f32s_strided(r.base, 64, &mut col);
            let idx: Vec<u32> = (0..700u32).map(|i| (i * 997) % 20_000).collect();
            vm.write_f32s_scatter(r.base, &idx, &buf[..700]);
            let mut g = vec![0f32; 700];
            vm.read_f32s_gather(r.base, &idx, &mut g);
            // Fused sweep over a region that spills the tiny hierarchy.
            vm.for_each_f32_mut(r.base, 30_000, 2, &mut |k, v| v + (k % 7) as f32);
            // Precise u32 traffic through the scratch region.
            let words: Vec<u32> = (0..4096).map(|i| i * 31).collect();
            vm.write_u32s(scratch.base, &words);
            let mut wb = vec![0u32; 4096];
            vm.read_u32s(scratch.base, &mut wb);
        };
        for design in DesignKind::ALL {
            let mut fast = sys(design);
            drive(&mut fast);
            let mut word = sys(design);
            drive(&mut WordAtATime(&mut word));
            assert_eq!(fast.core.cycles, word.core.cycles, "{design:?}: cycles");
            assert_eq!(fast.counters.traffic, word.counters.traffic, "{design:?}: traffic");
            assert_eq!(fast.counters.loads, word.counters.loads, "{design:?}: loads");
            assert_eq!(fast.counters.stores, word.counters.stores, "{design:?}: stores");
            assert_eq!(fast.counters.l1_hits, word.counters.l1_hits, "{design:?}: l1 hits");
            assert_eq!(
                fast.counters.llc_misses_total, word.counters.llc_misses_total,
                "{design:?}: LLC misses"
            );
            assert_eq!(fast.core.instructions, word.core.instructions, "{design:?}: instructions");
            for i in 0..(320 << 10) / 4u64 {
                let a = PhysAddr(4096 + 4 * i);
                assert_eq!(
                    fast.mem.read_u32(a),
                    word.mem.read_u32(a),
                    "{design:?}: mem diverges at {a:?}"
                );
            }
        }
    }

    #[test]
    fn span_fallback_warns_once_when_batch_preconditions_fail() {
        use crate::vm_api::Vm;
        // An L1 latency past the batch ceiling forces the per-word fallback;
        // the walk is still correct but the user should hear about it once.
        let mut cfg = SystemConfig::tiny();
        cfg.l1.latency = 60;
        let mut s = System::new(cfg, DesignKind::Baseline);
        // Pin batching on so the AVR_NO_BATCHED_WALK=1 CI leg (a deliberate
        // opt-out, which must stay silent) still tests the warning.
        s.set_batched_walk(true);
        let r = s.malloc(4096);
        let vals = vec![1.5f32; 256];
        Vm::write_f32s(&mut s, r.base, &vals);
        assert!(s.span_fallback_warned(), "degraded batch walk must warn");
        let mut buf = vec![0f32; 256];
        Vm::read_f32s(&mut s, r.base, &mut buf);
        assert_eq!(buf, vals, "fallback path must still move correct values");

        // Default geometry: batch preconditions hold, no warning.
        let mut ok = sys(DesignKind::Baseline);
        ok.set_batched_walk(true);
        let r = ok.malloc(4096);
        Vm::write_f32s(&mut ok, r.base, &vals);
        assert!(!ok.span_fallback_warned());

        // Explicitly disabling the batched walk is a deliberate choice, not
        // a degradation — same fallback, no warning.
        let mut cfg = SystemConfig::tiny();
        cfg.l1.latency = 60;
        let mut off = System::new(cfg, DesignKind::Baseline);
        off.set_batched_walk(false);
        let r = off.malloc(4096);
        Vm::write_f32s(&mut off, r.base, &vals);
        assert!(!off.span_fallback_warned());
    }

    #[test]
    fn wide_strides_skip_run_building_and_stay_bit_identical() {
        use crate::vm_api::{Vm, WordAtATime};
        // Strides of at least one cacheline can never share a line between
        // consecutive elements, so the strided paths skip the per-element
        // run-building pass — timing and values must not change.
        for design in DesignKind::ALL {
            // Lossy designs may reconstruct different values than were
            // written, so compare the two paths against each other.
            let drive = |vm: &mut dyn Vm| -> Vec<u32> {
                let r = vm.approx_malloc(256 << 10, DataType::F32);
                let vals: Vec<f32> = (0..1500).map(|i| 1.0 + i as f32 * 0.25).collect();
                vm.write_f32s_strided(r.base, 128, &vals);
                let mut back = vec![0f32; 1500];
                vm.read_f32s_strided(r.base, 128, &mut back);
                back.iter().map(|v| v.to_bits()).collect()
            };
            let mut fast = sys(design);
            let fast_back = drive(&mut fast);
            let mut word = sys(design);
            let word_back = drive(&mut WordAtATime(&mut word));
            assert_eq!(fast_back, word_back, "{design:?}: read-back values");
            assert_eq!(fast.core.cycles, word.core.cycles, "{design:?}: cycles");
            assert_eq!(fast.counters.traffic, word.counters.traffic, "{design:?}: traffic");
            assert_eq!(fast.counters.l1_hits, word.counters.l1_hits, "{design:?}: l1 hits");
        }
    }

    #[test]
    fn scattered_gathers_skip_run_building_and_stay_bit_identical() {
        use crate::vm_api::{Vm, WordAtATime};
        // A sorted index set with gaps of ≥ 16 elements (one cacheline)
        // provably never clusters, so the gather/scatter paths skip
        // run-building — timing, counters, and values must not change.
        // Mix in a clustered index set in the same run to cover the
        // pre-scan's negative branch against the same oracle.
        for design in DesignKind::ALL {
            let drive = |vm: &mut dyn Vm| -> Vec<u32> {
                let r = vm.approx_malloc(256 << 10, DataType::F32);
                let vals: Vec<f32> = (0..1200).map(|i| 2.0 + i as f32 * 0.125).collect();
                // Non-clustered: ascending, gap 17 elements (> one line).
                let sparse: Vec<u32> = (0..1200u32).map(|i| i * 17).collect();
                vm.write_f32s_scatter(r.base, &sparse, &vals);
                let mut back = vec![0f32; 1200];
                vm.read_f32s_gather(r.base, &sparse, &mut back);
                // Clustered: stencil-style neighborhoods with duplicates.
                let dense: Vec<u32> =
                    (0..300u32).flat_map(|i| [i * 5, i * 5 + 1, i * 5 + 1, i * 5 + 9]).collect();
                vm.write_f32s_scatter(r.base, &dense, &vals);
                let mut dback = vec![0f32; 1200];
                vm.read_f32s_gather(r.base, &dense, &mut dback);
                back.iter().chain(dback.iter()).map(|v| v.to_bits()).collect()
            };
            let mut fast = sys(design);
            let fast_back = drive(&mut fast);
            let mut word = sys(design);
            let word_back = drive(&mut WordAtATime(&mut word));
            assert_eq!(fast_back, word_back, "{design:?}: read-back values");
            assert_eq!(fast.core.cycles, word.core.cycles, "{design:?}: cycles");
            assert_eq!(fast.counters.traffic, word.counters.traffic, "{design:?}: traffic");
            assert_eq!(fast.counters.l1_hits, word.counters.l1_hits, "{design:?}: l1 hits");
            assert_eq!(fast.counters.loads, word.counters.loads, "{design:?}: loads");
            assert_eq!(fast.counters.stores, word.counters.stores, "{design:?}: stores");
        }
    }

    #[test]
    fn u32_strided_paths_match_word_at_a_time() {
        use crate::vm_api::{Vm, WordAtATime};
        // The u32 strided entry points (new with the layout axis: AoS /
        // partitioned walks of integer fields) get the same oracle pinning
        // as their f32 twins — narrow and wide strides, precise and approx.
        for design in DesignKind::ALL {
            let drive = |vm: &mut dyn Vm| -> Vec<u32> {
                let p = vm.malloc(64 << 10);
                let a = vm.approx_malloc(128 << 10, DataType::F32);
                let vals: Vec<u32> =
                    (0..1000u32).map(|i| i.wrapping_mul(2654435761).wrapping_add(i)).collect();
                vm.write_u32s_strided(p.base, 20, &vals); // sub-line stride
                vm.write_u32s_strided(a.base, 128, &vals); // wide stride
                let mut n = vec![0u32; 1000];
                vm.read_u32s_strided(p.base, 20, &mut n);
                let mut w = vec![0u32; 1000];
                vm.read_u32s_strided(a.base, 128, &mut w);
                n.extend_from_slice(&w);
                n
            };
            let mut fast = sys(design);
            let fast_back = drive(&mut fast);
            let mut word = sys(design);
            let word_back = drive(&mut WordAtATime(&mut word));
            assert_eq!(fast_back, word_back, "{design:?}: read-back values");
            assert_eq!(fast.core.cycles, word.core.cycles, "{design:?}: cycles");
            assert_eq!(fast.counters.traffic, word.counters.traffic, "{design:?}: traffic");
            assert_eq!(fast.counters.l1_hits, word.counters.l1_hits, "{design:?}: l1 hits");
        }
    }

    #[test]
    fn finish_produces_consistent_metrics() {
        let mut s = sys(DesignKind::Baseline);
        let r = s.malloc(1 << 16);
        for i in (0..1 << 16).step_by(64) {
            s.read_u32(PhysAddr(r.base.0 + i as u64));
            s.compute(10);
        }
        let m = s.finish("smoke");
        assert!(m.cycles > 0);
        assert!(m.ipc > 0.0);
        assert!(m.exec_seconds > 0.0);
        assert!(m.energy.total() > 0.0);
        assert_eq!(m.energy.compressor, 0.0, "baseline has no compressor");
        assert!(m.counters.amat() >= 1.0);
        assert_eq!(m.design, "baseline");
    }
}
