//! Codec throughput comparison: retained reference implementation vs. the
//! fused hot path, emitted as a machine-readable `BENCH_<tag>.json`
//! trajectory file so every PR's codec performance is tracked in-repo.
//!
//! Usage: `bench_codec [output.json]` (default `BENCH_current.json`).
//! The committed trajectory file for this PR is `BENCH_PR1.json`; CI's
//! smoke mode (`AVR_BENCH_FAST=1`) shrinks the measurement.
//!
//! Measurement: per kernel, reference and fused samples interleave
//! (`SAMPLES` batches of `ITERS` calls each) and the reported figure is the
//! per-iteration median — robust to scheduler noise on shared machines.

use avr_bench::codec_kernels::{noise_block, smooth_block, spiky_block};
use avr_compress::{compress_reference, Compressor, Thresholds};
use avr_types::{BlockData, DataType};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    kernel: &'static str,
    reference_ns: f64,
    fused_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.fused_ns
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn measure(kernel: &'static str, block: &BlockData, fast: bool) -> Measurement {
    let th = Thresholds::paper_default();
    let mut comp = Compressor::new(th, 8);
    let (iters, samples, warmup) = if fast { (500u32, 11, 2_000u32) } else { (2_000, 41, 10_000) };

    let reference = || compress_reference(block, DataType::F32, &th, 8).is_ok();
    let mut fused = || comp.compress(block, DataType::F32).is_ok();
    for _ in 0..warmup {
        std::hint::black_box(reference());
        std::hint::black_box(fused());
    }

    let mut ref_ns = Vec::with_capacity(samples);
    let mut fused_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(reference());
        }
        ref_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(fused());
        }
        fused_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    Measurement { kernel, reference_ns: median(ref_ns), fused_ns: median(fused_ns) }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_current.json".to_string());
    // Fail on an unwritable destination *before* spending the measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    let fast = std::env::var("AVR_BENCH_FAST").is_ok();

    let kernels: [(&'static str, BlockData); 3] = [
        ("smooth_block", smooth_block()),
        ("spiky_block", spiky_block()),
        ("noise_block", noise_block()),
    ];
    let results: Vec<Measurement> =
        kernels.iter().map(|(name, block)| measure(name, block, fast)).collect();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"codec_kernels\",");
    let _ = writeln!(json, "  \"unit\": \"ns_per_block\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if fast { "fast_smoke" } else { "full" });
    let _ = writeln!(json, "  \"target\": \"host-native (.cargo/config.toml)\",");
    json.push_str("  \"kernels\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"reference_ns\": {:.1}, \"fused_ns\": {:.1}, \
             \"speedup\": {:.2}, \"fused_blocks_per_sec\": {:.0} }}{}",
            m.kernel,
            m.reference_ns,
            m.fused_ns,
            m.speedup(),
            1e9 / m.fused_ns,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    for m in &results {
        println!(
            "{:<14} reference {:>8.1} ns  fused {:>8.1} ns  speedup {:.2}x",
            m.kernel,
            m.reference_ns,
            m.fused_ns,
            m.speedup()
        );
    }
    std::fs::write(&out_path, &json).expect("write trajectory file");
    println!("wrote {out_path}");

    // The PR's tracked acceptance bar: >= 2x on the compressible kernels.
    // (Informational here; CI treats the committed BENCH_*.json as record.)
    for m in &results {
        if m.kernel != "noise_block" && m.speedup() < 2.0 {
            eprintln!("WARNING: {} speedup {:.2}x below the 2x target", m.kernel, m.speedup());
        }
    }
}
