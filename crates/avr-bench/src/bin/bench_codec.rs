//! Codec throughput comparison: retained reference implementation vs. the
//! fused hot path, emitted as a machine-readable `BENCH_<tag>.json`
//! trajectory file so every PR's codec performance is tracked in-repo.
//!
//! Usage: `bench_codec [output.json]` (default `BENCH_current.json`).
//! The committed trajectory file for this PR is `BENCH_PR3.json`; CI's
//! smoke mode (`AVR_BENCH_FAST=1`) shrinks the measurement.
//!
//! Three sections are measured:
//!
//! * **`kernels`** — reference vs. fused whole-codec timing on the
//!   smooth/spiky/noise blocks, on the auto-dispatched SIMD arm (the
//!   numbers the PR1→PR2→… trajectory compares);
//! * **`codec_arms`** — the fused codec re-timed with the dispatch pinned
//!   to each arm the host supports (scalar / SSE2 / AVX2), so the win of
//!   each explicit-SIMD backend is part of the record;
//! * **`simd_kernels`** — per-kernel ns/value microbenchmarks of the four
//!   dispatched hot loops (`to_fixed_f32`, `downsample_both`,
//!   `reconstruct_1d`/`2d`, `check_chunk_f32`) on every arm.
//!
//! Measurement: reference and fused samples interleave (`SAMPLES` batches
//! of `ITERS` calls each) and the reported figure is the per-iteration
//! median — robust to scheduler noise on shared machines.

use avr_bench::codec_kernels::{noise_block, smooth_block, spiky_block};
use avr_compress::simd::{self, CodecKernels};
use avr_compress::{choose_bias, compress_reference, Compressor, Thresholds};
use avr_types::{BlockData, DataType, VALUES_PER_BLOCK};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    kernel: &'static str,
    reference_ns: f64,
    fused_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.fused_ns
    }
}

/// One arm's fused whole-codec timing on one block kernel.
struct ArmMeasurement {
    kernel: &'static str,
    arm: &'static str,
    fused_ns: f64,
}

/// One arm's ns/value on one of the four dispatched hot loops.
struct KernelTiming {
    kernel: &'static str,
    arm: &'static str,
    ns_per_value: f64,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn measure(kernel: &'static str, block: &BlockData, fast: bool) -> Measurement {
    let th = Thresholds::paper_default();
    let mut comp = Compressor::new(th, 8);
    let (iters, samples, warmup) = if fast { (500u32, 11, 2_000u32) } else { (2_000, 41, 10_000) };

    let reference = || compress_reference(block, DataType::F32, &th, 8).is_ok();
    let mut fused = || comp.compress(block, DataType::F32).is_ok();
    for _ in 0..warmup {
        std::hint::black_box(reference());
        std::hint::black_box(fused());
    }

    let mut ref_ns = Vec::with_capacity(samples);
    let mut fused_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(reference());
        }
        ref_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(fused());
        }
        fused_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    Measurement { kernel, reference_ns: median(ref_ns), fused_ns: median(fused_ns) }
}

/// Median ns per call of `f` over interleaved sample batches.
fn time_ns(mut f: impl FnMut(), iters: u32, samples: usize, warmup: u32) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(ns)
}

/// Fused whole-codec timing with the dispatch pinned per arm.
fn measure_codec_arms(kernels: &[(&'static str, BlockData)], fast: bool) -> Vec<ArmMeasurement> {
    let th = Thresholds::paper_default();
    let (iters, samples, warmup) = if fast { (500u32, 9, 1_000u32) } else { (2_000, 21, 5_000) };
    let mut out = Vec::new();
    for arm in simd::supported_arms() {
        assert!(simd::force_arm(Some(arm)));
        for (name, block) in kernels {
            let mut comp = Compressor::new(th, 8);
            let ns = time_ns(
                || {
                    std::hint::black_box(comp.compress(block, DataType::F32).is_ok());
                },
                iters,
                samples,
                warmup,
            );
            out.push(ArmMeasurement { kernel: name, arm: arm.name(), fused_ns: ns });
        }
    }
    simd::force_arm(None);
    out
}

/// ns/value microbenchmarks of the four dispatched hot loops, per arm.
/// All kernels process one 256-value block per call (`check_chunk_f32`
/// covers its four 64-value chunks).
fn measure_simd_kernels(fast: bool) -> Vec<KernelTiming> {
    let th = Thresholds::paper_default();
    let block = smooth_block();
    let bias = choose_bias(&block.words).value();
    let neg_bias = bias.wrapping_neg() as i32;
    let limit = th.mantissa_limit();
    let (iters, samples, warmup) = if fast { (2_000u32, 9, 1_000u32) } else { (20_000, 21, 5_000) };
    let per_call = VALUES_PER_BLOCK as f64;

    let mut out = Vec::new();
    for arm in simd::supported_arms() {
        let k: &'static CodecKernels = simd::kernels_for(arm).expect("supported arm");
        // Representative inputs, produced by the pipeline itself.
        let mut fixed = [0i32; VALUES_PER_BLOCK];
        (k.to_fixed_f32)(&block.words, bias, &mut fixed);
        let mut sum_1d = [0i64; 16];
        let mut sum_2d = [0i64; 16];
        (k.downsample_both)(&fixed, &mut sum_1d, &mut sum_2d);
        let mut recon = [0i32; VALUES_PER_BLOCK];
        let mut recon_words = [0u32; VALUES_PER_BLOCK];
        (k.reconstruct_1d)(&sum_1d, &mut recon);

        let mut push = |kernel: &'static str, ns_per_call: f64| {
            out.push(KernelTiming { kernel, arm: arm.name(), ns_per_value: ns_per_call / per_call })
        };
        push(
            "to_fixed_f32",
            time_ns(
                || (k.to_fixed_f32)(std::hint::black_box(&block.words), bias, &mut fixed),
                iters,
                samples,
                warmup,
            ),
        );
        push(
            "downsample_both",
            time_ns(
                || (k.downsample_both)(std::hint::black_box(&fixed), &mut sum_1d, &mut sum_2d),
                iters,
                samples,
                warmup,
            ),
        );
        push(
            "reconstruct_1d",
            time_ns(
                || (k.reconstruct_1d)(std::hint::black_box(&sum_1d), &mut recon),
                iters,
                samples,
                warmup,
            ),
        );
        push(
            "reconstruct_2d",
            time_ns(
                || (k.reconstruct_2d)(std::hint::black_box(&sum_2d), &mut recon),
                iters,
                samples,
                warmup,
            ),
        );
        push(
            "check_chunk_f32",
            time_ns(
                || {
                    for chunk in 0..4usize {
                        let base = chunk * simd::CHUNK;
                        let ow: &[u32; simd::CHUNK] =
                            block.words[base..base + simd::CHUNK].try_into().unwrap();
                        let rf: &[i32; simd::CHUNK] =
                            recon[base..base + simd::CHUNK].try_into().unwrap();
                        let rw: &mut [u32; simd::CHUNK] =
                            (&mut recon_words[base..base + simd::CHUNK]).try_into().unwrap();
                        std::hint::black_box((k.check_chunk_f32)(ow, rf, rw, neg_bias, limit));
                    }
                },
                iters,
                samples,
                warmup,
            ),
        );
    }
    out
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_current.json".to_string());
    // Fail on an unwritable destination *before* spending the measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    let fast = std::env::var("AVR_BENCH_FAST").is_ok();

    let kernels: [(&'static str, BlockData); 3] = [
        ("smooth_block", smooth_block()),
        ("spiky_block", spiky_block()),
        ("noise_block", noise_block()),
    ];
    let dispatch_arm = simd::active_arm();
    let results: Vec<Measurement> =
        kernels.iter().map(|(name, block)| measure(name, block, fast)).collect();
    let arm_results = measure_codec_arms(&kernels, fast);
    let kernel_results = measure_simd_kernels(fast);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"codec_kernels\",");
    let _ = writeln!(json, "  \"unit\": \"ns_per_block\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if fast { "fast_smoke" } else { "full" });
    let _ = writeln!(json, "  \"target\": \"host-native (.cargo/config.toml)\",");
    let _ = writeln!(json, "  \"dispatch_arm\": \"{}\",", dispatch_arm.name());
    json.push_str("  \"kernels\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"reference_ns\": {:.1}, \"fused_ns\": {:.1}, \
             \"speedup\": {:.2}, \"fused_blocks_per_sec\": {:.0} }}{}",
            m.kernel,
            m.reference_ns,
            m.fused_ns,
            m.speedup(),
            1e9 / m.fused_ns,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"codec_arms\": [\n");
    for (i, m) in arm_results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"arm\": \"{}\", \"fused_ns\": {:.1} }}{}",
            m.kernel,
            m.arm,
            m.fused_ns,
            if i + 1 < arm_results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"simd_kernels\": [\n");
    for (i, m) in kernel_results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"arm\": \"{}\", \"ns_per_value\": {:.3} }}{}",
            m.kernel,
            m.arm,
            m.ns_per_value,
            if i + 1 < kernel_results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    println!("dispatch arm: {}", dispatch_arm.name());
    for m in &results {
        println!(
            "{:<14} reference {:>8.1} ns  fused {:>8.1} ns  speedup {:.2}x",
            m.kernel,
            m.reference_ns,
            m.fused_ns,
            m.speedup()
        );
    }
    for m in &arm_results {
        println!("{:<14} [{:<6}] fused {:>8.1} ns", m.kernel, m.arm, m.fused_ns);
    }
    for m in &kernel_results {
        println!("{:<16} [{:<6}] {:>7.3} ns/value", m.kernel, m.arm, m.ns_per_value);
    }
    std::fs::write(&out_path, &json).expect("write trajectory file");
    println!("wrote {out_path}");

    // The PR's tracked acceptance bar: >= 2x on the compressible kernels.
    // (Informational here; CI treats the committed BENCH_*.json as record.)
    for m in &results {
        if m.kernel != "noise_block" && m.speedup() < 2.0 {
            eprintln!("WARNING: {} speedup {:.2}x below the 2x target", m.kernel, m.speedup());
        }
    }
}
