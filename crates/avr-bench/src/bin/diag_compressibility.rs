use avr_bench::scale_from_env;
use avr_compress::{compress, CompressFailure, Thresholds};
use avr_core::ExactVm;
use avr_workloads::all_benchmarks;

fn main() {
    let th = Thresholds::paper_default();
    for w in all_benchmarks(scale_from_env()) {
        let mut vm = ExactVm::new();
        let _ = w.run(&mut vm);
        let blocks: Vec<_> = vm.space.approx_blocks().collect();
        let mut sizes = [0usize; 18]; // index 17 = avg-error fail
        for (b, dt) in &blocks {
            let data = vm.mem.read_block(*b);
            match compress(&data, *dt, &th, 8) {
                Ok(o) => sizes[o.compressed.size_lines()] += 1,
                Err(CompressFailure::TooManyOutliers { .. }) => sizes[16] += 1,
                Err(CompressFailure::AvgErrorTooHigh { .. }) => sizes[17] += 1,
            }
        }
        let total = blocks.len();
        print!("{:<10} n={:<6}", w.name(), total);
        for (i, &c) in sizes.iter().enumerate() {
            if c > 0 {
                let label = match i {
                    16 => "outl!".to_string(),
                    17 => "avg!".to_string(),
                    _ => format!("{i}L"),
                };
                print!(" {}:{:.0}%", label, 100.0 * c as f64 / total as f64);
            }
        }
        println!();
    }
}
