//! Print the per-(workload × design) [`avr_workloads::metrics_digest`]
//! values for the tiny-scale suite — the capture half of the
//! `tests/designs.rs` bit-identity contract.
//!
//! The pins in `tests/designs.rs` were captured with this tool on the tree
//! *before* the `DesignPolicy` extraction; rerunning it after any change
//! that legitimately alters simulation results (and only then) regenerates
//! the constants to paste there. Conditions are pinned exactly like the
//! test: tiny scale, SoA layout, the exact backend, one thread.

use avr_types::{BackendKind, DesignKind, LayoutKind};
use avr_workloads::{all_benchmarks, metrics_digest, run_on_design_in, BenchScale};

fn main() {
    let cfg = avr_core::SystemConfig::tiny().with_backend(BackendKind::Exact);
    for w in all_benchmarks(BenchScale::Tiny) {
        for design in DesignKind::ALL {
            let m = run_on_design_in(w.as_ref(), &cfg, design, LayoutKind::Soa);
            println!(
                "(\"{}\", DesignKind::{:?}, 0x{:016x}),",
                w.name(),
                design,
                metrics_digest(&m)
            );
        }
    }
}
