//! Timing diagnostic: where do baseline cycles go for one workload?
use avr_core::{DesignKind, ExactVm, System, SystemConfig};
use avr_workloads::runner::mean_relative_error;
use avr_workloads::{all_benchmarks, BenchScale, Workload};

fn run_diag(
    w: &dyn Workload,
    cfg: &SystemConfig,
    d: DesignKind,
) -> (avr_sim::RunMetrics, (u64, u64, u64)) {
    let mut exact = ExactVm::new();
    let golden = w.run(&mut exact);
    let mut sys = System::new(cfg.clone(), d);
    let out = w.run(&mut sys);
    let diag = sys.core_diag();
    let mut m = sys.finish(w.name());
    m.output_error = mean_relative_error(&golden, &out);
    (m, diag)
}

fn main() {
    let cfg = SystemConfig::per_core_scaled();
    let which = std::env::args().nth(1).unwrap_or_else(|| "heat".into());
    let suite = all_benchmarks(BenchScale::Bench);
    let w = suite.iter().find(|w| w.name() == which).expect("workload");
    for d in [DesignKind::Baseline, DesignKind::Truncate, DesignKind::Avr] {
        let (m, diag) = run_diag(w.as_ref(), &cfg, d);
        let c = &m.counters;
        println!(
            "{:<9} cycles={:>12} instr={:>12} ipc={:.2} llc_miss={:>9} traffic_MB={:>7.1} amat={:>6.1} err={:.3}%",
            m.design, m.cycles, c.instructions, m.ipc, c.llc_misses_total,
            c.traffic.total() as f64 / 1e6, c.amat(), m.output_error * 100.0
        );
        println!(
            "          leading={} trailing={} stalls={} miss_lat_avg={:.0} ev={:?} req={:?}",
            diag.0,
            diag.1,
            diag.2,
            c.miss_lat_sum as f64 / c.miss_lat_count.max(1) as f64,
            c.evictions,
            c.approx_requests
        );
    }
}
