//! End-to-end simulation-rate benchmark: drives the full workload suite
//! (the paper's seven, the extensions, and `particles`) through
//! the `SimPool` engine and emits a machine-readable `BENCH_<tag>.json`
//! recording **blocks/s per workload** — the whole-simulator throughput the
//! perf trajectory tracks beyond the codec kernels (ROADMAP).
//!
//! One "block" is the AVR 1 KB memory-block unit: a workload's block count
//! is its simulated DRAM traffic in 1 KB units, which is deterministic for
//! a fixed (workload, design, scale); the wall clock is the only measured
//! quantity. Each workload entry times the *full* end-to-end pipeline —
//! golden run, timed AVR-design simulation, and the parallel Table 4
//! compression summary. A PR that intentionally changes simulation speed
//! (or the simulated traffic) should regenerate and commit the next
//! `BENCH_PRn.json` and point CI's `--check` at it.
//!
//! ```text
//! bench_e2e [--smoke] [--check BASELINE.json] [--out PATH]
//! ```
//!
//! * default: measures the `smoke` (tiny-scale) *and* `full` (bench-scale)
//!   sections — the committed BENCH_PRn.json trajectory files come from
//!   this mode;
//! * `--smoke`: tiny scale only — CI's perf gate;
//! * `--check B.json`: after measuring, compare this run's smoke section
//!   against `B.json`'s and exit non-zero if any workload's blocks/s
//!   regressed more than the 25 % budget. Ratios are **median-calibrated**
//!   first: each workload's current/baseline ratio is divided by the
//!   median ratio across all workloads, so a uniform machine-speed
//!   difference (a slower CI runner, host frequency drift) cancels out and
//!   the gate fires on *differential* regressions — one workload's engine
//!   path getting slower — which is what a committed-baseline gate can
//!   actually detect across machines. A uniform drift beyond the budget is
//!   reported loudly but does not fail the gate. Workloads are paired
//!   **by name**: an entry present on only one side (a PR adding or
//!   retiring a workload without regenerating the baseline) **fails the
//!   gate** — set drift means the committed trajectory no longer describes
//!   the suite, so the fix is to commit the next `BENCH_PRn.json`, never
//!   to let the gate skip quietly. The device error-model **backend set**
//!   (see below) is held to the same standard. A baseline entry of
//!   0 blocks/s fails the gate as a corrupt trajectory file instead of
//!   being divided by.
//!
//! The Table 4 sweep (the full suite × AVR) is also timed on one
//! thread vs. the pool so the engine's scaling is part of the record.
//!
//! Each section also carries a **backend axis**: the suite × AVR
//! grid re-run under every device error-model backend (exact, relaxed
//! DRAM, approximate MRAM) at that backend's default fault rates,
//! recording aggregate blocks/s plus the injected-fault/degradation
//! counters — the robustness trajectory next to the throughput one.
//!
//! Each section also carries a **layout axis** (PR 8): the suite × AVR
//! grid re-run once per memory layout (`soa`, `aos`, `partitioned`), each
//! entry recording aggregate blocks/s, the compressible-block fraction
//! (`compressible_blocks / approx_blocks` — the granularity-gap headline:
//! AoS interleaving collapses it on multi-field records), and the mean
//! output error across the workloads that support the layout. The layout
//! set is gated against the baseline exactly like the workload and backend
//! sets, so the smoke gate always exercises the non-default layouts.
//!
//! Each section also carries a **design axis** (PR 10): the full suite
//! re-run once per `DesignKind::ALL` design — every policy the
//! `DesignPolicy` layer constructs, including the memoization family —
//! each entry recording aggregate blocks/s plus the memo hit/serve/elide
//! counters. The design set is gated against the baseline exactly like
//! the other axes: adding a design without regenerating the committed
//! trajectory fails `--check`.
//!
//! # Host-width provenance and the scaling curve
//!
//! The top-level `host` object records `available_parallelism` and the
//! pool width the sweep timings used. The PR-2..PR-6 trajectory files
//! recorded `pool_threads: 4` with sweep speedups of 0.94–0.97× and *no
//! way to tell* whether that was an engine regression or a
//! 1-hardware-thread recording container time-slicing four workers (it
//! was the latter, plus real engine overhead — see PERFORMANCE.md).
//! `--check` now warns loudly when the baseline and the current host
//! widths differ, and on a multi-core host **fails** if the pooled
//! Table 4 sweep is slower than single-thread.
//!
//! Each section also carries a `scaling` object: the full nine-workload ×
//! five-design grid timed at 1/2/4/N threads (golden runs pre-warmed into
//! the memoization cache so the curve measures the *engine*, not the
//! share of golden recomputation the cache already removed), plus a
//! per-workload single-vs-pooled speedup over that workload's five-design
//! column.
//!
//! The top-level `server` object (PR 9) times the suite × AVR grid
//! through the sweep server's loopback TCP path on a width-1 pool vs. the
//! same grid run directly, recording cells/s both ways — the protocol +
//! serialization overhead trajectory. A second submission of the same
//! batch records the warm-path time and asserts the golden cache absorbed
//! every golden recomputation.

use avr_core::{BackendKind, DesignKind, LayoutKind, SimPool, SystemConfig};
use avr_server::{Client, SweepServer};
use avr_types::CellSpec;
use avr_workloads::{
    all_benchmarks, golden, golden_run, run_grid, run_grid_layouts, run_on_design, BenchScale,
    Workload,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Regression budget for `--check`: fail when a workload's blocks/s drops
/// below this fraction of the committed baseline.
const GATE_FRACTION: f64 = 0.75;

/// `--check` scaling gate, active only when the *current* host has ≥ 2
/// cores: the pooled Table 4 sweep must not be slower than single-thread.
const SCALING_GATE: f64 = 1.0;

struct WorkloadRate {
    workload: &'static str,
    sim_blocks: u64,
    wall_ms: f64,
}

impl WorkloadRate {
    fn blocks_per_sec(&self) -> f64 {
        self.sim_blocks as f64 / (self.wall_ms / 1e3).max(1e-9)
    }
}

struct SweepTiming {
    pool_threads: usize,
    single_thread_ms: f64,
    pooled_ms: f64,
}

/// One error-model backend's aggregate grid throughput and fault record.
struct BackendRate {
    backend: &'static str,
    sim_blocks: u64,
    wall_ms: f64,
    injected_bit_flips: u64,
    faulted_lines: u64,
    retries: u64,
    degraded_lines: u64,
    ecc_scrubs: u64,
}

impl BackendRate {
    fn blocks_per_sec(&self) -> f64 {
        self.sim_blocks as f64 / (self.wall_ms / 1e3).max(1e-9)
    }
}

/// One design's aggregate grid throughput plus the memoization record
/// (all-zero outside the memo family).
struct DesignRate {
    design: &'static str,
    sim_blocks: u64,
    wall_ms: f64,
    memo_hits: u64,
    memo_served: u64,
    memo_elided: u64,
}

impl DesignRate {
    fn blocks_per_sec(&self) -> f64 {
        self.sim_blocks as f64 / (self.wall_ms / 1e3).max(1e-9)
    }
}

/// One memory layout's aggregate grid result: throughput plus the
/// compressibility and output-error record across the workloads that
/// support the layout.
struct LayoutRate {
    layout: &'static str,
    /// How many of the suite's workloads declare support for this layout.
    workloads: usize,
    sim_blocks: u64,
    wall_ms: f64,
    approx_blocks: u64,
    compressible_blocks: u64,
    error_sum: f64,
}

impl LayoutRate {
    fn blocks_per_sec(&self) -> f64 {
        self.sim_blocks as f64 / (self.wall_ms / 1e3).max(1e-9)
    }

    /// The layout axis's headline number: what fraction of the scanned
    /// approximable blocks the codec accepted.
    fn compressible_fraction(&self) -> f64 {
        self.compressible_blocks as f64 / (self.approx_blocks as f64).max(1.0)
    }

    fn mean_output_error(&self) -> f64 {
        self.error_sum / (self.workloads as f64).max(1.0)
    }
}

/// One width's measurement of the full (9 workloads × 5 designs) grid.
struct ScalingPoint {
    threads: usize,
    wall_ms: f64,
}

/// One workload's five-design column timed single-thread vs. pooled.
struct WorkloadScaling {
    workload: &'static str,
    single_thread_ms: f64,
    pooled_ms: f64,
}

/// The engine scaling curve for one section.
struct Scaling {
    grid_jobs: usize,
    points: Vec<ScalingPoint>,
    max_threads: usize,
    per_workload: Vec<WorkloadScaling>,
}

struct Section {
    scale_label: &'static str,
    workloads: Vec<WorkloadRate>,
    sweep: SweepTiming,
    backends: Vec<BackendRate>,
    layouts: Vec<LayoutRate>,
    designs: Vec<DesignRate>,
    scaling: Scaling,
}

/// The suite × AVR grid timed through the sweep server's loopback TCP
/// path vs. run directly, both on one worker — the difference is protocol,
/// serialization and queueing overhead.
struct ServerRate {
    cells: usize,
    direct_ms: f64,
    server_ms: f64,
    /// Second submission of the identical batch (warm golden cache, warm
    /// connection).
    repeat_ms: f64,
    /// Golden-cache hits the repeat submission scored (must cover every
    /// cell: resubmission recomputes no goldens).
    golden_hits_delta: u64,
}

impl ServerRate {
    fn cells_per_sec_direct(&self) -> f64 {
        self.cells as f64 / (self.direct_ms / 1e3).max(1e-9)
    }

    fn cells_per_sec_server(&self) -> f64 {
        self.cells as f64 / (self.server_ms / 1e3).max(1e-9)
    }

    fn overhead_fraction(&self) -> f64 {
        self.server_ms / self.direct_ms.max(1e-9) - 1.0
    }
}

fn config_for(scale: BenchScale) -> SystemConfig {
    match scale {
        BenchScale::Tiny => SystemConfig::tiny(),
        BenchScale::Bench => SystemConfig::per_core_scaled(),
    }
}

/// Time one full (golden + AVR + summary) run per workload, best-of-N so
/// the trajectory numbers resist noise. Short workloads (sub-10 ms runs)
/// get extra reps until ~60 ms of total measurement accumulates — a
/// 0.7 ms tiny-scale run measured only twice would dominate the gate's
/// flakiness on shared CI runners.
const MIN_MEASURE_MS: f64 = 60.0;
/// The *sub-3 ms* tiny workloads (`orbit`, `kmeans`) are the gate's
/// flakiest point: even best-of-N over 60 ms, their raw ratios swung
/// ±15 % run-to-run on a busy 1-core host (ROADMAP PR-3 note). Runs that
/// short accumulate a longer window instead of a bigger budget.
const TINY_RUN_MS: f64 = 3.0;
const TINY_MIN_MEASURE_MS: f64 = 240.0;
/// Hard rep cap: bounds wall time if a workload is pathologically fast
/// (240 ms / 0.5 ms ≈ 480 would otherwise be possible).
const MAX_REPS: u32 = 400;

fn measure_workloads(
    suite: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    reps: u32,
) -> Vec<WorkloadRate> {
    suite
        .iter()
        .map(|w| {
            let mut best_ms = f64::MAX;
            let mut total_ms = 0.0;
            let blocks;
            let mut rep = 0;
            loop {
                let t0 = Instant::now();
                let m = run_on_design(w.as_ref(), cfg, DesignKind::Avr);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                best_ms = best_ms.min(ms);
                total_ms += ms;
                rep += 1;
                // Sub-3 ms runs keep accumulating to the longer window.
                let min_ms =
                    if best_ms < TINY_RUN_MS { TINY_MIN_MEASURE_MS } else { MIN_MEASURE_MS };
                if rep >= reps && (total_ms >= min_ms || rep >= MAX_REPS) {
                    // The simulated traffic is deterministic per (workload,
                    // design, scale): any rep's count is the count.
                    blocks =
                        m.counters.traffic.total().div_ceil(avr_types::addr::BLOCK_BYTES as u64);
                    break;
                }
            }
            WorkloadRate { workload: w.name(), sim_blocks: blocks, wall_ms: best_ms }
        })
        .collect()
}

/// Prime the golden-run memoization cache for every workload in `suite`,
/// so sweep/scaling timings measure the engine rather than a one-off
/// cold-cache golden recomputation on whichever width runs first.
fn prime_goldens(suite: &[Box<dyn Workload>]) {
    for w in suite {
        let _ = golden_run(w.as_ref());
    }
}

/// Time the Table 4 sweep (nine workloads × AVR) single-threaded vs. on
/// the pool. Best-of-2 per width: a single tiny-scale grid is ~tens of
/// milliseconds, and the `--check` scaling gate compares these two
/// numbers directly.
fn measure_sweep(
    suite: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    pool_threads: usize,
) -> SweepTiming {
    let designs = [DesignKind::Avr];
    prime_goldens(suite);
    let time_width = |threads: usize| {
        let mut best_ms = f64::MAX;
        let mut grid = Vec::new();
        for _ in 0..2 {
            let t0 = Instant::now();
            grid = run_grid(&SimPool::new(threads), suite, cfg, &designs);
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        (best_ms, grid)
    };
    let (single_thread_ms, serial) = time_width(1);
    let (pooled_ms, pooled) = time_width(pool_threads);
    // The engine's determinism contract, asserted on every bench run.
    for (a, b) in serial.iter().zip(&pooled) {
        assert_eq!(
            a.metrics.cycles, b.metrics.cycles,
            "{}: pool changed the simulation",
            a.workload
        );
    }
    SweepTiming { pool_threads, single_thread_ms, pooled_ms }
}

/// The engine scaling curve: the full (9 workloads × 5 designs) grid at
/// 1/2/4/N threads, plus each workload's five-design column at 1 vs. max
/// width. Goldens are pre-warmed (see [`prime_goldens`]); the committed
/// JSON records the honest result for whatever host ran it — the `host`
/// provenance object is what makes the number interpretable.
fn measure_scaling(
    suite: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    pool_threads: usize,
) -> Scaling {
    let designs = DesignKind::ALL;
    prime_goldens(suite);
    let mut widths = vec![1usize, 2, 4];
    if pool_threads > 4 {
        widths.push(pool_threads);
    }
    let max_threads = *widths.last().unwrap();
    let points = widths
        .iter()
        .map(|&threads| {
            let t0 = Instant::now();
            let grid = run_grid(&SimPool::new(threads), suite, cfg, &designs);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(grid.len(), suite.len() * designs.len());
            ScalingPoint { threads, wall_ms }
        })
        .collect();
    let per_workload = suite
        .iter()
        .map(|w| {
            let col = std::slice::from_ref(w);
            let time_width = |threads: usize| {
                let t0 = Instant::now();
                let _ = run_grid(&SimPool::new(threads), col, cfg, &designs);
                t0.elapsed().as_secs_f64() * 1e3
            };
            WorkloadScaling {
                workload: w.name(),
                single_thread_ms: time_width(1),
                pooled_ms: time_width(max_threads),
            }
        })
        .collect();
    Scaling { grid_jobs: suite.len() * designs.len(), points, max_threads, per_workload }
}

/// Run the nine-workload × AVR grid once per error-model backend at the
/// backend's default fault rates, recording aggregate throughput and the
/// fault/degradation counters the run accumulated.
fn measure_backends(suite: &[Box<dyn Workload>], cfg: &SystemConfig) -> Vec<BackendRate> {
    let designs = [DesignKind::Avr];
    BackendKind::ALL
        .iter()
        .map(|&kind| {
            let cfg = cfg.clone().with_backend(kind);
            let t0 = Instant::now();
            let grid = run_grid(&SimPool::new(1), suite, &cfg, &designs);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut r = BackendRate {
                backend: kind.label(),
                sim_blocks: 0,
                wall_ms,
                injected_bit_flips: 0,
                faulted_lines: 0,
                retries: 0,
                degraded_lines: 0,
                ecc_scrubs: 0,
            };
            for e in &grid {
                let m = &e.metrics;
                r.sim_blocks +=
                    m.counters.traffic.total().div_ceil(avr_types::addr::BLOCK_BYTES as u64);
                let f = &m.counters.faults;
                r.injected_bit_flips += f.injected_bit_flips;
                r.faulted_lines += f.faulted_lines;
                r.retries += f.retries;
                r.degraded_lines += f.degraded_lines;
                r.ecc_scrubs += f.ecc_scrubs;
            }
            r
        })
        .collect()
}

/// Run the full suite once per design (`DesignKind::ALL` — every policy
/// the `DesignPolicy` layer can construct), recording aggregate blocks/s
/// and the memoization counters: the design axis of the trajectory, which
/// keeps the smoke gate exercising every design's engine path including
/// the memo family's table/window machinery. Single-threaded so the
/// per-design wall clocks are comparable to each other.
fn measure_designs(suite: &[Box<dyn Workload>], cfg: &SystemConfig) -> Vec<DesignRate> {
    prime_goldens(suite);
    DesignKind::ALL
        .iter()
        .map(|&design| {
            let t0 = Instant::now();
            let grid = run_grid(&SimPool::new(1), suite, cfg, &[design]);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut r = DesignRate {
                design: design.label(),
                sim_blocks: 0,
                wall_ms,
                memo_hits: 0,
                memo_served: 0,
                memo_elided: 0,
            };
            for e in &grid {
                let m = &e.metrics;
                r.sim_blocks +=
                    m.counters.traffic.total().div_ceil(avr_types::addr::BLOCK_BYTES as u64);
                r.memo_hits += m.counters.memo.in_hits;
                r.memo_served += m.counters.memo.in_served;
                r.memo_elided += m.counters.memo.out_elided;
            }
            r
        })
        .collect()
}

/// Run the suite × AVR grid once per memory layout, aggregating blocks/s,
/// the compressible-block fraction and the mean output error over the
/// workloads that support each layout. Single-threaded so the per-layout
/// wall clocks are comparable to each other.
fn measure_layouts(suite: &[Box<dyn Workload>], cfg: &SystemConfig) -> Vec<LayoutRate> {
    let designs = [DesignKind::Avr];
    prime_goldens(suite);
    LayoutKind::ALL
        .iter()
        .map(|&layout| {
            let covered = suite.iter().filter(|w| w.layouts().contains(&layout)).count();
            let t0 = Instant::now();
            let grid = run_grid_layouts(&SimPool::new(1), suite, cfg, &designs, &[layout]);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(grid.len(), covered, "layout grid covered the wrong workloads");
            let mut r = LayoutRate {
                layout: layout.label(),
                workloads: covered,
                sim_blocks: 0,
                wall_ms,
                approx_blocks: 0,
                compressible_blocks: 0,
                error_sum: 0.0,
            };
            for e in &grid {
                let m = &e.metrics;
                r.sim_blocks +=
                    m.counters.traffic.total().div_ceil(avr_types::addr::BLOCK_BYTES as u64);
                r.approx_blocks += m.approx_blocks;
                r.compressible_blocks += m.compressible_blocks;
                r.error_sum += m.output_error;
            }
            r
        })
        .collect()
}

/// Time the suite × AVR grid submitted over loopback to an in-process
/// sweep server on a width-1 pool, against the same grid run directly on
/// one thread. The wire cells pin the exact backend (`CellSpec` default),
/// so the direct run pins it too — identical work on both paths.
fn measure_server(suite: &[Box<dyn Workload>], cfg: &SystemConfig) -> ServerRate {
    prime_goldens(suite);
    let designs = [DesignKind::Avr];
    let mut cfg = cfg.clone();
    cfg.error_model.backend = Some(avr_types::BackendKind::Exact);
    let t0 = Instant::now();
    let grid = run_grid(&SimPool::new(1), suite, &cfg, &designs);
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(grid.len(), suite.len());

    let server =
        SweepServer::bind_with("127.0.0.1:0", SimPool::new(1)).expect("bind loopback server");
    let (addr, handle) = server.spawn();
    let mut client = Client::connect(addr).expect("connect to sweep server");
    let cells: Vec<CellSpec> = suite.iter().map(|w| CellSpec::new(w.name())).collect();
    let mut submit_once = || {
        let t0 = Instant::now();
        let job = client.submit(cells.clone()).expect("submit batch");
        let outcome = client.collect_job(job).expect("collect results");
        assert_eq!(outcome.completed as usize, cells.len(), "server dropped cells");
        t0.elapsed().as_secs_f64() * 1e3
    };
    let server_ms = submit_once();
    let hits_before_repeat = golden::stats::hits();
    let repeat_ms = submit_once();
    let golden_hits_delta = golden::stats::hits() - hits_before_repeat;
    assert!(
        golden_hits_delta >= cells.len() as u64,
        "resubmission must hit the golden cache for every cell \
         ({golden_hits_delta} hits for {} cells)",
        cells.len()
    );
    client.shutdown().expect("shutdown server");
    handle.join().expect("join server thread").expect("server exit");
    ServerRate { cells: cells.len(), direct_ms, server_ms, repeat_ms, golden_hits_delta }
}

fn measure_section(
    scale: BenchScale,
    label: &'static str,
    reps: u32,
    pool_threads: usize,
) -> Section {
    let suite = all_benchmarks(scale);
    let cfg = config_for(scale);
    Section {
        scale_label: label,
        workloads: measure_workloads(&suite, &cfg, reps),
        sweep: measure_sweep(&suite, &cfg, pool_threads),
        backends: measure_backends(&suite, &cfg),
        layouts: measure_layouts(&suite, &cfg),
        designs: measure_designs(&suite, &cfg),
        scaling: measure_scaling(&suite, &cfg, pool_threads),
    }
}

fn render_section(json: &mut String, name: &str, s: &Section, last: bool) {
    let _ = writeln!(json, "    \"{name}\": {{");
    let _ = writeln!(json, "      \"scale\": \"{}\",", s.scale_label);
    json.push_str("      \"workloads\": [\n");
    for (i, w) in s.workloads.iter().enumerate() {
        let _ = writeln!(
            json,
            "        {{ \"workload\": \"{}\", \"design\": \"AVR\", \"sim_blocks\": {}, \
             \"wall_ms\": {:.1}, \"blocks_per_sec\": {:.0} }}{}",
            w.workload,
            w.sim_blocks,
            w.wall_ms,
            w.blocks_per_sec(),
            if i + 1 < s.workloads.len() { "," } else { "" }
        );
    }
    json.push_str("      ],\n");
    json.push_str("      \"backends\": [\n");
    for (i, b) in s.backends.iter().enumerate() {
        let _ = writeln!(
            json,
            "        {{ \"backend\": \"{}\", \"sim_blocks\": {}, \"wall_ms\": {:.1}, \
             \"blocks_per_sec\": {:.0}, \"injected_bit_flips\": {}, \"faulted_lines\": {}, \
             \"retries\": {}, \"degraded_lines\": {}, \"ecc_scrubs\": {} }}{}",
            b.backend,
            b.sim_blocks,
            b.wall_ms,
            b.blocks_per_sec(),
            b.injected_bit_flips,
            b.faulted_lines,
            b.retries,
            b.degraded_lines,
            b.ecc_scrubs,
            if i + 1 < s.backends.len() { "," } else { "" }
        );
    }
    json.push_str("      ],\n");
    json.push_str("      \"layouts\": [\n");
    for (i, l) in s.layouts.iter().enumerate() {
        let _ = writeln!(
            json,
            "        {{ \"layout\": \"{}\", \"workloads\": {}, \"sim_blocks\": {}, \
             \"wall_ms\": {:.1}, \"blocks_per_sec\": {:.0}, \"approx_blocks\": {}, \
             \"compressible_blocks\": {}, \"compressible_fraction\": {:.4}, \
             \"mean_output_error\": {:.5} }}{}",
            l.layout,
            l.workloads,
            l.sim_blocks,
            l.wall_ms,
            l.blocks_per_sec(),
            l.approx_blocks,
            l.compressible_blocks,
            l.compressible_fraction(),
            l.mean_output_error(),
            if i + 1 < s.layouts.len() { "," } else { "" }
        );
    }
    json.push_str("      ],\n");
    json.push_str("      \"designs\": [\n");
    for (i, d) in s.designs.iter().enumerate() {
        let _ = writeln!(
            json,
            "        {{ \"design\": \"{}\", \"sim_blocks\": {}, \"wall_ms\": {:.1}, \
             \"blocks_per_sec\": {:.0}, \"memo_hits\": {}, \"memo_served\": {}, \
             \"memo_elided\": {} }}{}",
            d.design,
            d.sim_blocks,
            d.wall_ms,
            d.blocks_per_sec(),
            d.memo_hits,
            d.memo_served,
            d.memo_elided,
            if i + 1 < s.designs.len() { "," } else { "" }
        );
    }
    json.push_str("      ],\n");
    let sw = &s.sweep;
    let _ = writeln!(
        json,
        "      \"table4_sweep\": {{ \"pool_threads\": {}, \"single_thread_ms\": {:.1}, \
         \"pooled_ms\": {:.1}, \"speedup\": {:.2} }},",
        sw.pool_threads,
        sw.single_thread_ms,
        sw.pooled_ms,
        sw.single_thread_ms / sw.pooled_ms.max(1e-9)
    );
    let sc = &s.scaling;
    let _ = writeln!(json, "      \"scaling\": {{");
    let _ = writeln!(json, "        \"grid_jobs\": {},", sc.grid_jobs);
    json.push_str("        \"points\": [\n");
    let base_ms = sc.points[0].wall_ms;
    for (i, p) in sc.points.iter().enumerate() {
        let _ = writeln!(
            json,
            "          {{ \"threads\": {}, \"wall_ms\": {:.1}, \"speedup\": {:.2} }}{}",
            p.threads,
            p.wall_ms,
            base_ms / p.wall_ms.max(1e-9),
            if i + 1 < sc.points.len() { "," } else { "" }
        );
    }
    json.push_str("        ],\n");
    json.push_str("        \"per_workload\": [\n");
    for (i, w) in sc.per_workload.iter().enumerate() {
        let _ = writeln!(
            json,
            "          {{ \"workload\": \"{}\", \"threads\": {}, \"single_thread_ms\": {:.1}, \
             \"pooled_ms\": {:.1}, \"speedup\": {:.2} }}{}",
            w.workload,
            sc.max_threads,
            w.single_thread_ms,
            w.pooled_ms,
            w.single_thread_ms / w.pooled_ms.max(1e-9),
            if i + 1 < sc.per_workload.len() { "," } else { "" }
        );
    }
    json.push_str("        ]\n");
    json.push_str("      }\n");
    let _ = writeln!(json, "    }}{}", if last { "" } else { "," });
}

/// Extract `(name, blocks_per_sec)` pairs for entries keyed by `key`
/// (`"workload"` or `"backend"`) from the named section of a previously
/// emitted file (the format is line-oriented by construction; no JSON
/// dependency exists offline).
fn parse_baseline_by(text: &str, section: &str, key: &str) -> Vec<(String, f64)> {
    let mut rates = Vec::new();
    let mut in_section = false;
    let wanted = format!("\"{section}\": {{");
    let pat = format!("\"{key}\": \"");
    let entry = format!("{{ {pat}");
    for line in text.lines() {
        let t = line.trim();
        if t == wanted {
            in_section = true;
        } else if in_section && (t == "\"smoke\": {" || t == "\"full\": {") {
            break; // next section began
        } else if in_section && t.starts_with(entry.as_str()) {
            let name = t
                .split(pat.as_str())
                .nth(1)
                .and_then(|r| r.split('"').next())
                .unwrap_or_default()
                .to_string();
            let bps = t
                .split("\"blocks_per_sec\": ")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .and_then(|r| r.trim_end_matches(&[' ', '}'][..]).parse::<f64>().ok());
            if let Some(bps) = bps {
                rates.push((name, bps));
            }
        }
    }
    rates
}

fn parse_baseline(text: &str, section: &str) -> Vec<(String, f64)> {
    parse_baseline_by(text, section, "workload")
}

/// The baseline's recorded host width, or `None` for trajectory files
/// predating the provenance record (BENCH_PR6.json and earlier).
fn parse_host_width(text: &str) -> Option<usize> {
    text.lines()
        .find_map(|l| l.split("\"available_parallelism\": ").nth(1))
        .and_then(|r| r.split(|c: char| !c.is_ascii_digit()).next()?.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a baseline path").clone());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone())
        .unwrap_or_else(|| "BENCH_current.json".to_string());

    // Fail on an unwritable destination before spending the measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    let env_pool = SimPool::from_env();
    // The scaling record always exercises ≥ 4 workers (they time-slice on
    // smaller machines; the JSON records the honest result either way).
    let sweep_threads = env_pool.threads().max(4);
    // Host-width provenance: without this, a committed "speedup 0.97×"
    // from a 1-hardware-thread container is indistinguishable from a real
    // engine regression (the PR-2..PR-6 ambiguity).
    let host_width = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("bench_e2e: smoke section (tiny scale)...");
    let smoke = measure_section(BenchScale::Tiny, "tiny", 3, sweep_threads);
    eprintln!("bench_e2e: server section (loopback vs direct, tiny scale)...");
    let server = measure_server(&all_benchmarks(BenchScale::Tiny), &config_for(BenchScale::Tiny));
    let full = if smoke_only {
        None
    } else {
        eprintln!("bench_e2e: full section (bench scale)...");
        Some(measure_section(BenchScale::Bench, "bench", 1, sweep_threads))
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e2e\",");
    let _ = writeln!(json, "  \"unit\": \"blocks_per_sec (1 KB simulated DRAM blocks / wall s)\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke_only { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"target\": \"host-native (.cargo/config.toml)\",");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"available_parallelism\": {host_width}, \"pool_threads\": \
         {sweep_threads} }},"
    );
    // One line by design: the section parser scans for `{ "workload": "`
    // entries, which this must never resemble.
    let _ = writeln!(
        json,
        "  \"server\": {{ \"scale\": \"tiny\", \"cells\": {}, \"direct_ms\": {:.1}, \
         \"server_ms\": {:.1}, \"repeat_ms\": {:.1}, \"cells_per_sec_direct\": {:.1}, \
         \"cells_per_sec_server\": {:.1}, \"overhead_fraction\": {:.4}, \
         \"golden_hits_delta\": {} }},",
        server.cells,
        server.direct_ms,
        server.server_ms,
        server.repeat_ms,
        server.cells_per_sec_direct(),
        server.cells_per_sec_server(),
        server.overhead_fraction(),
        server.golden_hits_delta
    );
    json.push_str("  \"sections\": {\n");
    render_section(&mut json, "smoke", &smoke, full.is_none());
    if let Some(full) = &full {
        render_section(&mut json, "full", full, true);
    }
    json.push_str("  }\n}\n");

    for s in [Some(&smoke), full.as_ref()].into_iter().flatten() {
        eprintln!("-- {} scale --", s.scale_label);
        for w in &s.workloads {
            eprintln!(
                "{:<10} {:>9} blocks  {:>8.1} ms  {:>12.0} blocks/s",
                w.workload,
                w.sim_blocks,
                w.wall_ms,
                w.blocks_per_sec()
            );
        }
        for b in &s.backends {
            eprintln!(
                "backend {:<8} {:>9} blocks  {:>8.1} ms  {:>12.0} blocks/s  \
                 flips {} retries {} degraded {}",
                b.backend,
                b.sim_blocks,
                b.wall_ms,
                b.blocks_per_sec(),
                b.injected_bit_flips,
                b.retries,
                b.degraded_lines
            );
        }
        for l in &s.layouts {
            eprintln!(
                "layout {:<11} {:>2} workloads {:>9} blocks  {:>8.1} ms  {:>12.0} blocks/s  \
                 compressible {:.1}% ({}/{})  mean err {:.4}",
                l.layout,
                l.workloads,
                l.sim_blocks,
                l.wall_ms,
                l.blocks_per_sec(),
                100.0 * l.compressible_fraction(),
                l.compressible_blocks,
                l.approx_blocks,
                l.mean_output_error()
            );
        }
        for d in &s.designs {
            eprintln!(
                "design {:<10} {:>9} blocks  {:>8.1} ms  {:>12.0} blocks/s  \
                 memo hits {} served {} elided {}",
                d.design,
                d.sim_blocks,
                d.wall_ms,
                d.blocks_per_sec(),
                d.memo_hits,
                d.memo_served,
                d.memo_elided
            );
        }
        let sw = &s.sweep;
        eprintln!(
            "table4 sweep: 1 thread {:.0} ms, {} threads {:.0} ms, speedup {:.2}x",
            sw.single_thread_ms,
            sw.pool_threads,
            sw.pooled_ms,
            sw.single_thread_ms / sw.pooled_ms.max(1e-9)
        );
        let sc = &s.scaling;
        let base_ms = sc.points[0].wall_ms;
        let curve: Vec<String> = sc
            .points
            .iter()
            .map(|p| format!("{}T {:.0} ms ({:.2}x)", p.threads, p.wall_ms, base_ms / p.wall_ms))
            .collect();
        eprintln!(
            "scaling ({} jobs, host width {}): {}",
            sc.grid_jobs,
            host_width,
            curve.join("  ")
        );
    }

    eprintln!(
        "server loopback: {} cells  direct {:.0} ms ({:.1} cells/s)  server {:.0} ms \
         ({:.1} cells/s)  repeat {:.0} ms  overhead {:+.1}%  golden hits on repeat: {}",
        server.cells,
        server.direct_ms,
        server.cells_per_sec_direct(),
        server.server_ms,
        server.cells_per_sec_server(),
        server.repeat_ms,
        server.overhead_fraction() * 100.0,
        server.golden_hits_delta
    );

    std::fs::write(&out_path, &json).expect("write trajectory file");
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = parse_baseline(&text, "smoke");
        if baseline.is_empty() {
            eprintln!("error: no smoke-section workloads found in {baseline_path}");
            std::process::exit(1);
        }
        // Pair current and baseline workloads by name. Workload-set drift
        // (a PR adding or retiring a workload without regenerating the
        // committed trajectory) means the baseline no longer describes the
        // suite: that is a hard failure, not a warning — regenerate and
        // commit the next BENCH_PRn.json. A baseline of 0 blocks/s is a
        // corrupt trajectory file, not a slow host — fail loudly instead
        // of dividing by it.
        let mut drifted = false;
        let mut ratios: Vec<(String, f64, f64)> = Vec::new(); // (name, base, raw ratio)
        for (name, base_bps) in &baseline {
            match smoke.workloads.iter().find(|w| w.workload == *name) {
                Some(cur) => {
                    if *base_bps <= 0.0 {
                        eprintln!(
                            "GATE: baseline {name} records {base_bps} blocks/s — corrupt \
                             baseline file ({baseline_path})"
                        );
                        std::process::exit(1);
                    }
                    ratios.push((name.clone(), *base_bps, cur.blocks_per_sec() / base_bps))
                }
                None => {
                    eprintln!(
                        "GATE: FAIL — baseline workload {name} is absent from this run; \
                         retiring a workload requires committing a regenerated BENCH_PRn.json"
                    );
                    drifted = true;
                }
            }
        }
        for w in &smoke.workloads {
            if !baseline.iter().any(|(name, _)| name == w.workload) {
                eprintln!(
                    "GATE: FAIL — workload {} is not in the baseline; adding a workload \
                     requires committing a regenerated BENCH_PRn.json",
                    w.workload
                );
                drifted = true;
            }
        }
        // The backend axis is part of the committed record: the set of
        // error-model backends must match the baseline exactly.
        let base_backends = parse_baseline_by(&text, "smoke", "backend");
        for (name, _) in &base_backends {
            if !smoke.backends.iter().any(|b| b.backend == *name) {
                eprintln!(
                    "GATE: FAIL — baseline backend {name} is absent from this run; \
                     retiring a backend requires committing a regenerated BENCH_PRn.json"
                );
                drifted = true;
            }
        }
        for b in &smoke.backends {
            if !base_backends.iter().any(|(name, _)| name == b.backend) {
                eprintln!(
                    "GATE: FAIL — backend {} is not in the baseline; adding a backend \
                     requires committing a regenerated BENCH_PRn.json",
                    b.backend
                );
                drifted = true;
            }
        }
        // So is the layout axis: the smoke gate must keep exercising the
        // non-default layouts, so the measured layout set must match the
        // baseline's exactly.
        let base_layouts = parse_baseline_by(&text, "smoke", "layout");
        for (name, _) in &base_layouts {
            if !smoke.layouts.iter().any(|l| l.layout == *name) {
                eprintln!(
                    "GATE: FAIL — baseline layout {name} is absent from this run; \
                     retiring a layout requires committing a regenerated BENCH_PRn.json"
                );
                drifted = true;
            }
        }
        for l in &smoke.layouts {
            if !base_layouts.iter().any(|(name, _)| name == l.layout) {
                eprintln!(
                    "GATE: FAIL — layout {} is not in the baseline; adding a layout \
                     requires committing a regenerated BENCH_PRn.json",
                    l.layout
                );
                drifted = true;
            }
        }
        // And the design axis (PR 10): the set of designs the policy
        // layer constructs must match the baseline exactly, so adding a
        // design (a new `DesignPolicy`) or retiring one always comes with
        // a regenerated trajectory file.
        let base_designs = parse_baseline_by(&text, "smoke", "design");
        for (name, _) in &base_designs {
            if !smoke.designs.iter().any(|d| d.design == *name) {
                eprintln!(
                    "GATE: FAIL — baseline design {name} is absent from this run; \
                     retiring a design requires committing a regenerated BENCH_PRn.json"
                );
                drifted = true;
            }
        }
        for d in &smoke.designs {
            if !base_designs.iter().any(|(name, _)| name == d.design) {
                eprintln!(
                    "GATE: FAIL — design {} is not in the baseline; adding a design \
                     requires committing a regenerated BENCH_PRn.json",
                    d.design
                );
                drifted = true;
            }
        }
        if drifted {
            eprintln!("GATE: workload/backend/layout/design set drift vs {baseline_path}");
            std::process::exit(1);
        }
        if ratios.is_empty() {
            eprintln!("GATE: no baseline workload matches this run's suite");
            std::process::exit(1);
        }
        let mut sorted: Vec<f64> = ratios.iter().map(|r| r.2).collect();
        sorted.sort_by(f64::total_cmp);
        let machine_speed = sorted[sorted.len() / 2];
        eprintln!("GATE: machine-speed factor vs baseline host: {machine_speed:.2}x (median)");
        if machine_speed < GATE_FRACTION {
            eprintln!(
                "GATE: WARNING — this host runs the whole suite {:.0} % slower than the \
                 baseline host; uniform drift is not gated, only per-workload deltas",
                (1.0 - machine_speed) * 100.0
            );
        }
        let mut failed = false;
        for (name, base_bps, raw) in &ratios {
            let calibrated = raw / machine_speed;
            let verdict = if calibrated < GATE_FRACTION { "REGRESSED" } else { "ok" };
            eprintln!(
                "GATE {name:<10} baseline {base_bps:>12.0}  raw {raw:>5.2}  calibrated \
                 {calibrated:>5.2}  {verdict}"
            );
            failed |= calibrated < GATE_FRACTION;
        }
        if failed {
            eprintln!(
                "GATE: a workload's blocks/s regressed more than {:.0} % beyond the \
                 fleet median",
                (1.0 - GATE_FRACTION) * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("GATE: all workloads within the {:.0} % budget", (1.0 - GATE_FRACTION) * 100.0);

        // Width provenance: a raw speedup comparison across hosts with
        // different hardware widths is meaningless — say so loudly, every
        // time, so the PR-2 "1-thread container → speedup ≈ 1×" ambiguity
        // can never silently recur.
        match parse_host_width(&text) {
            Some(bw) if bw != host_width => eprintln!(
                "GATE: WARNING — baseline {baseline_path} was recorded at \
                 available_parallelism={bw} but this host has {host_width}; pooled-speedup \
                 numbers are NOT comparable across host widths (only the current-host scaling \
                 gate below is meaningful)"
            ),
            Some(bw) => eprintln!("GATE: host width matches baseline ({bw} hardware threads)"),
            None => eprintln!(
                "GATE: WARNING — baseline {baseline_path} predates host-width provenance; \
                 its sweep speedups cannot be attributed to the engine or the recording host"
            ),
        }
        // Current-host scaling gate: on any multi-core host, a pooled
        // sweep that loses to single-thread is an engine regression, full
        // stop — the exact class of failure the 0.94–0.97× trajectory
        // entries could not flag.
        let sweep_speedup = smoke.sweep.single_thread_ms / smoke.sweep.pooled_ms.max(1e-9);
        if host_width >= 2 {
            if sweep_speedup < SCALING_GATE {
                eprintln!(
                    "GATE: FAIL — Table 4 sweep pooled speedup {sweep_speedup:.2}x < \
                     {SCALING_GATE:.2}x on a {host_width}-thread host ({} threads pooled): the \
                     parallel engine is slower than single-thread",
                    smoke.sweep.pool_threads
                );
                std::process::exit(1);
            }
            eprintln!(
                "GATE: pooled sweep speedup {sweep_speedup:.2}x on {host_width} hardware \
                 threads — ok"
            );
        } else {
            eprintln!(
                "GATE: single-hardware-thread host — pooled speedup {sweep_speedup:.2}x \
                 recorded, scaling gate skipped (needs >= 2 cores)"
            );
        }
    }
}
