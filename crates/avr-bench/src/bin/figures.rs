//! Regenerate every table and figure of the paper's evaluation in one run.
//!
//! ```text
//! cargo run -p avr-bench --release --bin figures            # tiny scale
//! AVR_SCALE=bench cargo run -p avr-bench --release --bin figures
//! ```
//!
//! The output of the `bench` scale is what EXPERIMENTS.md records.

use avr_bench::{
    fig09, fig10, fig11, fig12, fig13, fig14, fig15, scale_from_env, scale_label, table3, table4,
    Sweep,
};
use avr_core::{DesignKind, OverheadReport, SystemConfig};

fn main() {
    let scale = scale_from_env();
    let pool = avr_core::SimPool::from_env();
    eprintln!(
        "running full sweep at {} scale (9 benchmarks x 5 designs, {} pool threads)...",
        scale_label(scale),
        pool.threads()
    );
    let t0 = std::time::Instant::now();
    let sweep = Sweep::run_on(&pool, scale, &DesignKind::ALL);
    eprintln!("sweep done in {:.1}s", t0.elapsed().as_secs_f64());

    print!("{}", table3(&sweep));
    print!("{}", table4(&sweep));
    print!("{}", fig09(&sweep));
    print!("{}", fig10(&sweep));
    print!("{}", fig11(&sweep));
    print!("{}", fig12(&sweep));
    print!("{}", fig13(&sweep));
    print!("{}", fig14(&sweep));
    print!("{}", fig15(&sweep));

    println!("\n=== §4.2 Hardware overhead ===");
    print!("{}", OverheadReport::for_config(&SystemConfig::paper()).render());

    println!("=== §4.3 LLC capacity devoted to compressed blocks ===");
    for b in avr_bench::BENCH_ORDER {
        let m = sweep.get(b, DesignKind::Avr);
        println!("{b:<10} {:>5.1} %", m.llc_cms_fraction * 100.0);
    }
}
