//! Benchmark-harness support: the (benchmark × design) sweep that every
//! table and figure is derived from, plus the text renderers that print
//! them in the paper's format.
//!
//! Scales:
//! * `tiny`  — smoke scale, the default for `cargo bench` (so the whole
//!   workspace bench suite stays minutes, not hours);
//! * `bench` — the EXPERIMENTS.md scale with paper-like footprint:LLC
//!   ratios; select with `AVR_SCALE=bench`.

use avr_core::{DesignKind, SimPool, SystemConfig};
use avr_sim::stats::geomean;
use avr_sim::RunMetrics;
use avr_workloads::{run_suite_on_pool, BenchScale};
use std::collections::HashMap;

pub mod codec_kernels;
pub mod render;

pub use render::*;

/// Benchmark names in figure order: the paper's seven, then the two
/// extension workloads. `particles` (the layout axis's mixed-criticality
/// workload) rides every sweep but stays out of the paper-format figures,
/// which reproduce the published nine-column layout.
pub const BENCH_ORDER: [&str; 9] =
    ["heat", "lattice", "lbm", "orbit", "kmeans", "bscholes", "wrf", "sobel", "fft"];

/// Resolve the scale from `AVR_SCALE` (tiny | bench).
pub fn scale_from_env() -> BenchScale {
    match std::env::var("AVR_SCALE").as_deref() {
        Ok("bench") => BenchScale::Bench,
        _ => BenchScale::Tiny,
    }
}

/// Human label for a scale.
pub fn scale_label(scale: BenchScale) -> &'static str {
    match scale {
        BenchScale::Tiny => "tiny",
        BenchScale::Bench => "bench",
    }
}

/// The system configuration used for figure regeneration: one core with
/// its per-core share of the paper's hierarchy (DESIGN.md §3). The tiny
/// smoke scale pairs with the proportionally tiny hierarchy so that
/// footprints still exceed the LLC and the AVR machinery activates.
pub fn figure_config_for(scale: BenchScale) -> SystemConfig {
    match scale {
        BenchScale::Tiny => SystemConfig::tiny(),
        BenchScale::Bench => SystemConfig::per_core_scaled(),
    }
}

/// Results of a sweep, keyed by (benchmark, design label).
pub struct Sweep {
    pub runs: HashMap<(String, &'static str), RunMetrics>,
    pub designs: Vec<DesignKind>,
}

impl Sweep {
    /// Run `designs` × the full suite at `scale` on an environment-sized
    /// pool (each run is an independent single-threaded simulation).
    pub fn run(scale: BenchScale, designs: &[DesignKind]) -> Sweep {
        Sweep::run_on(&SimPool::from_env(), scale, designs)
    }

    /// Run the (workload × design) grid on `pool`. Results are
    /// bit-identical for any pool width.
    pub fn run_on(pool: &SimPool, scale: BenchScale, designs: &[DesignKind]) -> Sweep {
        let cfg = figure_config_for(scale);
        let runs = run_suite_on_pool(pool, scale, &cfg, designs)
            .into_iter()
            .map(|c| ((c.workload.to_string(), c.design.label()), c.metrics))
            .collect();
        Sweep { runs, designs: designs.to_vec() }
    }

    pub fn get(&self, bench: &str, design: DesignKind) -> &RunMetrics {
        self.runs
            .get(&(bench.to_string(), design.label()))
            .unwrap_or_else(|| panic!("missing run ({bench}, {})", design.label()))
    }

    pub fn baseline(&self, bench: &str) -> &RunMetrics {
        self.get(bench, DesignKind::Baseline)
    }

    /// Normalized metric per benchmark for one design, plus the geomean —
    /// one figure row.
    pub fn normalized_row(
        &self,
        design: DesignKind,
        metric: impl Fn(&RunMetrics, &RunMetrics) -> f64,
    ) -> (Vec<f64>, f64) {
        let vals: Vec<f64> =
            BENCH_ORDER.iter().map(|b| metric(self.get(b, design), self.baseline(b))).collect();
        let gm = geomean(&vals);
        (vals, gm)
    }
}

/// The four comparison designs the figures plot (baseline is the
/// normalization target).
pub const FIGURE_DESIGNS: [DesignKind; 4] =
    [DesignKind::Doppelganger, DesignKind::Truncate, DesignKind::ZeroAvr, DesignKind::Avr];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_all_cells_at_tiny_scale() {
        let sweep = Sweep::run(BenchScale::Tiny, &[DesignKind::Baseline, DesignKind::Avr]);
        // Ten workloads (BENCH_ORDER's nine + particles) x two designs.
        assert_eq!(sweep.runs.len(), 20);
        for b in BENCH_ORDER {
            let base = sweep.baseline(b);
            assert!(base.cycles > 0, "{b} baseline must have run");
            let avr = sweep.get(b, DesignKind::Avr);
            assert!(avr.cycles > 0);
        }
    }

    #[test]
    fn normalized_rows_have_nine_entries() {
        let sweep = Sweep::run(BenchScale::Tiny, &[DesignKind::Baseline, DesignKind::Avr]);
        let (vals, gm) = sweep.normalized_row(DesignKind::Avr, |m, b| m.exec_time_norm(b));
        assert_eq!(vals.len(), 9);
        assert!(gm > 0.0);
    }
}
