//! Text renderers: each function prints one of the paper's tables/figures
//! from a [`Sweep`], in the same row/series structure the paper uses.

use crate::{Sweep, BENCH_ORDER, FIGURE_DESIGNS};
use avr_core::DesignKind;
use avr_sim::RunMetrics;

fn header(title: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!("\n=== {title} ===\n"));
    s.push_str(&format!("{:<10}", ""));
    for b in BENCH_ORDER {
        s.push_str(&format!("{b:>10}"));
    }
    s.push_str(&format!("{:>10}\n", "geomean"));
    s
}

fn norm_figure(
    sweep: &Sweep,
    title: &str,
    metric: impl Fn(&RunMetrics, &RunMetrics) -> f64,
) -> String {
    let mut s = header(title);
    for design in FIGURE_DESIGNS {
        if !sweep.designs.contains(&design) {
            continue;
        }
        let (vals, gm) = sweep.normalized_row(design, &metric);
        s.push_str(&format!("{:<10}", design.label()));
        for v in vals {
            s.push_str(&format!("{v:>10.3}"));
        }
        s.push_str(&format!("{gm:>10.3}\n"));
    }
    s
}

/// Table 3: application output error (percent). The paper's three lossy
/// designs plus the memoization family (baseline and ZeroAVR are exact by
/// construction and stay out of the table).
pub fn table3(sweep: &Sweep) -> String {
    let mut s = header("Table 3: Application output error (%)");
    for design in [
        DesignKind::Doppelganger,
        DesignKind::Truncate,
        DesignKind::Avr,
        DesignKind::MemoIn,
        DesignKind::MemoOut,
    ] {
        if !sweep.designs.contains(&design) {
            continue;
        }
        s.push_str(&format!("{:<10}", design.label()));
        for b in BENCH_ORDER {
            let e = sweep.get(b, design).output_error * 100.0;
            if e > 100.0 {
                s.push_str(&format!("{:>10}", ">100%"));
            } else {
                s.push_str(&format!("{e:>9.2}%"));
            }
        }
        s.push('\n');
    }
    s
}

/// Table 4: AVR compression ratio and memory footprint.
pub fn table4(sweep: &Sweep) -> String {
    let mut s = header("Table 4: AVR compression ratio and footprint vs baseline");
    s.push_str(&format!("{:<10}", "ratio"));
    for b in BENCH_ORDER {
        s.push_str(&format!("{:>9.1}x", sweep.get(b, DesignKind::Avr).compression_ratio));
    }
    s.push('\n');
    s.push_str(&format!("{:<10}", "footprint"));
    for b in BENCH_ORDER {
        let f = sweep.get(b, DesignKind::Avr).footprint_fraction * 100.0;
        s.push_str(&format!("{f:>9.1}%"));
    }
    s.push('\n');
    s
}

/// Figure 9: normalized execution time.
pub fn fig09(sweep: &Sweep) -> String {
    norm_figure(sweep, "Figure 9: Execution time (norm. to baseline)", |m, b| m.exec_time_norm(b))
}

/// Figure 10: normalized energy with the component stack.
pub fn fig10(sweep: &Sweep) -> String {
    let mut s = header("Figure 10: System energy (norm. to baseline)");
    for design in FIGURE_DESIGNS {
        if !sweep.designs.contains(&design) {
            continue;
        }
        let (vals, gm) = sweep.normalized_row(design, |m, b| m.energy_norm(b));
        s.push_str(&format!("{:<10}", design.label()));
        for v in vals {
            s.push_str(&format!("{v:>10.3}"));
        }
        s.push_str(&format!("{gm:>10.3}\n"));
    }
    // The component stacks for AVR (the paper plots all designs; AVR's is
    // the informative one).
    s.push_str("\nAVR energy stack (fraction of baseline total):\n");
    s.push_str(&format!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "", "core", "l1+l2", "llc", "dram", "compr"
    ));
    for b in BENCH_ORDER {
        let base_total = sweep.baseline(b).energy.total();
        let e = sweep.get(b, DesignKind::Avr).energy.normalized_to(base_total);
        s.push_str(&format!(
            "{b:<10}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}\n",
            e.core, e.l1l2, e.llc, e.dram, e.compressor
        ));
    }
    s
}

/// Figure 11: normalized memory traffic with the approx/non-approx split.
pub fn fig11(sweep: &Sweep) -> String {
    let mut s = norm_figure(sweep, "Figure 11: Memory traffic (norm. to baseline)", |m, b| {
        m.traffic_norm(b)
    });
    s.push_str("\nAVR traffic split (fraction of baseline total):\n");
    s.push_str(&format!("{:<10}{:>12}{:>12}\n", "", "approx", "non-approx"));
    for b in BENCH_ORDER {
        let base = sweep.baseline(b).counters.traffic.total().max(1) as f64;
        let t = sweep.get(b, DesignKind::Avr).counters.traffic;
        s.push_str(&format!(
            "{b:<10}{:>12.3}{:>12.3}\n",
            t.approx() as f64 / base,
            t.nonapprox() as f64 / base
        ));
    }
    s
}

/// Figure 12: normalized average memory access time.
pub fn fig12(sweep: &Sweep) -> String {
    norm_figure(sweep, "Figure 12: AMAT (norm. to baseline)", |m, b| m.amat_norm(b))
}

/// Figure 13: normalized LLC MPKI.
pub fn fig13(sweep: &Sweep) -> String {
    norm_figure(sweep, "Figure 13: LLC MPKI (norm. to baseline)", |m, b| m.mpki_norm(b))
}

/// Figure 14: AVR LLC request breakdown on approximate cachelines.
pub fn fig14(sweep: &Sweep) -> String {
    let mut s = String::from("\n=== Figure 14: AVR LLC requests on approximate cachelines ===\n");
    s.push_str(&format!(
        "{:<10}{:>10}{:>14}{:>10}{:>14}\n",
        "", "miss%", "uncompr.hit%", "dbuf%", "compr.hit%"
    ));
    for b in BENCH_ORDER.iter().rev() {
        let r = sweep.get(b, DesignKind::Avr).counters.approx_requests;
        let sh = r.shares();
        s.push_str(&format!(
            "{b:<10}{:>10.1}{:>14.1}{:>10.1}{:>14.1}\n",
            sh[0] * 100.0,
            sh[1] * 100.0,
            sh[2] * 100.0,
            sh[3] * 100.0
        ));
    }
    s.push_str("\n§4.3 extras:\n");
    for b in BENCH_ORDER {
        let c = &sweep.get(b, DesignKind::Avr).counters;
        s.push_str(&format!(
            "{b:<10} avg compressed-hit latency {:>6.1} cy, block reuse {:>5.1} lines\n",
            c.avg_compressed_hit_latency(),
            c.avg_block_reuse()
        ));
    }
    s
}

/// Figure 15: AVR LLC eviction breakdown of approximate cachelines.
pub fn fig15(sweep: &Sweep) -> String {
    let mut s = String::from("\n=== Figure 15: AVR LLC evictions of approximate cachelines ===\n");
    s.push_str(&format!(
        "{:<10}{:>12}{:>10}{:>18}{:>14}\n",
        "", "recompr.%", "lazy%", "fetch+recompr.%", "uncompr.wb%"
    ));
    for b in BENCH_ORDER.iter().rev() {
        let e = sweep.get(b, DesignKind::Avr).counters.evictions;
        let sh = e.shares();
        s.push_str(&format!(
            "{b:<10}{:>12.1}{:>10.1}{:>18.1}{:>14.1}\n",
            sh[0] * 100.0,
            sh[1] * 100.0,
            sh[2] * 100.0,
            sh[3] * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_workloads::BenchScale;

    fn mini_sweep() -> Sweep {
        Sweep::run(BenchScale::Tiny, &DesignKind::ALL)
    }

    #[test]
    fn all_renderers_produce_rows_for_every_benchmark() {
        let s = mini_sweep();
        for text in [
            table3(&s),
            table4(&s),
            fig09(&s),
            fig10(&s),
            fig11(&s),
            fig12(&s),
            fig13(&s),
            fig14(&s),
            fig15(&s),
        ] {
            for b in BENCH_ORDER {
                assert!(text.contains(b), "missing {b} in:\n{text}");
            }
        }
    }

    #[test]
    fn table3_has_lossy_design_rows() {
        let s = mini_sweep();
        let t = table3(&s);
        assert!(t.contains("dganger"));
        assert!(t.contains("truncate"));
        assert!(t.contains("AVR"));
        assert!(t.contains("memoin"));
        assert!(t.contains("memoout"));
        assert!(!t.contains("ZeroAVR"), "ZeroAVR is not part of Table 3");
    }
}
