//! The codec microbenchmark kernels, shared by the `codec_kernels`
//! criterion bench and the `bench_codec` JSON emitter so both measure the
//! same blocks.

use avr_types::BlockData;

/// A smooth 16×16 "temperature field" block — the best case: both layout
/// variants evaluate fully, zero outliers.
pub fn smooth_block() -> BlockData {
    let mut b = BlockData::default();
    for (i, w) in b.words.iter_mut().enumerate() {
        let (r, c) = ((i / 16) as f32, (i % 16) as f32);
        *w = (250.0 + 0.8 * r + 0.4 * c).to_bits();
    }
    b
}

/// The smooth field with large negative spikes every 32 values — a block
/// that still compresses but forces outlier selection and compaction.
/// (Denser spikes — the seed bench used every 11th — push the block past
/// the 8-line cap and silently measure the failure path instead.)
pub fn spiky_block() -> BlockData {
    let mut b = smooth_block();
    for i in (0..256).step_by(32) {
        b.words[i] = (-1.0e9f32).to_bits();
    }
    b
}

/// White noise — incompressible; exercises the early-abort path.
pub fn noise_block() -> BlockData {
    let mut b = BlockData::default();
    let mut state = 0xACE1u32;
    for w in b.words.iter_mut() {
        state = state.wrapping_mul(48271) % 0x7FFF_FFFF;
        *w = (state as f32).to_bits();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_compress::{compress, CompressFailure, Thresholds};
    use avr_types::DataType;

    #[test]
    fn kernels_exercise_the_intended_paths() {
        let th = Thresholds::paper_default();
        let smooth = compress(&smooth_block(), DataType::F32, &th, 8).unwrap();
        assert!(
            smooth.outlier_count <= 8,
            "smooth kernel must stay nearly outlier-free (corner clamping \
             may flag a few): {}",
            smooth.outlier_count
        );
        let spiky = compress(&spiky_block(), DataType::F32, &th, 8).unwrap();
        assert!(spiky.outlier_count >= 8, "spiky kernel must keep its spikes exact");
        let noise = compress(&noise_block(), DataType::F32, &th, 8);
        assert!(
            matches!(noise, Err(CompressFailure::TooManyOutliers { .. })),
            "noise kernel must be incompressible: {noise:?}"
        );
    }
}
