//! Ablation study of the AVR design choices DESIGN.md calls out: lazy
//! evictions (§3.1), the DBUF (§3.3), the compression-failure backoff
//! (§3.2), and storing compressed blocks in the LLC (§3.4). Each knob is
//! disabled in isolation and the damage measured on two contrasting
//! benchmarks (lattice and lbm, the most mechanism-sensitive workloads).
//!
//! Not a paper figure — it quantifies the contribution of each mechanism
//! the paper's Conclusions enumerate. Scale via AVR_SCALE=tiny|bench.

use avr_bench::{figure_config_for, scale_from_env};
use avr_core::DesignKind;
use avr_types::SystemConfig;
use avr_workloads::{all_benchmarks, run_on_design};
use criterion::{criterion_group, criterion_main, Criterion};

fn knob_variants(base: &SystemConfig) -> Vec<(&'static str, SystemConfig)> {
    let mut v = vec![("full AVR", base.clone())];
    let mut c = base.clone();
    c.avr.enable_lazy = false;
    v.push(("no lazy evictions", c));
    let mut c = base.clone();
    c.avr.enable_dbuf = false;
    v.push(("no DBUF", c));
    let mut c = base.clone();
    c.avr.enable_skip_history = false;
    v.push(("no skip history", c));
    let mut c = base.clone();
    c.avr.store_cms_in_llc = false;
    v.push(("no CMS in LLC", c));
    let mut c = base.clone();
    c.avr.pfe_threshold = 1.0; // prefetch only fully-requested blocks = never anything left
    v.push(("no PFE", c));
    v
}

fn regenerate_and_bench(c: &mut Criterion) {
    let scale = scale_from_env();
    let cfg = figure_config_for(scale);
    let suite = all_benchmarks(scale);

    println!("\n=== Ablation: AVR mechanisms disabled one at a time ===");
    for bench_name in ["lattice", "lbm"] {
        let w = suite.iter().find(|w| w.name() == bench_name).expect("in suite");
        let base = run_on_design(w.as_ref(), &cfg, DesignKind::Baseline);
        println!("\n{bench_name}:");
        println!(
            "{:<22}{:>12}{:>12}{:>12}{:>12}",
            "variant", "exec norm", "traffic", "error %", "MPKI norm"
        );
        for (label, vcfg) in knob_variants(&cfg) {
            let m = run_on_design(w.as_ref(), &vcfg, DesignKind::Avr);
            println!(
                "{label:<22}{:>12.3}{:>12.3}{:>12.3}{:>12.3}",
                m.exec_time_norm(&base),
                m.traffic_norm(&base),
                m.output_error * 100.0,
                m.mpki_norm(&base),
            );
        }
    }

    // Criterion target: the end-to-end simulation rate of the smallest
    // benchmark × AVR cell.
    let w = suite.iter().find(|w| w.name() == "bscholes").expect("bscholes");
    c.bench_function("ablation_reference_run", |b| {
        b.iter(|| run_on_design(w.as_ref(), &cfg, DesignKind::Avr).cycles)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
