//! Regenerates Figure 13 (normalized LLC MPKI) when run under `cargo bench` (prints the rows the
//! paper reports), then times a representative kernel so Criterion has a
//! stable measurement target. Scale via AVR_SCALE=tiny|bench; pool width via AVR_THREADS.

use avr_bench::*;
use avr_core::DesignKind;
use criterion::{criterion_group, criterion_main, Criterion};

fn regenerate_and_bench(c: &mut Criterion) {
    // The grid runs on the shared SimPool engine (pool width from
    // AVR_THREADS, default = available cores).
    let sweep = Sweep::run_on(
        &avr_core::SimPool::from_env(),
        scale_from_env(),
        &[
            DesignKind::Baseline,
            DesignKind::Doppelganger,
            DesignKind::Truncate,
            DesignKind::ZeroAvr,
            DesignKind::Avr,
        ],
    );
    print!("{}", fig13(&sweep));
    // Representative kernel: one block through the codec.
    let mut block = avr_types::BlockData::default();
    for (i, w) in block.words.iter_mut().enumerate() {
        *w = (100.0f32 + i as f32 * 0.01).to_bits();
    }
    let th = avr_compress::Thresholds::paper_default();
    c.bench_function("fig13_codec_roundtrip", |b| {
        b.iter(|| {
            let o = avr_compress::compress(
                std::hint::black_box(&block),
                avr_types::DataType::F32,
                &th,
                8,
            )
            .unwrap();
            std::hint::black_box(avr_compress::decompress(&o.compressed))
        })
    });
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
