//! Microbenchmarks of the AVR hardware pipeline stages — the throughput of
//! the simulated compressor/decompressor module itself (not a paper
//! figure, but the performance backbone of the whole simulation).
//!
//! Each kernel is measured twice: `reference_*` runs the retained
//! pre-refactor per-stage implementation
//! ([`avr_compress::reference::compress_reference`]), `fused_*` runs the
//! production fused path through a reusing [`Compressor`]. The two are
//! bit-identical (property-tested); the ratio is the PR's tracked speedup.
//! `avr-bench`'s `bench_codec` binary emits the same comparison as a
//! machine-readable `BENCH_*.json` trajectory file.

use avr_bench::codec_kernels::{noise_block, smooth_block, spiky_block};
use avr_compress::{compress_reference, decompress, Compressor, Thresholds};
use avr_types::DataType;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn codec_benches(c: &mut Criterion) {
    let th = Thresholds::paper_default();
    let mut comp = Compressor::new(th, 8);

    let kernels = [
        ("smooth_block", smooth_block()),
        ("spiky_block", spiky_block()),
        ("noise_block", noise_block()),
    ];

    for (name, block) in &kernels {
        c.bench_function(&format!("reference_compress_{name}"), |b| {
            b.iter(|| {
                compress_reference(std::hint::black_box(block), DataType::F32, &th, 8).is_ok()
            })
        });
        c.bench_function(&format!("fused_compress_{name}"), |b| {
            b.iter(|| comp.compress(std::hint::black_box(block), DataType::F32).is_ok())
        });
    }

    let compressed = comp.compress(&smooth_block(), DataType::F32).unwrap().compressed;
    c.bench_function("decompress_block", |b| {
        b.iter(|| decompress(std::hint::black_box(&compressed)))
    });

    c.bench_function("bias_selection", |b| {
        b.iter_batched(
            || smooth_block().words,
            |words| avr_compress::choose_bias(std::hint::black_box(&words)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, codec_benches);
criterion_main!(benches);
