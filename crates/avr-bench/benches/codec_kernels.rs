//! Microbenchmarks of the AVR hardware pipeline stages — the throughput of
//! the simulated compressor/decompressor module itself (not a paper
//! figure, but the performance backbone of the whole simulation).

use avr_compress::{compress, decompress, Thresholds};
use avr_types::{BlockData, DataType};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn smooth_block() -> BlockData {
    let mut b = BlockData::default();
    for (i, w) in b.words.iter_mut().enumerate() {
        let (r, c) = ((i / 16) as f32, (i % 16) as f32);
        *w = (250.0 + 0.8 * r + 0.4 * c).to_bits();
    }
    b
}

fn spiky_block() -> BlockData {
    let mut b = smooth_block();
    for i in (0..256).step_by(11) {
        b.words[i] = (-1.0e9f32).to_bits();
    }
    b
}

fn noise_block() -> BlockData {
    let mut b = BlockData::default();
    let mut state = 0xACE1u32;
    for w in b.words.iter_mut() {
        state = state.wrapping_mul(48271) % 0x7FFF_FFFF;
        *w = (state as f32).to_bits();
    }
    b
}

fn codec_benches(c: &mut Criterion) {
    let th = Thresholds::paper_default();

    let smooth = smooth_block();
    c.bench_function("compress_smooth_block", |b| {
        b.iter(|| compress(std::hint::black_box(&smooth), DataType::F32, &th, 8).unwrap())
    });

    let spiky = spiky_block();
    c.bench_function("compress_block_with_outliers", |b| {
        b.iter(|| compress(std::hint::black_box(&spiky), DataType::F32, &th, 8))
    });

    let noise = noise_block();
    c.bench_function("compress_incompressible_block", |b| {
        b.iter(|| compress(std::hint::black_box(&noise), DataType::F32, &th, 8).is_err())
    });

    let compressed = compress(&smooth, DataType::F32, &th, 8).unwrap().compressed;
    c.bench_function("decompress_block", |b| {
        b.iter(|| decompress(std::hint::black_box(&compressed)))
    });

    c.bench_function("bias_selection", |b| {
        b.iter_batched(
            || smooth.words,
            |words| avr_compress::choose_bias(std::hint::black_box(&words)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, codec_benches);
criterion_main!(benches);
