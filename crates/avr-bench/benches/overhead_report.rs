//! Regenerates the §4.2 hardware-overhead paragraph, then times the
//! CMT-entry encode/decode pair (the only per-access hardware cost the
//! metadata path adds).

use avr_cache::cmt::CmtEntry;
use avr_core::{OverheadReport, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn regenerate_and_bench(c: &mut Criterion) {
    println!("\n=== §4.2 Hardware overhead ===");
    print!("{}", OverheadReport::for_config(&SystemConfig::paper()).render());

    let entry = CmtEntry {
        compressed: true,
        size_lines: 3,
        n_lazy: 4,
        method: 1,
        bias: -37,
        n_failed: 2,
        n_skipped: 1,
    };
    c.bench_function("cmt_entry_encode_decode", |b| {
        b.iter(|| {
            let bits = std::hint::black_box(&entry).encode();
            std::hint::black_box(CmtEntry::decode(bits))
        })
    });
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
