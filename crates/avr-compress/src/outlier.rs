//! Outlier bitmap construction and compaction (paper §3.3).
//!
//! The error-check comparators produce one outlier bit per value in a single
//! cycle; a 16-cycle pass (one per uncompressed cacheline) then selects and
//! compacts the outliers into the compressed block, in ascending block order.

use avr_types::VALUES_PER_BLOCK;

/// Bitmap words covering one block (256 bits).
pub const BITMAP_WORDS: usize = VALUES_PER_BLOCK / 64;

/// Hard format cap on outliers per block: with the full 16-line budget,
/// 64 B summary + 32 B bitmap + 4·n B outliers ≤ 1024 B ⟹ n ≤ 232.
pub const MAX_OUTLIERS: usize = (16 * 64 - 96) / 4;

/// Inline fixed-capacity outlier storage — the compress hot path never
/// touches the heap. Capacity is [`MAX_OUTLIERS`], the most a compressed
/// block can ever hold; equality and iteration see only the live prefix.
#[derive(Clone, Copy)]
pub struct OutlierVec {
    len: u16,
    buf: [u32; MAX_OUTLIERS],
}

impl OutlierVec {
    pub const fn new() -> Self {
        OutlierVec { len: 0, buf: [0; MAX_OUTLIERS] }
    }

    #[inline]
    pub fn push(&mut self, v: u32) {
        self.buf[self.len as usize] = v;
        self.len += 1;
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len as usize]
    }

    pub fn from_slice(s: &[u32]) -> Self {
        assert!(s.len() <= MAX_OUTLIERS);
        let mut o = OutlierVec::new();
        o.buf[..s.len()].copy_from_slice(s);
        o.len = s.len() as u16;
        o
    }

    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Default for OutlierVec {
    fn default() -> Self {
        OutlierVec::new()
    }
}

impl std::ops::Deref for OutlierVec {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl PartialEq for OutlierVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OutlierVec {}

impl std::fmt::Debug for OutlierVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl Extend<u32> for OutlierVec {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a> IntoIterator for &'a OutlierVec {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Build the bitmap from per-value outlier flags.
pub fn build_bitmap(flags: &[bool; VALUES_PER_BLOCK]) -> [u64; BITMAP_WORDS] {
    let mut bm = [0u64; BITMAP_WORDS];
    for (i, &f) in flags.iter().enumerate() {
        if f {
            bm[i / 64] |= 1u64 << (i % 64);
        }
    }
    bm
}

/// Select and pack the outlier words in ascending block order (reference
/// path; allocates the result).
pub fn compact_outliers(words: &[u32; VALUES_PER_BLOCK], bitmap: &[u64; BITMAP_WORDS]) -> Vec<u32> {
    let count: usize = bitmap.iter().map(|w| w.count_ones() as usize).sum();
    let mut out = Vec::with_capacity(count);
    for (i, &w) in words.iter().enumerate() {
        if (bitmap[i / 64] >> (i % 64)) & 1 == 1 {
            out.push(w);
        }
    }
    out
}

/// Allocation-free compaction: walk each bitmap word's set bits directly
/// (count-trailing-zeros) instead of testing all 256 positions.
pub fn compact_outliers_into(
    words: &[u32; VALUES_PER_BLOCK],
    bitmap: &[u64; BITMAP_WORDS],
    out: &mut OutlierVec,
) {
    out.clear();
    for (wi, &bm) in bitmap.iter().enumerate() {
        let mut rest = bm;
        while rest != 0 {
            let bit = rest.trailing_zeros() as usize;
            out.push(words[wi * 64 + bit]);
            rest &= rest - 1;
        }
    }
}

/// Scatter packed outliers back over a reconstructed block (decompressor
/// side: "the outliers are placed according to their bitmap on the buffer").
pub fn scatter_outliers(
    recon: &mut [u32; VALUES_PER_BLOCK],
    bitmap: &[u64; BITMAP_WORDS],
    outliers: &[u32],
) {
    let mut next = 0usize;
    for (i, slot) in recon.iter_mut().enumerate() {
        if (bitmap[i / 64] >> (i % 64)) & 1 == 1 {
            *slot = outliers[next];
            next += 1;
        }
    }
    debug_assert_eq!(next, outliers.len(), "bitmap popcount must equal outlier count");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_popcount_matches_flags() {
        let mut flags = [false; VALUES_PER_BLOCK];
        for i in (0..VALUES_PER_BLOCK).step_by(17) {
            flags[i] = true;
        }
        let bm = build_bitmap(&flags);
        let pop: usize = bm.iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(pop, flags.iter().filter(|&&f| f).count());
    }

    #[test]
    fn compact_then_scatter_round_trips() {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, w) in words.iter_mut().enumerate() {
            *w = i as u32 * 3 + 1;
        }
        let mut flags = [false; VALUES_PER_BLOCK];
        for i in [0, 5, 63, 64, 128, 255] {
            flags[i] = true;
        }
        let bm = build_bitmap(&flags);
        let packed = compact_outliers(&words, &bm);
        assert_eq!(packed.len(), 6);

        let mut recon = [0u32; VALUES_PER_BLOCK];
        scatter_outliers(&mut recon, &bm, &packed);
        for i in 0..VALUES_PER_BLOCK {
            if flags[i] {
                assert_eq!(recon[i], words[i]);
            } else {
                assert_eq!(recon[i], 0);
            }
        }
    }

    #[test]
    fn packing_preserves_block_order() {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, w) in words.iter_mut().enumerate() {
            *w = i as u32;
        }
        let mut flags = [false; VALUES_PER_BLOCK];
        flags[200] = true;
        flags[10] = true;
        flags[77] = true;
        let bm = build_bitmap(&flags);
        assert_eq!(compact_outliers(&words, &bm), vec![10, 77, 200]);
    }

    #[test]
    fn empty_bitmap_packs_nothing() {
        let words = [9u32; VALUES_PER_BLOCK];
        let bm = [0u64; BITMAP_WORDS];
        assert!(compact_outliers(&words, &bm).is_empty());
    }

    #[test]
    fn compact_into_matches_allocating_compact() {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, w) in words.iter_mut().enumerate() {
            *w = (i as u32).wrapping_mul(2654435761);
        }
        let mut flags = [false; VALUES_PER_BLOCK];
        for i in (0..VALUES_PER_BLOCK).step_by(3) {
            flags[i] = true;
        }
        let bm = build_bitmap(&flags);
        let reference = compact_outliers(&words, &bm);
        let mut fast = OutlierVec::new();
        compact_outliers_into(&words, &bm, &mut fast);
        assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn outlier_vec_basics() {
        let mut v = OutlierVec::new();
        assert!(v.is_empty());
        v.push(3);
        v.extend([4, 5]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.as_slice(), &[3, 4, 5]);
        assert_eq!(v, OutlierVec::from_slice(&[3, 4, 5]));
        assert_ne!(v, OutlierVec::new());
        // Equality ignores garbage past the live prefix.
        let mut w = OutlierVec::from_slice(&[3, 4, 5, 99]);
        w.clear();
        w.extend([3, 4, 5]);
        assert_eq!(v, w);
        // Capacity matches the 16-line format bound.
        assert_eq!(MAX_OUTLIERS, 232);
    }
}
