//! Outlier bitmap construction and compaction (paper §3.3).
//!
//! The error-check comparators produce one outlier bit per value in a single
//! cycle; a 16-cycle pass (one per uncompressed cacheline) then selects and
//! compacts the outliers into the compressed block, in ascending block order.

use avr_types::VALUES_PER_BLOCK;

/// Bitmap words covering one block (256 bits).
pub const BITMAP_WORDS: usize = VALUES_PER_BLOCK / 64;

/// Build the bitmap from per-value outlier flags.
pub fn build_bitmap(flags: &[bool; VALUES_PER_BLOCK]) -> [u64; BITMAP_WORDS] {
    let mut bm = [0u64; BITMAP_WORDS];
    for (i, &f) in flags.iter().enumerate() {
        if f {
            bm[i / 64] |= 1u64 << (i % 64);
        }
    }
    bm
}

/// Select and pack the outlier words in ascending block order.
pub fn compact_outliers(words: &[u32; VALUES_PER_BLOCK], bitmap: &[u64; BITMAP_WORDS]) -> Vec<u32> {
    let count: usize = bitmap.iter().map(|w| w.count_ones() as usize).sum();
    let mut out = Vec::with_capacity(count);
    for (i, &w) in words.iter().enumerate() {
        if (bitmap[i / 64] >> (i % 64)) & 1 == 1 {
            out.push(w);
        }
    }
    out
}

/// Scatter packed outliers back over a reconstructed block (decompressor
/// side: "the outliers are placed according to their bitmap on the buffer").
pub fn scatter_outliers(
    recon: &mut [u32; VALUES_PER_BLOCK],
    bitmap: &[u64; BITMAP_WORDS],
    outliers: &[u32],
) {
    let mut next = 0usize;
    for (i, slot) in recon.iter_mut().enumerate() {
        if (bitmap[i / 64] >> (i % 64)) & 1 == 1 {
            *slot = outliers[next];
            next += 1;
        }
    }
    debug_assert_eq!(next, outliers.len(), "bitmap popcount must equal outlier count");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_popcount_matches_flags() {
        let mut flags = [false; VALUES_PER_BLOCK];
        for i in (0..VALUES_PER_BLOCK).step_by(17) {
            flags[i] = true;
        }
        let bm = build_bitmap(&flags);
        let pop: usize = bm.iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(pop, flags.iter().filter(|&&f| f).count());
    }

    #[test]
    fn compact_then_scatter_round_trips() {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, w) in words.iter_mut().enumerate() {
            *w = i as u32 * 3 + 1;
        }
        let mut flags = [false; VALUES_PER_BLOCK];
        for i in [0, 5, 63, 64, 128, 255] {
            flags[i] = true;
        }
        let bm = build_bitmap(&flags);
        let packed = compact_outliers(&words, &bm);
        assert_eq!(packed.len(), 6);

        let mut recon = [0u32; VALUES_PER_BLOCK];
        scatter_outliers(&mut recon, &bm, &packed);
        for i in 0..VALUES_PER_BLOCK {
            if flags[i] {
                assert_eq!(recon[i], words[i]);
            } else {
                assert_eq!(recon[i], 0);
            }
        }
    }

    #[test]
    fn packing_preserves_block_order() {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, w) in words.iter_mut().enumerate() {
            *w = i as u32;
        }
        let mut flags = [false; VALUES_PER_BLOCK];
        flags[200] = true;
        flags[10] = true;
        flags[77] = true;
        let bm = build_bitmap(&flags);
        assert_eq!(compact_outliers(&words, &bm), vec![10, 77, 200]);
    }

    #[test]
    fn empty_bitmap_packs_nothing() {
        let words = [9u32; VALUES_PER_BLOCK];
        let bm = [0u64; BITMAP_WORDS];
        assert!(compact_outliers(&words, &bm).is_empty());
    }
}
