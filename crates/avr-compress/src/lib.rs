//! The AVR lossy codec (paper §3.3, Fig. 4–5).
//!
//! A 1 KB memory block (256 × 32-bit values) is *summarized* by downsampling
//! 16:1: the block is partitioned into sixteen 16-value sub-blocks (either a
//! linear 1-D layout or a 16×16 2-D layout split into 4×4 tiles) and each
//! sub-block is replaced by its average. Reconstruction interpolates between
//! the averages (linear / bilinear). Values whose reconstruction error exceeds
//! the per-value threshold T1 are kept exact as *outliers*, located by a
//! 256-bit bitmap. The whole pipeline runs in fixed point; floating-point
//! blocks are exponent-*biased* and converted first.
//!
//! The compressed layout (paper Fig. 2a):
//! - line 0: the 16-value summary,
//! - line 1 (first half): the outlier bitmap — present only when outliers exist,
//! - line 1 (second half) onward: the outliers, packed in block order,
//! - remaining lines: free space for lazily evicted uncompressed lines.

pub mod bias;
pub mod block;
pub mod codec;
pub mod convert;
pub mod downsample;
pub mod error;
pub mod interp;
pub mod latency;
pub mod outlier;
pub mod reference;
pub mod simd;

pub use bias::choose_bias;
pub use block::{CompressedBlock, Layout, Method, SUMMARY_VALUES};
pub use codec::{
    compress, compress_with, decompress, reconstruct, CompressFailure, CompressOutcome,
    CompressScratch, Compressor,
};
pub use error::{ErrorCheck, Thresholds};
pub use latency::Latency;
pub use outlier::{OutlierVec, MAX_OUTLIERS};
pub use reference::compress_reference;
