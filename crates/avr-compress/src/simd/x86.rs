//! Explicit x86-64 kernels: an SSE2 baseline (part of the x86-64 ISA, no
//! detection needed) and AVX2 variants (dispatched only after
//! `is_x86_feature_detected!("avx2")`). Every kernel is bit-identical to
//! its scalar twin in [`super::scalar`]; see the module docs of
//! [`crate::simd`] for why the arithmetic guarantees that and the per-arm
//! oracle in `tests/codec_properties.rs` for the enforcement.
//!
//! Numeric notes, shared by both widths:
//!
//! * `cvtps2dq`/`cvtdq2ps` use the MXCSR default rounding (round to
//!   nearest, ties to even) — exactly the scalar path's magic-constant
//!   rounding and `as f32` conversion. Rust never reprograms MXCSR.
//! * A saturating float→i32 cast is `cvtps2dq` plus one compare-xor:
//!   the instruction returns `0x8000_0000` for any out-of-range input,
//!   which is already `i32::MIN` for negative overflow; xoring with the
//!   `x ≥ 2^31` mask flips positive overflow to `i32::MAX`. NaN lanes
//!   never reach the cast (both call sites filter or preclude specials).
//! * The interpolation kernels run in f64 lanes: every intermediate of
//!   the integer lerp is ≤ 2³⁷ in magnitude, exactly representable, and
//!   power-of-two scales are exact, so `cvttpd` truncation reproduces the
//!   scalar i64 truncated division bit-for-bit (requires i32-range
//!   summaries — guaranteed by the pipeline and the dispatch wrapper).

use super::{ChunkVerdict, CHUNK};
use crate::block::SUMMARY_VALUES;
use crate::convert::{F32_SCALE_F, FRAC_BITS};
use crate::downsample::{round_avg, GRID, TILE};
use avr_types::VALUES_PER_BLOCK;
use std::arch::x86_64::*;

const N: usize = VALUES_PER_BLOCK;

/// First f32 the saturating cast clamps to `i32::MAX`.
const I32_OVERFLOW_F32: f32 = 2_147_483_648.0;
const I32_MIN_F64: f64 = i32::MIN as f64;
const I32_MAX_F64: f64 = i32::MAX as f64;

/// 1-D interpolation weights toward the right anchor (positions
/// `8+16i+k` carry `w = 2k+1`; see `interp::LUT_1D`), and their
/// complements `32 - w`, as f64 lanes.
const W1D: [f64; 16] = {
    let mut a = [0.0; 16];
    let mut k = 0;
    while k < 16 {
        a[k] = (2 * k + 1) as f64;
        k += 1;
    }
    a
};
const WA1D: [f64; 16] = {
    let mut a = [0.0; 16];
    let mut k = 0;
    while k < 16 {
        a[k] = (32 - (2 * k + 1)) as f64;
        k += 1;
    }
    a
};
/// 2-D axis weights (interior positions `4t+2+k` carry `w = 2k+1` toward
/// the right/lower anchor; see `interp::LUT_2D`), step 8.
const W2D: [f64; 4] = [1.0, 3.0, 5.0, 7.0];
const WA2D: [f64; 4] = [7.0, 5.0, 3.0, 1.0];

// ----------------------------------------------------------------------
// Safe wrappers: these are what the dispatch tables point at.
// ----------------------------------------------------------------------

pub(super) fn to_fixed_f32_sse2(words: &[u32; N], bias: i8, out: &mut [i32; N]) {
    // SAFETY: SSE2 is part of the x86-64 baseline ISA.
    unsafe { to_fixed_f32_sse2_impl(words, bias, out) }
}

pub(super) fn downsample_both_sse2(
    fixed: &[i32; N],
    out_1d: &mut [i64; SUMMARY_VALUES],
    out_2d: &mut [i64; SUMMARY_VALUES],
) {
    // SAFETY: SSE2 is part of the x86-64 baseline ISA.
    unsafe { downsample_both_sse2_impl(fixed, out_1d, out_2d) }
}

pub(super) fn reconstruct_1d_sse2(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    // SAFETY: SSE2 is part of the x86-64 baseline ISA.
    unsafe { reconstruct_1d_sse2_impl(summary, out) }
}

pub(super) fn reconstruct_2d_sse2(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    // SAFETY: SSE2 is part of the x86-64 baseline ISA.
    unsafe { reconstruct_2d_sse2_impl(summary, out) }
}

pub(super) fn check_chunk_f32_sse2(
    ow: &[u32; CHUNK],
    rf: &[i32; CHUNK],
    rw: &mut [u32; CHUNK],
    neg_bias: i32,
    mantissa_limit: u32,
) -> ChunkVerdict {
    // SAFETY: SSE2 is part of the x86-64 baseline ISA.
    unsafe { check_chunk_f32_sse2_impl(ow, rf, rw, neg_bias, mantissa_limit) }
}

pub(super) fn to_fixed_f32_avx2(words: &[u32; N], bias: i8, out: &mut [i32; N]) {
    // SAFETY: the dispatch layer (`kernels_for`/`kernels`) hands out the
    // AVX2 table only after `is_x86_feature_detected!("avx2")`.
    unsafe { to_fixed_f32_avx2_impl(words, bias, out) }
}

pub(super) fn downsample_both_avx2(
    fixed: &[i32; N],
    out_1d: &mut [i64; SUMMARY_VALUES],
    out_2d: &mut [i64; SUMMARY_VALUES],
) {
    // SAFETY: dispatched only after AVX2 detection (see above).
    unsafe { downsample_both_avx2_impl(fixed, out_1d, out_2d) }
}

pub(super) fn reconstruct_1d_avx2(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    // SAFETY: dispatched only after AVX2 detection (see above).
    unsafe { reconstruct_1d_avx2_impl(summary, out) }
}

pub(super) fn reconstruct_2d_avx2(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    // SAFETY: dispatched only after AVX2 detection (see above).
    unsafe { reconstruct_2d_avx2_impl(summary, out) }
}

pub(super) fn check_chunk_f32_avx2(
    ow: &[u32; CHUNK],
    rf: &[i32; CHUNK],
    rw: &mut [u32; CHUNK],
    neg_bias: i32,
    mantissa_limit: u32,
) -> ChunkVerdict {
    // SAFETY: dispatched only after AVX2 detection (see above).
    unsafe { check_chunk_f32_avx2_impl(ow, rf, rw, neg_bias, mantissa_limit) }
}

// ----------------------------------------------------------------------
// 128-bit helpers
// ----------------------------------------------------------------------

#[inline(always)]
unsafe fn select_epi32(mask: __m128i, a: __m128i, b: __m128i) -> __m128i {
    _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b))
}

/// Vector [`crate::convert::shift_exponent`]: add `delta` to every lane's
/// exponent field with the same eager-select semantics (overflow clamps to
/// max finite, zero-exponent input and underflow collapse to signed zero).
#[inline(always)]
unsafe fn shift_exponent_epi32(bits: __m128i, delta: __m128i) -> __m128i {
    let exp_mask = _mm_set1_epi32(0xFF);
    let e = _mm_and_si128(_mm_srli_epi32(bits, 23), exp_mask);
    let sign = _mm_and_si128(bits, _mm_set1_epi32(0x8000_0000u32 as i32));
    let e2 = _mm_add_epi32(e, delta);
    let r = _mm_or_si128(
        _mm_and_si128(bits, _mm_set1_epi32(0x807F_FFFFu32 as i32)),
        _mm_slli_epi32(_mm_and_si128(e2, exp_mask), 23),
    );
    let overflow = _mm_cmpgt_epi32(e2, _mm_set1_epi32(254));
    let r = select_epi32(overflow, _mm_or_si128(sign, _mm_set1_epi32(0x7F7F_FFFF)), r);
    let collapse = _mm_or_si128(
        _mm_cmpeq_epi32(e, _mm_setzero_si128()),
        _mm_cmpgt_epi32(_mm_set1_epi32(1), e2),
    );
    select_epi32(collapse, sign, r)
}

/// Saturating RNE f32→i32 of already-scaled lanes (never NaN).
#[inline(always)]
unsafe fn cvt_sat_epi32(scaled: __m128) -> __m128i {
    let cvt = _mm_cvtps_epi32(scaled);
    let too_big = _mm_castps_si128(_mm_cmpge_ps(scaled, _mm_set1_ps(I32_OVERFLOW_F32)));
    _mm_xor_si128(cvt, too_big)
}

/// Sum the four i32/u32 lanes (no overflow at the call sites' bounds).
#[inline(always)]
unsafe fn hsum_epi32(v: __m128i) -> u32 {
    let s = _mm_add_epi32(v, _mm_unpackhi_epi64(v, v));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01>(s));
    _mm_cvtsi128_si32(s) as u32
}

/// The integer-lerp tail in f64 lanes: `trunc((num ± half)/step)` (sign
/// picks the addend, matching the scalar round-to-nearest for truncated
/// division), clamped to i32 and narrowed. `inv_step` must be a
/// power-of-two reciprocal so the scale is exact.
#[inline(always)]
unsafe fn lerp_tail_pd(num: __m128d, half: __m128d, inv_step: __m128d) -> __m128i {
    let h = _mm_or_pd(_mm_and_pd(num, _mm_set1_pd(-0.0)), half);
    let q = _mm_mul_pd(_mm_add_pd(num, h), inv_step);
    let q = _mm_min_pd(_mm_max_pd(q, _mm_set1_pd(I32_MIN_F64)), _mm_set1_pd(I32_MAX_F64));
    _mm_cvttpd_epi32(q)
}

// ----------------------------------------------------------------------
// SSE2 kernels
// ----------------------------------------------------------------------

unsafe fn to_fixed_f32_sse2_impl(words: &[u32; N], bias: i8, out: &mut [i32; N]) {
    let scale = _mm_set1_ps((1u64 << FRAC_BITS) as f32);
    let exp_mask = _mm_set1_epi32(0xFF);
    if bias == 0 {
        for (src, dst) in words.chunks_exact(4).zip(out.chunks_exact_mut(4)) {
            let v = _mm_loadu_si128(src.as_ptr() as *const __m128i);
            // NaN/Inf lanes (exponent 255) convert to fixed 0: zero them.
            let special = _mm_cmpeq_epi32(_mm_and_si128(_mm_srli_epi32(v, 23), exp_mask), exp_mask);
            let f = _mm_castsi128_ps(_mm_andnot_si128(special, v));
            let scaled = _mm_mul_ps(f, scale);
            _mm_storeu_si128(dst.as_mut_ptr() as *mut __m128i, cvt_sat_epi32(scaled));
        }
    } else {
        let delta = _mm_set1_epi32(bias as i32);
        for (src, dst) in words.chunks_exact(4).zip(out.chunks_exact_mut(4)) {
            let v = _mm_loadu_si128(src.as_ptr() as *const __m128i);
            let b = shift_exponent_epi32(v, delta);
            let scaled = _mm_mul_ps(_mm_castsi128_ps(b), scale);
            _mm_storeu_si128(dst.as_mut_ptr() as *mut __m128i, cvt_sat_epi32(scaled));
        }
    }
}

unsafe fn downsample_both_sse2_impl(
    fixed: &[i32; N],
    out_1d: &mut [i64; SUMMARY_VALUES],
    out_2d: &mut [i64; SUMMARY_VALUES],
) {
    let mut sums_2d = [0i64; SUMMARY_VALUES];
    for (r, row) in fixed.chunks_exact(GRID).enumerate() {
        let tile_base = (r / TILE) * (GRID / TILE);
        let mut s1 = 0i64;
        for (j, quad) in row.chunks_exact(TILE).enumerate() {
            let v = _mm_loadu_si128(quad.as_ptr() as *const __m128i);
            // Sign-extend the four i32 to i64 pairs and add (integer sums
            // are order-free, so (v0+v2)+(v1+v3) equals the scalar order).
            let sign = _mm_cmpgt_epi32(_mm_setzero_si128(), v);
            let pair = _mm_add_epi64(_mm_unpacklo_epi32(v, sign), _mm_unpackhi_epi32(v, sign));
            let q = _mm_cvtsi128_si64(pair) + _mm_cvtsi128_si64(_mm_unpackhi_epi64(pair, pair));
            sums_2d[tile_base + j] += q;
            s1 += q;
        }
        out_1d[r] = round_avg(s1);
    }
    for (o, &s) in out_2d.iter_mut().zip(&sums_2d) {
        *o = round_avg(s);
    }
}

unsafe fn reconstruct_1d_sse2_impl(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    let mut sf = [0f64; SUMMARY_VALUES];
    for (d, &s) in sf.iter_mut().zip(summary) {
        *d = s as f64; // exact: wrapper guarantees i32 range
    }
    out[..8].fill(summary[0] as i32);
    out[N - 8..].fill(summary[SUMMARY_VALUES - 1] as i32);
    let half = _mm_set1_pd(16.0);
    let inv_step = _mm_set1_pd(1.0 / 32.0);
    for seg in 0..SUMMARY_VALUES - 1 {
        let a = _mm_set1_pd(sf[seg]);
        let b = _mm_set1_pd(sf[seg + 1]);
        let dst = &mut out[8 + seg * 16..8 + seg * 16 + 16];
        for k in (0..16).step_by(2) {
            let wa = _mm_loadu_pd(WA1D[k..].as_ptr());
            let wb = _mm_loadu_pd(W1D[k..].as_ptr());
            let num = _mm_add_pd(_mm_mul_pd(a, wa), _mm_mul_pd(b, wb));
            let q = lerp_tail_pd(num, half, inv_step);
            _mm_storel_epi64(dst[k..].as_mut_ptr() as *mut __m128i, q);
        }
    }
}

/// Horizontal interpolation profiles (`interp::profiles_2d`) in exact f64:
/// anchor-row `a`'s column interpolation, truncated to its integer value
/// (profiles stay within the anchors' i32 range, so the i32 round-trip
/// truncation is lossless).
#[inline(always)]
unsafe fn profiles_2d_sse2(sf: &[f64; SUMMARY_VALUES]) -> [[f64; GRID]; GRID / TILE] {
    let half = _mm_set1_pd(4.0);
    let inv_step = _mm_set1_pd(1.0 / 8.0);
    let mut prof = [[0f64; GRID]; GRID / TILE];
    for (a, row) in prof.iter_mut().enumerate() {
        let s = &sf[a * (GRID / TILE)..];
        row[0] = s[0];
        row[1] = s[0];
        row[GRID - 2] = s[3];
        row[GRID - 1] = s[3];
        for t in 0..GRID / TILE - 1 {
            let va = _mm_set1_pd(s[t]);
            let vb = _mm_set1_pd(s[t + 1]);
            for k in (0..TILE).step_by(2) {
                let wa = _mm_loadu_pd(WA2D[k..].as_ptr());
                let wb = _mm_loadu_pd(W2D[k..].as_ptr());
                let num = _mm_add_pd(_mm_mul_pd(va, wa), _mm_mul_pd(vb, wb));
                let q = lerp_tail_pd(num, half, inv_step);
                // Back to exact f64 for the vertical pass.
                _mm_storeu_pd(row[4 * t + 2 + k..].as_mut_ptr(), _mm_cvtepi32_pd(q));
            }
        }
    }
    prof
}

unsafe fn reconstruct_2d_sse2_impl(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    let mut sf = [0f64; SUMMARY_VALUES];
    for (d, &s) in sf.iter_mut().zip(summary) {
        *d = s as f64; // exact: wrapper guarantees i32 range
    }
    let prof = profiles_2d_sse2(&sf);
    // Anchor rows (weight 0) copy their profile; profiles are integral and
    // in i32 range, so the cast is the scalar clamp-and-narrow.
    for (r, a) in [(0usize, 0usize), (1, 0), (GRID - 2, 3), (GRID - 1, 3)] {
        for (o, &p) in out[r * GRID..(r + 1) * GRID].iter_mut().zip(&prof[a]) {
            *o = p as i32;
        }
    }
    let half = _mm_set1_pd(4.0);
    let inv_step = _mm_set1_pd(1.0 / 8.0);
    for t in 0..GRID / TILE - 1 {
        let (top, bot) = (&prof[t], &prof[t + 1]);
        for k in 0..TILE {
            let r = TILE * t + 2 + k;
            let wb = _mm_set1_pd(W2D[k]);
            let wa = _mm_set1_pd(WA2D[k]);
            let dst = &mut out[r * GRID..(r + 1) * GRID];
            for c in (0..GRID).step_by(2) {
                let vt = _mm_loadu_pd(top[c..].as_ptr());
                let vb = _mm_loadu_pd(bot[c..].as_ptr());
                let num = _mm_add_pd(_mm_mul_pd(vt, wa), _mm_mul_pd(vb, wb));
                let q = lerp_tail_pd(num, half, inv_step);
                _mm_storel_epi64(dst[c..].as_mut_ptr() as *mut __m128i, q);
            }
        }
    }
}

unsafe fn check_chunk_f32_sse2_impl(
    ow: &[u32; CHUNK],
    rf: &[i32; CHUNK],
    rw: &mut [u32; CHUNK],
    neg_bias: i32,
    mantissa_limit: u32,
) -> ChunkVerdict {
    let scale = _mm_set1_ps(F32_SCALE_F);
    let delta = _mm_set1_epi32(neg_bias);
    let exp_mask = _mm_set1_epi32(0xFF);
    let m23 = _mm_set1_epi32(0x7F_FFFF);
    let abs_mask = _mm_set1_epi32(0x7FFF_FFFF);
    let lim = _mm_set1_epi32(mantissa_limit as i32 - 1);
    let ones = _mm_set1_epi32(-1);
    let mut bitmap = 0u64;
    let mut cnt = _mm_setzero_si128();
    let mut err = _mm_setzero_si128();
    for i in (0..CHUNK).step_by(4) {
        // Pass 1 — from_fixed: scale to float and unbias.
        let v = _mm_loadu_si128(rf[i..].as_ptr() as *const __m128i);
        let f = _mm_mul_ps(_mm_cvtepi32_ps(v), scale);
        let w = shift_exponent_epi32(_mm_castps_si128(f), delta);
        _mm_storeu_si128(rw[i..].as_mut_ptr() as *mut __m128i, w);
        // Pass 2 — classify (same eager bitwise logic as the scalar arm).
        let o = _mm_loadu_si128(ow[i..].as_ptr() as *const __m128i);
        let d = _mm_sub_epi32(_mm_and_si128(o, m23), _mm_and_si128(w, m23));
        let ds = _mm_srai_epi32(d, 31);
        let diff = _mm_sub_epi32(_mm_xor_si128(d, ds), ds);
        let se_match = _mm_cmpeq_epi32(_mm_srli_epi32(o, 23), _mm_srli_epi32(w, 23));
        let both_zero =
            _mm_cmpeq_epi32(_mm_and_si128(_mm_or_si128(o, w), abs_mask), _mm_setzero_si128());
        let neq = _mm_xor_si128(_mm_cmpeq_epi32(o, w), ones);
        let special = _mm_cmpeq_epi32(_mm_and_si128(_mm_srli_epi32(o, 23), exp_mask), exp_mask);
        let diff_over = _mm_cmpgt_epi32(diff, lim);
        let cond = _mm_or_si128(
            special,
            _mm_or_si128(
                _mm_andnot_si128(se_match, _mm_xor_si128(both_zero, ones)),
                _mm_and_si128(se_match, diff_over),
            ),
        );
        let outlier = _mm_and_si128(neq, cond);
        // Pass 3 — reduce.
        bitmap |= (_mm_movemask_ps(_mm_castsi128_ps(outlier)) as u64) << i;
        cnt = _mm_sub_epi32(cnt, outlier);
        err = _mm_add_epi32(err, _mm_andnot_si128(outlier, diff));
    }
    ChunkVerdict { bitmap, outliers: hsum_epi32(cnt), err_sum: hsum_epi32(err) as u64 }
}

// ----------------------------------------------------------------------
// 256-bit helpers
// ----------------------------------------------------------------------

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn select_epi32_256(mask: __m256i, a: __m256i, b: __m256i) -> __m256i {
    _mm256_blendv_epi8(b, a, mask)
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn shift_exponent_epi32_256(bits: __m256i, delta: __m256i) -> __m256i {
    let exp_mask = _mm256_set1_epi32(0xFF);
    let e = _mm256_and_si256(_mm256_srli_epi32(bits, 23), exp_mask);
    let sign = _mm256_and_si256(bits, _mm256_set1_epi32(0x8000_0000u32 as i32));
    let e2 = _mm256_add_epi32(e, delta);
    let r = _mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi32(0x807F_FFFFu32 as i32)),
        _mm256_slli_epi32(_mm256_and_si256(e2, exp_mask), 23),
    );
    let overflow = _mm256_cmpgt_epi32(e2, _mm256_set1_epi32(254));
    let r = select_epi32_256(overflow, _mm256_or_si256(sign, _mm256_set1_epi32(0x7F7F_FFFF)), r);
    let collapse = _mm256_or_si256(
        _mm256_cmpeq_epi32(e, _mm256_setzero_si256()),
        _mm256_cmpgt_epi32(_mm256_set1_epi32(1), e2),
    );
    select_epi32_256(collapse, sign, r)
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn cvt_sat_epi32_256(scaled: __m256) -> __m256i {
    let cvt = _mm256_cvtps_epi32(scaled);
    let too_big =
        _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GE_OQ>(scaled, _mm256_set1_ps(I32_OVERFLOW_F32)));
    _mm256_xor_si256(cvt, too_big)
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn hsum_epi32_256(v: __m256i) -> u32 {
    hsum_epi32(_mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v)))
}

/// 4-lane f64 lerp tail (same contract as [`lerp_tail_pd`]).
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn lerp_tail_pd_256(num: __m256d, half: __m256d, inv_step: __m256d) -> __m128i {
    let h = _mm256_or_pd(_mm256_and_pd(num, _mm256_set1_pd(-0.0)), half);
    let q = _mm256_mul_pd(_mm256_add_pd(num, h), inv_step);
    let q =
        _mm256_min_pd(_mm256_max_pd(q, _mm256_set1_pd(I32_MIN_F64)), _mm256_set1_pd(I32_MAX_F64));
    _mm256_cvttpd_epi32(q)
}

// ----------------------------------------------------------------------
// AVX2 kernels
// ----------------------------------------------------------------------

#[target_feature(enable = "avx2")]
unsafe fn to_fixed_f32_avx2_impl(words: &[u32; N], bias: i8, out: &mut [i32; N]) {
    let scale = _mm256_set1_ps((1u64 << FRAC_BITS) as f32);
    let exp_mask = _mm256_set1_epi32(0xFF);
    if bias == 0 {
        for (src, dst) in words.chunks_exact(8).zip(out.chunks_exact_mut(8)) {
            let v = _mm256_loadu_si256(src.as_ptr() as *const __m256i);
            let special =
                _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_srli_epi32(v, 23), exp_mask), exp_mask);
            let f = _mm256_castsi256_ps(_mm256_andnot_si256(special, v));
            let scaled = _mm256_mul_ps(f, scale);
            _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, cvt_sat_epi32_256(scaled));
        }
    } else {
        let delta = _mm256_set1_epi32(bias as i32);
        for (src, dst) in words.chunks_exact(8).zip(out.chunks_exact_mut(8)) {
            let v = _mm256_loadu_si256(src.as_ptr() as *const __m256i);
            let b = shift_exponent_epi32_256(v, delta);
            let scaled = _mm256_mul_ps(_mm256_castsi256_ps(b), scale);
            _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, cvt_sat_epi32_256(scaled));
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn downsample_both_avx2_impl(
    fixed: &[i32; N],
    out_1d: &mut [i64; SUMMARY_VALUES],
    out_2d: &mut [i64; SUMMARY_VALUES],
) {
    let mut sums_2d = [0i64; SUMMARY_VALUES];
    for (r, row) in fixed.chunks_exact(GRID).enumerate() {
        let tile_base = (r / TILE) * (GRID / TILE);
        let mut s1 = 0i64;
        for (j, quad) in row.chunks_exact(TILE).enumerate() {
            let v = _mm_loadu_si128(quad.as_ptr() as *const __m128i);
            let wide = _mm256_cvtepi32_epi64(v);
            let pair =
                _mm_add_epi64(_mm256_castsi256_si128(wide), _mm256_extracti128_si256::<1>(wide));
            let q = _mm_cvtsi128_si64(pair) + _mm_cvtsi128_si64(_mm_unpackhi_epi64(pair, pair));
            sums_2d[tile_base + j] += q;
            s1 += q;
        }
        out_1d[r] = round_avg(s1);
    }
    for (o, &s) in out_2d.iter_mut().zip(&sums_2d) {
        *o = round_avg(s);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn reconstruct_1d_avx2_impl(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    let mut sf = [0f64; SUMMARY_VALUES];
    for (d, &s) in sf.iter_mut().zip(summary) {
        *d = s as f64; // exact: wrapper guarantees i32 range
    }
    out[..8].fill(summary[0] as i32);
    out[N - 8..].fill(summary[SUMMARY_VALUES - 1] as i32);
    let half = _mm256_set1_pd(16.0);
    let inv_step = _mm256_set1_pd(1.0 / 32.0);
    for seg in 0..SUMMARY_VALUES - 1 {
        let a = _mm256_set1_pd(sf[seg]);
        let b = _mm256_set1_pd(sf[seg + 1]);
        let dst = &mut out[8 + seg * 16..8 + seg * 16 + 16];
        for k in (0..16).step_by(4) {
            let wa = _mm256_loadu_pd(WA1D[k..].as_ptr());
            let wb = _mm256_loadu_pd(W1D[k..].as_ptr());
            let num = _mm256_add_pd(_mm256_mul_pd(a, wa), _mm256_mul_pd(b, wb));
            let q = lerp_tail_pd_256(num, half, inv_step);
            _mm_storeu_si128(dst[k..].as_mut_ptr() as *mut __m128i, q);
        }
    }
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn profiles_2d_avx2(sf: &[f64; SUMMARY_VALUES]) -> [[f64; GRID]; GRID / TILE] {
    let half = _mm256_set1_pd(4.0);
    let inv_step = _mm256_set1_pd(1.0 / 8.0);
    let wa = _mm256_loadu_pd(WA2D.as_ptr());
    let wb = _mm256_loadu_pd(W2D.as_ptr());
    let mut prof = [[0f64; GRID]; GRID / TILE];
    for (a, row) in prof.iter_mut().enumerate() {
        let s = &sf[a * (GRID / TILE)..];
        row[0] = s[0];
        row[1] = s[0];
        row[GRID - 2] = s[3];
        row[GRID - 1] = s[3];
        for t in 0..GRID / TILE - 1 {
            let va = _mm256_set1_pd(s[t]);
            let vb = _mm256_set1_pd(s[t + 1]);
            let num = _mm256_add_pd(_mm256_mul_pd(va, wa), _mm256_mul_pd(vb, wb));
            let q = lerp_tail_pd_256(num, half, inv_step);
            // Back to exact f64 for the vertical pass.
            _mm256_storeu_pd(row[4 * t + 2..].as_mut_ptr(), _mm256_cvtepi32_pd(q));
        }
    }
    prof
}

#[target_feature(enable = "avx2")]
unsafe fn reconstruct_2d_avx2_impl(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; N]) {
    let mut sf = [0f64; SUMMARY_VALUES];
    for (d, &s) in sf.iter_mut().zip(summary) {
        *d = s as f64; // exact: wrapper guarantees i32 range
    }
    let prof = profiles_2d_avx2(&sf);
    for (r, a) in [(0usize, 0usize), (1, 0), (GRID - 2, 3), (GRID - 1, 3)] {
        for (o, &p) in out[r * GRID..(r + 1) * GRID].iter_mut().zip(&prof[a]) {
            *o = p as i32;
        }
    }
    let half = _mm256_set1_pd(4.0);
    let inv_step = _mm256_set1_pd(1.0 / 8.0);
    for t in 0..GRID / TILE - 1 {
        let (top, bot) = (&prof[t], &prof[t + 1]);
        for k in 0..TILE {
            let r = TILE * t + 2 + k;
            let wb = _mm256_set1_pd(W2D[k]);
            let wa = _mm256_set1_pd(WA2D[k]);
            let dst = &mut out[r * GRID..(r + 1) * GRID];
            for c in (0..GRID).step_by(4) {
                let vt = _mm256_loadu_pd(top[c..].as_ptr());
                let vb = _mm256_loadu_pd(bot[c..].as_ptr());
                let num = _mm256_add_pd(_mm256_mul_pd(vt, wa), _mm256_mul_pd(vb, wb));
                let q = lerp_tail_pd_256(num, half, inv_step);
                _mm_storeu_si128(dst[c..].as_mut_ptr() as *mut __m128i, q);
            }
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn check_chunk_f32_avx2_impl(
    ow: &[u32; CHUNK],
    rf: &[i32; CHUNK],
    rw: &mut [u32; CHUNK],
    neg_bias: i32,
    mantissa_limit: u32,
) -> ChunkVerdict {
    let scale = _mm256_set1_ps(F32_SCALE_F);
    let delta = _mm256_set1_epi32(neg_bias);
    let exp_mask = _mm256_set1_epi32(0xFF);
    let m23 = _mm256_set1_epi32(0x7F_FFFF);
    let abs_mask = _mm256_set1_epi32(0x7FFF_FFFF);
    let lim = _mm256_set1_epi32(mantissa_limit as i32 - 1);
    let ones = _mm256_set1_epi32(-1);
    let mut bitmap = 0u64;
    let mut cnt = _mm256_setzero_si256();
    let mut err = _mm256_setzero_si256();
    for i in (0..CHUNK).step_by(8) {
        let v = _mm256_loadu_si256(rf[i..].as_ptr() as *const __m256i);
        let f = _mm256_mul_ps(_mm256_cvtepi32_ps(v), scale);
        let w = shift_exponent_epi32_256(_mm256_castps_si256(f), delta);
        _mm256_storeu_si256(rw[i..].as_mut_ptr() as *mut __m256i, w);
        let o = _mm256_loadu_si256(ow[i..].as_ptr() as *const __m256i);
        let d = _mm256_sub_epi32(_mm256_and_si256(o, m23), _mm256_and_si256(w, m23));
        let diff = _mm256_abs_epi32(d);
        let se_match = _mm256_cmpeq_epi32(_mm256_srli_epi32(o, 23), _mm256_srli_epi32(w, 23));
        let both_zero = _mm256_cmpeq_epi32(
            _mm256_and_si256(_mm256_or_si256(o, w), abs_mask),
            _mm256_setzero_si256(),
        );
        let neq = _mm256_xor_si256(_mm256_cmpeq_epi32(o, w), ones);
        let special =
            _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_srli_epi32(o, 23), exp_mask), exp_mask);
        let diff_over = _mm256_cmpgt_epi32(diff, lim);
        let cond = _mm256_or_si256(
            special,
            _mm256_or_si256(
                _mm256_andnot_si256(se_match, _mm256_xor_si256(both_zero, ones)),
                _mm256_and_si256(se_match, diff_over),
            ),
        );
        let outlier = _mm256_and_si256(neq, cond);
        bitmap |= (_mm256_movemask_ps(_mm256_castsi256_ps(outlier)) as u32 as u64) << i;
        cnt = _mm256_sub_epi32(cnt, outlier);
        err = _mm256_add_epi32(err, _mm256_andnot_si256(outlier, diff));
    }
    ChunkVerdict { bitmap, outliers: hsum_epi32_256(cnt), err_sum: hsum_epi32_256(err) as u64 }
}
