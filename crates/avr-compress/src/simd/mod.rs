//! Explicit-SIMD backends for the codec's four hot loops, behind one
//! runtime dispatch point.
//!
//! PR 1 left the fused pipeline as flat chunked loops the autovectorizer
//! digests at SSE2 width (~2 ns/value, PERFORMANCE.md "Known costs left on
//! the table"). This module lifts those loops into explicit `std::arch`
//! x86-64 kernels — an SSE2 baseline (always present on x86-64) and an
//! AVX2 variant selected at runtime via `is_x86_feature_detected!` — while
//! retaining the original scalar loops as the portable fallback for every
//! other architecture and as the oracle the wide arms are tested against.
//!
//! The four kernels (one [`CodecKernels`] entry each):
//!
//! * **`to_fixed_f32`** — the batch float→fixed conversion
//!   (bias application, RNE scaling, saturating cast);
//! * **`downsample_both`** — both layouts' strided sub-block sums in one
//!   sweep;
//! * **`reconstruct_1d` / `reconstruct_2d`** — the LUT-driven
//!   interpolation fused with the i32 write-out clamp;
//! * **`check_chunk_f32`** — the fused fixed→float write-out + outlier
//!   classification + error reduction over one 64-value chunk.
//!
//! ### Bit-identical by construction
//!
//! Every kernel is required to be **bit-identical** to the scalar path
//! (and therefore to `crate::reference::compress_reference`) on all inputs
//! the pipeline can produce — the per-arm oracle in
//! `tests/codec_properties.rs` enforces this over randomized and
//! adversarial (NaN/Inf/subnormal) blocks. The arithmetic makes that
//! tractable:
//!
//! * classification, biasing and the error totals are pure integer ops
//!   (order-free, exact);
//! * the float work is all power-of-two scaling plus IEEE round-to-nearest
//!   conversions, which `cvtps2dq`/`cvtdq2ps` implement exactly as the
//!   scalar casts do (MXCSR default rounding);
//! * the interpolation's integer lerp is evaluated in f64 lanes where
//!   every intermediate (≤ 2³⁷) is exactly representable, so the truncated
//!   division comes out identical to the scalar i64 arithmetic.
//!
//! The Fixed32 error check keeps its scalar form everywhere: its running
//! f64 relative-error sum divides per value and is order-sensitive.
//!
//! ### Dispatch
//!
//! [`kernels`] is the single dispatch point the codec calls. The arm is
//! detected once (and cached): AVX2 if the CPU reports it, else SSE2 on
//! x86-64, else scalar. Setting `AVR_NO_SIMD=1` in the environment forces
//! the scalar fallback (CI runs a leg with it so the portable path cannot
//! rot). Tests and benches can pin an arm with [`force_arm`] or reach a
//! specific arm's table via [`kernels_for`].

use crate::block::SUMMARY_VALUES;
use avr_types::VALUES_PER_BLOCK;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

/// One dispatch arm of the codec kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdArm {
    /// Portable scalar loops (the PR-1 autovectorized path).
    Scalar,
    /// Explicit 128-bit `std::arch` kernels (x86-64 baseline).
    Sse2,
    /// Explicit 256-bit kernels, runtime-detected.
    Avx2,
}

impl SimdArm {
    /// Short lower-case label (for logs, JSON and bench output).
    pub fn name(self) -> &'static str {
        match self {
            SimdArm::Scalar => "scalar",
            SimdArm::Sse2 => "sse2",
            SimdArm::Avx2 => "avx2",
        }
    }

    /// All arms, strongest last.
    pub const ALL: [SimdArm; 3] = [SimdArm::Scalar, SimdArm::Sse2, SimdArm::Avx2];
}

/// Verdict of one 64-value chunk of the fused error check: the chunk's
/// bitmap word, its outlier count, and the integer mantissa-difference
/// error total of its non-outliers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkVerdict {
    pub bitmap: u64,
    pub outliers: u32,
    pub err_sum: u64,
}

/// The fused error check's chunk width (one bitmap word of values).
pub const CHUNK: usize = 64;

/// Signature of the chunked error-check kernel: `(orig_words,
/// recon_fixed, recon_words_out, neg_bias, mantissa_limit)`.
pub type CheckChunkF32Fn =
    fn(&[u32; CHUNK], &[i32; CHUNK], &mut [u32; CHUNK], i32, u32) -> ChunkVerdict;

/// One arm's kernel table — the four hot loops as plain `fn` pointers so
/// the codec body stays arm-agnostic.
pub struct CodecKernels {
    pub arm: SimdArm,
    /// Batch float→fixed conversion of a whole block (see the crate-
    /// private `scalar::to_fixed_block_f32` for the exact semantics).
    pub to_fixed_f32: fn(&[u32; VALUES_PER_BLOCK], i8, &mut [i32; VALUES_PER_BLOCK]),
    /// Both layouts' sub-block averages in one sweep.
    pub downsample_both:
        fn(&[i32; VALUES_PER_BLOCK], &mut [i64; SUMMARY_VALUES], &mut [i64; SUMMARY_VALUES]),
    /// 1-D reconstruction fused with the i32 write-out clamp. The wide
    /// arms require every summary value in i32 range — guaranteed by
    /// construction for the codec (summaries are sub-block averages of
    /// i32 fixed values); other callers must uphold it or use the scalar
    /// arm, which handles the full i64 domain.
    pub reconstruct_1d: fn(&[i64; SUMMARY_VALUES], &mut [i32; VALUES_PER_BLOCK]),
    /// 2-D (4×4-tile bilinear) reconstruction, same contract.
    pub reconstruct_2d: fn(&[i64; SUMMARY_VALUES], &mut [i32; VALUES_PER_BLOCK]),
    /// Fused fixed→float + unbias + classify + reduce over one 64-value
    /// chunk (F32 data): writes the reconstructed words and returns the
    /// chunk's bitmap/outlier-count/error-sum.
    pub check_chunk_f32: CheckChunkF32Fn,
}

static SCALAR_KERNELS: CodecKernels = CodecKernels {
    arm: SimdArm::Scalar,
    to_fixed_f32: scalar::to_fixed_block_f32,
    downsample_both: crate::downsample::downsample_both_scalar,
    reconstruct_1d: scalar::reconstruct_1d,
    reconstruct_2d: scalar::reconstruct_2d,
    check_chunk_f32: scalar::check_chunk_f32,
};

#[cfg(target_arch = "x86_64")]
static SSE2_KERNELS: CodecKernels = CodecKernels {
    arm: SimdArm::Sse2,
    to_fixed_f32: x86::to_fixed_f32_sse2,
    downsample_both: x86::downsample_both_sse2,
    reconstruct_1d: x86::reconstruct_1d_sse2,
    reconstruct_2d: x86::reconstruct_2d_sse2,
    check_chunk_f32: x86::check_chunk_f32_sse2,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNELS: CodecKernels = CodecKernels {
    arm: SimdArm::Avx2,
    to_fixed_f32: x86::to_fixed_f32_avx2,
    downsample_both: x86::downsample_both_avx2,
    reconstruct_1d: x86::reconstruct_1d_avx2,
    reconstruct_2d: x86::reconstruct_2d_avx2,
    check_chunk_f32: x86::check_chunk_f32_avx2,
};

/// The *dispatch* table for SSE2-only hosts: a per-kernel arm mix. The
/// SSE2 `reconstruct_1d` (a 2-lane f64 lerp) measures *slower* than the
/// scalar arm's autovectorized integer loop (PERFORMANCE.md, ROADMAP
/// PR-3 note), so the mix keeps every other kernel on the explicit
/// 128-bit path and routes the 1-D reconstruction to the scalar loop.
/// Irrelevant on AVX2 hosts — their dispatch table is pure AVX2. All arms
/// are bit-identical, so the mix changes performance only; the per-arm
/// oracle in `tests/codec_properties.rs` and the `equivalence` module
/// below cover the mixed table alongside the pure ones.
#[cfg(target_arch = "x86_64")]
static SSE2_DISPATCH_KERNELS: CodecKernels = CodecKernels {
    arm: SimdArm::Sse2,
    to_fixed_f32: x86::to_fixed_f32_sse2,
    downsample_both: x86::downsample_both_sse2,
    reconstruct_1d: scalar::reconstruct_1d,
    reconstruct_2d: x86::reconstruct_2d_sse2,
    check_chunk_f32: x86::check_chunk_f32_sse2,
};

/// Does the running CPU support `arm`? (Scalar always does.)
pub fn arm_supported(arm: SimdArm) -> bool {
    match arm {
        SimdArm::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Sse2 => true,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The arms the running CPU supports, strongest last.
pub fn supported_arms() -> impl Iterator<Item = SimdArm> {
    SimdArm::ALL.into_iter().filter(|&a| arm_supported(a))
}

/// The *pure* kernel table of a specific arm, if the CPU supports it —
/// every slot on that arm's explicit kernels. This ignores `AVR_NO_SIMD`
/// and any [`force_arm`] override — it is the tests'/benches' direct line
/// to one arm's kernels (including the SSE2 1-D lerp the dispatch mix
/// avoids).
pub fn kernels_for(arm: SimdArm) -> Option<&'static CodecKernels> {
    if !arm_supported(arm) {
        return None;
    }
    Some(match arm {
        SimdArm::Scalar => &SCALAR_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Sse2 => &SSE2_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Avx2 => &AVX2_KERNELS,
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("arm_supported() admits only Scalar off x86-64"),
    })
}

/// The *dispatch* table of a specific arm: what [`kernels`] actually
/// serves when that arm is active. Scalar and AVX2 dispatch their pure
/// tables; SSE2 dispatches the per-kernel mix (scalar 1-D reconstruction,
/// explicit 128-bit everything else).
pub fn dispatch_kernels_for(arm: SimdArm) -> Option<&'static CodecKernels> {
    if !arm_supported(arm) {
        return None;
    }
    Some(match arm {
        SimdArm::Scalar => &SCALAR_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Sse2 => &SSE2_DISPATCH_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Avx2 => &AVX2_KERNELS,
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("arm_supported() admits only Scalar off x86-64"),
    })
}

/// `AVR_NO_SIMD` disables the explicit kernels (any value but `0`/empty).
fn simd_disabled_by_env() -> bool {
    matches!(std::env::var("AVR_NO_SIMD"), Ok(v) if !v.is_empty() && v != "0")
}

/// Runtime-detected arm: AVX2 > SSE2 > scalar, honoring `AVR_NO_SIMD`.
/// Detected once per process.
fn detected_arm() -> SimdArm {
    static DETECTED: OnceLock<SimdArm> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if simd_disabled_by_env() {
            return SimdArm::Scalar;
        }
        if arm_supported(SimdArm::Avx2) {
            SimdArm::Avx2
        } else if arm_supported(SimdArm::Sse2) {
            SimdArm::Sse2
        } else {
            SimdArm::Scalar
        }
    })
}

/// Process-wide arm override (0 = none). Tests/benches only.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Pin the dispatch to one arm (`None` restores auto-detection). Returns
/// `false` (and changes nothing) if the CPU lacks the arm. Process-global:
/// meant for benches and the per-arm oracle tests — safe to race only
/// because every arm is bit-identical.
pub fn force_arm(arm: Option<SimdArm>) -> bool {
    let code = match arm {
        None => 0,
        Some(a) if !arm_supported(a) => return false,
        Some(SimdArm::Scalar) => 1,
        Some(SimdArm::Sse2) => 2,
        Some(SimdArm::Avx2) => 3,
    };
    FORCED.store(code, Ordering::Relaxed);
    true
}

/// The arm the next [`kernels`] call dispatches to.
pub fn active_arm() -> SimdArm {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdArm::Scalar,
        2 => SimdArm::Sse2,
        3 => SimdArm::Avx2,
        _ => detected_arm(),
    }
}

/// The single dispatch point: the *dispatch* table of the active arm —
/// a per-kernel arm mix where a wide kernel loses to the scalar loop
/// (today: the SSE2 1-D reconstruction).
#[inline]
pub fn kernels() -> &'static CodecKernels {
    // A forced/unsupported combination cannot exist (force_arm refuses),
    // so this lookup never fails.
    dispatch_kernels_for(active_arm()).expect("active arm is always supported")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_forcible() {
        assert!(arm_supported(SimdArm::Scalar));
        assert!(force_arm(Some(SimdArm::Scalar)));
        assert_eq!(active_arm(), SimdArm::Scalar);
        assert_eq!(kernels().arm, SimdArm::Scalar);
        assert!(force_arm(None));
        assert_eq!(active_arm(), detected_arm());
    }

    #[test]
    fn supported_arms_have_tables_with_matching_tags() {
        for arm in supported_arms() {
            let k = kernels_for(arm).expect("supported arm must have a table");
            assert_eq!(k.arm, arm);
            let d = dispatch_kernels_for(arm).expect("supported arm must have a dispatch table");
            assert_eq!(d.arm, arm);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_is_baseline_on_x86_64() {
        assert!(arm_supported(SimdArm::Sse2));
        assert!(kernels_for(SimdArm::Sse2).is_some());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_dispatch_is_the_documented_per_kernel_mix() {
        let pure = kernels_for(SimdArm::Sse2).unwrap();
        let mix = dispatch_kernels_for(SimdArm::Sse2).unwrap();
        // The 1-D reconstruction routes to the scalar loop (the SSE2 f64
        // lerp is slower — ROADMAP PR-3 note)...
        assert_eq!(mix.reconstruct_1d as usize, SCALAR_KERNELS.reconstruct_1d as usize);
        assert_ne!(mix.reconstruct_1d as usize, pure.reconstruct_1d as usize);
        // ...while every other slot keeps the explicit 128-bit kernel.
        assert_eq!(mix.to_fixed_f32 as usize, pure.to_fixed_f32 as usize);
        assert_eq!(mix.downsample_both as usize, pure.downsample_both as usize);
        assert_eq!(mix.reconstruct_2d as usize, pure.reconstruct_2d as usize);
        assert_eq!(mix.check_chunk_f32 as usize, pure.check_chunk_f32 as usize);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn scalar_and_avx2_dispatch_tables_are_their_pure_tables() {
        assert!(std::ptr::eq(
            dispatch_kernels_for(SimdArm::Scalar).unwrap(),
            kernels_for(SimdArm::Scalar).unwrap()
        ));
        if arm_supported(SimdArm::Avx2) {
            assert!(std::ptr::eq(
                dispatch_kernels_for(SimdArm::Avx2).unwrap(),
                kernels_for(SimdArm::Avx2).unwrap()
            ));
        }
    }
}

/// Kernel-level bit-identity: every wide arm against the scalar oracle on
/// adversarial inputs (full random bit patterns — NaN/Inf/subnormals —
/// plus i32 extremes), beyond what pipeline-reachable blocks exercise.
/// The whole-pipeline per-arm oracle lives in `tests/codec_properties.rs`.
#[cfg(test)]
mod equivalence {
    use super::*;

    /// splitmix64 — deterministic, offline-friendly.
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    /// Every non-scalar table the host can execute: each wide arm's pure
    /// kernels *and* its dispatch mix (deduplicated), so the mixed SSE2
    /// table is oracled exactly like the pure ones.
    fn wide_arms() -> Vec<&'static CodecKernels> {
        let mut tables: Vec<&'static CodecKernels> = Vec::new();
        for a in supported_arms().filter(|&a| a != SimdArm::Scalar) {
            for t in
                [kernels_for(a).expect("supported"), dispatch_kernels_for(a).expect("supported")]
            {
                if !tables.iter().any(|have| std::ptr::eq(*have, t)) {
                    tables.push(t);
                }
            }
        }
        tables
    }

    /// Random raw words with a heavy dose of specials: NaN payloads, ±Inf,
    /// subnormals, ±0 and sign-flip pairs.
    fn adversarial_words(rng: &mut Rng) -> [u32; VALUES_PER_BLOCK] {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for w in words.iter_mut() {
            *w = match rng.next_u64() % 8 {
                0 => f32::NAN.to_bits() | (rng.next_u32() & 0x7F_FFFF),
                1 => f32::INFINITY.to_bits() | (rng.next_u32() & 0x8000_0000),
                2 => rng.next_u32() & 0x807F_FFFF, // subnormal / ±0
                3 => rng.next_u32() ^ 0x8000_0000, // sign-flipped twin
                _ => rng.next_u32(),
            };
        }
        words
    }

    #[test]
    fn to_fixed_arms_match_scalar_on_adversarial_words() {
        let mut rng = Rng(0x51D0_0001);
        for case in 0..200 {
            let words = adversarial_words(&mut rng);
            // Specials only ever meet bias 0 in the pipeline (choose_bias
            // rule (a)), but the kernels are deterministic on any (words,
            // bias) pair — test the full product.
            let bias = (rng.next_u64() & 0xFF) as u8 as i8;
            let mut want = [0i32; VALUES_PER_BLOCK];
            (SCALAR_KERNELS.to_fixed_f32)(&words, bias, &mut want);
            for k in wide_arms() {
                let mut got = [0i32; VALUES_PER_BLOCK];
                (k.to_fixed_f32)(&words, bias, &mut got);
                assert_eq!(got, want, "case {case} bias {bias} arm {:?}", k.arm);
            }
        }
    }

    #[test]
    fn downsample_arms_match_scalar_on_extreme_fixed() {
        let mut rng = Rng(0x51D0_0002);
        for case in 0..200 {
            let mut fixed = [0i32; VALUES_PER_BLOCK];
            for v in fixed.iter_mut() {
                *v = match rng.next_u64() % 5 {
                    0 => i32::MIN,
                    1 => i32::MAX,
                    _ => rng.next_u32() as i32,
                };
            }
            let (mut w1, mut w2) = ([0i64; SUMMARY_VALUES], [0i64; SUMMARY_VALUES]);
            (SCALAR_KERNELS.downsample_both)(&fixed, &mut w1, &mut w2);
            for k in wide_arms() {
                let (mut g1, mut g2) = ([0i64; SUMMARY_VALUES], [0i64; SUMMARY_VALUES]);
                (k.downsample_both)(&fixed, &mut g1, &mut g2);
                assert_eq!((g1, g2), (w1, w2), "case {case} arm {:?}", k.arm);
            }
        }
    }

    #[test]
    fn reconstruct_arms_match_scalar_over_the_i32_summary_domain() {
        let mut rng = Rng(0x51D0_0003);
        for case in 0..400 {
            let mut summary = [0i64; SUMMARY_VALUES];
            for s in summary.iter_mut() {
                *s = match rng.next_u64() % 6 {
                    0 => i32::MIN as i64,
                    1 => i32::MAX as i64,
                    2 => 0,
                    _ => rng.next_u32() as i32 as i64,
                };
            }
            for (name, pick) in [
                ("1d", (|k: &CodecKernels| k.reconstruct_1d) as fn(&CodecKernels) -> _),
                ("2d", |k: &CodecKernels| k.reconstruct_2d),
            ] {
                let mut want = [0i32; VALUES_PER_BLOCK];
                pick(&SCALAR_KERNELS)(&summary, &mut want);
                for k in wide_arms() {
                    let mut got = [0i32; VALUES_PER_BLOCK];
                    pick(k)(&summary, &mut got);
                    assert_eq!(got, want, "case {case} {name} arm {:?}", k.arm);
                }
            }
        }
    }

    #[test]
    fn check_chunk_arms_match_scalar_on_adversarial_pairs() {
        let mut rng = Rng(0x51D0_0004);
        for case in 0..300 {
            let words = adversarial_words(&mut rng);
            let ow: &[u32; CHUNK] = words[..CHUNK].try_into().unwrap();
            let mut rf = [0i32; CHUNK];
            for v in rf.iter_mut() {
                *v = match rng.next_u64() % 4 {
                    0 => i32::MIN,
                    1 => i32::MAX,
                    _ => rng.next_u32() as i32,
                };
            }
            let neg_bias = (rng.next_u64() & 0xFF) as u8 as i8 as i32;
            // Every mantissa limit Thresholds::new can produce (N = 1..=23).
            let limit = 1u32 << (rng.next_u64() % 23);
            let mut want_rw = [0u32; CHUNK];
            let want = (SCALAR_KERNELS.check_chunk_f32)(ow, &rf, &mut want_rw, neg_bias, limit);
            for k in wide_arms() {
                let mut got_rw = [0u32; CHUNK];
                let got = (k.check_chunk_f32)(ow, &rf, &mut got_rw, neg_bias, limit);
                assert_eq!(got, want, "case {case} arm {:?}", k.arm);
                assert_eq!(got_rw, want_rw, "case {case} arm {:?}: recon words", k.arm);
            }
        }
    }
}
