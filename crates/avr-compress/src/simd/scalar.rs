//! The portable scalar arm: the PR-1 fused loops, verbatim. These are the
//! oracle the explicit SSE2/AVX2 kernels are property-tested against, and
//! the fallback every non-x86-64 target (or `AVR_NO_SIMD=1`) runs.

use super::{ChunkVerdict, CHUNK};
use crate::block::SUMMARY_VALUES;
use crate::convert::{round_ties_even_f32, shift_exponent, unbias, F32_SCALE_F, FRAC_BITS};
use crate::interp::reconstruct_into_clamped_scalar;
use crate::Layout;
use avr_types::VALUES_PER_BLOCK;

/// Branchless batch float→fixed conversion of the whole block — the fused
/// path's replacement for 256 scalar `to_fixed` calls. Semantics are
/// identical for every (block, bias) pair the compressor produces: the
/// bias comes from `choose_bias` on the same block, so a nonzero bias
/// implies the block holds no NaN/Inf (rule (a)) and the biased exponent
/// can never reach the special range (the ≥255 case clamps to max finite).
pub(crate) fn to_fixed_block_f32(
    words: &[u32; VALUES_PER_BLOCK],
    bias: i8,
    out: &mut [i32; VALUES_PER_BLOCK],
) {
    #[inline(always)]
    fn round_clamp(f: f32) -> i32 {
        // Same RNE magic-constant rounding as `to_fixed`, pure f32/i32
        // lanes; the saturating cast handles the Inf overflow of the scale.
        round_ties_even_f32(f * (1u64 << FRAC_BITS) as f32) as i32
    }
    if bias == 0 {
        for (o, &bits) in out.iter_mut().zip(words) {
            let f = f32::from_bits(bits);
            *o = if f.is_finite() { round_clamp(f) } else { 0 };
        }
    } else {
        // apply_bias, flattened to eager selects (no specials can be
        // present when bias != 0; see above).
        let b = bias as i32;
        for (o, &bits) in out.iter_mut().zip(words) {
            *o = round_clamp(f32::from_bits(shift_exponent(bits, b)));
        }
    }
}

/// Fused fixed→float + unbias + error-check over one 64-value chunk of one
/// variant (F32), structured as three flat passes (convert map, classify
/// map, reduce) so each loop is branch-free and vectorizable.
pub(crate) fn check_chunk_f32(
    ow: &[u32; CHUNK],
    rf: &[i32; CHUNK],
    rw: &mut [u32; CHUNK],
    neg_bias: i32,
    mantissa_limit: u32,
) -> ChunkVerdict {
    // Pass 1 — from_fixed: scale to float and unbias (pure 32-bit map).
    for (w, &v) in rw.iter_mut().zip(rf) {
        let f = v as f32 * F32_SCALE_F;
        *w = unbias(f.to_bits(), neg_bias);
    }
    // Pass 2 — classify: outlier flag + error contribution per value.
    let mut flags = [0u8; CHUNK];
    let mut errs = [0u32; CHUNK];
    for j in 0..CHUNK {
        let orig = ow[j];
        let recon = rw[j];
        let exp_o = (orig >> 23) & 0xFF;
        let diff = (orig & 0x7F_FFFF).abs_diff(recon & 0x7F_FFFF);
        let se_match = (orig >> 23) == (recon >> 23);
        let both_zero = (orig | recon) & 0x7FFF_FFFF == 0;
        // Eager bitwise logic (no short-circuit branches) so the whole
        // classification if-converts and vectorizes.
        let outlier = (orig != recon)
            & ((exp_o == 255) | (!se_match & !both_zero) | (se_match & (diff >= mantissa_limit)));
        flags[j] = outlier as u8;
        errs[j] = if outlier { 0 } else { diff };
    }
    // Pass 3 — reduce: bitmap word, outlier count, error sum.
    let mut bitmap = 0u64;
    for (j, &f) in flags.iter().enumerate() {
        bitmap |= (f as u64) << j;
    }
    ChunkVerdict {
        bitmap,
        outliers: flags.iter().map(|&f| f as u32).sum::<u32>(),
        err_sum: errs.iter().map(|&e| e as u64).sum::<u64>(),
    }
}

/// 1-D clamped reconstruction (table entry wrapper).
pub(crate) fn reconstruct_1d(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; VALUES_PER_BLOCK]) {
    reconstruct_into_clamped_scalar(Layout::Linear1D, summary, out);
}

/// 2-D clamped reconstruction (table entry wrapper).
pub(crate) fn reconstruct_2d(summary: &[i64; SUMMARY_VALUES], out: &mut [i32; VALUES_PER_BLOCK]) {
    reconstruct_into_clamped_scalar(Layout::Square2D, summary, out);
}
