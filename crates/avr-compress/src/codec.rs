//! The full compression/decompression pipeline (paper Fig. 4).
//!
//! Compression: bias → float-to-fixed → downsample (both layout variants in
//! parallel) → re-decompress → error check → outlier select/compact → pick
//! the best variant → CBUF. Decompression: interpolate → fixed-to-float →
//! unbias → scatter outliers → DBUF.
//!
//! ### The fused hot path
//!
//! This module implements the pipeline as a *fused, allocation-free* kernel
//! (the pre-refactor per-stage version survives as
//! [`crate::reference::compress_reference`] and is kept bit-identical by
//! property tests):
//!
//! * the float→fixed conversion runs once and is shared by both variants;
//! * both layouts' summaries are computed in a single pass
//!   ([`crate::downsample`]);
//! * reconstruction uses compile-time (anchor, weight) tables
//!   ([`reconstruct_into`]);
//! * the fixed→float conversion and the error check are fused into flat
//!   branch-free chunked loops over the 256 values that the autovectorizer
//!   can digest, interleaving both variants;
//! * a variant **early-aborts** as soon as its outlier count exceeds what
//!   `max_lines` can hold — incompressible (noise) blocks bail out without
//!   paying for the full evaluation;
//! * all scratch storage lives in a reusable [`CompressScratch`] (owned by
//!   [`Compressor`]) and outliers pack into the inline
//!   [`OutlierVec`]: the steady-state path
//!   performs **zero heap allocations**;
//! * the four hot loops (conversion, dual downsample, reconstruction,
//!   chunked error check) dispatch once per call to the active explicit
//!   SIMD arm ([`crate::simd`]): SSE2/AVX2 on x86-64, the scalar loops
//!   everywhere else — all arms bit-identical.
//!
//! Failure-order semantics: the size cap is checked before the average
//! error (the cap is what the early abort can decide without finishing the
//! block). A block failing both reports `TooManyOutliers`.

use crate::bias::choose_bias;
use crate::block::{CompressedBlock, Layout, Method, SUMMARY_VALUES};
use crate::convert::{unbias, Fixed, FRAC_BITS};
use crate::error::Thresholds;
use crate::interp::reconstruct_into;
use crate::latency::Latency;
use crate::outlier::{compact_outliers_into, scatter_outliers, OutlierVec, BITMAP_WORDS};
use crate::simd;
use avr_types::{BlockData, DataType, CL_BYTES, VALUES_PER_BLOCK};

/// Why a compression attempt was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CompressFailure {
    /// Summary + bitmap + outliers would exceed the compressed-size cap.
    /// When the fused path aborts a block early, `lines_needed` is computed
    /// from the outlier count at the abort point: a lower bound on the true
    /// size, always greater than `max_lines`.
    TooManyOutliers { lines_needed: usize },
    /// The average relative error of non-outliers exceeds T2.
    AvgErrorTooHigh { avg_err: f64 },
}

/// A successful compression: the compressed block plus the value-feedback
/// view (what any subsequent reader of the block will observe).
#[derive(Clone, Debug)]
pub struct CompressOutcome {
    pub compressed: CompressedBlock,
    /// `decompress(compressed)` — approximate values with exact outliers.
    pub reconstructed: BlockData,
    pub avg_err: f64,
    pub outlier_count: usize,
}

// ----------------------------------------------------------------------
// Scratch storage
// ----------------------------------------------------------------------

/// Per-variant scratch arrays. Reconstruction is stored clamped to i32
/// (what the fixed→float write-out sees anyway) so the conversion loops
/// work on packed 32-bit lanes.
#[derive(Clone)]
struct VariantScratch {
    summary: [Fixed; SUMMARY_VALUES],
    recon_fixed: [i32; VALUES_PER_BLOCK],
    recon_words: [u32; VALUES_PER_BLOCK],
    bitmap: [u64; BITMAP_WORDS],
}

impl VariantScratch {
    const fn new() -> Self {
        VariantScratch {
            summary: [0; SUMMARY_VALUES],
            recon_fixed: [0; VALUES_PER_BLOCK],
            recon_words: [0; VALUES_PER_BLOCK],
            bitmap: [0; BITMAP_WORDS],
        }
    }
}

/// Reusable scratch buffers for the fused compression kernel (~9 KB).
/// [`Compressor`] owns one; the free [`compress`] function keeps one on the
/// stack. Either way the kernel itself never touches the heap.
#[derive(Clone)]
pub struct CompressScratch {
    fixed: [i32; VALUES_PER_BLOCK],
    vars: [VariantScratch; 2],
}

impl CompressScratch {
    pub const fn new() -> Self {
        CompressScratch {
            fixed: [0; VALUES_PER_BLOCK],
            vars: [VariantScratch::new(), VariantScratch::new()],
        }
    }
}

impl Default for CompressScratch {
    fn default() -> Self {
        CompressScratch::new()
    }
}

impl std::fmt::Debug for CompressScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CompressScratch { .. }")
    }
}

// ----------------------------------------------------------------------
// Fused kernel helpers
// ----------------------------------------------------------------------

const FIXED_MIN: i64 = i32::MIN as i64;
const FIXED_MAX: i64 = i32::MAX as i64;

/// Multiplying by 2^-23 is bit-identical to dividing by 2^23 (both are
/// exact power-of-two exponent shifts in IEEE-754 double precision).
const F32_SCALE: f64 = 1.0 / (1u64 << FRAC_BITS) as f64;

/// Maximum outlier count representable within `max_lines` cachelines:
/// 64 B summary + 32 B bitmap + 4n B ≤ 64·max_lines B. A count beyond this
/// can never fit, so a variant crossing it aborts.
#[inline]
fn outlier_cap(max_lines: usize) -> usize {
    (max_lines * CL_BYTES).saturating_sub(CL_BYTES + BITMAP_WORDS * 8) / 4
}

/// Compressed size in cachelines for a given outlier count (mirrors
/// [`CompressedBlock::size_lines`]).
#[inline]
pub(crate) fn lines_for_outliers(n: usize) -> usize {
    let bytes = if n == 0 { CL_BYTES } else { CL_BYTES + BITMAP_WORDS * 8 + 4 * n };
    bytes.div_ceil(CL_BYTES)
}

/// Running totals of one variant's error check.
#[derive(Clone, Copy, Default)]
struct VariantCheck {
    outliers: u32,
    /// Integer sum of mantissa differences (F32 path). Each non-outlier's
    /// relative error is diff·2^-23 with diff < 2^23; the f64 running sum
    /// the hardware-model accumulates is therefore *exact*, and equals
    /// `err_int as f64 * 2^-23` — keeping this integral keeps the fused
    /// loop free of float ops while staying bit-identical.
    err_int: u64,
    /// Sequential f64 error sum (Fixed32 path, where per-value division
    /// makes the running sum order-sensitive).
    err_f: f64,
    aborted: bool,
}

impl VariantCheck {
    /// Average relative error over non-outliers, replicating
    /// `ErrorCheck::avg_err` bit-for-bit.
    fn avg_err(&self, dt: DataType) -> f64 {
        let non = VALUES_PER_BLOCK as u32 - self.outliers;
        if non == 0 {
            return 0.0;
        }
        let sum = match dt {
            DataType::F32 => self.err_int as f64 * F32_SCALE,
            DataType::Fixed32 => self.err_f,
        };
        sum / non as f64
    }
}

/// Fused fixed→float + unbias + error-check over one 64-value chunk of one
/// variant (F32) — dispatched to the active SIMD arm (the scalar arm is
/// [`crate::simd::scalar::check_chunk_f32`]; all arms are bit-identical).
#[inline]
fn check_chunk_f32(
    kern: &simd::CodecKernels,
    words: &[u32; VALUES_PER_BLOCK],
    var: &mut VariantScratch,
    chunk: usize,
    neg_bias: i32,
    mantissa_limit: u32,
    check: &mut VariantCheck,
) {
    let base = chunk * simd::CHUNK;
    let rf: &[i32; simd::CHUNK] = var.recon_fixed[base..base + simd::CHUNK].try_into().unwrap();
    let rw: &mut [u32; simd::CHUNK] =
        (&mut var.recon_words[base..base + simd::CHUNK]).try_into().unwrap();
    let ow: &[u32; simd::CHUNK] = words[base..base + simd::CHUNK].try_into().unwrap();
    let verdict = (kern.check_chunk_f32)(ow, rf, rw, neg_bias, mantissa_limit);
    var.bitmap[chunk] = verdict.bitmap;
    check.outliers += verdict.outliers;
    check.err_int += verdict.err_sum;
}

/// Fused fixed→float + error-check over one 64-value chunk (Fixed32).
/// The relative-error sum divides per value, so accumulation stays scalar
/// and in index order to remain bit-identical to the streaming reference.
#[inline]
fn check_chunk_fixed(
    words: &[u32; VALUES_PER_BLOCK],
    var: &mut VariantScratch,
    chunk: usize,
    n_msbit: u32,
    check: &mut VariantCheck,
) {
    let base = chunk * 64;
    let mut bits_out = 0u64;
    for j in 0..64 {
        let i = base + j;
        let recon = var.recon_fixed[i] as u32;
        var.recon_words[i] = recon;
        let orig = words[i] as i32;
        let rec = recon as i32;
        let outlier = if orig == rec {
            false
        } else if orig == 0 {
            true
        } else {
            let diff = (orig as i64 - rec as i64).unsigned_abs();
            let mag = (orig as i64).unsigned_abs();
            if diff << n_msbit > mag {
                true
            } else {
                check.err_f += diff as f64 / mag as f64;
                false
            }
        };
        bits_out |= (outlier as u64) << j;
        check.outliers += outlier as u32;
    }
    var.bitmap[chunk] = bits_out;
}

// ----------------------------------------------------------------------
// The fused compress
// ----------------------------------------------------------------------

/// Compress one memory block into caller-provided scratch, trying both
/// layout variants and keeping the better one (fewer outliers, then lower
/// average error — smaller compressed size wins, matching the hardware's
/// "best compression" selection).
pub fn compress_with(
    scratch: &mut CompressScratch,
    block: &BlockData,
    dt: DataType,
    th: &Thresholds,
    max_lines: usize,
) -> Result<CompressOutcome, CompressFailure> {
    // The format cannot express more than a whole block of lines, and the
    // inline outlier buffer is sized to that bound.
    assert!(max_lines <= avr_types::LINES_PER_BLOCK, "max_lines {max_lines} > 16");
    // The single dispatch point: every hot loop below runs on this arm.
    let kern = simd::kernels();
    let bias = match dt {
        DataType::F32 => choose_bias(&block.words).value(),
        DataType::Fixed32 => 0,
    };
    match dt {
        DataType::F32 => (kern.to_fixed_f32)(&block.words, bias, &mut scratch.fixed),
        DataType::Fixed32 => {
            // Native fixed data converts by reinterpretation.
            for (f, &w) in scratch.fixed.iter_mut().zip(&block.words) {
                *f = w as i32;
            }
        }
    }

    // Both summaries in one sweep, then both reconstructions — straight
    // through the fetched kernel table (not the public wrappers), so one
    // compress never re-dispatches or mixes arms. The wide reconstruction
    // arms' i32-range precondition holds by construction here: every
    // summary value is a sub-block average of i32 fixed values.
    let (v0, v1) = {
        let [a, b] = &mut scratch.vars;
        (a, b)
    };
    (kern.downsample_both)(&scratch.fixed, &mut v0.summary, &mut v1.summary);
    (kern.reconstruct_1d)(&v0.summary, &mut v0.recon_fixed);
    (kern.reconstruct_2d)(&v1.summary, &mut v1.recon_fixed);

    // Interleaved error checks with early abort at the outlier cap.
    let cap = outlier_cap(max_lines) as u32;
    let neg_bias = bias.wrapping_neg() as i32;
    let mut checks = [VariantCheck::default(), VariantCheck::default()];
    for chunk in 0..BITMAP_WORDS {
        for (vi, var) in [&mut *v0, &mut *v1].into_iter().enumerate() {
            let c = &mut checks[vi];
            if c.aborted {
                continue;
            }
            match dt {
                DataType::F32 => check_chunk_f32(
                    kern,
                    &block.words,
                    var,
                    chunk,
                    neg_bias,
                    th.mantissa_limit(),
                    c,
                ),
                DataType::Fixed32 => check_chunk_fixed(&block.words, var, chunk, th.n_msbit, c),
            }
            if c.outliers > cap {
                c.aborted = true;
            }
        }
        if checks[0].aborted && checks[1].aborted {
            // Neither variant can fit max_lines; the counts at the abort
            // point lower-bound the true sizes.
            let n = checks[0].outliers.min(checks[1].outliers) as usize;
            return Err(CompressFailure::TooManyOutliers { lines_needed: lines_for_outliers(n) });
        }
    }

    // Winner selection, identical ordering to the reference: fewer
    // outliers, then lower average error, ties to the 1-D layout. An
    // aborted variant has strictly more outliers than a surviving one.
    let pick0 = match (checks[0].aborted, checks[1].aborted) {
        (false, true) => true,
        (true, false) => false,
        _ => {
            let (o0, o1) = (checks[0].outliers, checks[1].outliers);
            o0 < o1 || (o0 == o1 && checks[0].avg_err(dt) <= checks[1].avg_err(dt))
        }
    };
    let (win, layout) = if pick0 { (&*v0, Layout::Linear1D) } else { (&*v1, Layout::Square2D) };
    let check = &checks[if pick0 { 0 } else { 1 }];
    let avg_err = check.avg_err(dt);

    let mut summary = [0i32; SUMMARY_VALUES];
    for (s, &v) in summary.iter_mut().zip(&win.summary) {
        *s = v.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
    let mut outliers = OutlierVec::new();
    compact_outliers_into(&block.words, &win.bitmap, &mut outliers);
    let compressed = CompressedBlock {
        method: Method { layout, dtype: dt },
        bias,
        summary,
        bitmap: win.bitmap,
        outliers,
    };
    let lines = compressed.size_lines();
    if lines > max_lines {
        return Err(CompressFailure::TooManyOutliers { lines_needed: lines });
    }
    if avg_err > th.t2 {
        return Err(CompressFailure::AvgErrorTooHigh { avg_err });
    }

    // Value feedback: non-outliers become their reconstruction, outliers
    // stay exact.
    let mut recon = BlockData { words: win.recon_words };
    scatter_outliers(&mut recon.words, &compressed.bitmap, &compressed.outliers);
    Ok(CompressOutcome {
        avg_err,
        outlier_count: compressed.outliers.len(),
        compressed,
        reconstructed: recon,
    })
}

/// Compress one memory block with stack-local scratch (no heap use; for
/// the steady-state hot path prefer a [`Compressor`], which reuses its
/// scratch across calls).
pub fn compress(
    block: &BlockData,
    dt: DataType,
    th: &Thresholds,
    max_lines: usize,
) -> Result<CompressOutcome, CompressFailure> {
    let mut scratch = CompressScratch::new();
    compress_with(&mut scratch, block, dt, th, max_lines)
}

/// Decompress a compressed block back into 256 raw words.
pub fn decompress(cb: &CompressedBlock) -> BlockData {
    let mut summary = [0i64; SUMMARY_VALUES];
    for (s, &v) in summary.iter_mut().zip(&cb.summary) {
        *s = v as i64;
    }
    let mut recon_fixed = [0i64; VALUES_PER_BLOCK];
    reconstruct_into(cb.method.layout, &summary, &mut recon_fixed);
    let mut words = [0u32; VALUES_PER_BLOCK];
    match cb.method.dtype {
        DataType::F32 => {
            let neg_bias = cb.bias.wrapping_neg() as i32;
            for (w, &v) in words.iter_mut().zip(&recon_fixed) {
                let f = (v.clamp(FIXED_MIN, FIXED_MAX) as f64) * F32_SCALE;
                *w = unbias((f as f32).to_bits(), neg_bias);
            }
        }
        DataType::Fixed32 => {
            for (w, &v) in words.iter_mut().zip(&recon_fixed) {
                *w = (v.clamp(FIXED_MIN, FIXED_MAX) as i32) as u32;
            }
        }
    }
    scatter_outliers(&mut words, &cb.bitmap, &cb.outliers);
    BlockData { words }
}

/// Convenience: the value-feedback transform `decompress ∘ compress`, or
/// `None` if the block does not compress.
pub fn reconstruct(
    block: &BlockData,
    dt: DataType,
    th: &Thresholds,
    max_lines: usize,
) -> Option<BlockData> {
    compress(block, dt, th, max_lines).ok().map(|o| o.reconstructed)
}

/// A reusable compressor front-end bundling thresholds, the latency model,
/// reusable scratch buffers and attempt statistics — the "AVR layer"
/// module of Fig. 1.
#[derive(Clone, Debug)]
pub struct Compressor {
    pub thresholds: Thresholds,
    pub latency: Latency,
    pub max_lines: usize,
    pub attempts: u64,
    pub failures: u64,
    pub blocks_compressed: u64,
    pub compressed_lines_total: u64,
    scratch: CompressScratch,
}

impl Compressor {
    pub fn new(thresholds: Thresholds, max_lines: usize) -> Self {
        Compressor {
            thresholds,
            latency: Latency::default(),
            max_lines,
            attempts: 0,
            failures: 0,
            blocks_compressed: 0,
            compressed_lines_total: 0,
            scratch: CompressScratch::new(),
        }
    }

    /// Attempt compression, updating statistics. Reuses the compressor's
    /// scratch buffers: zero heap allocations per call.
    pub fn compress(
        &mut self,
        block: &BlockData,
        dt: DataType,
    ) -> Result<CompressOutcome, CompressFailure> {
        self.attempts += 1;
        let th = self.thresholds;
        match compress_with(&mut self.scratch, block, dt, &th, self.max_lines) {
            Ok(o) => {
                self.blocks_compressed += 1;
                self.compressed_lines_total += o.compressed.size_lines() as u64;
                Ok(o)
            }
            Err(e) => {
                self.failures += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::VALUES_PER_LINE;

    fn th() -> Thresholds {
        Thresholds::paper_default()
    }

    fn f32_block(mut f: impl FnMut(usize) -> f32) -> BlockData {
        let mut b = BlockData::default();
        for (i, w) in b.words.iter_mut().enumerate() {
            *w = f(i).to_bits();
        }
        b
    }

    #[test]
    fn constant_block_compresses_16_to_1() {
        let b = f32_block(|_| 42.5);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(o.outlier_count, 0);
        assert_eq!(o.compressed.size_lines(), 1);
        assert_eq!(o.compressed.ratio(), 16.0);
        // Reconstruction of a constant is (nearly) exact.
        for w in o.reconstructed.words {
            let v = f32::from_bits(w);
            assert!((v - 42.5).abs() / 42.5 < 0.001, "{v}");
        }
    }

    #[test]
    fn smooth_2d_field_compresses_well() {
        // A smooth "temperature" field: the kind of data heat/lbm hold.
        let b = f32_block(|i| {
            let (r, c) = ((i / 16) as f32, (i % 16) as f32);
            300.0 + 0.5 * r + 0.3 * c + 0.01 * r * c
        });
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert!(o.compressed.size_lines() <= 2, "{} lines", o.compressed.size_lines());
        assert_eq!(o.compressed.method.layout, Layout::Square2D);
        assert!(o.avg_err <= 0.01);
    }

    #[test]
    fn smooth_1d_ramp_prefers_linear_layout() {
        let b = f32_block(|i| 1000.0 + i as f32 * 0.25);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(o.compressed.method.layout, Layout::Linear1D);
        assert_eq!(o.outlier_count, 0);
    }

    #[test]
    fn decompress_matches_reconstructed_view() {
        // Gentle sinusoid: curvature low enough that downsampling error
        // stays within T1 for most values.
        let b = f32_block(|i| (i as f32 * 0.02).sin() * 50.0 + 120.0);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(decompress(&o.compressed), o.reconstructed);
    }

    #[test]
    fn outliers_are_exact_in_reconstruction() {
        // Smooth field with a few spikes: spikes must come back bit-exact.
        let spike_at = [37usize, 120, 200];
        let b =
            f32_block(
                |i| {
                    if spike_at.contains(&i) {
                        -9.75e6
                    } else {
                        64.0 + (i % 16) as f32 * 0.01
                    }
                },
            );
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert!(o.outlier_count >= spike_at.len());
        for &i in &spike_at {
            assert!(o.compressed.is_outlier(i));
            assert_eq!(o.reconstructed.words[i], b.words[i], "spike {i} must be exact");
        }
    }

    #[test]
    fn non_outliers_respect_t1() {
        let b = f32_block(|i| ((i as f32) * 0.37).cos() * 10.0 + 80.0);
        if let Ok(o) = compress(&b, DataType::F32, &th(), 8) {
            for i in 0..VALUES_PER_BLOCK {
                if !o.compressed.is_outlier(i) {
                    let orig = f32::from_bits(b.words[i]) as f64;
                    let rec = f32::from_bits(o.reconstructed.words[i]) as f64;
                    if orig != 0.0 {
                        let rel = ((rec - orig) / orig).abs();
                        assert!(rel <= th().t1 + 1e-9, "value {i}: rel {rel}");
                    }
                }
            }
        }
    }

    #[test]
    fn random_noise_fails_to_compress() {
        // White noise has no inter-value similarity: nearly every value is
        // an outlier, blowing the size cap.
        let mut state = 0x1234_5678u32;
        let b = f32_block(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state as f32 / u32::MAX as f32) * 2000.0 - 1000.0
        });
        let r = compress(&b, DataType::F32, &th(), 8);
        assert!(matches!(r, Err(CompressFailure::TooManyOutliers { .. })), "{r:?}");
    }

    #[test]
    fn all_zero_block_is_one_line() {
        let b = BlockData::default();
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(o.compressed.size_lines(), 1);
        assert_eq!(o.reconstructed, b);
    }

    #[test]
    fn fixed_point_block_compresses() {
        let mut b = BlockData::default();
        for (i, w) in b.words.iter_mut().enumerate() {
            // Smooth Q16.16 ramp around 100.0.
            *w = ((100 << 16) + (i as i32) * 300) as u32;
        }
        let o = compress(&b, DataType::Fixed32, &th(), 8).unwrap();
        assert_eq!(o.compressed.method.dtype, DataType::Fixed32);
        assert!(o.compressed.size_lines() <= 2);
        assert_eq!(decompress(&o.compressed), o.reconstructed);
    }

    #[test]
    fn huge_values_bias_and_compress() {
        let b = f32_block(|i| 3.0e18 + (i as f32) * 1.0e14);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_ne!(o.compressed.bias, 0);
        assert!(o.outlier_count < 20, "{}", o.outlier_count);
    }

    #[test]
    fn compressor_tracks_stats() {
        let mut c = Compressor::new(th(), 8);
        let smooth = f32_block(|i| 10.0 + i as f32 * 0.001);
        let mut state = 7u32;
        let noise = f32_block(|_| {
            state = state.wrapping_mul(48271);
            state as f32
        });
        c.compress(&smooth, DataType::F32).unwrap();
        let _ = c.compress(&noise, DataType::F32);
        assert_eq!(c.attempts, 2);
        assert_eq!(c.blocks_compressed, 1);
        assert_eq!(c.failures, 1);
    }

    #[test]
    fn compressor_scratch_is_reusable_across_outcomes() {
        // Interleave compressible and incompressible blocks through one
        // Compressor: stale scratch from an aborted attempt must never
        // leak into the next result.
        let mut c = Compressor::new(th(), 8);
        let smooth = f32_block(|i| 10.0 + i as f32 * 0.001);
        let mut state = 99u32;
        let noise = f32_block(|_| {
            state = state.wrapping_mul(48271).wrapping_add(13);
            (state as f32 / u32::MAX as f32) * 2.0e6 - 1.0e6
        });
        let first = c.compress(&smooth, DataType::F32).unwrap();
        assert!(c.compress(&noise, DataType::F32).is_err());
        let again = c.compress(&smooth, DataType::F32).unwrap();
        assert_eq!(first.compressed, again.compressed);
        assert_eq!(first.reconstructed, again.reconstructed);
    }

    #[test]
    fn nan_values_become_outliers_and_stay_exact() {
        let nan_at = 99usize;
        let b = f32_block(|i| if i == nan_at { f32::NAN } else { 70.0 + (i % 7) as f32 * 0.01 });
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert!(o.compressed.is_outlier(nan_at));
        assert_eq!(o.reconstructed.words[nan_at], b.words[nan_at]);
        // The NaN converts to fixed 0 and drags its sub-block average down,
        // turning the whole neighbourhood into outliers — but the block must
        // still fit the 8-line cap and every non-NaN value must survive.
        assert!(o.compressed.size_lines() <= 8);
        for (i, (&ow, &bw)) in o.reconstructed.words.iter().zip(&b.words).enumerate() {
            if i != nan_at && o.compressed.is_outlier(i) {
                assert_eq!(ow, bw);
            }
        }
    }

    #[test]
    fn per_line_serialization_size_is_consistent() {
        // size_lines x 64B always >= size_bytes, < size_bytes + 64.
        let b = f32_block(|i| if i % 31 == 0 { 1.0e9 } else { 55.0 });
        if let Ok(o) = compress(&b, DataType::F32, &th(), 8) {
            let lines = o.compressed.size_lines() * VALUES_PER_LINE * 4;
            assert!(lines >= o.compressed.size_bytes());
            assert!(lines < o.compressed.size_bytes() + 64);
        }
    }

    #[test]
    fn outlier_cap_matches_size_lines() {
        // The abort cap must be exactly the largest count whose compressed
        // size still fits, for every max_lines the CMT can encode.
        for max_lines in 1..=16usize {
            let cap = outlier_cap(max_lines);
            assert!(lines_for_outliers(cap) <= max_lines, "cap {cap} @ {max_lines}");
            assert!(lines_for_outliers(cap + 1) > max_lines, "cap {cap} @ {max_lines}");
        }
        assert_eq!(outlier_cap(8), 104); // the paper's 2:1 worst case
    }
}
