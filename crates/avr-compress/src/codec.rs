//! The full compression/decompression pipeline (paper Fig. 4).
//!
//! Compression: bias → float-to-fixed → downsample (both layout variants in
//! parallel) → re-decompress → error check → outlier select/compact → pick
//! the best variant → CBUF. Decompression: interpolate → fixed-to-float →
//! unbias → scatter outliers → DBUF.

use crate::bias::choose_bias;
use crate::block::{CompressedBlock, Layout, Method, SUMMARY_VALUES};
use crate::convert::{from_fixed, to_fixed, Fixed};
use crate::downsample::downsample;
use crate::error::{check_value, ErrorCheck, Thresholds};
use crate::interp::reconstruct_summary;
use crate::latency::Latency;
use crate::outlier::{build_bitmap, compact_outliers, scatter_outliers};
use avr_types::{BlockData, DataType, VALUES_PER_BLOCK};

/// Why a compression attempt was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CompressFailure {
    /// Summary + bitmap + outliers would exceed the compressed-size cap.
    TooManyOutliers { lines_needed: usize },
    /// The average relative error of non-outliers exceeds T2.
    AvgErrorTooHigh { avg_err: f64 },
}

/// A successful compression: the compressed block plus the value-feedback
/// view (what any subsequent reader of the block will observe).
#[derive(Clone, Debug)]
pub struct CompressOutcome {
    pub compressed: CompressedBlock,
    /// `decompress(compressed)` — approximate values with exact outliers.
    pub reconstructed: BlockData,
    pub avg_err: f64,
    pub outlier_count: usize,
}

struct Variant {
    layout: Layout,
    summary: [Fixed; SUMMARY_VALUES],
    recon_words: [u32; VALUES_PER_BLOCK],
    flags: [bool; VALUES_PER_BLOCK],
    check: ErrorCheck,
}

fn try_variant(
    layout: Layout,
    words: &[u32; VALUES_PER_BLOCK],
    fixed: &[Fixed; VALUES_PER_BLOCK],
    dt: DataType,
    bias: i8,
    th: &Thresholds,
) -> Variant {
    let summary = downsample(layout, fixed);
    let recon_fixed = reconstruct_summary(layout, &summary);
    let mut recon_words = [0u32; VALUES_PER_BLOCK];
    let mut flags = [false; VALUES_PER_BLOCK];
    let mut check = ErrorCheck::default();
    for i in 0..VALUES_PER_BLOCK {
        recon_words[i] = from_fixed(recon_fixed[i], dt, bias);
        let v = check_value(words[i], recon_words[i], dt, th);
        flags[i] = v.outlier;
        check.push(v);
    }
    Variant { layout, summary, recon_words, flags, check }
}

/// Compress one memory block, trying both layout variants and keeping the
/// better one (fewer outliers, then lower average error — smaller compressed
/// size wins, matching the hardware's "best compression" selection).
pub fn compress(
    block: &BlockData,
    dt: DataType,
    th: &Thresholds,
    max_lines: usize,
) -> Result<CompressOutcome, CompressFailure> {
    let bias = match dt {
        DataType::F32 => choose_bias(&block.words).value(),
        DataType::Fixed32 => 0,
    };
    let mut fixed = [0i64; VALUES_PER_BLOCK];
    for (f, &w) in fixed.iter_mut().zip(&block.words) {
        *f = to_fixed(w, dt, bias);
    }

    let v1 = try_variant(Layout::Linear1D, &block.words, &fixed, dt, bias, th);
    let v2 = try_variant(Layout::Square2D, &block.words, &fixed, dt, bias, th);
    let best = {
        let (o1, o2) = (v1.check.outliers(), v2.check.outliers());
        if o1 < o2 || (o1 == o2 && v1.check.avg_err() <= v2.check.avg_err()) {
            v1
        } else {
            v2
        }
    };

    if !best.check.passes(th) {
        return Err(CompressFailure::AvgErrorTooHigh { avg_err: best.check.avg_err() });
    }

    let bitmap = build_bitmap(&best.flags);
    let outliers = compact_outliers(&block.words, &bitmap);
    let mut summary = [0i32; SUMMARY_VALUES];
    for (s, &v) in summary.iter_mut().zip(&best.summary) {
        *s = v.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
    let compressed = CompressedBlock {
        method: Method { layout: best.layout, dtype: dt },
        bias,
        summary,
        bitmap,
        outliers,
    };
    let lines = compressed.size_lines();
    if lines > max_lines {
        return Err(CompressFailure::TooManyOutliers { lines_needed: lines });
    }

    // Value feedback: non-outliers become their reconstruction, outliers
    // stay exact.
    let mut recon = BlockData { words: best.recon_words };
    scatter_outliers(&mut recon.words, &compressed.bitmap, &compressed.outliers);
    Ok(CompressOutcome {
        avg_err: best.check.avg_err(),
        outlier_count: compressed.outlier_count(),
        compressed,
        reconstructed: recon,
    })
}

/// Decompress a compressed block back into 256 raw words.
pub fn decompress(cb: &CompressedBlock) -> BlockData {
    let mut summary = [0i64; SUMMARY_VALUES];
    for (s, &v) in summary.iter_mut().zip(&cb.summary) {
        *s = v as i64;
    }
    let recon_fixed = reconstruct_summary(cb.method.layout, &summary);
    let mut words = [0u32; VALUES_PER_BLOCK];
    for (w, &f) in words.iter_mut().zip(&recon_fixed) {
        *w = from_fixed(f, cb.method.dtype, cb.bias);
    }
    scatter_outliers(&mut words, &cb.bitmap, &cb.outliers);
    BlockData { words }
}

/// Convenience: the value-feedback transform `decompress ∘ compress`, or
/// `None` if the block does not compress.
pub fn reconstruct(
    block: &BlockData,
    dt: DataType,
    th: &Thresholds,
    max_lines: usize,
) -> Option<BlockData> {
    compress(block, dt, th, max_lines).ok().map(|o| o.reconstructed)
}

/// A reusable compressor front-end bundling thresholds, the latency model
/// and attempt statistics — the "AVR layer" module of Fig. 1.
#[derive(Clone, Debug)]
pub struct Compressor {
    pub thresholds: Thresholds,
    pub latency: Latency,
    pub max_lines: usize,
    pub attempts: u64,
    pub failures: u64,
    pub blocks_compressed: u64,
    pub compressed_lines_total: u64,
}

impl Compressor {
    pub fn new(thresholds: Thresholds, max_lines: usize) -> Self {
        Compressor {
            thresholds,
            latency: Latency::default(),
            max_lines,
            attempts: 0,
            failures: 0,
            blocks_compressed: 0,
            compressed_lines_total: 0,
        }
    }

    /// Attempt compression, updating statistics.
    pub fn compress(
        &mut self,
        block: &BlockData,
        dt: DataType,
    ) -> Result<CompressOutcome, CompressFailure> {
        self.attempts += 1;
        match compress(block, dt, &self.thresholds, self.max_lines) {
            Ok(o) => {
                self.blocks_compressed += 1;
                self.compressed_lines_total += o.compressed.size_lines() as u64;
                Ok(o)
            }
            Err(e) => {
                self.failures += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_types::VALUES_PER_LINE;

    fn th() -> Thresholds {
        Thresholds::paper_default()
    }

    fn f32_block(mut f: impl FnMut(usize) -> f32) -> BlockData {
        let mut b = BlockData::default();
        for (i, w) in b.words.iter_mut().enumerate() {
            *w = f(i).to_bits();
        }
        b
    }

    #[test]
    fn constant_block_compresses_16_to_1() {
        let b = f32_block(|_| 42.5);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(o.outlier_count, 0);
        assert_eq!(o.compressed.size_lines(), 1);
        assert_eq!(o.compressed.ratio(), 16.0);
        // Reconstruction of a constant is (nearly) exact.
        for w in o.reconstructed.words {
            let v = f32::from_bits(w);
            assert!((v - 42.5).abs() / 42.5 < 0.001, "{v}");
        }
    }

    #[test]
    fn smooth_2d_field_compresses_well() {
        // A smooth "temperature" field: the kind of data heat/lbm hold.
        let b = f32_block(|i| {
            let (r, c) = ((i / 16) as f32, (i % 16) as f32);
            300.0 + 0.5 * r + 0.3 * c + 0.01 * r * c
        });
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert!(o.compressed.size_lines() <= 2, "{} lines", o.compressed.size_lines());
        assert_eq!(o.compressed.method.layout, Layout::Square2D);
        assert!(o.avg_err <= 0.01);
    }

    #[test]
    fn smooth_1d_ramp_prefers_linear_layout() {
        let b = f32_block(|i| 1000.0 + i as f32 * 0.25);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(o.compressed.method.layout, Layout::Linear1D);
        assert_eq!(o.outlier_count, 0);
    }

    #[test]
    fn decompress_matches_reconstructed_view() {
        // Gentle sinusoid: curvature low enough that downsampling error
        // stays within T1 for most values.
        let b = f32_block(|i| (i as f32 * 0.02).sin() * 50.0 + 120.0);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(decompress(&o.compressed), o.reconstructed);
    }

    #[test]
    fn outliers_are_exact_in_reconstruction() {
        // Smooth field with a few spikes: spikes must come back bit-exact.
        let spike_at = [37usize, 120, 200];
        let b = f32_block(|i| {
            if spike_at.contains(&i) {
                -9.75e6
            } else {
                64.0 + (i % 16) as f32 * 0.01
            }
        });
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert!(o.outlier_count >= spike_at.len());
        for &i in &spike_at {
            assert!(o.compressed.is_outlier(i));
            assert_eq!(o.reconstructed.words[i], b.words[i], "spike {i} must be exact");
        }
    }

    #[test]
    fn non_outliers_respect_t1() {
        let b = f32_block(|i| ((i as f32) * 0.37).cos() * 10.0 + 80.0);
        if let Ok(o) = compress(&b, DataType::F32, &th(), 8) {
            for i in 0..VALUES_PER_BLOCK {
                if !o.compressed.is_outlier(i) {
                    let orig = f32::from_bits(b.words[i]) as f64;
                    let rec = f32::from_bits(o.reconstructed.words[i]) as f64;
                    if orig != 0.0 {
                        let rel = ((rec - orig) / orig).abs();
                        assert!(rel <= th().t1 + 1e-9, "value {i}: rel {rel}");
                    }
                }
            }
        }
    }

    #[test]
    fn random_noise_fails_to_compress() {
        // White noise has no inter-value similarity: nearly every value is
        // an outlier, blowing the size cap.
        let mut state = 0x1234_5678u32;
        let b = f32_block(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state as f32 / u32::MAX as f32) * 2000.0 - 1000.0
        });
        let r = compress(&b, DataType::F32, &th(), 8);
        assert!(matches!(r, Err(CompressFailure::TooManyOutliers { .. })), "{r:?}");
    }

    #[test]
    fn all_zero_block_is_one_line() {
        let b = BlockData::default();
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_eq!(o.compressed.size_lines(), 1);
        assert_eq!(o.reconstructed, b);
    }

    #[test]
    fn fixed_point_block_compresses() {
        let mut b = BlockData::default();
        for (i, w) in b.words.iter_mut().enumerate() {
            // Smooth Q16.16 ramp around 100.0.
            *w = ((100 << 16) + (i as i32) * 300) as u32;
        }
        let o = compress(&b, DataType::Fixed32, &th(), 8).unwrap();
        assert_eq!(o.compressed.method.dtype, DataType::Fixed32);
        assert!(o.compressed.size_lines() <= 2);
        assert_eq!(decompress(&o.compressed), o.reconstructed);
    }

    #[test]
    fn huge_values_bias_and_compress() {
        let b = f32_block(|i| 3.0e18 + (i as f32) * 1.0e14);
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert_ne!(o.compressed.bias, 0);
        assert!(o.outlier_count < 20, "{}", o.outlier_count);
    }

    #[test]
    fn compressor_tracks_stats() {
        let mut c = Compressor::new(th(), 8);
        let smooth = f32_block(|i| 10.0 + i as f32 * 0.001);
        let mut state = 7u32;
        let noise = f32_block(|_| {
            state = state.wrapping_mul(48271);
            state as f32
        });
        c.compress(&smooth, DataType::F32).unwrap();
        let _ = c.compress(&noise, DataType::F32);
        assert_eq!(c.attempts, 2);
        assert_eq!(c.blocks_compressed, 1);
        assert_eq!(c.failures, 1);
    }

    #[test]
    fn nan_values_become_outliers_and_stay_exact() {
        let nan_at = 99usize;
        let b = f32_block(|i| if i == nan_at { f32::NAN } else { 70.0 + (i % 7) as f32 * 0.01 });
        let o = compress(&b, DataType::F32, &th(), 8).unwrap();
        assert!(o.compressed.is_outlier(nan_at));
        assert_eq!(o.reconstructed.words[nan_at], b.words[nan_at]);
        // The NaN converts to fixed 0 and drags its sub-block average down,
        // turning the whole neighbourhood into outliers — but the block must
        // still fit the 8-line cap and every non-NaN value must survive.
        assert!(o.compressed.size_lines() <= 8);
        for (i, (&ow, &bw)) in o.reconstructed.words.iter().zip(&b.words).enumerate() {
            if i != nan_at && o.compressed.is_outlier(i) {
                assert_eq!(ow, bw);
            }
        }
    }

    #[test]
    fn per_line_serialization_size_is_consistent() {
        // size_lines x 64B always >= size_bytes, < size_bytes + 64.
        let b = f32_block(|i| if i % 31 == 0 { 1.0e9 } else { 55.0 });
        if let Ok(o) = compress(&b, DataType::F32, &th(), 8) {
            let lines = o.compressed.size_lines() * VALUES_PER_LINE * 4;
            assert!(lines >= o.compressed.size_bytes());
            assert!(lines < o.compressed.size_bytes() + 64);
        }
    }
}
