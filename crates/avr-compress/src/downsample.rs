//! Downsampling compressor (paper §3.3, "Compression"; Fig. 5).
//!
//! The block's 256 values are partitioned into sixteen 16-value sub-blocks
//! and each sub-block is replaced by its average, yielding the 16-value
//! summary that fits one cacheline (16:1). Two layout variants are computed
//! in parallel by the hardware and we model both:
//!
//! * **1-D**: the block is a linear array; sub-block `i` covers values
//!   `[16i, 16i+16)`.
//! * **2-D**: the block is a 16×16 row-major square; sub-blocks are 4×4
//!   tiles, tile `(tr, tc)` covering rows `[4tr, 4tr+4)` × cols `[4tc, 4tc+4)`.

use crate::block::{Layout, SUMMARY_VALUES};
use crate::convert::Fixed;
use avr_types::VALUES_PER_BLOCK;

/// Side of the 2-D block view.
pub const GRID: usize = 16;
/// Side of a 2-D sub-block tile.
pub const TILE: usize = 4;
/// Values per sub-block (both layouts).
pub const SUB_BLOCK: usize = 16;

/// Map a value index to its sub-block for the given layout.
#[inline]
pub fn sub_block_of(layout: Layout, idx: usize) -> usize {
    debug_assert!(idx < VALUES_PER_BLOCK);
    match layout {
        Layout::Linear1D => idx / SUB_BLOCK,
        Layout::Square2D => {
            let (r, c) = (idx / GRID, idx % GRID);
            (r / TILE) * (GRID / TILE) + c / TILE
        }
    }
}

/// Round-to-nearest (ties away from zero) divide of a sub-block sum by 16,
/// as the fixed-point averaging tree would.
#[inline]
pub(crate) fn round_avg(s: i64) -> i64 {
    let half = if s >= 0 { SUB_BLOCK as i64 / 2 } else { -(SUB_BLOCK as i64) / 2 };
    (s + half) / SUB_BLOCK as i64
}

/// Average each sub-block, rounding to nearest (ties away from zero), as the
/// fixed-point averaging tree would.
pub fn downsample(layout: Layout, fixed: &[Fixed; VALUES_PER_BLOCK]) -> [Fixed; SUMMARY_VALUES] {
    let mut sums = [0i64; SUMMARY_VALUES];
    for (idx, &v) in fixed.iter().enumerate() {
        sums[sub_block_of(layout, idx)] += v;
    }
    let mut out = [0i64; SUMMARY_VALUES];
    for (o, s) in out.iter_mut().zip(&sums) {
        *o = round_avg(*s);
    }
    out
}

/// Compute both layouts' summaries in a single pass over the block — the
/// hardware evaluates the variants in parallel; in software one sweep fills
/// both sum arrays with pure strided indexing (no per-value div/mod). The
/// input is the fixed-domain block as i32 (every `to_fixed` output fits);
/// sums widen to i64. Dispatches to the active SIMD arm
/// ([`crate::simd::kernels`]); all arms are bit-identical.
pub fn downsample_both(
    fixed: &[i32; VALUES_PER_BLOCK],
    out_1d: &mut [Fixed; SUMMARY_VALUES],
    out_2d: &mut [Fixed; SUMMARY_VALUES],
) {
    (crate::simd::kernels().downsample_both)(fixed, out_1d, out_2d)
}

/// The portable single-sweep loop ([`downsample_both`]'s scalar arm).
pub(crate) fn downsample_both_scalar(
    fixed: &[i32; VALUES_PER_BLOCK],
    out_1d: &mut [Fixed; SUMMARY_VALUES],
    out_2d: &mut [Fixed; SUMMARY_VALUES],
) {
    let mut sums_1d = [0i64; SUMMARY_VALUES];
    let mut sums_2d = [0i64; SUMMARY_VALUES];
    for (r, row) in fixed.chunks_exact(GRID).enumerate() {
        // 1-D sub-block r covers exactly this 16-value row.
        let mut s1 = 0i64;
        // 2-D: row r contributes to tiles (r/4)*4 + 0..4, four values each.
        let tile_base = (r / TILE) * (GRID / TILE);
        for (j, quad) in row.chunks_exact(TILE).enumerate() {
            let q: i64 = quad.iter().map(|&v| v as i64).sum();
            sums_2d[tile_base + j] += q;
            s1 += q;
        }
        sums_1d[r] = s1;
    }
    for i in 0..SUMMARY_VALUES {
        out_1d[i] = round_avg(sums_1d[i]);
        out_2d[i] = round_avg(sums_2d[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_partition_is_contiguous() {
        for i in 0..VALUES_PER_BLOCK {
            assert_eq!(sub_block_of(Layout::Linear1D, i), i / 16);
        }
    }

    #[test]
    fn square_partition_is_4x4_tiles() {
        // Value at row 5, col 9 -> tile row 1, tile col 2 -> tile 6.
        assert_eq!(sub_block_of(Layout::Square2D, 5 * 16 + 9), 6);
        // Each tile has exactly 16 members.
        let mut counts = [0usize; SUMMARY_VALUES];
        for i in 0..VALUES_PER_BLOCK {
            counts[sub_block_of(Layout::Square2D, i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 16));
    }

    #[test]
    fn constant_block_averages_exactly() {
        let fixed = [12345i64; VALUES_PER_BLOCK];
        for layout in [Layout::Linear1D, Layout::Square2D] {
            let s = downsample(layout, &fixed);
            assert!(s.iter().all(|&v| v == 12345));
        }
    }

    #[test]
    fn linear_ramp_averages_midpoints() {
        let mut fixed = [0i64; VALUES_PER_BLOCK];
        for (i, v) in fixed.iter_mut().enumerate() {
            *v = (i as i64) * 32;
        }
        let s = downsample(Layout::Linear1D, &fixed);
        // Sub-block i covers 16i..16i+16, mean = 32*(16i + 7.5) = 512 i + 240.
        for (i, &v) in s.iter().enumerate() {
            assert_eq!(v, 512 * i as i64 + 240);
        }
    }

    #[test]
    fn downsample_both_matches_per_layout_downsample() {
        let mut fixed32 = [0i32; VALUES_PER_BLOCK];
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        for v in fixed32.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((state >> 33) as i64 - (1 << 30)) as i32;
        }
        let mut fixed = [0i64; VALUES_PER_BLOCK];
        for (w, &v) in fixed.iter_mut().zip(&fixed32) {
            *w = v as i64;
        }
        let mut s1 = [0i64; SUMMARY_VALUES];
        let mut s2 = [0i64; SUMMARY_VALUES];
        downsample_both(&fixed32, &mut s1, &mut s2);
        assert_eq!(s1, downsample(Layout::Linear1D, &fixed));
        assert_eq!(s2, downsample(Layout::Square2D, &fixed));
    }

    #[test]
    fn negative_rounding_is_symmetric() {
        let pos = [7i64; VALUES_PER_BLOCK];
        let neg = [-7i64; VALUES_PER_BLOCK];
        let sp = downsample(Layout::Linear1D, &pos);
        let sn = downsample(Layout::Linear1D, &neg);
        for (a, b) in sp.iter().zip(&sn) {
            assert_eq!(*a, -*b);
        }
    }
}
