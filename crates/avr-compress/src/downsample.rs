//! Downsampling compressor (paper §3.3, "Compression"; Fig. 5).
//!
//! The block's 256 values are partitioned into sixteen 16-value sub-blocks
//! and each sub-block is replaced by its average, yielding the 16-value
//! summary that fits one cacheline (16:1). Two layout variants are computed
//! in parallel by the hardware and we model both:
//!
//! * **1-D**: the block is a linear array; sub-block `i` covers values
//!   `[16i, 16i+16)`.
//! * **2-D**: the block is a 16×16 row-major square; sub-blocks are 4×4
//!   tiles, tile `(tr, tc)` covering rows `[4tr, 4tr+4)` × cols `[4tc, 4tc+4)`.

use crate::block::{Layout, SUMMARY_VALUES};
use crate::convert::Fixed;
use avr_types::VALUES_PER_BLOCK;

/// Side of the 2-D block view.
pub const GRID: usize = 16;
/// Side of a 2-D sub-block tile.
pub const TILE: usize = 4;
/// Values per sub-block (both layouts).
pub const SUB_BLOCK: usize = 16;

/// Map a value index to its sub-block for the given layout.
#[inline]
pub fn sub_block_of(layout: Layout, idx: usize) -> usize {
    debug_assert!(idx < VALUES_PER_BLOCK);
    match layout {
        Layout::Linear1D => idx / SUB_BLOCK,
        Layout::Square2D => {
            let (r, c) = (idx / GRID, idx % GRID);
            (r / TILE) * (GRID / TILE) + c / TILE
        }
    }
}

/// Average each sub-block, rounding to nearest (ties away from zero), as the
/// fixed-point averaging tree would.
pub fn downsample(layout: Layout, fixed: &[Fixed; VALUES_PER_BLOCK]) -> [Fixed; SUMMARY_VALUES] {
    let mut sums = [0i64; SUMMARY_VALUES];
    for (idx, &v) in fixed.iter().enumerate() {
        sums[sub_block_of(layout, idx)] += v;
    }
    let mut out = [0i64; SUMMARY_VALUES];
    for (o, s) in out.iter_mut().zip(&sums) {
        // Round-to-nearest divide by 16.
        let half = if *s >= 0 { SUB_BLOCK as i64 / 2 } else { -(SUB_BLOCK as i64) / 2 };
        *o = (s + half) / SUB_BLOCK as i64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_partition_is_contiguous() {
        for i in 0..VALUES_PER_BLOCK {
            assert_eq!(sub_block_of(Layout::Linear1D, i), i / 16);
        }
    }

    #[test]
    fn square_partition_is_4x4_tiles() {
        // Value at row 5, col 9 -> tile row 1, tile col 2 -> tile 6.
        assert_eq!(sub_block_of(Layout::Square2D, 5 * 16 + 9), 6);
        // Each tile has exactly 16 members.
        let mut counts = [0usize; SUMMARY_VALUES];
        for i in 0..VALUES_PER_BLOCK {
            counts[sub_block_of(Layout::Square2D, i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 16));
    }

    #[test]
    fn constant_block_averages_exactly() {
        let fixed = [12345i64; VALUES_PER_BLOCK];
        for layout in [Layout::Linear1D, Layout::Square2D] {
            let s = downsample(layout, &fixed);
            assert!(s.iter().all(|&v| v == 12345));
        }
    }

    #[test]
    fn linear_ramp_averages_midpoints() {
        let mut fixed = [0i64; VALUES_PER_BLOCK];
        for (i, v) in fixed.iter_mut().enumerate() {
            *v = (i as i64) * 32;
        }
        let s = downsample(Layout::Linear1D, &fixed);
        // Sub-block i covers 16i..16i+16, mean = 32*(16i + 7.5) = 512 i + 240.
        for (i, &v) in s.iter().enumerate() {
            assert_eq!(v, 512 * i as i64 + 240);
        }
    }

    #[test]
    fn negative_rounding_is_symmetric() {
        let pos = [7i64; VALUES_PER_BLOCK];
        let neg = [-7i64; VALUES_PER_BLOCK];
        let sp = downsample(Layout::Linear1D, &pos);
        let sn = downsample(Layout::Linear1D, &neg);
        for (a, b) in sp.iter().zip(&sn) {
            assert_eq!(*a, -*b);
        }
    }
}
