//! Exponent biasing (paper §3.3, "Biasing & unbiasing").
//!
//! Before converting a floating-point block to fixed point, a per-block bias
//! is added to every value's exponent so the block lands in the fixed format's
//! representable range with minimal precision loss. Biasing is *skipped* when
//! (a) the block already contains specials (NaN/Inf) or the bias would create
//! them, or (b) the bias would over-/underflow any value's exponent.

/// The biased target: the block's largest magnitude is mapped into
/// [2^6, 2^7), leaving 1 bit of headroom below the Q8.23 limit of 2^8.
pub const TARGET_MAX_EXP: i32 = 133; // biased-exponent field value: 2^(133-127)=2^6

/// Outcome of bias selection for a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BiasDecision {
    /// Apply this bias to every exponent (may be 0 if already in range).
    Bias(i8),
    /// Skip biasing (bias = 0) per the paper's rules; conversion proceeds
    /// with saturation and the error check catches any damage.
    Skip,
}

impl BiasDecision {
    /// The bias to actually apply (0 when skipped).
    pub fn value(self) -> i8 {
        match self {
            BiasDecision::Bias(b) => b,
            BiasDecision::Skip => 0,
        }
    }
}

#[inline]
fn exp_field(bits: u32) -> i32 {
    ((bits >> 23) & 0xFF) as i32
}

/// Choose the block bias per the paper's rules.
///
/// Zeros and denormals carry no usable exponent and are ignored for the
/// min/max scan (denormals quantize to zero in the fixed domain anyway).
pub fn choose_bias(words: &[u32]) -> BiasDecision {
    // Select-based scan (no data-dependent branches, vectorizer-friendly):
    // zeros/denormals are neutral elements of both reductions, and the
    // specials flag is folded in instead of early-returning.
    let mut special = false;
    let mut e_max = 0i32;
    let mut e_min = i32::MAX;
    for &w in words {
        let e = exp_field(w);
        special |= e == 255;
        e_max = e_max.max(e);
        e_min = e_min.min(if e == 0 { i32::MAX } else { e });
    }
    if special {
        // NaN / Inf present: rule (a) — do not bias.
        return BiasDecision::Skip;
    }
    if e_max == 0 {
        // All-zero (or denormal) block: nothing to bias.
        return BiasDecision::Bias(0);
    }
    let b = TARGET_MAX_EXP - e_max;
    // Rule (b): the bias may not over- or underflow any value's exponent,
    // and it must fit the CMT's 8-bit signed field.
    if b < i8::MIN as i32 || b > i8::MAX as i32 {
        return BiasDecision::Skip;
    }
    if e_min + b < 1 || e_max + b > 254 {
        return BiasDecision::Skip;
    }
    BiasDecision::Bias(b as i8)
}

/// Add `bias` to the exponent field of an f32's bits.
///
/// Zeros pass through unchanged; the caller guarantees (via [`choose_bias`])
/// that the result cannot overflow into specials. Out-of-range results clamp
/// defensively (underflow → 0, overflow → max finite) so the simulator never
/// manufactures NaNs.
#[inline]
pub fn apply_bias(bits: u32, bias: i8) -> u32 {
    if bias == 0 {
        return bits;
    }
    let e = exp_field(bits);
    if e == 0 {
        return bits & 0x8000_0000; // flush denormals, keep signed zero
    }
    let e2 = e + bias as i32;
    let sign = bits & 0x8000_0000;
    if e2 <= 0 {
        return sign; // underflow to signed zero
    }
    if e2 >= 255 {
        return sign | 0x7F7F_FFFF; // clamp to max finite
    }
    (bits & 0x807F_FFFF) | ((e2 as u32) << 23)
}

/// Subtract `bias` from the exponent field — the decompressor's 1-cycle
/// unbias step.
#[inline]
pub fn remove_bias(bits: u32, bias: i8) -> u32 {
    apply_bias(bits, bias.wrapping_neg())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bias_of(vals: &[f32]) -> BiasDecision {
        let bits: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
        choose_bias(&bits)
    }

    #[test]
    fn in_range_block_gets_zero_ish_bias() {
        // Values around 64..128 already sit at the target exponent.
        let d = bias_of(&[100.0, 90.0, 70.0]);
        assert_eq!(d, BiasDecision::Bias(0));
    }

    #[test]
    fn large_values_bias_down() {
        let d = bias_of(&[1.0e10, 2.0e10]);
        let b = match d {
            BiasDecision::Bias(b) => b,
            _ => panic!("expected bias"),
        };
        assert!(b < 0);
        // After biasing, the max lands in [64, 128).
        let biased = f32::from_bits(apply_bias(2.0e10f32.to_bits(), b));
        assert!((64.0..128.0).contains(&biased), "{biased}");
    }

    #[test]
    fn small_values_bias_up() {
        let d = bias_of(&[1.0e-12, 3.0e-12]);
        let b = d.value();
        assert!(b > 0);
        let biased = f32::from_bits(apply_bias(3.0e-12f32.to_bits(), b));
        assert!((64.0..128.0).contains(&biased), "{biased}");
    }

    #[test]
    fn nan_or_inf_skips() {
        assert_eq!(bias_of(&[1.0, f32::NAN]), BiasDecision::Skip);
        assert_eq!(bias_of(&[1.0, f32::INFINITY]), BiasDecision::Skip);
    }

    #[test]
    fn huge_dynamic_range_skips() {
        // Range wider than the exponent can absorb after biasing. (1e-30 is
        // still a *normal* f32; denormals are ignored by the scan.)
        assert_eq!(bias_of(&[1.0e38, 1.0e-30]), BiasDecision::Skip);
    }

    #[test]
    fn denormals_do_not_widen_the_range() {
        // 1e-40 is denormal: it is ignored, so the block still biases.
        assert!(matches!(bias_of(&[1.0e38, 1.0e-40]), BiasDecision::Bias(_)));
    }

    #[test]
    fn all_zero_block_bias_zero() {
        assert_eq!(bias_of(&[0.0, -0.0]), BiasDecision::Bias(0));
    }

    #[test]
    fn bias_round_trips() {
        for v in [1.5f32, -2.75e8, 3.1e-20, 64.0] {
            let d = bias_of(&[v]);
            let b = d.value();
            let there = apply_bias(v.to_bits(), b);
            let back = remove_bias(there, b);
            assert_eq!(f32::from_bits(back), v);
        }
    }

    #[test]
    fn zero_passes_through() {
        assert_eq!(apply_bias(0, 12), 0);
        let neg_zero = (-0.0f32).to_bits();
        assert_eq!(apply_bias(neg_zero, -30), neg_zero);
    }

    #[test]
    fn denormals_flush_under_bias() {
        let denorm = f32::from_bits(0x0000_0001);
        let out = f32::from_bits(apply_bias(denorm.to_bits(), 5));
        assert_eq!(out, 0.0);
    }
}
