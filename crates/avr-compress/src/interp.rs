//! Approximate reconstruction by interpolation (paper §3.3, Fig. 5).
//!
//! "For decompression, the average values are distributed evenly and
//! bi-linear interpolation is applied to reconstruct the approximate values
//! in-between." Each sub-block average is anchored at the sub-block's
//! *center*; values between anchors interpolate linearly (1-D layout) or
//! bilinearly (2-D layout), and values outside the outermost anchors clamp
//! to the nearest anchor (flat extrapolation).
//!
//! All arithmetic is integer fixed-point, exactly as the hardware pipeline
//! would compute it. Coordinates are scaled by 2 so the half-integer anchor
//! centers stay integral.

use crate::block::{Layout, SUMMARY_VALUES};
use crate::convert::Fixed;
use crate::downsample::{GRID, SUB_BLOCK, TILE};
use avr_types::VALUES_PER_BLOCK;

/// 1-D anchor of sub-block `i`, in x2 coordinates: 2*(16i + 7.5).
#[inline]
fn anchor_1d(i: usize) -> i64 {
    (2 * SUB_BLOCK * i + SUB_BLOCK - 1) as i64
}

/// 2-D anchor of tile index `t` along one axis, in x2 coordinates:
/// 2*(4t + 1.5).
#[inline]
fn anchor_2d(t: usize) -> i64 {
    (2 * TILE * t + TILE - 1) as i64
}

/// Locate `pos` (x2 coordinates) between anchors spaced `step` apart:
/// returns (left anchor index, weight toward the right anchor in [0, step)).
#[inline]
fn locate(pos: i64, first_anchor: i64, step: i64, last_idx: usize) -> (usize, i64) {
    if pos <= first_anchor {
        return (0, 0);
    }
    let span = pos - first_anchor;
    let idx = (span / step) as usize;
    if idx >= last_idx {
        return (last_idx, 0);
    }
    (idx, span % step)
}

/// Linear interpolation with round-to-nearest.
#[inline]
fn lerp(a: i64, b: i64, w: i64, step: i64) -> i64 {
    let num = a * (step - w) + b * w;
    // round-to-nearest for possibly-negative numerators
    if num >= 0 {
        (num + step / 2) / step
    } else {
        (num - step / 2) / step
    }
}

/// Reconstruct the full 256-value block from its 16-value summary.
pub fn reconstruct_summary(
    layout: Layout,
    summary: &[Fixed; SUMMARY_VALUES],
) -> [Fixed; VALUES_PER_BLOCK] {
    let mut out = [0i64; VALUES_PER_BLOCK];
    match layout {
        Layout::Linear1D => {
            let step = 2 * SUB_BLOCK as i64;
            for (x, o) in out.iter_mut().enumerate() {
                let (i, w) = locate(2 * x as i64, anchor_1d(0), step, SUMMARY_VALUES - 1);
                *o = if w == 0 { summary[i] } else { lerp(summary[i], summary[i + 1], w, step) };
            }
        }
        Layout::Square2D => {
            let tiles = GRID / TILE; // 4x4 grid of tiles
            let step = 2 * TILE as i64;
            for r in 0..GRID {
                let (tr, wr) = locate(2 * r as i64, anchor_2d(0), step, tiles - 1);
                for c in 0..GRID {
                    let (tc, wc) = locate(2 * c as i64, anchor_2d(0), step, tiles - 1);
                    let s = |a: usize, b: usize| summary[a * tiles + b];
                    // Interpolate along columns first, then rows.
                    let top = if wc == 0 {
                        s(tr, tc)
                    } else {
                        lerp(s(tr, tc), s(tr, tc + 1), wc, step)
                    };
                    let v = if wr == 0 {
                        top
                    } else {
                        let bot = if wc == 0 {
                            s(tr + 1, tc)
                        } else {
                            lerp(s(tr + 1, tc), s(tr + 1, tc + 1), wc, step)
                        };
                        lerp(top, bot, wr, step)
                    };
                    out[r * GRID + c] = v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::downsample::downsample;

    #[test]
    fn constant_summary_reconstructs_constant() {
        let summary = [999i64; SUMMARY_VALUES];
        for layout in [Layout::Linear1D, Layout::Square2D] {
            let r = reconstruct_summary(layout, &summary);
            assert!(r.iter().all(|&v| v == 999));
        }
    }

    #[test]
    fn linear_ramp_reconstructs_nearly_exactly() {
        // A perfectly linear signal is reproduced exactly by linear
        // interpolation between sub-block means (up to edge clamping).
        let mut fixed = [0i64; VALUES_PER_BLOCK];
        for (i, v) in fixed.iter_mut().enumerate() {
            *v = 1000 + (i as i64) * 64;
        }
        let s = downsample(Layout::Linear1D, &fixed);
        let r = reconstruct_summary(Layout::Linear1D, &s);
        for (i, (&orig, &rec)) in fixed.iter().zip(&r).enumerate() {
            // Interior: exact (the mean sits at the segment midpoint).
            // Edges (first/last 8 values): clamped flat, bounded error.
            if (8..VALUES_PER_BLOCK - 8).contains(&i) {
                assert!((orig - rec).abs() <= 32, "i={i} {orig} vs {rec}");
            } else {
                assert!((orig - rec).abs() <= 64 * 8, "edge i={i} {orig} vs {rec}");
            }
        }
    }

    #[test]
    fn planar_2d_field_reconstructs_interior_exactly() {
        // f(r,c) = a*r + b*c + k is affine; bilinear interpolation between
        // tile means reproduces it exactly away from the clamped border.
        let (a, b, k) = (48i64, -32i64, 5_000i64);
        let mut fixed = [0i64; VALUES_PER_BLOCK];
        for r in 0..GRID {
            for c in 0..GRID {
                fixed[r * GRID + c] = a * r as i64 + b * c as i64 + k;
            }
        }
        let s = downsample(Layout::Square2D, &fixed);
        let rec = reconstruct_summary(Layout::Square2D, &s);
        for r in 2..GRID - 2 {
            for c in 2..GRID - 2 {
                let i = r * GRID + c;
                assert!(
                    (fixed[i] - rec[i]).abs() <= 8,
                    "({r},{c}): {} vs {}",
                    fixed[i],
                    rec[i]
                );
            }
        }
    }

    #[test]
    fn edges_clamp_to_nearest_anchor() {
        let mut summary = [0i64; SUMMARY_VALUES];
        summary[0] = 500;
        summary[SUMMARY_VALUES - 1] = -500;
        let r = reconstruct_summary(Layout::Linear1D, &summary);
        // Positions 0..=7 sit at/before the first anchor.
        for &v in &r[0..8] {
            assert_eq!(v, 500);
        }
        // Positions 248..=255 sit at/after the last anchor.
        for &v in &r[248..256] {
            assert_eq!(v, -500);
        }
    }

    #[test]
    fn interpolation_stays_within_summary_bounds() {
        // Convexity: every reconstructed value lies within [min, max] of the
        // summary for both layouts.
        let mut summary = [0i64; SUMMARY_VALUES];
        for (i, s) in summary.iter_mut().enumerate() {
            *s = ((i as i64 * 7919) % 1000) - 500;
        }
        let (lo, hi) = (*summary.iter().min().unwrap(), *summary.iter().max().unwrap());
        for layout in [Layout::Linear1D, Layout::Square2D] {
            for v in reconstruct_summary(layout, &summary) {
                assert!(v >= lo - 1 && v <= hi + 1, "{v} outside [{lo},{hi}]");
            }
        }
    }
}
