//! Approximate reconstruction by interpolation (paper §3.3, Fig. 5).
//!
//! "For decompression, the average values are distributed evenly and
//! bi-linear interpolation is applied to reconstruct the approximate values
//! in-between." Each sub-block average is anchored at the sub-block's
//! *center*; values between anchors interpolate linearly (1-D layout) or
//! bilinearly (2-D layout), and values outside the outermost anchors clamp
//! to the nearest anchor (flat extrapolation).
//!
//! All arithmetic is integer fixed-point, exactly as the hardware pipeline
//! would compute it. Coordinates are scaled by 2 so the half-integer anchor
//! centers stay integral.

use crate::block::{Layout, SUMMARY_VALUES};
use crate::convert::Fixed;
use crate::downsample::{GRID, SUB_BLOCK, TILE};
use avr_types::VALUES_PER_BLOCK;

/// 1-D anchor of sub-block `i`, in x2 coordinates: 2*(16i + 7.5).
#[inline]
const fn anchor_1d(i: usize) -> i64 {
    (2 * SUB_BLOCK * i + SUB_BLOCK - 1) as i64
}

/// 2-D anchor of tile index `t` along one axis, in x2 coordinates:
/// 2*(4t + 1.5).
#[inline]
const fn anchor_2d(t: usize) -> i64 {
    (2 * TILE * t + TILE - 1) as i64
}

/// Locate `pos` (x2 coordinates) between anchors spaced `step` apart:
/// returns (left anchor index, weight toward the right anchor in [0, step)).
#[inline]
const fn locate(pos: i64, first_anchor: i64, step: i64, last_idx: usize) -> (usize, i64) {
    if pos <= first_anchor {
        return (0, 0);
    }
    let span = pos - first_anchor;
    let idx = (span / step) as usize;
    if idx >= last_idx {
        return (last_idx, 0);
    }
    (idx, span % step)
}

/// Linear interpolation with round-to-nearest.
#[inline]
const fn lerp(a: i64, b: i64, w: i64, step: i64) -> i64 {
    let num = a * (step - w) + b * w;
    // round-to-nearest for possibly-negative numerators
    if num >= 0 {
        (num + step / 2) / step
    } else {
        (num - step / 2) / step
    }
}

/// x2-coordinate anchor step between 1-D sub-block centers.
const STEP_1D: i64 = 2 * SUB_BLOCK as i64;
/// x2-coordinate anchor step between 2-D tile centers.
const STEP_2D: i64 = 2 * TILE as i64;

/// Per-position (left anchor index, interpolation weight) for the 1-D
/// layout, fixed by the block geometry and precomputed at compile time so
/// the reconstruction loop is pure arithmetic (no `locate` per value).
const LUT_1D: [(u8, u8); VALUES_PER_BLOCK] = {
    let mut t = [(0u8, 0u8); VALUES_PER_BLOCK];
    let mut x = 0;
    while x < VALUES_PER_BLOCK {
        let (i, w) = locate(2 * x as i64, anchor_1d(0), STEP_1D, SUMMARY_VALUES - 1);
        t[x] = (i as u8, w as u8);
        x += 1;
    }
    t
};

/// Per-row/column (tile index, weight) for the 2-D layout axes.
const LUT_2D: [(u8, u8); GRID] = {
    let mut t = [(0u8, 0u8); GRID];
    let mut r = 0;
    while r < GRID {
        let (i, w) = locate(2 * r as i64, anchor_2d(0), STEP_2D, GRID / TILE - 1);
        t[r] = (i as u8, w as u8);
        r += 1;
    }
    t
};

/// Horizontal interpolation profiles for the 2-D layout: `prof[a][c]` is
/// the column interpolation of anchor row `a` at column `c`. Every output
/// row reuses the profiles of its two neighbouring anchor rows, so the 2-D
/// reconstruction computes 4×16 horizontal lerps once instead of re-deriving
/// them per cell.
fn profiles_2d(summary: &[Fixed; SUMMARY_VALUES]) -> [[i64; GRID]; GRID / TILE] {
    let tiles = GRID / TILE;
    let mut prof = [[0i64; GRID]; GRID / TILE];
    for (a, row) in prof.iter_mut().enumerate() {
        for (c, p) in row.iter_mut().enumerate() {
            let (tc, wc) = LUT_2D[c];
            let (tc, wc) = (tc as usize, wc as i64);
            let s = &summary[a * tiles..];
            *p = if wc == 0 { s[tc] } else { lerp(s[tc], s[tc + 1], wc, STEP_2D) };
        }
    }
    prof
}

/// Reconstruct the full 256-value block from its 16-value summary, writing
/// into caller-provided storage (the hot path; no stack-array return).
pub fn reconstruct_into(
    layout: Layout,
    summary: &[Fixed; SUMMARY_VALUES],
    out: &mut [Fixed; VALUES_PER_BLOCK],
) {
    match layout {
        Layout::Linear1D => {
            for (x, o) in out.iter_mut().enumerate() {
                let (i, w) = LUT_1D[x];
                let (i, w) = (i as usize, w as i64);
                *o = if w == 0 { summary[i] } else { lerp(summary[i], summary[i + 1], w, STEP_1D) };
            }
        }
        Layout::Square2D => {
            let prof = profiles_2d(summary);
            for r in 0..GRID {
                let (tr, wr) = LUT_2D[r];
                let (tr, wr) = (tr as usize, wr as i64);
                let row = &mut out[r * GRID..(r + 1) * GRID];
                if wr == 0 {
                    row.copy_from_slice(&prof[tr]);
                } else {
                    let (top, bot) = (&prof[tr], &prof[tr + 1]);
                    for (c, o) in row.iter_mut().enumerate() {
                        *o = lerp(top[c], bot[c], wr, STEP_2D);
                    }
                }
            }
        }
    }
}

/// [`reconstruct_into`] fused with the value clamp of the fixed→float
/// write-out: every reconstructed value lands in i32 range (`from_fixed`
/// clamps anyway), so narrowing at store costs nothing and hands the
/// codec's conversion loops packed 32-bit lanes.
///
/// This is the **scalar arm** of the codec's reconstruction dispatch
/// (handling the full i64 summary domain); the codec reaches it — or its
/// SSE2/AVX2 twins, which require i32-range summaries — through the
/// kernel table ([`crate::simd::kernels`]). All arms are bit-identical.
pub(crate) fn reconstruct_into_clamped_scalar(
    layout: Layout,
    summary: &[Fixed; SUMMARY_VALUES],
    out: &mut [i32; VALUES_PER_BLOCK],
) {
    const LO: i64 = i32::MIN as i64;
    const HI: i64 = i32::MAX as i64;
    match layout {
        Layout::Linear1D => {
            // Segment-structured: positions 8+16i..8+16(i+1) interpolate
            // between anchors i and i+1 with the constant weight pattern
            // 1,3,…,31 (see LUT_1D); the first/last 8 positions clamp flat.
            let first = summary[0].clamp(LO, HI) as i32;
            let last = summary[SUMMARY_VALUES - 1].clamp(LO, HI) as i32;
            out[..SUB_BLOCK / 2].fill(first);
            out[VALUES_PER_BLOCK - SUB_BLOCK / 2..].fill(last);
            let segments =
                out[SUB_BLOCK / 2..VALUES_PER_BLOCK - SUB_BLOCK / 2].chunks_exact_mut(SUB_BLOCK);
            for (i, seg) in segments.enumerate() {
                let (a, b) = (summary[i], summary[i + 1]);
                for (k, o) in seg.iter_mut().enumerate() {
                    let w = 2 * k as i64 + 1;
                    *o = lerp(a, b, w, STEP_1D).clamp(LO, HI) as i32;
                }
            }
        }
        Layout::Square2D => {
            let prof = profiles_2d(summary);
            for r in 0..GRID {
                let (tr, wr) = LUT_2D[r];
                let (tr, wr) = (tr as usize, wr as i64);
                let row = &mut out[r * GRID..(r + 1) * GRID];
                if wr == 0 {
                    for (o, &p) in row.iter_mut().zip(&prof[tr]) {
                        *o = p.clamp(LO, HI) as i32;
                    }
                } else {
                    let (top, bot) = (&prof[tr], &prof[tr + 1]);
                    for (c, o) in row.iter_mut().enumerate() {
                        *o = lerp(top[c], bot[c], wr, STEP_2D).clamp(LO, HI) as i32;
                    }
                }
            }
        }
    }
}

/// Reconstruct the full 256-value block from its 16-value summary.
pub fn reconstruct_summary(
    layout: Layout,
    summary: &[Fixed; SUMMARY_VALUES],
) -> [Fixed; VALUES_PER_BLOCK] {
    let mut out = [0i64; VALUES_PER_BLOCK];
    reconstruct_into(layout, summary, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::downsample::downsample;

    #[test]
    fn constant_summary_reconstructs_constant() {
        let summary = [999i64; SUMMARY_VALUES];
        for layout in [Layout::Linear1D, Layout::Square2D] {
            let r = reconstruct_summary(layout, &summary);
            assert!(r.iter().all(|&v| v == 999));
        }
    }

    #[test]
    fn linear_ramp_reconstructs_nearly_exactly() {
        // A perfectly linear signal is reproduced exactly by linear
        // interpolation between sub-block means (up to edge clamping).
        let mut fixed = [0i64; VALUES_PER_BLOCK];
        for (i, v) in fixed.iter_mut().enumerate() {
            *v = 1000 + (i as i64) * 64;
        }
        let s = downsample(Layout::Linear1D, &fixed);
        let r = reconstruct_summary(Layout::Linear1D, &s);
        for (i, (&orig, &rec)) in fixed.iter().zip(&r).enumerate() {
            // Interior: exact (the mean sits at the segment midpoint).
            // Edges (first/last 8 values): clamped flat, bounded error.
            if (8..VALUES_PER_BLOCK - 8).contains(&i) {
                assert!((orig - rec).abs() <= 32, "i={i} {orig} vs {rec}");
            } else {
                assert!((orig - rec).abs() <= 64 * 8, "edge i={i} {orig} vs {rec}");
            }
        }
    }

    #[test]
    fn planar_2d_field_reconstructs_interior_exactly() {
        // f(r,c) = a*r + b*c + k is affine; bilinear interpolation between
        // tile means reproduces it exactly away from the clamped border.
        let (a, b, k) = (48i64, -32i64, 5_000i64);
        let mut fixed = [0i64; VALUES_PER_BLOCK];
        for r in 0..GRID {
            for c in 0..GRID {
                fixed[r * GRID + c] = a * r as i64 + b * c as i64 + k;
            }
        }
        let s = downsample(Layout::Square2D, &fixed);
        let rec = reconstruct_summary(Layout::Square2D, &s);
        for r in 2..GRID - 2 {
            for c in 2..GRID - 2 {
                let i = r * GRID + c;
                assert!((fixed[i] - rec[i]).abs() <= 8, "({r},{c}): {} vs {}", fixed[i], rec[i]);
            }
        }
    }

    #[test]
    fn edges_clamp_to_nearest_anchor() {
        let mut summary = [0i64; SUMMARY_VALUES];
        summary[0] = 500;
        summary[SUMMARY_VALUES - 1] = -500;
        let r = reconstruct_summary(Layout::Linear1D, &summary);
        // Positions 0..=7 sit at/before the first anchor.
        for &v in &r[0..8] {
            assert_eq!(v, 500);
        }
        // Positions 248..=255 sit at/after the last anchor.
        for &v in &r[248..256] {
            assert_eq!(v, -500);
        }
    }

    #[test]
    fn interpolation_stays_within_summary_bounds() {
        // Convexity: every reconstructed value lies within [min, max] of the
        // summary for both layouts.
        let mut summary = [0i64; SUMMARY_VALUES];
        for (i, s) in summary.iter_mut().enumerate() {
            *s = ((i as i64 * 7919) % 1000) - 500;
        }
        let (lo, hi) = (*summary.iter().min().unwrap(), *summary.iter().max().unwrap());
        for layout in [Layout::Linear1D, Layout::Square2D] {
            for v in reconstruct_summary(layout, &summary) {
                assert!(v >= lo - 1 && v <= hi + 1, "{v} outside [{lo},{hi}]");
            }
        }
    }
}
