//! The straightforward, pre-refactor compression pipeline, retained
//! verbatim as the **oracle** for the fused hot path in [`crate::codec`]:
//!
//! * property tests assert [`compress_reference`] and
//!   [`crate::compress`] are bit-identical on success (compressed block
//!   and reconstruction) and agree on the failure mode;
//! * the `codec_kernels` criterion bench measures the fused path's speedup
//!   against this implementation, tracked in the repo's `BENCH_*.json`
//!   trajectory files.
//!
//! Everything here mirrors the original per-stage structure: each layout
//! variant is evaluated end-to-end (its own downsample pass with per-value
//! index arithmetic, its own `locate`-per-value reconstruction, 256 scalar
//! `from_fixed`/`check_value` calls), and bitmap/outlier compaction
//! allocates. The one intentional difference from the seed: the size cap is
//! checked *before* the average-error gate, matching the fused path's
//! early-abort semantics (the reported failure kind changes for blocks
//! failing both; the simulator only branches on `Err(_)`).

use crate::bias::choose_bias;
use crate::block::{CompressedBlock, Layout, Method, SUMMARY_VALUES};
use crate::codec::{CompressFailure, CompressOutcome};
use crate::convert::{from_fixed, to_fixed, Fixed};
use crate::downsample::{downsample, GRID, SUB_BLOCK, TILE};
use crate::error::{check_value, ErrorCheck, Thresholds};
use crate::outlier::{build_bitmap, compact_outliers, scatter_outliers, OutlierVec};
use avr_types::{BlockData, DataType, VALUES_PER_BLOCK};

/// 1-D anchor of sub-block `i`, in x2 coordinates: 2*(16i + 7.5).
#[inline]
fn anchor_1d(i: usize) -> i64 {
    (2 * SUB_BLOCK * i + SUB_BLOCK - 1) as i64
}

/// 2-D anchor of tile index `t` along one axis, in x2 coordinates:
/// 2*(4t + 1.5).
#[inline]
fn anchor_2d(t: usize) -> i64 {
    (2 * TILE * t + TILE - 1) as i64
}

/// Locate `pos` (x2 coordinates) between anchors spaced `step` apart.
#[inline]
fn locate(pos: i64, first_anchor: i64, step: i64, last_idx: usize) -> (usize, i64) {
    if pos <= first_anchor {
        return (0, 0);
    }
    let span = pos - first_anchor;
    let idx = (span / step) as usize;
    if idx >= last_idx {
        return (last_idx, 0);
    }
    (idx, span % step)
}

/// Linear interpolation with round-to-nearest.
#[inline]
fn lerp(a: i64, b: i64, w: i64, step: i64) -> i64 {
    let num = a * (step - w) + b * w;
    if num >= 0 {
        (num + step / 2) / step
    } else {
        (num - step / 2) / step
    }
}

/// The original per-value `locate`/`lerp` reconstruction.
pub fn reconstruct_summary_reference(
    layout: Layout,
    summary: &[Fixed; SUMMARY_VALUES],
) -> [Fixed; VALUES_PER_BLOCK] {
    let mut out = [0i64; VALUES_PER_BLOCK];
    match layout {
        Layout::Linear1D => {
            let step = 2 * SUB_BLOCK as i64;
            for (x, o) in out.iter_mut().enumerate() {
                let (i, w) = locate(2 * x as i64, anchor_1d(0), step, SUMMARY_VALUES - 1);
                *o = if w == 0 { summary[i] } else { lerp(summary[i], summary[i + 1], w, step) };
            }
        }
        Layout::Square2D => {
            let tiles = GRID / TILE;
            let step = 2 * TILE as i64;
            for r in 0..GRID {
                let (tr, wr) = locate(2 * r as i64, anchor_2d(0), step, tiles - 1);
                for c in 0..GRID {
                    let (tc, wc) = locate(2 * c as i64, anchor_2d(0), step, tiles - 1);
                    let s = |a: usize, b: usize| summary[a * tiles + b];
                    let top =
                        if wc == 0 { s(tr, tc) } else { lerp(s(tr, tc), s(tr, tc + 1), wc, step) };
                    let v = if wr == 0 {
                        top
                    } else {
                        let bot = if wc == 0 {
                            s(tr + 1, tc)
                        } else {
                            lerp(s(tr + 1, tc), s(tr + 1, tc + 1), wc, step)
                        };
                        lerp(top, bot, wr, step)
                    };
                    out[r * GRID + c] = v;
                }
            }
        }
    }
    out
}

struct Variant {
    layout: Layout,
    summary: [Fixed; SUMMARY_VALUES],
    recon_words: [u32; VALUES_PER_BLOCK],
    flags: [bool; VALUES_PER_BLOCK],
    check: ErrorCheck,
}

fn try_variant(
    layout: Layout,
    words: &[u32; VALUES_PER_BLOCK],
    fixed: &[Fixed; VALUES_PER_BLOCK],
    dt: DataType,
    bias: i8,
    th: &Thresholds,
) -> Variant {
    let summary = downsample(layout, fixed);
    let recon_fixed = reconstruct_summary_reference(layout, &summary);
    let mut recon_words = [0u32; VALUES_PER_BLOCK];
    let mut flags = [false; VALUES_PER_BLOCK];
    let mut check = ErrorCheck::default();
    for i in 0..VALUES_PER_BLOCK {
        recon_words[i] = from_fixed(recon_fixed[i], dt, bias);
        let v = check_value(words[i], recon_words[i], dt, th);
        flags[i] = v.outlier;
        check.push(v);
    }
    Variant { layout, summary, recon_words, flags, check }
}

/// The pre-refactor `compress`: both layout variants evaluated end-to-end,
/// then the better one kept.
pub fn compress_reference(
    block: &BlockData,
    dt: DataType,
    th: &Thresholds,
    max_lines: usize,
) -> Result<CompressOutcome, CompressFailure> {
    let bias = match dt {
        DataType::F32 => choose_bias(&block.words).value(),
        DataType::Fixed32 => 0,
    };
    let mut fixed = [0i64; VALUES_PER_BLOCK];
    for (f, &w) in fixed.iter_mut().zip(&block.words) {
        *f = to_fixed(w, dt, bias);
    }

    let v1 = try_variant(Layout::Linear1D, &block.words, &fixed, dt, bias, th);
    let v2 = try_variant(Layout::Square2D, &block.words, &fixed, dt, bias, th);
    let best = {
        let (o1, o2) = (v1.check.outliers(), v2.check.outliers());
        if o1 < o2 || (o1 == o2 && v1.check.avg_err() <= v2.check.avg_err()) {
            v1
        } else {
            v2
        }
    };

    // Size cap first (the inline outlier buffer is sized to the format's
    // 16-line bound, so an over-cap block must bail before compaction).
    let lines = crate::codec::lines_for_outliers(best.check.outliers() as usize);
    if lines > max_lines {
        return Err(CompressFailure::TooManyOutliers { lines_needed: lines });
    }

    let bitmap = build_bitmap(&best.flags);
    let outliers = compact_outliers(&block.words, &bitmap);
    let mut summary = [0i32; SUMMARY_VALUES];
    for (s, &v) in summary.iter_mut().zip(&best.summary) {
        *s = v.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
    let compressed = CompressedBlock {
        method: Method { layout: best.layout, dtype: dt },
        bias,
        summary,
        bitmap,
        outliers: OutlierVec::from_slice(&outliers),
    };
    debug_assert_eq!(compressed.size_lines(), lines);
    if !best.check.passes(th) {
        return Err(CompressFailure::AvgErrorTooHigh { avg_err: best.check.avg_err() });
    }

    let mut recon = BlockData { words: best.recon_words };
    scatter_outliers(&mut recon.words, &compressed.bitmap, &compressed.outliers);
    Ok(CompressOutcome {
        avg_err: best.check.avg_err(),
        outlier_count: compressed.outlier_count(),
        compressed,
        reconstructed: recon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::reconstruct_summary;

    #[test]
    fn lut_reconstruction_matches_locate_based_reference() {
        let mut state = 0xD1CEu64;
        for _ in 0..100 {
            let mut summary = [0i64; SUMMARY_VALUES];
            for s in summary.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *s = ((state >> 30) as i64 & 0xFFFF_FFFF) - (1 << 31);
            }
            for layout in [Layout::Linear1D, Layout::Square2D] {
                assert_eq!(
                    reconstruct_summary(layout, &summary),
                    reconstruct_summary_reference(layout, &summary),
                    "{layout:?}"
                );
            }
        }
    }
}
