//! Pipeline latency model.
//!
//! The paper implemented the compressor/decompressor in RTL and synthesized
//! it (Synopsys, 32 nm) to obtain cycle counts, which its simulator then
//! consumed. We consume the same published numbers (§3.3):
//!
//! | stage                          | cycles |
//! |--------------------------------|--------|
//! | biasing                        | 4      |
//! | float→fixed / fixed→float      | 1 each |
//! | downsampling compression       | 15     |
//! | interpolation decompression    | 10     |
//! | unbias                         | 1      |
//! | error check (comparators)      | 1      |
//! | outlier select + compact       | 16     |
//! | avg-error computation          | (overlapped with select) |
//! | **total compression**          | **49** |
//! | **total decompression**        | **12** |

/// Cycle costs of the AVR compressor/decompressor module, in CPU cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latency {
    pub bias: u64,
    pub float_to_fixed: u64,
    pub downsample: u64,
    pub interpolate: u64,
    pub fixed_to_float: u64,
    pub unbias: u64,
    pub error_check: u64,
    pub outlier_select: u64,
}

impl Default for Latency {
    fn default() -> Self {
        Latency {
            bias: 4,
            float_to_fixed: 1,
            downsample: 15,
            interpolate: 10,
            fixed_to_float: 1,
            unbias: 1,
            error_check: 1,
            outlier_select: 16,
        }
    }
}

impl Latency {
    /// Total block-compression latency. The compressor must decompress its
    /// own output to find the outliers (Fig. 4), so the check path is on the
    /// critical path: bias(4) + f2x(1) + downsample(15) + interpolate(10) +
    /// x2f(1) + unbias(1) + check(1) + select/compact(16) = 49.
    pub fn compress_total(&self) -> u64 {
        self.bias
            + self.float_to_fixed
            + self.downsample
            + self.interpolate
            + self.fixed_to_float
            + self.unbias
            + self.error_check
            + self.outlier_select
    }

    /// Total block-decompression latency: interpolate(10) + x2f(1) +
    /// unbias(1) = 12.
    pub fn decompress_total(&self) -> u64 {
        self.interpolate + self.fixed_to_float + self.unbias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_totals() {
        let l = Latency::default();
        assert_eq!(l.compress_total(), 49);
        assert_eq!(l.decompress_total(), 12);
    }
}
