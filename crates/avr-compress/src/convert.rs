//! Float↔fixed conversion (paper §3.3, after Saldanha et al. \[35\]).
//!
//! The compressor's internal fixed format is Q8.23: a signed 32-bit integer
//! with 23 fractional bits, representing |v| < 256. Exponent biasing maps a
//! float block's largest magnitude into [64, 128), so biased floats always
//! fit with two bits of headroom (averages can never exceed the max).
//!
//! For `DataType::Fixed32` application data (Q16.16), the raw words are
//! *already* fixed point and are "compressed directly" (paper §3.3): the
//! internal fixed domain is then the data's own Q16.16 format, with i64
//! arithmetic keeping sub-block sums exact.

use crate::bias::{apply_bias, remove_bias};
use avr_types::DataType;

/// Fractional bits of the internal fixed format.
pub const FRAC_BITS: u32 = 23;
/// Fixed-domain representation: i64 to keep sub-block sums exact; each value
/// nonetheless fits in i32 as the hardware would hold it.
pub type Fixed = i64;

const FIXED_MAX: i64 = i32::MAX as i64;
const FIXED_MIN: i64 = i32::MIN as i64;

/// Magic addend for round-to-nearest-even of an f32 to an integer value:
/// adding and subtracting 2^23 forces the mantissa rounding at the ones
/// place (valid for |x| < 2^23; larger magnitudes are already integral).
const RNE_MAGIC: f32 = (1u64 << FRAC_BITS) as f32;

/// `2^-23` in the f32 domain: `(v as f32) * 2^-23` is bit-identical to
/// `((v as f64) * 2^-23) as f32` — the i32→float rounding makes the same
/// mantissa decision either way, and the power-of-two scale shifts only
/// the exponent (no overflow/subnormal crossing for |v| ≤ 2^31).
pub(crate) const F32_SCALE_F: f32 = 1.0 / (1u64 << FRAC_BITS) as f32;

/// Add `delta` to an f32 word's exponent field — the branch-reduced body of
/// `bias::apply_bias`, as eager selects so the per-value loops vectorize.
/// Valid when a zero exponent implies the whole word is ±0 (true for
/// `from_fixed` outputs and for the no-specials blocks the biased path
/// sees), where the general routine's denormal-flush and `bias == 0`
/// early-return coincide with the arithmetic path.
#[inline(always)]
pub(crate) fn shift_exponent(bits: u32, delta: i32) -> u32 {
    let e = ((bits >> 23) & 0xFF) as i32;
    let sign = bits & 0x8000_0000;
    let e2 = e + delta;
    let mut r = (bits & 0x807F_FFFF) | (((e2 as u32) & 0xFF) << 23);
    r = if e2 >= 255 { sign | 0x7F7F_FFFF } else { r };
    r = if (e == 0) | (e2 <= 0) { sign } else { r };
    r
}

/// Remove the block bias from a fixed→float conversion result:
/// `apply_bias(bits, bias.wrapping_neg())`, branch-reduced.
#[inline(always)]
pub(crate) fn unbias(bits: u32, neg_bias: i32) -> u32 {
    shift_exponent(bits, neg_bias)
}

/// Round an f32 to an integer-valued f32, ties to even — the IEEE default
/// the hardware converter would use, and branch-free/vectorizable (no f64,
/// no libm `round` call).
#[inline(always)]
pub(crate) fn round_ties_even_f32(x: f32) -> f32 {
    let magic = RNE_MAGIC.copysign(x);
    // |x| >= 2^23 (or NaN/Inf) is already integral: adding the magic
    // constant there would round the *mantissa tail* instead, so select.
    if x.abs() < RNE_MAGIC {
        (x + magic) - magic
    } else {
        x
    }
}

/// Convert one raw word to the internal fixed format (1 cycle in hardware).
///
/// The float scaling rounds ties-to-even (the IEEE default rounding the
/// converter hardware applies). NaN converts to 0 — it can never pass the
/// error check, so it always becomes an outlier and the garbage summary
/// contribution is benign but must be *finite*.
#[inline]
pub fn to_fixed(raw: u32, dt: DataType, bias: i8) -> Fixed {
    match dt {
        DataType::F32 => {
            let f = f32::from_bits(apply_bias(raw, bias));
            if !f.is_finite() {
                return 0;
            }
            // Exact: the mantissa is unchanged by a power-of-two scale
            // (overflow to Inf saturates through the cast below).
            let scaled = f * RNE_MAGIC;
            // Saturating f32→i32 cast == round-then-clamp to i32 range.
            round_ties_even_f32(scaled) as i32 as i64
        }
        // Fixed-point data is compressed directly in its native format.
        DataType::Fixed32 => raw as i32 as i64,
    }
}

/// Convert one internal fixed value back to the raw word format (1 cycle),
/// removing the bias for floats.
#[inline]
pub fn from_fixed(v: Fixed, dt: DataType, bias: i8) -> u32 {
    let v = v.clamp(FIXED_MIN, FIXED_MAX);
    match dt {
        DataType::F32 => {
            let f = (v as f64) / (1u64 << FRAC_BITS) as f64;
            remove_bias((f as f32).to_bits(), bias)
        }
        DataType::Fixed32 => (v.clamp(i32::MIN as i64, i32::MAX as i64) as i32) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::choose_bias;

    #[test]
    fn f32_round_trip_at_target_range() {
        // Values already in [64,128) need no bias and round-trip to ~2^-23.
        for v in [64.0f32, 100.125, 127.996] {
            let fx = to_fixed(v.to_bits(), DataType::F32, 0);
            let back = f32::from_bits(from_fixed(fx, DataType::F32, 0));
            assert!((back - v).abs() <= v.abs() * 2.0 / (1 << 23) as f32, "{v} -> {back}");
        }
    }

    #[test]
    fn f32_biased_round_trip() {
        let vals = [3.2e9f32, 1.1e9, 2.9e9];
        let bits: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
        let b = choose_bias(&bits).value();
        assert_ne!(b, 0);
        for v in vals {
            let fx = to_fixed(v.to_bits(), DataType::F32, b);
            let back = f32::from_bits(from_fixed(fx, DataType::F32, b));
            let rel = ((back - v) / v).abs();
            assert!(rel < 1e-5, "{v} -> {back} rel {rel}");
        }
    }

    #[test]
    fn unbiased_out_of_range_saturates() {
        // Without bias, 1e9 >> 256 saturates the fixed format...
        let fx = to_fixed(1.0e9f32.to_bits(), DataType::F32, 0);
        assert_eq!(fx, FIXED_MAX);
        // ...and decodes to something near 256, i.e. a huge error the
        // error-check stage will flag.
        let back = f32::from_bits(from_fixed(fx, DataType::F32, 0));
        assert!((255.0..=256.0).contains(&back));
    }

    #[test]
    fn nan_becomes_zero_fixed() {
        assert_eq!(to_fixed(f32::NAN.to_bits(), DataType::F32, 0), 0);
    }

    #[test]
    fn magic_rounding_matches_ieee_ties_even() {
        // The magic-constant rounding must agree with f64 round-ties-even
        // (exact for any f32 input scaled by a power of two) over
        // arbitrary f32 inputs and biases.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let raw = (state >> 16) as u32;
            let bias = (state & 0xFF) as u8 as i8;
            let f = f32::from_bits(apply_bias(raw, bias));
            if !f.is_finite() {
                continue;
            }
            let scaled = (f as f64) * (1u64 << FRAC_BITS) as f64;
            let expect = (scaled.round_ties_even() as i64).clamp(FIXED_MIN, FIXED_MAX);
            assert_eq!(to_fixed(raw, DataType::F32, bias), expect, "raw {raw:#x} bias {bias}");
        }
    }

    #[test]
    fn ties_round_to_even() {
        // 2.5 * 2^-23 scales to 2.5: ties-to-even keeps 2 (half-away
        // would give 3); 1.5 rounds up to 2 either way.
        let f = 2.5f32 / (1 << 23) as f32;
        assert_eq!(to_fixed(f.to_bits(), DataType::F32, 0), 2);
        let f = 1.5f32 / (1 << 23) as f32;
        assert_eq!(to_fixed(f.to_bits(), DataType::F32, 0), 2);
    }

    use crate::bias::apply_bias;

    #[test]
    fn negative_values() {
        let v = -77.5f32;
        let fx = to_fixed(v.to_bits(), DataType::F32, 0);
        assert!(fx < 0);
        let back = f32::from_bits(from_fixed(fx, DataType::F32, 0));
        assert!((back - v).abs() < 1e-4);
    }

    #[test]
    fn fixed32_round_trip_exact() {
        // Native-format fixed data round-trips bit-exactly.
        for raw in [0i32, 1, -1, 65536, -65536, i32::MAX, i32::MIN, (1000 << 16) + 42] {
            let fx = to_fixed(raw as u32, DataType::Fixed32, 0);
            assert_eq!(from_fixed(fx, DataType::Fixed32, 0), raw as u32);
        }
    }

    #[test]
    fn fixed32_out_of_range_internal_saturates_on_writeout() {
        // Interpolation intermediates can exceed i32; write-out clamps.
        assert_eq!(from_fixed(i32::MAX as i64 + 5, DataType::Fixed32, 0), i32::MAX as u32);
        assert_eq!(from_fixed(i32::MIN as i64 - 5, DataType::Fixed32, 0), i32::MIN as u32);
    }
}
