//! The compressed memory-block format (paper §3.1, Fig. 2a).

use crate::outlier::OutlierVec;
use avr_types::{DataType, CL_BYTES, VALUES_PER_BLOCK};

/// Number of values in the block summary — one cacheline's worth.
pub const SUMMARY_VALUES: usize = 16;
/// Bytes of the outlier bitmap: one bit per 32-bit value = 256 bits = half
/// a cacheline.
pub const BITMAP_BYTES: usize = VALUES_PER_BLOCK / 8;

/// Value placement considered before partitioning into sub-blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Layout {
    /// The block as a linear 1-D array (16 consecutive values per sub-block).
    Linear1D,
    /// The block as a 16×16 square (4×4 tiles).
    Square2D,
}

/// The CMT `method` field: 2 bits encoding layout × datatype.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Method {
    pub layout: Layout,
    pub dtype: DataType,
}

impl Method {
    /// Encode to the 2-bit CMT field.
    pub fn encode(self) -> u8 {
        let l = match self.layout {
            Layout::Linear1D => 0,
            Layout::Square2D => 1,
        };
        let d = match self.dtype {
            DataType::F32 => 0,
            DataType::Fixed32 => 2,
        };
        l | d
    }

    /// Decode from the 2-bit CMT field.
    pub fn decode(bits: u8) -> Method {
        Method {
            layout: if bits & 1 == 0 { Layout::Linear1D } else { Layout::Square2D },
            dtype: if bits & 2 == 0 { DataType::F32 } else { DataType::Fixed32 },
        }
    }
}

/// A compressed memory block: summary + outlier bitmap + packed outliers.
///
/// The summary is stored in the *fixed* domain together with the block bias,
/// exactly as the hardware would lay it out in the first cacheline; the
/// outliers are raw (exact) 32-bit words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompressedBlock {
    pub method: Method,
    /// Exponent bias applied during compression (0 for fixed-point data or
    /// when biasing was skipped).
    pub bias: i8,
    /// The 16 sub-block averages, as stored i32 fixed-point words.
    pub summary: [i32; SUMMARY_VALUES],
    /// One bit per block value; set = value is an outlier.
    pub bitmap: [u64; VALUES_PER_BLOCK / 64],
    /// Exact raw words of the outliers, packed in ascending block order.
    /// Stored inline ([`OutlierVec`]) so compression never heap-allocates.
    pub outliers: OutlierVec,
}

impl CompressedBlock {
    /// Number of outliers.
    pub fn outlier_count(&self) -> usize {
        self.bitmap.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Compressed size in bytes: summary line + (bitmap + outliers) when any
    /// outliers exist.
    pub fn size_bytes(&self) -> usize {
        let n = self.outliers.len();
        if n == 0 {
            CL_BYTES
        } else {
            CL_BYTES + BITMAP_BYTES + 4 * n
        }
    }

    /// Compressed size in cachelines (the CMT `size` field, 1..=8 when the
    /// paper's cap holds).
    pub fn size_lines(&self) -> usize {
        self.size_bytes().div_ceil(CL_BYTES)
    }

    /// Is the `i`-th block value an outlier?
    #[inline]
    pub fn is_outlier(&self, i: usize) -> bool {
        (self.bitmap[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Compression ratio vs. the 1 KB uncompressed block.
    pub fn ratio(&self) -> f64 {
        (VALUES_PER_BLOCK * 4) as f64 / self.size_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty(method: Method) -> CompressedBlock {
        CompressedBlock {
            method,
            bias: 0,
            summary: [0; SUMMARY_VALUES],
            bitmap: [0; 4],
            outliers: OutlierVec::new(),
        }
    }

    #[test]
    fn method_field_round_trips() {
        for layout in [Layout::Linear1D, Layout::Square2D] {
            for dtype in [DataType::F32, DataType::Fixed32] {
                let m = Method { layout, dtype };
                assert_eq!(Method::decode(m.encode()), m);
                assert!(m.encode() < 4, "must fit 2 bits");
            }
        }
    }

    #[test]
    fn no_outliers_is_one_line_16_to_1() {
        let cb = empty(Method { layout: Layout::Linear1D, dtype: DataType::F32 });
        assert_eq!(cb.size_lines(), 1);
        assert_eq!(cb.ratio(), 16.0);
    }

    #[test]
    fn bitmap_costs_half_line_once_outliers_exist() {
        let mut cb = empty(Method { layout: Layout::Linear1D, dtype: DataType::F32 });
        cb.bitmap[0] = 1;
        cb.outliers.push(42);
        // 64 (summary) + 32 (bitmap) + 4 = 100 B -> 2 lines.
        assert_eq!(cb.size_bytes(), 100);
        assert_eq!(cb.size_lines(), 2);
    }

    #[test]
    fn eight_outliers_still_two_lines() {
        let mut cb = empty(Method { layout: Layout::Linear1D, dtype: DataType::F32 });
        cb.bitmap[0] = 0xFF;
        cb.outliers.extend(std::iter::repeat_n(7, 8));
        // 64 + 32 + 32 = 128 B -> exactly 2 lines.
        assert_eq!(cb.size_lines(), 2);
        assert_eq!(cb.outlier_count(), 8);
    }

    #[test]
    fn worst_case_104_outliers_is_eight_lines() {
        let mut cb = empty(Method { layout: Layout::Linear1D, dtype: DataType::F32 });
        let mut set = 0;
        'outer: for w in 0..4 {
            for b in 0..64 {
                if set == 104 {
                    break 'outer;
                }
                cb.bitmap[w] |= 1u64 << b;
                set += 1;
            }
        }
        cb.outliers.extend(std::iter::repeat_n(0, 104));
        // 64 + 32 + 416 = 512 B -> 8 lines: the 2:1 worst case.
        assert_eq!(cb.size_lines(), 8);
        assert_eq!(cb.ratio(), 2.0);
        // One more outlier would need a 9th line.
        cb.outliers.push(0);
        assert_eq!(cb.size_lines(), 9);
    }

    #[test]
    fn is_outlier_indexes_across_words() {
        let mut cb = empty(Method { layout: Layout::Square2D, dtype: DataType::F32 });
        cb.bitmap[1] = 1 << 3; // block value 67
        assert!(cb.is_outlier(67));
        assert!(!cb.is_outlier(66));
        assert!(!cb.is_outlier(3));
    }
}
