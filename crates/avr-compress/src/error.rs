//! Error calculation & outlier selection (paper §3.3).
//!
//! Two thresholds control the approximation: the relative error of each
//! individual value may not exceed T1, and the average relative error across
//! a block's non-outlier values may not exceed T2 (the paper runs T1 = 2·T2).
//!
//! For floats the hardware never divides: a value is within T1 = 1/2^N iff
//! sign and exponent match exactly *and* the mantissa difference stays below
//! the N-th most-significant mantissa bit. The block average error is the
//! mean of the mantissa differences (scaled by 2^-23) over non-outliers.
//! For fixed point, a subtraction and comparison serve the same role
//! (paper footnote 1).

use avr_types::DataType;

/// The T1/T2 error thresholds, pre-lowered to hardware comparisons.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// Per-value relative threshold T1 (fraction).
    pub t1: f64,
    /// Block-average relative threshold T2 (fraction).
    pub t2: f64,
    /// N such that 1/2^N <= T1: the mantissa MSbit position compared.
    pub n_msbit: u32,
}

impl Thresholds {
    /// Build from T1/T2 fractions. `n_msbit` is the largest N with
    /// 1/2^N <= T1 so the hardware check is at least as strict as T1.
    pub fn new(t1: f64, t2: f64) -> Self {
        assert!(t1 > 0.0 && t1 < 1.0, "T1 must be in (0,1), got {t1}");
        assert!(t2 > 0.0, "T2 must be positive");
        let n_msbit = (1.0 / t1).log2().ceil() as u32;
        Thresholds { t1, t2, n_msbit: n_msbit.min(23) }
    }

    /// The paper's default knob setting: T1 = 2 %, T2 = 1 %.
    pub fn paper_default() -> Self {
        Thresholds::new(0.02, 0.01)
    }

    /// Maximum allowed mantissa difference (exclusive bound is the N-th
    /// MSbit, i.e. bit 23-N).
    #[inline]
    pub fn mantissa_limit(&self) -> u32 {
        1u32 << (23 - self.n_msbit)
    }
}

/// Per-value verdict plus the error contribution for the block average.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueCheck {
    pub outlier: bool,
    /// Relative-error estimate of a non-outlier (0 for outliers — they are
    /// stored exactly and excluded from the average).
    pub rel_err: f64,
}

/// Compare one original raw word against its reconstruction.
#[inline]
pub fn check_value(orig: u32, recon: u32, dt: DataType, th: &Thresholds) -> ValueCheck {
    match dt {
        DataType::F32 => check_f32(orig, recon, th),
        DataType::Fixed32 => check_fixed(orig as i32, recon as i32, th),
    }
}

#[inline]
fn check_f32(orig: u32, recon: u32, th: &Thresholds) -> ValueCheck {
    if orig == recon {
        return ValueCheck { outlier: false, rel_err: 0.0 };
    }
    let sign_o = orig >> 31;
    let sign_r = recon >> 31;
    let exp_o = (orig >> 23) & 0xFF;
    let exp_r = (recon >> 23) & 0xFF;
    // NaN/Inf originals can never be reproduced approximately: outlier.
    if exp_o == 255 {
        return ValueCheck { outlier: true, rel_err: 0.0 };
    }
    // (i) exact sign and exponent match required.
    if sign_o != sign_r || exp_o != exp_r {
        // Special case: +0 vs -0 are numerically identical.
        if (orig | recon) & 0x7FFF_FFFF == 0 {
            return ValueCheck { outlier: false, rel_err: 0.0 };
        }
        return ValueCheck { outlier: true, rel_err: 0.0 };
    }
    // (ii) mantissa difference below the N-th MSbit.
    let m_o = orig & 0x7F_FFFF;
    let m_r = recon & 0x7F_FFFF;
    let diff = m_o.abs_diff(m_r);
    if diff >= th.mantissa_limit() {
        return ValueCheck { outlier: true, rel_err: 0.0 };
    }
    ValueCheck { outlier: false, rel_err: diff as f64 / (1u32 << 23) as f64 }
}

#[inline]
fn check_fixed(orig: i32, recon: i32, th: &Thresholds) -> ValueCheck {
    if orig == recon {
        return ValueCheck { outlier: false, rel_err: 0.0 };
    }
    let diff = (orig as i64 - recon as i64).unsigned_abs();
    if orig == 0 {
        // Any nonzero reconstruction of a zero is an outlier.
        return ValueCheck { outlier: true, rel_err: 0.0 };
    }
    // Divide-free: diff * 2^N > |orig|  <=>  diff/|orig| > 1/2^N.
    let mag = (orig as i64).unsigned_abs();
    if diff << th.n_msbit > mag {
        return ValueCheck { outlier: true, rel_err: 0.0 };
    }
    ValueCheck { outlier: false, rel_err: diff as f64 / mag as f64 }
}

/// Streaming accumulator for the block-average error.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErrorCheck {
    sum_rel_err: f64,
    non_outliers: u32,
    outliers: u32,
}

impl ErrorCheck {
    pub fn push(&mut self, v: ValueCheck) {
        if v.outlier {
            self.outliers += 1;
        } else {
            self.non_outliers += 1;
            self.sum_rel_err += v.rel_err;
        }
    }

    pub fn outliers(&self) -> u32 {
        self.outliers
    }

    /// Average relative error across non-outlier values.
    pub fn avg_err(&self) -> f64 {
        if self.non_outliers == 0 {
            0.0
        } else {
            self.sum_rel_err / self.non_outliers as f64
        }
    }

    /// Does the block pass the T2 average-error gate?
    pub fn passes(&self, th: &Thresholds) -> bool {
        self.avg_err() <= th.t2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th() -> Thresholds {
        Thresholds::paper_default()
    }

    #[test]
    fn paper_default_maps_to_n6() {
        // T1 = 2 %: 1/2^6 = 1.5625 % <= 2 % but 1/2^5 = 3.125 % > 2 %.
        assert_eq!(th().n_msbit, 6);
        assert_eq!(th().mantissa_limit(), 1 << 17);
    }

    #[test]
    fn exact_match_never_outlier() {
        for v in [0.0f32, -0.0, 1.5, f32::MAX] {
            let c = check_value(v.to_bits(), v.to_bits(), DataType::F32, &th());
            assert!(!c.outlier);
            assert_eq!(c.rel_err, 0.0);
        }
    }

    #[test]
    fn sign_flip_is_outlier() {
        let c = check_value(1.0f32.to_bits(), (-1.0f32).to_bits(), DataType::F32, &th());
        assert!(c.outlier);
    }

    #[test]
    fn exponent_change_is_outlier() {
        let c = check_value(1.0f32.to_bits(), 2.0f32.to_bits(), DataType::F32, &th());
        assert!(c.outlier);
    }

    #[test]
    fn small_mantissa_drift_passes() {
        let orig = 1.0f32;
        let recon = f32::from_bits(orig.to_bits() + 1000); // ~1e-4 relative
        let c = check_value(orig.to_bits(), recon.to_bits(), DataType::F32, &th());
        assert!(!c.outlier);
        assert!(c.rel_err > 0.0 && c.rel_err < 0.001);
    }

    #[test]
    fn mantissa_limit_boundary() {
        let orig = 1.5f32.to_bits();
        let just_under = orig + th().mantissa_limit() - 1;
        let at_limit = orig + th().mantissa_limit();
        assert!(!check_f32(orig, just_under, &th()).outlier);
        assert!(check_f32(orig, at_limit, &th()).outlier);
    }

    #[test]
    fn zero_vs_nonzero_is_outlier() {
        let c = check_value(0.0f32.to_bits(), 0.001f32.to_bits(), DataType::F32, &th());
        assert!(c.outlier);
        let c2 = check_value(0.0f32.to_bits(), (-0.0f32).to_bits(), DataType::F32, &th());
        assert!(!c2.outlier);
    }

    #[test]
    fn nan_is_always_outlier() {
        let c = check_value(f32::NAN.to_bits(), 0.0f32.to_bits(), DataType::F32, &th());
        assert!(c.outlier);
    }

    #[test]
    fn relative_check_is_scale_invariant() {
        // The hardware compares mantissa differences against 2^(23-N), which
        // over-counts relative error by up to 2x when the mantissa is close
        // to 2.0. A drift below T1/2 therefore passes at *any* magnitude.
        for scale in [1e-20f32, 1.0, 1e20] {
            let orig = 1.27 * scale;
            let recon = orig * 1.007;
            let c = check_value(orig.to_bits(), recon.to_bits(), DataType::F32, &th());
            assert!(!c.outlier, "scale {scale}");
        }
    }

    #[test]
    fn fixed_within_threshold_passes() {
        let orig = 100_000i32;
        let recon = orig + 1000; // 1 % — within 1/2^6 = 1.5625 %
        let c = check_value(orig as u32, recon as u32, DataType::Fixed32, &th());
        assert!(!c.outlier);
        assert!((c.rel_err - 0.01).abs() < 1e-9);
    }

    #[test]
    fn fixed_beyond_threshold_is_outlier() {
        let orig = 100_000i32;
        let recon = orig + 2000; // 2 % > 1.5625 %
        let c = check_value(orig as u32, recon as u32, DataType::Fixed32, &th());
        assert!(c.outlier);
    }

    #[test]
    fn fixed_zero_rules() {
        assert!(check_value(0, 1, DataType::Fixed32, &th()).outlier);
        assert!(!check_value(0, 0, DataType::Fixed32, &th()).outlier);
    }

    #[test]
    fn average_gate() {
        let mut acc = ErrorCheck::default();
        // 10 values at 0.8 % error, T2 = 1 % -> passes.
        for _ in 0..10 {
            acc.push(ValueCheck { outlier: false, rel_err: 0.008 });
        }
        assert!(acc.passes(&th()));
        // Push enough 1.5 % values to push the mean over 1 %.
        for _ in 0..30 {
            acc.push(ValueCheck { outlier: false, rel_err: 0.015 });
        }
        assert!(!acc.passes(&th()));
        assert_eq!(acc.outliers(), 0);
    }

    #[test]
    fn outliers_excluded_from_average() {
        let mut acc = ErrorCheck::default();
        acc.push(ValueCheck { outlier: true, rel_err: 0.0 });
        acc.push(ValueCheck { outlier: false, rel_err: 0.004 });
        assert_eq!(acc.outliers(), 1);
        assert!((acc.avg_err() - 0.004).abs() < 1e-12);
    }
}
