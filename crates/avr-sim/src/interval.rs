//! Interval-based core model (Genbrugge, Eyerman & Eeckhout, HPCA'10 — the
//! abstraction the paper's own Pin-based simulator used).
//!
//! The model dispatches instructions at the issue width and charges memory
//! stalls per *miss interval* rather than per instruction:
//!
//! * short accesses (hits in the cache hierarchy, below the ROB-hideable
//!   window) cost only their dispatch slot;
//! * the leading long-latency miss of a burst charges its full latency
//!   minus the ROB-hideable window;
//! * trailing misses that issue under the shadow of an outstanding miss
//!   overlap (memory-level parallelism) up to the MSHR count;
//! * once all MSHRs are busy the core stalls until the oldest miss returns.
//!
//! The DRAM model returns *absolute* completion times that already reflect
//! bank/bus contention, so bandwidth-bound phases serialize naturally.

use std::collections::VecDeque;

/// One simulated core's timing state.
#[derive(Clone, Debug)]
pub struct IntervalCore {
    issue_width: u64,
    /// Reorder-buffer size (instruction window of a miss interval).
    rob_size: u64,
    /// Cycles of latency the ROB can hide under an isolated miss.
    hide_window: u64,
    mshrs: usize,
    /// Completion times of outstanding long-latency misses.
    outstanding: VecDeque<u64>,
    /// Retired-instruction count at the most recent long-latency miss.
    /// A new miss within `rob_size` instructions of it was in flight in
    /// the same ROB window and overlaps (Genbrugge's key observation);
    /// chains of such misses pipeline and become bandwidth-bound through
    /// MSHR pressure.
    last_long_miss_instr: Option<u64>,
    /// Dispatch-slot accumulator (instructions not yet converted to cycles).
    slot_backlog: u64,
    /// Current core cycle.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Cycles lost to memory stalls (diagnostics).
    pub stall_cycles: u64,
    /// Leading (fully charged) misses.
    pub leading_misses: u64,
    /// Trailing (overlapped) misses.
    pub trailing_misses: u64,
}

impl IntervalCore {
    pub fn new(issue_width: u64, rob_size: u64, mshrs: u64) -> Self {
        assert!(issue_width > 0 && mshrs > 0);
        IntervalCore {
            issue_width,
            rob_size,
            hide_window: rob_size / issue_width,
            mshrs: mshrs as usize,
            outstanding: VecDeque::new(),
            last_long_miss_instr: None,
            slot_backlog: 0,
            cycles: 0,
            instructions: 0,
            stall_cycles: 0,
            leading_misses: 0,
            trailing_misses: 0,
        }
    }

    /// The latency (cycles) below which an access is "short" — hidden by
    /// out-of-order execution.
    pub fn hide_window(&self) -> u64 {
        self.hide_window
    }

    fn drain_slots(&mut self) {
        self.cycles += self.slot_backlog / self.issue_width;
        self.slot_backlog %= self.issue_width;
    }

    /// Account `n` non-memory instructions.
    pub fn compute(&mut self, n: u64) {
        self.instructions += n;
        self.slot_backlog += n;
        self.drain_slots();
    }

    /// A memory instruction is about to issue: returns the cycle at which
    /// the memory system sees it. Applies MSHR back-pressure (stalling the
    /// core until an MSHR frees up when all are busy).
    pub fn issue_memory(&mut self) -> u64 {
        self.instructions += 1;
        self.slot_backlog += 1;
        self.drain_slots();
        // Retire misses that completed before now.
        while self.outstanding.front().is_some_and(|&t| t <= self.cycles) {
            self.outstanding.pop_front();
        }
        if self.outstanding.len() >= self.mshrs {
            let oldest = self.outstanding.pop_front().expect("nonempty");
            if oldest > self.cycles {
                self.stall_cycles += oldest - self.cycles;
                self.cycles = oldest;
            }
            // More may have completed by the new time.
            while self.outstanding.front().is_some_and(|&t| t <= self.cycles) {
                self.outstanding.pop_front();
            }
        }
        self.cycles
    }

    /// Closed-form batch of `n` *short* memory accesses (all at `latency`
    /// cycles, within the OoO hide window): bit-identical evolution of
    /// `cycles`, `instructions`, `slot_backlog`, `stall_cycles` and the
    /// outstanding-miss set to `n` sequential
    /// [`Self::issue_memory`]/[`Self::complete_memory`] pairs.
    ///
    /// Why the closed form is exact:
    ///
    /// * a short access's `complete_memory` is a no-op (it returns inside
    ///   the hide window and never enqueues), so the outstanding set can
    ///   only *shrink* across the batch — MSHR back-pressure can therefore
    ///   fire at most once, at the batch's first issue, which runs through
    ///   the full single-access path below;
    /// * dispatch-slot draining is an integer carry
    ///   (`cycles += backlog / width; backlog %= width`), so folding the
    ///   remaining `n-1` slots in one step lands on the same
    ///   (`cycles`, `backlog`) as draining them one at a time;
    /// * retirement (`pop` completions `<= cycles`) is monotone in
    ///   `cycles`, so retiring once at the batch's final cycle pops
    ///   exactly the entries the per-access loop would have popped by
    ///   then.
    pub fn issue_complete_short_n(&mut self, n: u64, latency: u64) {
        assert!(
            latency <= self.hide_window,
            "issue_complete_short_n is for hidden accesses (latency {latency} > window {})",
            self.hide_window
        );
        if n == 0 {
            return;
        }
        // First access: full single-access semantics (the only issue in the
        // batch that can observe MSHR pressure). Its completion is hidden,
        // so `complete_memory` would change nothing.
        let _ = self.issue_memory();
        let rest = n - 1;
        if rest > 0 {
            self.instructions += rest;
            self.slot_backlog += rest;
            self.drain_slots();
            while self.outstanding.front().is_some_and(|&t| t <= self.cycles) {
                self.outstanding.pop_front();
            }
        }
    }

    /// Account a completed memory access issued at `issued` (from
    /// [`Self::issue_memory`]) that finishes at absolute cycle `completion`.
    pub fn complete_memory(&mut self, issued: u64, completion: u64) {
        let latency = completion.saturating_sub(issued);
        if latency <= self.hide_window {
            return; // fully hidden by the OoO window
        }
        // A miss is *trailing* (overlapped, charged only through MSHR
        // pressure and drain) when it issued within one ROB window of the
        // previous long miss — the two were in flight together. Chains of
        // such misses pipeline; their cost surfaces as MSHR stalls at the
        // DRAM service rate, which is exactly the steady state of a
        // bandwidth-bound stream.
        let trailing =
            self.last_long_miss_instr.is_some_and(|at| self.instructions - at <= self.rob_size)
                && self.outstanding.len() < self.mshrs;
        self.last_long_miss_instr = Some(self.instructions);
        if trailing {
            self.trailing_misses += 1;
        } else {
            // Leading miss of an interval: charge latency beyond the
            // hideable window.
            let penalty = latency - self.hide_window;
            self.cycles += penalty;
            self.stall_cycles += penalty;
            self.leading_misses += 1;
        }
        self.outstanding.push_back(completion);
        // Keep completion order sorted: DRAM can reorder across banks.
        if self.outstanding.len() >= 2 {
            let last = *self.outstanding.back().unwrap();
            if last < self.outstanding[self.outstanding.len() - 2] {
                self.outstanding.make_contiguous().sort_unstable();
            }
        }
    }

    /// Let the pipeline drain (end of simulation): advance to the last
    /// outstanding completion.
    pub fn drain(&mut self) {
        if let Some(&last) = self.outstanding.back() {
            if last > self.cycles {
                self.stall_cycles += last - self.cycles;
                self.cycles = last;
            }
        }
        self.outstanding.clear();
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> IntervalCore {
        IntervalCore::new(4, 128, 8)
    }

    #[test]
    fn compute_only_hits_issue_width() {
        let mut c = core();
        c.compute(4000);
        assert_eq!(c.cycles, 1000);
        assert!((c.ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn slot_backlog_accumulates_fractions() {
        let mut c = core();
        for _ in 0..7 {
            c.compute(1);
        }
        assert_eq!(c.cycles, 1, "7 instructions at width 4 -> 1 full cycle");
        c.compute(1);
        assert_eq!(c.cycles, 2);
    }

    #[test]
    fn short_access_costs_only_dispatch() {
        let mut c = core();
        let t = c.issue_memory();
        c.complete_memory(t, t + 15); // LLC hit, under the 32-cycle window
        assert_eq!(c.stall_cycles, 0);
    }

    #[test]
    fn isolated_miss_charges_latency_minus_window() {
        let mut c = core();
        c.compute(400); // cycles = 100
        let t = c.issue_memory();
        c.complete_memory(t, t + 200);
        assert_eq!(c.stall_cycles, 200 - 32);
        assert_eq!(c.cycles, 100 + (200 - 32));
    }

    #[test]
    fn overlapped_misses_charge_once() {
        let mut c = core();
        let t0 = c.issue_memory();
        c.complete_memory(t0, t0 + 200);
        let after_first = c.cycles;
        // Second miss issues under the first miss's shadow (outstanding
        // nonempty): no extra leading-miss penalty.
        let t1 = c.issue_memory();
        c.complete_memory(t1, t1 + 180);
        assert_eq!(c.cycles, after_first, "trailing miss is free");
    }

    #[test]
    fn mshr_pressure_serializes() {
        let mut c = core();
        // Fill all 8 MSHRs with misses completing far in the future.
        let mut completions = Vec::new();
        for i in 0..8 {
            let t = c.issue_memory();
            let done = t + 500 + i * 10;
            c.complete_memory(t, done);
            completions.push(done);
        }
        let before = c.cycles;
        // The 9th memory op must wait for the oldest completion.
        let t9 = c.issue_memory();
        assert!(t9 >= completions[0], "stalled to oldest completion");
        assert!(c.cycles > before);
    }

    #[test]
    fn drain_advances_to_last_completion() {
        let mut c = core();
        let t = c.issue_memory();
        c.complete_memory(t, t + 40); // over window -> outstanding
        let t2 = c.issue_memory();
        c.complete_memory(t2, t2 + 1000);
        c.drain();
        assert!(c.cycles >= t2 + 1000 - 33);
    }

    /// Full-state equality for the closed-form batch: every field that can
    /// influence any future decision, including the outstanding queue and
    /// the sub-cycle slot backlog.
    fn assert_same_state(a: &IntervalCore, b: &IntervalCore, ctx: &str) {
        assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
        assert_eq!(a.instructions, b.instructions, "{ctx}: instructions");
        assert_eq!(a.slot_backlog, b.slot_backlog, "{ctx}: slot_backlog");
        assert_eq!(a.stall_cycles, b.stall_cycles, "{ctx}: stall_cycles");
        assert_eq!(a.leading_misses, b.leading_misses, "{ctx}: leading misses");
        assert_eq!(a.trailing_misses, b.trailing_misses, "{ctx}: trailing misses");
        assert_eq!(a.last_long_miss_instr, b.last_long_miss_instr, "{ctx}: last long miss");
        assert_eq!(a.outstanding, b.outstanding, "{ctx}: outstanding set");
    }

    #[test]
    fn batched_short_accesses_match_sequential_exactly() {
        // Sweep batch sizes, backlog phases and latencies; both cores see
        // the identical instruction stream.
        for lat in [1u64, 4, 31] {
            for phase in 0..4u64 {
                for n in [1u64, 2, 3, 15, 16, 17, 100] {
                    let mut seq = core();
                    let mut bat = core();
                    seq.compute(phase);
                    bat.compute(phase);
                    for _ in 0..n {
                        let t = seq.issue_memory();
                        seq.complete_memory(t, t + lat);
                    }
                    bat.issue_complete_short_n(n, lat);
                    assert_same_state(&seq, &bat, &format!("lat={lat} phase={phase} n={n}"));
                }
            }
        }
    }

    #[test]
    fn batched_short_accesses_match_under_outstanding_misses() {
        // Queue a long miss (and a full-MSHR variant) before the batch so
        // the batch's first issue must handle retirement and back-pressure
        // exactly like the loop.
        for pending in [1usize, 8] {
            let mut seq = core();
            let mut bat = core();
            for c in [&mut seq, &mut bat] {
                for i in 0..pending {
                    let t = c.issue_memory();
                    c.complete_memory(t, t + 400 + 10 * i as u64);
                }
            }
            for _ in 0..50 {
                let t = seq.issue_memory();
                seq.complete_memory(t, t + 1);
            }
            bat.issue_complete_short_n(50, 1);
            assert_same_state(&seq, &bat, &format!("pending={pending}"));
            // And the next long miss after the batch behaves identically.
            let ts = seq.issue_memory();
            seq.complete_memory(ts, ts + 300);
            let tb = bat.issue_memory();
            bat.complete_memory(tb, tb + 300);
            assert_same_state(&seq, &bat, &format!("pending={pending}, post-miss"));
        }
    }

    #[test]
    #[should_panic(expected = "hidden accesses")]
    fn batched_short_accesses_reject_long_latency() {
        let mut c = core();
        c.issue_complete_short_n(4, 33); // hide window is 32
    }

    #[test]
    fn lower_latency_memory_means_fewer_cycles() {
        // The property Figure 9 rests on: same instruction stream, lower
        // memory latency -> fewer total cycles.
        let run = |lat: u64| {
            let mut c = core();
            for _ in 0..100 {
                c.compute(50);
                let t = c.issue_memory();
                c.complete_memory(t, t + lat);
            }
            c.drain();
            c.cycles
        };
        assert!(run(60) < run(200));
        assert!(run(200) < run(400));
    }
}
