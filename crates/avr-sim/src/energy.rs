//! Energy model — the McPAT/CACTI substitute.
//!
//! Figure 10 of the paper is a *normalized, stacked* energy breakdown
//! {core, L1+L2, LLC, DRAM, compressor}. Relative energy is driven by event
//! counts × per-event costs plus static power × execution time, which is
//! exactly what this model computes. The constants below are 32 nm-class
//! values in the range CACTI 6.0 / McPAT report for the paper's geometries
//! (64 KB L1, 256 KB L2, 8 MB LLC, DDR4); absolute joules are not the
//! reproduction target — the normalized stacks are.

/// Per-event and static energy constants. All dynamic energies in
/// nanojoules, powers in watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Average core energy per retired instruction (OoO 4-wide, 32 nm).
    pub core_nj_per_instr: f64,
    /// L1 access (64 KB, 4-way).
    pub l1_nj_per_access: f64,
    /// L2 access (256 KB, 8-way).
    pub l2_nj_per_access: f64,
    /// LLC access, per 64 B line touched (8 MB, 16-way).
    pub llc_nj_per_access: f64,
    /// DRAM transfer energy per byte (≈20 pJ/bit incl. I/O).
    pub dram_nj_per_byte: f64,
    /// Row activation energy.
    pub dram_nj_per_activate: f64,
    /// All-bank refresh burst energy per refresh event (per channel) —
    /// what the relaxed-refresh backend trades retention errors against.
    pub dram_nj_per_refresh: f64,
    /// ECC check-and-scrub energy per protected critical-line transfer
    /// (only charged when the error model scrubs, i.e. never on exact).
    pub ecc_nj_per_scrub: f64,
    /// Compressor energy per block compression (49-cycle pipeline pass).
    pub compress_nj_per_block: f64,
    /// Decompressor energy per block decompression (12-cycle pass).
    pub decompress_nj_per_block: f64,
    /// Static power: per core.
    pub core_static_w: f64,
    /// Static power: L1+L2 per core.
    pub l1l2_static_w: f64,
    /// Static power: LLC + interconnect.
    pub llc_static_w: f64,
    /// DRAM background power.
    pub dram_static_w: f64,
    /// Compressor/decompressor leakage (~200k cells).
    pub compressor_static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            core_nj_per_instr: 0.25,
            l1_nj_per_access: 0.05,
            l2_nj_per_access: 0.18,
            llc_nj_per_access: 0.9,
            dram_nj_per_byte: 0.15,
            dram_nj_per_activate: 2.0,
            dram_nj_per_refresh: 60.0,
            ecc_nj_per_scrub: 0.05,
            compress_nj_per_block: 0.6,
            decompress_nj_per_block: 0.25,
            core_static_w: 0.45,
            l1l2_static_w: 0.08,
            llc_static_w: 0.9,
            dram_static_w: 0.7,
            compressor_static_w: 0.02,
        }
    }
}

/// The Figure 10 stack components, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    pub core: f64,
    pub l1l2: f64,
    pub llc: f64,
    pub dram: f64,
    pub compressor: f64,
}

impl EnergyBreakdown {
    pub fn total(&self) -> f64 {
        self.core + self.l1l2 + self.llc + self.dram + self.compressor
    }

    /// Accumulate another run's stack (joules are additive across shards).
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.core += other.core;
        self.l1l2 += other.l1l2;
        self.llc += other.llc;
        self.dram += other.dram;
        self.compressor += other.compressor;
    }

    /// Normalize each component to another run's total (the figures
    /// normalize to the baseline design).
    pub fn normalized_to(&self, baseline_total: f64) -> EnergyBreakdown {
        assert!(baseline_total > 0.0);
        EnergyBreakdown {
            core: self.core / baseline_total,
            l1l2: self.l1l2 / baseline_total,
            llc: self.llc / baseline_total,
            dram: self.dram / baseline_total,
            compressor: self.compressor / baseline_total,
        }
    }
}

/// Event counts the model consumes.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyEvents {
    pub instructions: u64,
    pub l1_accesses: u64,
    pub l2_accesses: u64,
    /// 64 B lines touched in the LLC (UCL + CMS reads/writes).
    pub llc_line_accesses: u64,
    pub dram_bytes: u64,
    pub dram_activates: u64,
    /// All-bank refresh bursts issued (the relaxed backend issues fewer).
    pub dram_refreshes: u64,
    /// ECC scrubs of critical lines under a fault-injecting error model.
    pub ecc_scrubs: u64,
    pub blocks_compressed: u64,
    pub blocks_decompressed: u64,
}

impl EnergyModel {
    /// Compute the energy stack for a run of `exec_seconds` wall-clock (at
    /// the simulated clock) over `cores` active cores. `has_compressor`
    /// gates the compressor's static power (baseline/truncate lack the
    /// module; Doppelgänger has its own map structures charged the same).
    pub fn breakdown(
        &self,
        ev: &EnergyEvents,
        exec_seconds: f64,
        cores: usize,
        has_compressor: bool,
    ) -> EnergyBreakdown {
        let nj = 1e-9;
        EnergyBreakdown {
            core: ev.instructions as f64 * self.core_nj_per_instr * nj
                + self.core_static_w * cores as f64 * exec_seconds,
            l1l2: (ev.l1_accesses as f64 * self.l1_nj_per_access
                + ev.l2_accesses as f64 * self.l2_nj_per_access)
                * nj
                + self.l1l2_static_w * cores as f64 * exec_seconds,
            llc: ev.llc_line_accesses as f64 * self.llc_nj_per_access * nj
                + self.llc_static_w * exec_seconds,
            dram: (ev.dram_bytes as f64 * self.dram_nj_per_byte
                + ev.dram_activates as f64 * self.dram_nj_per_activate
                + ev.dram_refreshes as f64 * self.dram_nj_per_refresh
                + ev.ecc_scrubs as f64 * self.ecc_nj_per_scrub)
                * nj
                + self.dram_static_w * exec_seconds,
            compressor: if has_compressor {
                (ev.blocks_compressed as f64 * self.compress_nj_per_block
                    + ev.blocks_decompressed as f64 * self.decompress_nj_per_block)
                    * nj
                    + self.compressor_static_w * exec_seconds
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> EnergyEvents {
        EnergyEvents {
            instructions: 1_000_000,
            l1_accesses: 300_000,
            l2_accesses: 50_000,
            llc_line_accesses: 20_000,
            dram_bytes: 640_000,
            dram_activates: 2_000,
            dram_refreshes: 100,
            ecc_scrubs: 0,
            blocks_compressed: 500,
            blocks_decompressed: 1_500,
        }
    }

    #[test]
    fn all_components_positive() {
        let m = EnergyModel::default();
        let b = m.breakdown(&events(), 0.001, 1, true);
        assert!(b.core > 0.0 && b.l1l2 > 0.0 && b.llc > 0.0 && b.dram > 0.0);
        assert!(b.compressor > 0.0);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn no_compressor_means_zero_compressor_energy() {
        let m = EnergyModel::default();
        let b = m.breakdown(&events(), 0.001, 1, false);
        assert_eq!(b.compressor, 0.0);
    }

    #[test]
    fn less_traffic_means_less_dram_energy() {
        let m = EnergyModel::default();
        let mut low = events();
        low.dram_bytes /= 4;
        low.dram_activates /= 4;
        let b_low = m.breakdown(&low, 0.001, 1, true);
        let b_hi = m.breakdown(&events(), 0.001, 1, true);
        assert!(b_low.dram < b_hi.dram);
    }

    #[test]
    fn fewer_refreshes_cut_dram_energy() {
        // The relaxed-refresh backend's whole point: stretching tREFI by k
        // divides the refresh count by k, and the model must reward it.
        let m = EnergyModel::default();
        let mut relaxed = events();
        relaxed.dram_refreshes /= 4;
        let b_relaxed = m.breakdown(&relaxed, 0.001, 1, true);
        let b_nominal = m.breakdown(&events(), 0.001, 1, true);
        let expect = 75.0 * m.dram_nj_per_refresh * 1e-9;
        assert!((b_nominal.dram - b_relaxed.dram - expect).abs() < 1e-15);
    }

    #[test]
    fn shorter_runtime_cuts_static_energy() {
        let m = EnergyModel::default();
        let fast = m.breakdown(&events(), 0.0005, 1, true);
        let slow = m.breakdown(&events(), 0.001, 1, true);
        assert!(fast.total() < slow.total());
        // Dynamic component is identical, so the delta equals static power
        // x time delta.
        let static_w = m.core_static_w
            + m.l1l2_static_w
            + m.llc_static_w
            + m.dram_static_w
            + m.compressor_static_w;
        let expect = static_w * 0.0005;
        assert!((slow.total() - fast.total() - expect).abs() < 1e-12);
    }

    #[test]
    fn normalization_is_proportional() {
        let m = EnergyModel::default();
        let b = m.breakdown(&events(), 0.001, 1, true);
        let n = b.normalized_to(b.total());
        assert!((n.total() - 1.0).abs() < 1e-12);
    }
}
