//! Statistics: everything §4.3's figures and tables are built from.

use crate::energy::EnergyBreakdown;

/// Figure 14: outcome classes of LLC requests on approximate cachelines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcRequestBreakdown {
    /// Request missed entirely (went to DRAM).
    pub miss: u64,
    /// Hit an uncompressed cacheline in the LLC.
    pub uncompressed_hit: u64,
    /// Served from the decompressed-block buffer.
    pub dbuf_hit: u64,
    /// Hit a compressed block resident in the LLC (decompress on hit).
    pub compressed_hit: u64,
}

impl LlcRequestBreakdown {
    pub fn total(&self) -> u64 {
        self.miss + self.uncompressed_hit + self.dbuf_hit + self.compressed_hit
    }

    /// Accumulate another shard's breakdown (event counts are additive).
    pub fn merge(&mut self, other: &LlcRequestBreakdown) {
        self.miss += other.miss;
        self.uncompressed_hit += other.uncompressed_hit;
        self.dbuf_hit += other.dbuf_hit;
        self.compressed_hit += other.compressed_hit;
    }

    /// Shares in Figure 14 order: [miss, uncompressed, dbuf, compressed].
    pub fn shares(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.miss as f64 / t,
            self.uncompressed_hit as f64 / t,
            self.dbuf_hit as f64 / t,
            self.compressed_hit as f64 / t,
        ]
    }
}

/// Figure 15: outcome classes of LLC evictions of approximate cachelines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionBreakdown {
    /// Block resident compressed in LLC: updated + recompressed in place.
    pub recompress: u64,
    /// Written back uncompressed into the block's free space in memory.
    pub lazy_writeback: u64,
    /// Block fetched from memory, updated, recompressed, written back.
    pub fetch_recompress: u64,
    /// Block is uncompressed (failed/skipped): plain line writeback.
    pub uncompressed_writeback: u64,
}

impl EvictionBreakdown {
    pub fn total(&self) -> u64 {
        self.recompress + self.lazy_writeback + self.fetch_recompress + self.uncompressed_writeback
    }

    /// Accumulate another shard's breakdown (event counts are additive).
    pub fn merge(&mut self, other: &EvictionBreakdown) {
        self.recompress += other.recompress;
        self.lazy_writeback += other.lazy_writeback;
        self.fetch_recompress += other.fetch_recompress;
        self.uncompressed_writeback += other.uncompressed_writeback;
    }

    /// Shares in Figure 15 order.
    pub fn shares(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.recompress as f64 / t,
            self.lazy_writeback as f64 / t,
            self.fetch_recompress as f64 / t,
            self.uncompressed_writeback as f64 / t,
        ]
    }
}

/// Figure 11: DRAM traffic split into approximate / non-approximate bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    pub approx_read_bytes: u64,
    pub approx_write_bytes: u64,
    pub nonapprox_read_bytes: u64,
    pub nonapprox_write_bytes: u64,
    /// CMT metadata fetches (counted with non-approx in the figure).
    pub metadata_bytes: u64,
}

impl Traffic {
    pub fn approx(&self) -> u64 {
        self.approx_read_bytes + self.approx_write_bytes
    }

    pub fn nonapprox(&self) -> u64 {
        self.nonapprox_read_bytes + self.nonapprox_write_bytes + self.metadata_bytes
    }

    pub fn total(&self) -> u64 {
        self.approx() + self.nonapprox()
    }

    /// Accumulate another shard's traffic (byte counts are additive).
    pub fn merge(&mut self, other: &Traffic) {
        self.approx_read_bytes += other.approx_read_bytes;
        self.approx_write_bytes += other.approx_write_bytes;
        self.nonapprox_read_bytes += other.nonapprox_read_bytes;
        self.nonapprox_write_bytes += other.nonapprox_write_bytes;
        self.metadata_bytes += other.metadata_bytes;
    }
}

/// Device error-model events (PR 6): what the fault-injecting backends did
/// to approximable lines, and how the graceful-degradation layer responded.
/// All zero under the exact backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultBreakdown {
    /// Bits flipped by the device (whether later caught or committed).
    pub injected_bit_flips: u64,
    /// Device transfers that left at least one bit flipped.
    pub faulted_lines: u64,
    /// Implausible lines re-served exactly (a timed refetch/rewrite) while
    /// the retry budget lasted.
    pub retries: u64,
    /// Implausible lines committed after the retry budget ran out.
    pub degraded_lines: u64,
    /// Values zeroed while sanitizing degraded lines (NaN/Inf/blowouts).
    pub sanitized_values: u64,
    /// ECC scrub events protecting critical (non-approximable) lines.
    pub ecc_scrubs: u64,
}

impl FaultBreakdown {
    /// Whether the device injected any fault at all.
    pub fn any_injected(&self) -> bool {
        self.injected_bit_flips > 0
    }

    /// Accumulate another shard's fault events (all additive).
    pub fn merge(&mut self, other: &FaultBreakdown) {
        self.injected_bit_flips += other.injected_bit_flips;
        self.faulted_lines += other.faulted_lines;
        self.retries += other.retries;
        self.degraded_lines += other.degraded_lines;
        self.sanitized_values += other.sanitized_values;
        self.ecc_scrubs += other.ecc_scrubs;
    }
}

/// Memoization-design events (PR 10): what the `MemoIn` reconstruction
/// table and the `MemoOut` temporal predictor did. All zero under every
/// other design.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoBreakdown {
    /// `MemoIn`: dirty approximable writebacks probed against the table.
    pub in_probes: u64,
    /// `MemoIn`: probes that matched a slot within the error threshold
    /// (the line's DRAM write was replaced by a table mapping).
    pub in_hits: u64,
    /// `MemoIn`: probes that seeded a fresh table slot.
    pub in_inserts: u64,
    /// `MemoIn`: LLC read misses served from the reconstruction table
    /// instead of DRAM.
    pub in_served: u64,
    /// `MemoOut`: dirty approximable writebacks pushed into a line's
    /// sliding window.
    pub out_windows: u64,
    /// `MemoOut`: writebacks elided because the window's signature RSD was
    /// under threshold (last committed content re-served).
    pub out_elided: u64,
    /// `MemoOut`: writebacks committed exactly (window not yet full,
    /// unstable, or the consecutive-elision cap fired).
    pub out_commits: u64,
}

impl MemoBreakdown {
    /// Whether either memo mechanism redeemed any traffic at all.
    pub fn any_hits(&self) -> bool {
        self.in_hits + self.in_served + self.out_elided > 0
    }

    /// Accumulate another shard's memo events (all additive).
    pub fn merge(&mut self, other: &MemoBreakdown) {
        self.in_probes += other.in_probes;
        self.in_hits += other.in_hits;
        self.in_inserts += other.in_inserts;
        self.in_served += other.in_served;
        self.out_windows += other.out_windows;
        self.out_elided += other.out_elided;
        self.out_commits += other.out_commits;
    }
}

/// Raw event counters accumulated during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub instructions: u64,
    pub loads: u64,
    pub stores: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub llc_requests_total: u64,
    pub llc_misses_total: u64,
    pub approx_requests: LlcRequestBreakdown,
    pub evictions: EvictionBreakdown,
    pub traffic: Traffic,
    /// Sum/count of memory-request latencies for AMAT.
    pub amat_cycles_sum: u64,
    pub amat_count: u64,
    /// Latency sum/max over LLC-missing requests (diagnostics).
    pub miss_lat_sum: u64,
    pub miss_lat_count: u64,
    pub miss_lat_max: u64,
    /// Sum/count of LLC-hit-on-compressed latencies (§4.3 quotes 20–74 cy).
    pub compressed_hit_cycles_sum: u64,
    pub blocks_compressed: u64,
    pub blocks_decompressed: u64,
    pub compression_failures: u64,
    pub compression_skips: u64,
    /// Distinct lines delivered from each decompressed block before its
    /// eviction (block-reuse metric, §4.3 quotes 7–16).
    pub block_reuse_sum: u64,
    pub block_reuse_count: u64,
    /// Device error-model events (all zero on the exact backend).
    pub faults: FaultBreakdown,
    /// Memoization-design events (all zero outside `MemoIn`/`MemoOut`).
    pub memo: MemoBreakdown,
}

impl Counters {
    /// Accumulate another run's counters into this one: every event count
    /// is additive except `miss_lat_max`, which takes the maximum. Derived
    /// ratios (AMAT, MPKI, …) computed on the merged counters are then the
    /// event-weighted aggregates over all merged runs.
    pub fn merge(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.llc_requests_total += other.llc_requests_total;
        self.llc_misses_total += other.llc_misses_total;
        self.approx_requests.merge(&other.approx_requests);
        self.evictions.merge(&other.evictions);
        self.traffic.merge(&other.traffic);
        self.amat_cycles_sum += other.amat_cycles_sum;
        self.amat_count += other.amat_count;
        self.miss_lat_sum += other.miss_lat_sum;
        self.miss_lat_count += other.miss_lat_count;
        self.miss_lat_max = self.miss_lat_max.max(other.miss_lat_max);
        self.compressed_hit_cycles_sum += other.compressed_hit_cycles_sum;
        self.blocks_compressed += other.blocks_compressed;
        self.blocks_decompressed += other.blocks_decompressed;
        self.compression_failures += other.compression_failures;
        self.compression_skips += other.compression_skips;
        self.block_reuse_sum += other.block_reuse_sum;
        self.block_reuse_count += other.block_reuse_count;
        self.faults.merge(&other.faults);
        self.memo.merge(&other.memo);
    }

    /// Average memory access time (cycles) over all core memory requests.
    pub fn amat(&self) -> f64 {
        if self.amat_count == 0 {
            0.0
        } else {
            self.amat_cycles_sum as f64 / self.amat_count as f64
        }
    }

    /// LLC misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses_total as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Mean LLC latency when hitting a compressed block.
    pub fn avg_compressed_hit_latency(&self) -> f64 {
        if self.approx_requests.compressed_hit == 0 {
            0.0
        } else {
            self.compressed_hit_cycles_sum as f64 / self.approx_requests.compressed_hit as f64
        }
    }

    /// Mean distinct cachelines used per decompressed block.
    pub fn avg_block_reuse(&self) -> f64 {
        if self.block_reuse_count == 0 {
            0.0
        } else {
            self.block_reuse_sum as f64 / self.block_reuse_count as f64
        }
    }
}

/// Everything one (benchmark × design) run produces — the row unit of every
/// table and figure.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    pub design: String,
    pub benchmark: String,
    pub counters: Counters,
    pub cycles: u64,
    pub exec_seconds: f64,
    pub ipc: f64,
    pub energy: EnergyBreakdown,
    /// Mean relative error of the application's output values vs. the
    /// precise run (Table 3's metric).
    pub output_error: f64,
    /// Footprint-weighted compression ratio over approximable data
    /// (Table 4, "Compr. Ratio").
    pub compression_ratio: f64,
    /// Approximable 1 KB blocks scanned by the end-of-run compression
    /// summary (AVR designs only; zero for designs without the codec).
    pub approx_blocks: u64,
    /// How many of those blocks the codec accepted (compressed to fewer
    /// lines than raw). The ratio `compressible_blocks / approx_blocks` is
    /// the layout axis's headline number: interleaving critical words into
    /// approximable records (AoS) collapses it, which is the
    /// granularity-gap effect made measurable.
    pub compressible_blocks: u64,
    /// Total memory footprint as a fraction of the baseline footprint
    /// (Table 4, "Mem. Footprint").
    pub footprint_fraction: f64,
    /// Fraction of LLC data capacity holding compressed blocks (§4.3
    /// quotes 2–16 %).
    pub llc_cms_fraction: f64,
}

impl RunMetrics {
    /// Execution time normalized to a baseline run.
    pub fn exec_time_norm(&self, baseline: &RunMetrics) -> f64 {
        self.exec_seconds / baseline.exec_seconds
    }

    /// DRAM traffic normalized to a baseline run.
    pub fn traffic_norm(&self, baseline: &RunMetrics) -> f64 {
        self.counters.traffic.total() as f64 / baseline.counters.traffic.total().max(1) as f64
    }

    /// AMAT normalized to a baseline run.
    pub fn amat_norm(&self, baseline: &RunMetrics) -> f64 {
        self.counters.amat() / baseline.counters.amat().max(f64::MIN_POSITIVE)
    }

    /// MPKI normalized to a baseline run.
    pub fn mpki_norm(&self, baseline: &RunMetrics) -> f64 {
        self.counters.mpki() / baseline.counters.mpki().max(f64::MIN_POSITIVE)
    }

    /// Total energy normalized to a baseline run.
    pub fn energy_norm(&self, baseline: &RunMetrics) -> f64 {
        self.energy.total() / baseline.energy.total().max(f64::MIN_POSITIVE)
    }
}

/// Aggregate over many (workload × configuration) runs — what a
/// `SimPool`-style parallel engine (in `avr-core`) reports after merging
/// its shards.
///
/// Conventions follow the paper's multicore accounting: event counters,
/// traffic and energy *sum* across runs, while cycles report the *makespan*
/// (slowest run).
#[derive(Clone, Debug, Default)]
pub struct MergedRun {
    /// Number of runs absorbed.
    pub runs: u64,
    /// Summed event counters over all runs.
    pub counters: Counters,
    /// Summed energy over all runs.
    pub energy: EnergyBreakdown,
    /// Slowest absorbed run, in cycles.
    pub makespan_cycles: u64,
    /// Summed simulated cycles (for throughput-weighted aggregates).
    pub total_cycles: u64,
}

impl MergedRun {
    /// Fold one run's metrics into the aggregate.
    pub fn absorb(&mut self, m: &RunMetrics) {
        self.runs += 1;
        self.counters.merge(&m.counters);
        self.energy.merge(&m.energy);
        self.makespan_cycles = self.makespan_cycles.max(m.cycles);
        self.total_cycles += m.cycles;
    }

    /// Merge a whole slice of runs.
    pub fn of(runs: &[RunMetrics]) -> MergedRun {
        let mut acc = MergedRun::default();
        for m in runs {
            acc.absorb(m);
        }
        acc
    }
}

/// Geometric mean helper for the figures' "Geom. Mean" column.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shares_sum_to_one() {
        let b = LlcRequestBreakdown {
            miss: 10,
            uncompressed_hit: 20,
            dbuf_hit: 30,
            compressed_hit: 40,
        };
        let s = b.shares();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn eviction_shares_sum_to_one() {
        let b = EvictionBreakdown {
            recompress: 1,
            lazy_writeback: 2,
            fetch_recompress: 3,
            uncompressed_writeback: 4,
        };
        assert!((b.shares().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn traffic_totals() {
        let t = Traffic {
            approx_read_bytes: 100,
            approx_write_bytes: 50,
            nonapprox_read_bytes: 30,
            nonapprox_write_bytes: 10,
            metadata_bytes: 5,
        };
        assert_eq!(t.approx(), 150);
        assert_eq!(t.nonapprox(), 45);
        assert_eq!(t.total(), 195);
    }

    #[test]
    fn amat_and_mpki() {
        let c = Counters {
            instructions: 10_000,
            llc_misses_total: 25,
            amat_cycles_sum: 5_000,
            amat_count: 1_000,
            ..Default::default()
        };
        assert!((c.amat() - 5.0).abs() < 1e-12);
        assert!((c.mpki() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let c = Counters::default();
        assert_eq!(c.amat(), 0.0);
        assert_eq!(c.mpki(), 0.0);
        assert_eq!(c.avg_compressed_hit_latency(), 0.0);
        assert_eq!(c.avg_block_reuse(), 0.0);
    }

    #[test]
    fn geomean_of_equal_values_is_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn counters_merge_sums_events_and_maxes_latency() {
        let mut a = Counters {
            instructions: 100,
            loads: 10,
            miss_lat_max: 80,
            amat_cycles_sum: 500,
            amat_count: 100,
            ..Default::default()
        };
        a.traffic.approx_read_bytes = 64;
        let mut b = Counters {
            instructions: 50,
            loads: 5,
            miss_lat_max: 200,
            amat_cycles_sum: 250,
            amat_count: 50,
            ..Default::default()
        };
        b.traffic.approx_read_bytes = 128;
        a.merge(&b);
        assert_eq!(a.instructions, 150);
        assert_eq!(a.loads, 15);
        assert_eq!(a.miss_lat_max, 200, "max, not sum");
        assert_eq!(a.traffic.approx_read_bytes, 192);
        // Merged AMAT is the event-weighted mean: 750 cycles / 150 reqs.
        assert!((a.amat() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fault_breakdown_merges_additively() {
        let mut a =
            FaultBreakdown { injected_bit_flips: 3, faulted_lines: 2, ..Default::default() };
        let b = FaultBreakdown {
            injected_bit_flips: 5,
            faulted_lines: 4,
            retries: 1,
            degraded_lines: 2,
            sanitized_values: 7,
            ecc_scrubs: 100,
        };
        a.merge(&b);
        assert_eq!(a.injected_bit_flips, 8);
        assert_eq!(a.faulted_lines, 6);
        assert_eq!(a.retries, 1);
        assert_eq!(a.degraded_lines, 2);
        assert_eq!(a.sanitized_values, 7);
        assert_eq!(a.ecc_scrubs, 100);
        assert!(a.any_injected());
        assert!(!FaultBreakdown::default().any_injected());
    }

    #[test]
    fn merged_run_sums_and_takes_makespan() {
        let mut m1 = RunMetrics { cycles: 100, ..Default::default() };
        m1.counters.instructions = 1_000;
        m1.energy.dram = 2.0;
        let mut m2 = RunMetrics { cycles: 300, ..Default::default() };
        m2.counters.instructions = 500;
        m2.energy.dram = 1.0;
        let agg = MergedRun::of(&[m1, m2]);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.counters.instructions, 1_500);
        assert_eq!(agg.makespan_cycles, 300);
        assert_eq!(agg.total_cycles, 400);
        assert!((agg.energy.total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_ratios() {
        let mut base = RunMetrics { exec_seconds: 2.0, ..Default::default() };
        base.counters.traffic.approx_read_bytes = 1000;
        let mut m = RunMetrics { exec_seconds: 1.0, ..Default::default() };
        m.counters.traffic.approx_read_bytes = 300;
        assert!((m.exec_time_norm(&base) - 0.5).abs() < 1e-12);
        assert!((m.traffic_norm(&base) - 0.3).abs() < 1e-12);
    }
}
