//! Backing-store physical memory and the approximable address space.
//!
//! The paper's simulator "not only emulate\[s\] the memory accesses but ...
//! actually update\[s\] the values of the memory contents" so approximation
//! error propagates into the application. We do the same: `PhysMem` is the
//! single authoritative value store; caches track presence only, and lossy
//! events (compression, truncation, dedup) rewrite `PhysMem` at the
//! architecturally correct moment.
//!
//! `AddressSpace` is the `malloc`-wrapper of §4.1: page-aligned bump
//! allocation with regions optionally registered as approximable (the OS
//! page-table/TLB approx bit of §3.1).

use avr_types::addr::{BLOCK_BYTES, PAGE_BYTES};
use avr_types::BlockAddr;
use avr_types::{BlockData, CacheLine, DataType, LineAddr, PhysAddr, CL_BYTES, VALUES_PER_LINE};

/// Flat word-granularity physical memory, grown on demand.
#[derive(Clone, Debug, Default)]
pub struct PhysMem {
    words: Vec<u32>,
}

impl PhysMem {
    pub fn new() -> Self {
        PhysMem::default()
    }

    #[inline]
    fn word_index(addr: PhysAddr) -> usize {
        debug_assert_eq!(addr.0 % 4, 0, "accesses are 4-byte aligned ({addr:?})");
        (addr.0 / 4) as usize
    }

    fn ensure(&mut self, word_idx: usize) {
        if word_idx >= self.words.len() {
            self.words.resize((word_idx + 1).next_power_of_two(), 0);
        }
    }

    /// Read one 32-bit word.
    #[inline]
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let i = Self::word_index(addr);
        self.words.get(i).copied().unwrap_or(0)
    }

    /// Write one 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: PhysAddr, val: u32) {
        let i = Self::word_index(addr);
        self.ensure(i);
        self.words[i] = val;
    }

    /// Read `out.len()` consecutive words starting at `addr` with a single
    /// address translation (unwritten tails read zero, like
    /// [`PhysMem::read_u32`]).
    pub fn read_words(&self, addr: PhysAddr, out: &mut [u32]) {
        let base = Self::word_index(addr);
        let have = self.words.len().saturating_sub(base).min(out.len());
        if have > 0 {
            out[..have].copy_from_slice(&self.words[base..base + have]);
        }
        out[have..].fill(0);
    }

    /// Write `vals.len()` consecutive words starting at `addr` with a single
    /// address translation.
    pub fn write_words(&mut self, addr: PhysAddr, vals: &[u32]) {
        if vals.is_empty() {
            return;
        }
        let base = Self::word_index(addr);
        self.ensure(base + vals.len() - 1);
        self.words[base..base + vals.len()].copy_from_slice(vals);
    }

    /// [`PhysMem::read_words`] reinterpreted as IEEE-754 f32 bit patterns.
    pub fn read_words_f32(&self, addr: PhysAddr, out: &mut [f32]) {
        let base = Self::word_index(addr);
        let have = self.words.len().saturating_sub(base).min(out.len());
        if have > 0 {
            for (o, w) in out[..have].iter_mut().zip(&self.words[base..base + have]) {
                *o = f32::from_bits(*w);
            }
        }
        out[have..].fill(0.0);
    }

    /// [`PhysMem::write_words`] from f32 values (bit-pattern stores).
    pub fn write_words_f32(&mut self, addr: PhysAddr, vals: &[f32]) {
        if vals.is_empty() {
            return;
        }
        let base = Self::word_index(addr);
        self.ensure(base + vals.len() - 1);
        for (w, v) in self.words[base..base + vals.len()].iter_mut().zip(vals) {
            *w = v.to_bits();
        }
    }

    /// [`PhysMem::read_words`] reinterpreted as two's-complement i32
    /// (bit-pattern identical to the u32 view — the Fixed32/Q16.16 path).
    pub fn read_words_i32(&self, addr: PhysAddr, out: &mut [i32]) {
        let base = Self::word_index(addr);
        let have = self.words.len().saturating_sub(base).min(out.len());
        if have > 0 {
            for (o, w) in out[..have].iter_mut().zip(&self.words[base..base + have]) {
                *o = *w as i32;
            }
        }
        out[have..].fill(0);
    }

    /// [`PhysMem::write_words`] from i32 values (bit-pattern stores).
    pub fn write_words_i32(&mut self, addr: PhysAddr, vals: &[i32]) {
        if vals.is_empty() {
            return;
        }
        let base = Self::word_index(addr);
        self.ensure(base + vals.len() - 1);
        for (w, v) in self.words[base..base + vals.len()].iter_mut().zip(vals) {
            *w = *v as u32;
        }
    }

    /// Read a whole cacheline.
    pub fn read_line(&self, line: LineAddr) -> CacheLine {
        let base = Self::word_index(line.base());
        let mut out = CacheLine::ZERO;
        for (k, w) in out.words.iter_mut().enumerate() {
            *w = self.words.get(base + k).copied().unwrap_or(0);
        }
        out
    }

    /// Write a whole cacheline.
    pub fn write_line(&mut self, line: LineAddr, data: &CacheLine) {
        let base = Self::word_index(line.base());
        self.ensure(base + VALUES_PER_LINE - 1);
        self.words[base..base + VALUES_PER_LINE].copy_from_slice(&data.words);
    }

    /// Read a whole 1 KB memory block.
    pub fn read_block(&self, block: BlockAddr) -> BlockData {
        let base = Self::word_index(block.base());
        let mut out = BlockData::default();
        for (k, w) in out.words.iter_mut().enumerate() {
            *w = self.words.get(base + k).copied().unwrap_or(0);
        }
        out
    }

    /// Write a whole 1 KB memory block.
    pub fn write_block(&mut self, block: BlockAddr, data: &BlockData) {
        let base = Self::word_index(block.base());
        self.ensure(base + data.words.len() - 1);
        self.words[base..base + data.words.len()].copy_from_slice(&data.words);
    }

    /// Allocated capacity in bytes (diagnostics).
    pub fn capacity_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

/// Per-region device/criticality metadata attached at allocation time.
///
/// Integer encodings keep [`Region`] `Copy + Eq`: the fault-rate override
/// is permille (1000 = nominal), and sub-block criticality is a repeating
/// word pattern — word `w` of the region is critical iff bit
/// `w % crit_period_words` of `crit_pattern` is set. A zero period means
/// "no critical words" (the whole region follows the approx bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegionOpts {
    /// Device fault-rate multiplier in permille (1000 = the configured
    /// backend rates; 0 = this region never decays; 4000 = 4× rates).
    pub fault_scale_permille: u32,
    /// Length in words of the repeating criticality pattern; 0 disables it.
    pub crit_period_words: u32,
    /// Bitmask over one period: set bits mark critical word offsets that
    /// device backends must never corrupt (sub-block ECC metadata).
    pub crit_pattern: u64,
}

impl Default for RegionOpts {
    fn default() -> Self {
        RegionOpts { fault_scale_permille: 1000, crit_period_words: 0, crit_pattern: 0 }
    }
}

impl RegionOpts {
    /// Nominal rates with a repeating criticality pattern.
    pub fn with_crit_pattern(period_words: u32, pattern: u64) -> Self {
        assert!(period_words as usize <= 64, "crit pattern period is capped at 64 words");
        RegionOpts { crit_period_words: period_words, crit_pattern: pattern, ..Self::default() }
    }

    /// Nominal criticality with a scaled device fault rate.
    pub fn with_fault_scale(scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "fault scale must be a nonnegative factor");
        RegionOpts { fault_scale_permille: (scale * 1000.0).round() as u32, ..Self::default() }
    }

    /// The fault-rate multiplier as a factor (permille / 1000).
    pub fn fault_scale(&self) -> f64 {
        f64::from(self.fault_scale_permille) / 1000.0
    }
}

/// One registered allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    pub base: PhysAddr,
    pub len_bytes: usize,
    /// `Some(dt)` when the region is approximable.
    pub approx: Option<DataType>,
    /// Device fault-rate / sub-block criticality metadata.
    pub opts: RegionOpts,
}

impl Region {
    pub fn contains_line(&self, line: LineAddr) -> bool {
        let a = line.base().0;
        a >= self.base.0 && a < self.base.0 + self.len_bytes as u64
    }

    pub fn end(&self) -> PhysAddr {
        PhysAddr(self.base.0 + self.len_bytes as u64)
    }

    /// Bitmask over the 16 words of `line` marking this region's critical
    /// words (from the repeating [`RegionOpts`] pattern). Zero when the
    /// region carries no sub-block criticality metadata.
    pub fn critical_mask_of_line(&self, line: LineAddr) -> u16 {
        let period = u64::from(self.opts.crit_period_words);
        if period == 0 {
            return 0;
        }
        let first_word = (line.base().0 - self.base.0) / 4;
        let mut mask = 0u16;
        for w in 0..VALUES_PER_LINE as u64 {
            if self.opts.crit_pattern >> ((first_word + w) % period) & 1 != 0 {
                mask |= 1 << w;
            }
        }
        mask
    }
}

/// Page-aligned bump allocator + approximable-region registry.
///
/// The first page is left unmapped so address 0 stays invalid.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
    regions: Vec<Region>,
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace { next: PAGE_BYTES as u64, regions: Vec::new() }
    }
}

impl AddressSpace {
    pub fn new() -> Self {
        AddressSpace::default()
    }

    fn alloc_inner(
        &mut self,
        len_bytes: usize,
        approx: Option<DataType>,
        opts: RegionOpts,
    ) -> Region {
        assert!(len_bytes > 0);
        let base = PhysAddr(self.next);
        let pages = len_bytes.div_ceil(PAGE_BYTES);
        self.next += (pages * PAGE_BYTES) as u64;
        let r = Region { base, len_bytes, approx, opts };
        self.regions.push(r);
        r
    }

    /// Plain allocation (precise data).
    pub fn malloc(&mut self, len_bytes: usize) -> Region {
        self.alloc_inner(len_bytes, None, RegionOpts::default())
    }

    /// The paper's wrapper: page-aligned allocation registered approximable
    /// with its datatype.
    pub fn approx_malloc(&mut self, len_bytes: usize, dt: DataType) -> Region {
        self.alloc_inner(len_bytes, Some(dt), RegionOpts::default())
    }

    /// [`Self::approx_malloc`] with explicit device/criticality metadata
    /// (per-region fault-rate overrides, sub-block critical-word patterns).
    pub fn approx_malloc_with(
        &mut self,
        len_bytes: usize,
        dt: DataType,
        opts: RegionOpts,
    ) -> Region {
        self.alloc_inner(len_bytes, Some(dt), opts)
    }

    /// Is this line approximable, and if so with which datatype? (The
    /// TLB/page-table approx bit of §3.1.)
    pub fn approx_of_line(&self, line: LineAddr) -> Option<DataType> {
        self.regions
            .iter()
            .find(|r| r.approx.is_some() && r.contains_line(line))
            .and_then(|r| r.approx)
    }

    /// All registered regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Index into [`Self::regions`] of the *approximable* region containing
    /// `line` — the fault-seeding / per-region-accounting key of the device
    /// error models.
    pub fn approx_region_index_of_line(&self, line: LineAddr) -> Option<usize> {
        self.regions.iter().position(|r| r.approx.is_some() && r.contains_line(line))
    }

    /// Total allocated bytes, and the approximable subset: the inputs to
    /// the Table 4 footprint computation.
    pub fn footprint(&self) -> (u64, u64) {
        let mut total = 0u64;
        let mut approx = 0u64;
        for r in &self.regions {
            total += r.len_bytes as u64;
            if r.approx.is_some() {
                approx += r.len_bytes as u64;
            }
        }
        (total, approx)
    }

    /// Iterate the approximable blocks of every approx region (Table 4
    /// compression-ratio sweeps).
    pub fn approx_blocks(&self) -> impl Iterator<Item = (BlockAddr, DataType)> + '_ {
        self.regions.iter().filter(|r| r.approx.is_some()).flat_map(|r| {
            let dt = r.approx.unwrap();
            let first = r.base.block().0;
            let last = (r.base.0 + r.len_bytes as u64 - 1) >> 10;
            (first..=last).map(move |b| (BlockAddr(b), dt))
        })
    }
}

/// Bytes per block re-exported for footprint math.
pub const BYTES_PER_BLOCK: usize = BLOCK_BYTES;
/// Cacheline size re-exported.
pub const BYTES_PER_LINE: usize = CL_BYTES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip() {
        let mut m = PhysMem::new();
        m.write_u32(PhysAddr(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u32(PhysAddr(0x1000)), 0xDEAD_BEEF);
        assert_eq!(m.read_u32(PhysAddr(0x1004)), 0);
    }

    #[test]
    fn line_round_trip() {
        let mut m = PhysMem::new();
        let mut cl = CacheLine::ZERO;
        for (i, w) in cl.words.iter_mut().enumerate() {
            *w = i as u32 + 7;
        }
        let line = LineAddr(0x99);
        m.write_line(line, &cl);
        assert_eq!(m.read_line(line), cl);
        // Word view agrees with line view.
        assert_eq!(m.read_u32(PhysAddr(line.base().0 + 8)), 9);
    }

    #[test]
    fn bulk_words_match_word_at_a_time() {
        let mut m = PhysMem::new();
        let base = PhysAddr(0x2004); // deliberately line-unaligned
        let vals: Vec<u32> = (0..37).map(|i| i * 0x101 + 5).collect();
        m.write_words(base, &vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(m.read_u32(PhysAddr(base.0 + 4 * i as u64)), v);
        }
        let mut back = vec![0u32; vals.len()];
        m.read_words(base, &mut back);
        assert_eq!(back, vals);
        // Reads past the grown capacity come back zero, like read_u32.
        let mut tail = [1u32; 8];
        m.read_words(PhysAddr(1 << 30), &mut tail);
        assert_eq!(tail, [0u32; 8]);
    }

    #[test]
    fn bulk_f32_words_are_bit_pattern_stores() {
        let mut m = PhysMem::new();
        let base = PhysAddr(0x3000);
        let vals = [1.5f32, -0.0, f32::NAN, 3.25e-9];
        m.write_words_f32(base, &vals);
        let mut back = [0f32; 4];
        m.read_words_f32(base, &mut back);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(m.read_u32(PhysAddr(base.0 + 4)), (-0.0f32).to_bits());
    }

    #[test]
    fn bulk_i32_words_are_bit_pattern_stores() {
        let mut m = PhysMem::new();
        let base = PhysAddr(0x4000);
        let vals = [i32::MIN, -1, 0, 65536, i32::MAX];
        m.write_words_i32(base, &vals);
        // The u32 view sees the same bit patterns.
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(m.read_u32(PhysAddr(base.0 + 4 * i as u64)), v as u32);
        }
        let mut back = [0i32; 5];
        m.read_words_i32(base, &mut back);
        assert_eq!(back, vals);
        // Unwritten tails read zero, like every other bulk reader.
        let mut tail = [7i32; 4];
        m.read_words_i32(PhysAddr(1 << 30), &mut tail);
        assert_eq!(tail, [0i32; 4]);
    }

    #[test]
    fn block_round_trip_and_line_consistency() {
        let mut m = PhysMem::new();
        let mut b = BlockData::default();
        for (i, w) in b.words.iter_mut().enumerate() {
            *w = (i * 3) as u32;
        }
        let block = BlockAddr(0x12);
        m.write_block(block, &b);
        assert_eq!(m.read_block(block), b);
        for i in 0..16 {
            assert_eq!(m.read_line(block.line(i)), b.line(i));
        }
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = PhysMem::new();
        assert_eq!(m.read_u32(PhysAddr(1 << 30)), 0);
        assert_eq!(m.read_block(BlockAddr(1 << 20)), BlockData::default());
    }

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        let r1 = a.malloc(100);
        let r2 = a.approx_malloc(5000, DataType::F32);
        let r3 = a.malloc(1);
        assert_eq!(r1.base.0 % PAGE_BYTES as u64, 0);
        assert_eq!(r2.base.0 % PAGE_BYTES as u64, 0);
        assert!(r2.base.0 >= r1.base.0 + PAGE_BYTES as u64);
        assert!(r3.base.0 >= r2.base.0 + 2 * PAGE_BYTES as u64, "5000 B spans 2 pages");
        assert!(r1.base.0 > 0, "page 0 unmapped");
    }

    #[test]
    fn approx_bit_follows_regions() {
        let mut a = AddressSpace::new();
        let precise = a.malloc(4096);
        let approx = a.approx_malloc(4096, DataType::F32);
        assert_eq!(a.approx_of_line(precise.base.line()), None);
        assert_eq!(a.approx_of_line(approx.base.line()), Some(DataType::F32));
        // A line past the approx region's end is not approximable.
        let past = LineAddr(approx.end().line().0);
        assert_eq!(a.approx_of_line(past), None);
    }

    #[test]
    fn footprint_accounting() {
        let mut a = AddressSpace::new();
        a.malloc(8192);
        a.approx_malloc(4096, DataType::F32);
        a.approx_malloc(2048, DataType::Fixed32);
        let (total, approx) = a.footprint();
        assert_eq!(total, 8192 + 4096 + 2048);
        assert_eq!(approx, 4096 + 2048);
    }

    #[test]
    fn region_opts_defaults_are_nominal_and_uncritical() {
        let mut a = AddressSpace::new();
        let r = a.approx_malloc(4096, DataType::F32);
        assert_eq!(r.opts, RegionOpts::default());
        assert!((r.opts.fault_scale() - 1.0).abs() < 1e-12);
        assert_eq!(r.critical_mask_of_line(r.base.line()), 0);
    }

    #[test]
    fn crit_pattern_repeats_across_lines() {
        let mut a = AddressSpace::new();
        // 5-word records with word 4 critical: the per-line mask walks the
        // pattern phase as 16-word lines cut across 5-word records.
        let opts = RegionOpts::with_crit_pattern(5, 1 << 4);
        let r = a.approx_malloc_with(4096, DataType::F32, opts);
        let mask0 = r.critical_mask_of_line(r.base.line());
        // Words 4, 9, 14 of the first line are critical (offsets 4 mod 5).
        assert_eq!(mask0, (1 << 4) | (1 << 9) | (1 << 14));
        // Second line starts at word 16 ≡ 1 (mod 5): criticals at 3, 8, 13.
        let l1 = LineAddr(r.base.line().0 + 1);
        assert_eq!(r.critical_mask_of_line(l1), (1 << 3) | (1 << 8) | (1 << 13));
    }

    #[test]
    fn fault_scale_round_trips_through_permille() {
        assert_eq!(RegionOpts::with_fault_scale(0.0).fault_scale(), 0.0);
        assert!((RegionOpts::with_fault_scale(2.5).fault_scale() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn approx_blocks_enumerates_all_blocks() {
        let mut a = AddressSpace::new();
        let r = a.approx_malloc(4096, DataType::F32); // exactly 4 blocks
        let blocks: Vec<_> = a.approx_blocks().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].0, r.base.block());
        assert!(blocks.iter().all(|(_, dt)| *dt == DataType::F32));
    }
}
