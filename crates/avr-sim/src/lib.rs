//! Design-agnostic simulation substrate: backing-store memory + virtual
//! address space, the interval-based core model, the energy model, and the
//! statistics plumbing shared by all evaluated designs.

pub mod energy;
pub mod interval;
pub mod stats;
pub mod vm;

pub use energy::{EnergyBreakdown, EnergyModel};
pub use interval::IntervalCore;
pub use stats::{
    Counters, EvictionBreakdown, FaultBreakdown, LlcRequestBreakdown, MemoBreakdown, MergedRun,
    RunMetrics, Traffic,
};
pub use vm::{AddressSpace, PhysMem, Region, RegionOpts};
