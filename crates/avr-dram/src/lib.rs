//! Cycle-approximate DDR4 main-memory model — the DRAMSim2 substitute.
//!
//! Models what AVR interacts with: per-bank row buffers (hit vs. miss
//! latency), bank-level parallelism, per-channel data-bus occupancy, and
//! periodic refresh. Requests are timed against component availability
//! rather than a full command scheduler; with the simulator issuing requests
//! in program order this is equivalent to FR-FCFS for the traffic shapes the
//! workloads generate, and it is deterministic.
//!
//! All external times are **CPU cycles**; internally the model runs on the
//! memory clock (`cpu_cycles_per_mem_clk` converts).
//!
//! [`Dram`] is the shared timing engine; the system talks to it through the
//! pluggable device error-model backends in [`backend`] (exact DRAM,
//! refresh-relaxed DRAM, approximate MRAM).

pub mod backend;
mod mapping;
mod stats;

pub use backend::{
    backend_for, env_backend, ApproxMram, DramBackend, ExactDram, FaultCtx, FaultRng, FaultStats,
    RelaxedRefreshDram,
};
pub use mapping::AddressMapping;
pub use stats::DramStats;

use avr_types::{DramParams, LineAddr, CL_BYTES};

/// Kind of DRAM access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Read,
    Write,
}

/// Completion info for one cacheline transfer.
#[derive(Clone, Copy, Debug)]
pub struct DramResponse {
    /// CPU cycle at which the data transfer completes.
    pub complete_at: u64,
    /// Whether the access hit an open row.
    pub row_hit: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Memory-clock cycle at which the bank can accept the next command.
    ready_at: u64,
    /// When the current row was activated (tRAS enforcement).
    activated_at: u64,
}

#[derive(Clone, Debug)]
struct Channel {
    banks: Vec<Bank>,
    /// Memory-clock cycle at which the shared data bus frees up.
    bus_free_at: u64,
    /// Next refresh deadline (memory clocks).
    next_refresh: u64,
}

/// The DDR4 memory system.
#[derive(Clone, Debug)]
pub struct Dram {
    params: DramParams,
    mapping: AddressMapping,
    channels: Vec<Channel>,
    pub stats: DramStats,
}

impl Dram {
    pub fn new(params: DramParams) -> Self {
        let mapping = AddressMapping::new(&params);
        let channels = (0..params.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); params.banks_per_channel],
                bus_free_at: 0,
                next_refresh: params.trefi,
            })
            .collect();
        Dram { params, mapping, channels, stats: DramStats::default() }
    }

    pub fn params(&self) -> &DramParams {
        &self.params
    }

    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    #[inline]
    fn to_mem_clk(&self, cpu_cycle: u64) -> u64 {
        cpu_cycle.div_ceil(self.params.cpu_cycles_per_mem_clk)
    }

    #[inline]
    fn to_cpu_cycle(&self, mem_clk: u64) -> u64 {
        mem_clk * self.params.cpu_cycles_per_mem_clk
    }

    /// Access one cacheline at CPU cycle `now`.
    pub fn access(&mut self, line: LineAddr, kind: AccessKind, now: u64) -> DramResponse {
        self.access_bytes(line, kind, now, CL_BYTES)
    }

    /// Access a partial cacheline (`bytes` ≤ 64) — the Truncate design
    /// moves 32 B per approximate line. Burst occupancy scales with the
    /// transfer size (16 B per memory clock on a 64-bit DDR bus).
    pub fn access_bytes(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        now: u64,
        bytes: usize,
    ) -> DramResponse {
        assert!(bytes > 0 && bytes <= CL_BYTES);
        // Writes model the controller's write buffer + FR-FCFS write
        // draining: they consume data-bus bandwidth (and are counted for
        // traffic/energy) but do not occupy a bank or close its row —
        // otherwise interleaved read/writeback streams would thrash rows
        // in ways a real reordering controller avoids.
        if kind == AccessKind::Write {
            let now_m = self.to_mem_clk(now);
            let burst = (self.params.burst * bytes as u64).div_ceil(CL_BYTES as u64).max(1);
            let ch = &mut self.channels[self.mapping.locate(line).channel];
            let data_start = now_m.max(ch.bus_free_at);
            let data_end = data_start + burst;
            ch.bus_free_at = data_end;
            self.stats.writes += 1;
            self.stats.bytes_written += bytes as u64;
            let complete_at = self.to_cpu_cycle(data_end);
            self.stats.last_complete = self.stats.last_complete.max(complete_at);
            return DramResponse { complete_at, row_hit: true };
        }
        let p = self.params;
        let loc = self.mapping.locate(line);
        let now_m = self.to_mem_clk(now);

        // Refresh: per-channel all-bank refresh windows.
        let ch = &mut self.channels[loc.channel];
        if p.trefi > 0 {
            while now_m >= ch.next_refresh {
                let start = ch.next_refresh;
                for b in ch.banks.iter_mut() {
                    b.ready_at = b.ready_at.max(start + p.trfc);
                    b.open_row = None; // refresh closes rows
                }
                ch.next_refresh += p.trefi;
                self.stats.refreshes += 1;
            }
        }

        let bank = &mut ch.banks[loc.bank];
        let cmd_at = now_m.max(bank.ready_at);
        let (cas_at, row_hit) = match bank.open_row {
            Some(r) if r == loc.row => (cmd_at, true),
            Some(_) => {
                // Precharge (respecting tRAS) then activate then CAS.
                let pre_at = cmd_at.max(bank.activated_at + p.tras);
                let act_at = pre_at + p.trp;
                bank.activated_at = act_at;
                bank.open_row = Some(loc.row);
                self.stats.activates += 1;
                (act_at + p.trcd, false)
            }
            None => {
                bank.activated_at = cmd_at;
                bank.open_row = Some(loc.row);
                self.stats.activates += 1;
                (cmd_at + p.trcd, false)
            }
        };
        // Data burst occupies the channel bus after CAS latency; partial
        // transfers occupy proportionally fewer clocks.
        let burst = (p.burst * bytes as u64).div_ceil(CL_BYTES as u64).max(1);
        let data_start = (cas_at + p.cl).max(ch.bus_free_at);
        let data_end = data_start + burst;
        ch.bus_free_at = data_end;
        bank.ready_at = cas_at + burst; // next column command to this bank

        match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += bytes as u64;
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += bytes as u64;
            }
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let complete_at = self.to_cpu_cycle(data_end);
        self.stats.last_complete = self.stats.last_complete.max(complete_at);
        DramResponse { complete_at, row_hit }
    }

    /// Access `n` consecutive cachelines starting at `first` (a compressed
    /// block fetch / writeback). Returns the completion of the last line.
    pub fn access_burst(
        &mut self,
        first: LineAddr,
        n: usize,
        kind: AccessKind,
        now: u64,
    ) -> DramResponse {
        assert!(n > 0, "burst must transfer at least one line");
        let mut resp = self.access(first, kind, now);
        for i in 1..n {
            let r = self.access(LineAddr(first.0 + i as u64), kind, now);
            resp = DramResponse {
                complete_at: resp.complete_at.max(r.complete_at),
                row_hit: resp.row_hit && r.row_hit,
            };
        }
        resp
    }

    /// Minimum possible read latency in CPU cycles (row hit, idle bus).
    pub fn best_case_latency(&self) -> u64 {
        self.to_cpu_cycle(self.params.cl + self.params.burst)
    }

    /// Row-miss latency in CPU cycles (closed bank).
    pub fn row_miss_latency(&self) -> u64 {
        self.to_cpu_cycle(self.params.trcd + self.params.cl + self.params.burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        // Most tests don't want refresh noise.
        Dram::new(DramParams { trefi: 0, ..Default::default() })
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram();
        let r = d.access(LineAddr(0), AccessKind::Read, 0);
        assert!(!r.row_hit);
        assert_eq!(r.complete_at, d.row_miss_latency());
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = dram();
        let r0 = d.access(LineAddr(0), AccessKind::Read, 0);
        // Lines 0 and 2 share a channel under line-interleaving (ch = bit 0).
        let r1 = d.access(LineAddr(2), AccessKind::Read, r0.complete_at);
        assert!(r1.row_hit);
        assert!(r1.complete_at - r0.complete_at <= d.best_case_latency());
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let m = d.mapping.clone();
        let a = LineAddr(0);
        let la = m.locate(a);
        // Find a line mapping to the same channel+bank but a different row.
        let conflict = (1..1_000_000u64)
            .map(LineAddr)
            .find(|l| {
                let loc = m.locate(*l);
                loc.channel == la.channel && loc.bank == la.bank && loc.row != la.row
            })
            .expect("a conflicting line exists");
        let r0 = d.access(a, AccessKind::Read, 0);
        let t1 = r0.complete_at + 1000; // let tRAS elapse
        let r1 = d.access(conflict, AccessKind::Read, t1);
        assert!(!r1.row_hit);
        assert!(r1.complete_at - t1 >= d.row_miss_latency());
    }

    #[test]
    fn channel_interleave_overlaps() {
        let mut d = dram();
        let r0 = d.access(LineAddr(0), AccessKind::Read, 0);
        let r1 = d.access(LineAddr(1), AccessKind::Read, 0);
        let serial = 2 * d.row_miss_latency();
        assert!(r0.complete_at.max(r1.complete_at) < serial);
    }

    #[test]
    fn same_channel_transfers_serialize_on_bus() {
        let mut d = dram();
        let r0 = d.access(LineAddr(0), AccessKind::Read, 0);
        let r1 = d.access(LineAddr(2), AccessKind::Read, 0);
        let gap = r1.complete_at.abs_diff(r0.complete_at);
        assert!(gap >= d.params.burst * d.params.cpu_cycles_per_mem_clk);
    }

    #[test]
    fn burst_of_block_is_cheaper_than_row_scattered() {
        let mut d = dram();
        let burst = d.access_burst(LineAddr(0), 16, AccessKind::Read, 0);
        let mut d2 = dram();
        let mut t = 0u64;
        for i in 0..16u64 {
            // Scatter across rows of one bank: every access conflicts.
            let l = LineAddr(i << 20);
            let r = d2.access(l, AccessKind::Read, t);
            t = r.complete_at;
        }
        assert!(burst.complete_at < t, "burst {} vs scattered {}", burst.complete_at, t);
    }

    #[test]
    fn stats_count_bytes() {
        let mut d = dram();
        d.access(LineAddr(0), AccessKind::Read, 0);
        d.access(LineAddr(1), AccessKind::Write, 0);
        d.access_burst(LineAddr(16), 4, AccessKind::Read, 0);
        assert_eq!(d.stats.reads, 5);
        assert_eq!(d.stats.writes, 1);
        assert_eq!(d.stats.bytes_read, 5 * 64);
        assert_eq!(d.stats.bytes_written, 64);
    }

    #[test]
    fn refresh_delays_accesses() {
        let p = DramParams { trefi: 100, trfc: 50, ..Default::default() };
        let mut d = Dram::new(p);
        let now = 100 * p.cpu_cycles_per_mem_clk;
        let r = d.access(LineAddr(0), AccessKind::Read, now);
        assert!(r.complete_at >= now + 50 * p.cpu_cycles_per_mem_clk);
        assert!(d.stats.refreshes >= 1);
    }

    #[test]
    fn completion_is_monotone_with_issue_time() {
        let mut d1 = dram();
        let mut d2 = dram();
        let early = d1.access(LineAddr(7), AccessKind::Read, 100);
        let late = d2.access(LineAddr(7), AccessKind::Read, 5000);
        assert!(late.complete_at >= early.complete_at);
        assert!(late.complete_at >= 5000);
    }

    #[test]
    fn writes_are_buffered_but_consume_bus_bandwidth() {
        let mut d = dram();
        // A write completes in one burst slot (the controller's write
        // buffer absorbs it)...
        let w = d.access(LineAddr(3), AccessKind::Write, 0);
        assert!(w.complete_at <= d.params.burst * d.params.cpu_cycles_per_mem_clk);
        // ...but it still occupies the data bus: a read right behind it
        // finishes later than it would on an idle channel.
        let r = d.access(LineAddr(1), AccessKind::Read, 0); // other channel: unaffected
        assert_eq!(r.complete_at, d.row_miss_latency());
        let r_same = d.access(LineAddr(3), AccessKind::Read, 0); // same channel as the write
        assert!(r_same.complete_at >= d.row_miss_latency());
    }

    #[test]
    fn writes_do_not_disturb_open_rows() {
        let mut d = dram();
        let r0 = d.access(LineAddr(0), AccessKind::Read, 0);
        // A write to a conflicting row of the same bank would close the row
        // in a naive model; the write buffer keeps it open.
        d.access(LineAddr(1 << 20), AccessKind::Write, r0.complete_at);
        let r1 = d.access(LineAddr(2), AccessKind::Read, r0.complete_at + 200);
        assert!(r1.row_hit, "row must still be open after the buffered write");
    }

    #[test]
    fn row_hit_rate_for_streaming_is_high() {
        let mut d = dram();
        let mut t = 0;
        for i in 0..512u64 {
            t = d.access(LineAddr(i), AccessKind::Read, t).complete_at;
        }
        let hit_rate = d.stats.row_hits as f64 / (d.stats.row_hits + d.stats.row_misses) as f64;
        assert!(hit_rate > 0.85, "streaming row-hit rate {hit_rate}");
    }
}
