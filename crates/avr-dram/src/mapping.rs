//! Physical-address → (channel, bank, row, column) mapping.
//!
//! Layout (from cacheline-address LSB upward):
//! `[channel][column][bank][row]` — consecutive cachelines alternate
//! channels for bandwidth, runs of lines within a channel stay in one row
//! for locality, and row bits live on top so large strides spread across
//! rows.

use avr_types::{DramParams, LineAddr, CL_BYTES};

/// Decoded DRAM coordinates of one cacheline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Location {
    pub channel: usize,
    pub bank: usize,
    pub row: u64,
    pub col: u64,
}

/// Bit-slicing mapping derived from [`DramParams`].
#[derive(Clone, Debug)]
pub struct AddressMapping {
    ch_bits: u32,
    col_bits: u32,
    bank_bits: u32,
    row_mask: u64,
}

impl AddressMapping {
    pub fn new(p: &DramParams) -> Self {
        assert!(p.channels.is_power_of_two(), "channel count must be a power of two");
        assert!(p.banks_per_channel.is_power_of_two(), "bank count must be a power of two");
        let lines_per_row = p.row_bytes / CL_BYTES;
        assert!(lines_per_row.is_power_of_two() && lines_per_row > 0);
        AddressMapping {
            ch_bits: p.channels.trailing_zeros(),
            col_bits: lines_per_row.trailing_zeros(),
            bank_bits: p.banks_per_channel.trailing_zeros(),
            row_mask: (p.rows_per_bank as u64) - 1,
        }
    }

    #[inline]
    pub fn locate(&self, line: LineAddr) -> Location {
        let mut a = line.0;
        let channel = (a & ((1 << self.ch_bits) - 1)) as usize;
        a >>= self.ch_bits;
        let col = a & ((1 << self.col_bits) - 1);
        a >>= self.col_bits;
        let bank = (a & ((1 << self.bank_bits) - 1)) as usize;
        a >>= self.bank_bits;
        let row = a & self.row_mask;
        Location { channel, bank, row, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&DramParams::default())
    }

    #[test]
    fn consecutive_lines_alternate_channels() {
        let m = mapping();
        let a = m.locate(LineAddr(0));
        let b = m.locate(LineAddr(1));
        assert_ne!(a.channel, b.channel);
    }

    #[test]
    fn lines_within_channel_share_row() {
        let m = mapping();
        // Lines 0, 2, 4, ... land on channel 0; the first 32 of them share
        // a row (row_bytes = 2048 -> 32 lines/row).
        let first = m.locate(LineAddr(0));
        for i in 1..32u64 {
            let loc = m.locate(LineAddr(2 * i));
            assert_eq!(loc.channel, first.channel);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
        }
        // The 33rd crosses into the next bank (or row).
        let beyond = m.locate(LineAddr(64));
        assert!(beyond.bank != first.bank || beyond.row != first.row);
    }

    #[test]
    fn mapping_is_injective_on_a_window() {
        let m = mapping();
        let mut seen = std::collections::HashSet::new();
        for i in 0..8192u64 {
            let l = m.locate(LineAddr(i));
            assert!(seen.insert((l.channel, l.bank, l.row, l.col)), "collision at line {i}");
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let p = DramParams { channels: 3, ..Default::default() };
        let r = std::panic::catch_unwind(|| AddressMapping::new(&p));
        assert!(r.is_err());
    }
}
