//! DRAM activity counters consumed by the traffic and energy models.

/// Aggregate DRAM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub activates: u64,
    pub refreshes: u64,
    /// Latest data-transfer completion (CPU cycles) — a lower bound on the
    /// memory-system busy horizon.
    pub last_complete: u64,
}

impl DramStats {
    /// Total bytes moved across the memory channels.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Difference of two snapshots (for per-phase accounting).
    pub fn delta_since(&self, earlier: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            row_hits: self.row_hits - earlier.row_hits,
            row_misses: self.row_misses - earlier.row_misses,
            activates: self.activates - earlier.activates,
            refreshes: self.refreshes - earlier.refreshes,
            last_complete: self.last_complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = DramStats {
            reads: 10,
            writes: 5,
            bytes_read: 640,
            bytes_written: 320,
            row_hits: 12,
            row_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.total_bytes(), 960);
        assert!((s.row_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = DramStats { reads: 3, bytes_read: 192, ..Default::default() };
        let b = DramStats { reads: 10, bytes_read: 640, ..Default::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.reads, 7);
        assert_eq!(d.bytes_read, 448);
    }
}
