//! Pluggable device error-model backends (ROADMAP item 4).
//!
//! AVR approximates by *reconstruction*; the other half of the
//! approximate-memory field approximates at the *device*: cells flip bits
//! under relaxed refresh or reduced write margins. [`DramBackend`] puts the
//! DDR4 timing engine ([`Dram`]) behind a trait so both worlds — and their
//! combination — run through the same simulator:
//!
//! * [`ExactDram`] — bit-exact storage, today's behaviour.
//! * [`RelaxedRefreshDram`] — tREFI stretched by a configurable multiplier;
//!   approximable lines suffer retention-failure bit flips on every read
//!   served by the device.
//! * [`ApproxMram`] — no refresh at all (non-volatile), but writes land with
//!   asymmetric 0→1 / 1→0 error rates scaled by a per-region write-margin
//!   level.
//!
//! # Determinism: the fault-stream seeding scheme
//!
//! Fault injection must be bit-identical at any `SimPool` thread width and
//! across repeated runs, so no backend owns a global RNG whose consumption
//! order could depend on scheduling. Instead every *fault opportunity* — one
//! `corrupt_line` call — derives a fresh splitmix64 stream from a key chain:
//!
//! ```text
//! s0 = splitmix64(config seed)
//! s1 = splitmix64(s0 ^ region base address)
//! s2 = splitmix64(s1 ^ block address)
//! s3 = splitmix64(s2 ^ exposure ordinal)     // per-backend corrupt count
//! ```
//!
//! Each simulated `System` owns its backend, and a `System` issues memory
//! operations in program order, so the exposure ordinal — the count of
//! `corrupt_line` calls this backend has served — is a deterministic
//! function of (config, workload, design) alone. Thread width only changes
//! *which OS thread* runs a given simulation, never the order of fault
//! opportunities within it (`tests/fault_injection.rs` pins this).
//!
//! Within one opportunity, per-bit flips are drawn by geometric
//! skip-sampling: the stream yields the gap to the next candidate bit
//! directly, so the cost is proportional to the (tiny) expected number of
//! flips rather than 512 Bernoulli draws per line. Asymmetric rates sample
//! at `max(p01, p10)` and thin each candidate by the rate that applies to
//! the bit's current value.
//!
//! # Adding a fourth backend
//!
//! 1. Add a variant to `avr_types::BackendKind` (and its `label()`), plus
//!    any new rate knobs to `ErrorModelParams`.
//! 2. Implement [`DramBackend`] here, wrapping a [`Dram`] for timing (adjust
//!    `DramParams` in your constructor if the device refreshes differently).
//!    Put all randomness through [`FaultRng::for_exposure`] keyed by your
//!    own exposure counter — never a shared/global RNG.
//! 3. Register the variant in [`backend_for`] and the `AVR_BACKEND` parser
//!    in [`env_backend`].
//! 4. Extend `tests/fault_injection.rs`'s backend list — the thread-width
//!    bit-identity tests and the bench `backends` axis pick it up from
//!    `BackendKind::ALL`.
//!
//! The backends deliberately *do not* decide which lines are eligible for
//! corruption: `avr-core` calls `corrupt_line` only for lines inside
//! approximable regions (critical data is always served exactly, optionally
//! counting ECC scrubs), and owns the graceful-degradation retry path.

use avr_types::{BackendKind, CacheLine, DramParams, ErrorModelParams, LineAddr, CL_BYTES};

use crate::{AccessKind, Dram, DramResponse, DramStats};

/// Bits per cacheline (the per-line fault-opportunity space).
pub const LINE_BITS: u64 = (CL_BYTES * 8) as u64;

/// Identifies one fault opportunity to the seeding scheme: where the line
/// lives. The *when* (exposure ordinal) is tracked by the backend itself.
///
/// The two sub-block fields carry the region's device metadata
/// (`avr_sim::RegionOpts`) down to the error model. Neither participates
/// in the RNG key chain — they modulate *probabilities* (and flip
/// eligibility), never the stream — so a layout or placement-policy change
/// perturbs fault behavior without re-keying unrelated regions, and
/// determinism at any pool width is untouched.
#[derive(Clone, Copy, Debug)]
pub struct FaultCtx {
    /// Base byte address of the containing approximable region.
    pub region_base: u64,
    /// The containing 1 KB memory block (raw `BlockAddr` bits).
    pub block: u64,
    /// Per-region fault-rate multiplier (1.0 nominal): the region's
    /// retention / write-margin derating. Multiplies the backend's bit
    /// error rates for this line.
    pub rate_scale: f64,
    /// Critical words of this line (bit `w` set ⇒ word `w` of the line is
    /// precision-critical): the device must never flip their bits. This is
    /// how an `Aggressive` interleaved layout keeps its integer fields
    /// device-safe even though the whole region is approximable.
    pub critical_mask: u16,
}

impl FaultCtx {
    /// A context with nominal rate and no critical words — the shape every
    /// pre-layout caller used.
    pub fn nominal(region_base: u64, block: u64) -> FaultCtx {
        FaultCtx { region_base, block, rate_scale: 1.0, critical_mask: 0 }
    }
}

/// Device-level fault counters (what the cells did, before any
/// graceful-degradation handling upstream).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `corrupt_line` calls served (fault opportunities).
    pub exposures: u64,
    /// Lines that left the device with at least one flipped bit.
    pub faulted_lines: u64,
    /// Total bits flipped.
    pub bit_flips: u64,
}

#[inline]
fn splitmix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic fault stream (a splitmix64 sequence).
#[derive(Clone, Copy, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Derive the stream for one fault opportunity — see the module docs
    /// for the key chain.
    pub fn for_exposure(seed: u64, ctx: &FaultCtx, exposure: u64) -> FaultRng {
        let s0 = splitmix64(seed);
        let s1 = splitmix64(s0 ^ ctx.region_base);
        let s2 = splitmix64(s1 ^ ctx.block);
        FaultRng { state: splitmix64(s2 ^ exposure) }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = out;
        out
    }

    /// Uniform in [0, 1).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric skip: bits to pass over before the next candidate when
    /// each bit is a candidate independently with probability `p`
    /// (`ln1m = ln(1 - p)`).
    #[inline]
    fn skip(&mut self, ln1m: f64) -> u64 {
        // u < 1 always, so ln(1-u) is finite; the f64→u64 cast saturates,
        // which is exactly "no candidate within this line".
        ((1.0 - self.next_f64()).ln() / ln1m) as u64
    }
}

/// Flip bits of `line` in place: each bit is hit with probability `p01`
/// (if currently 0) or `p10` (if currently 1), except bits of words set in
/// `critical_mask`, which are never flipped (the per-region sub-block
/// criticality contract — modelled as per-word ECC at the device).
/// Returns the flip count.
fn inject_flips(
    rng: &mut FaultRng,
    line: &mut CacheLine,
    p01: f64,
    p10: f64,
    critical_mask: u16,
) -> u32 {
    let p_max = p01.max(p10);
    if p_max <= 0.0 {
        return 0;
    }
    // Sample candidate positions at the max rate, then thin each candidate
    // by the rate that applies to its current value (0→1 vs 1→0). Critical
    // words thin to rate 0: the candidate is drawn (stream consumption
    // stays a function of p_max alone) and then always rejected.
    let ln1m = (1.0 - p_max.min(1.0)).ln();
    let mut flips = 0u32;
    let mut bit = rng.skip(ln1m);
    while bit < LINE_BITS {
        let word = (bit / 32) as usize;
        let mask = 1u32 << (bit % 32);
        let critical = critical_mask >> word & 1 != 0;
        let is_one = line.words[word] & mask != 0;
        let p_bit = if critical {
            0.0
        } else if is_one {
            p10
        } else {
            p01
        };
        if p_bit >= p_max || rng.next_f64() * p_max < p_bit {
            line.words[word] ^= mask;
            flips += 1;
        }
        bit += 1 + rng.skip(ln1m);
    }
    flips
}

/// A main-memory device: DDR4-class timing plus an error model.
///
/// Timing methods mirror [`Dram`]'s API one-for-one so `avr-core` is
/// agnostic to the backend. `corrupt_line` is the error model's single
/// entry point; `avr-core` calls it once per device transfer of an
/// *approximable* line, passing the line's current data in place.
pub trait DramBackend: Send {
    /// Which backend this is (bench labels, summaries).
    fn kind(&self) -> BackendKind;

    /// Time a (possibly partial) cacheline transfer. See [`Dram::access_bytes`].
    fn access_bytes(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        now: u64,
        bytes: usize,
    ) -> DramResponse;

    /// Time one full cacheline transfer.
    fn access(&mut self, line: LineAddr, kind: AccessKind, now: u64) -> DramResponse {
        self.access_bytes(line, kind, now, CL_BYTES)
    }

    /// Time `n` consecutive cachelines starting at `first`; returns the
    /// completion of the last transfer. See [`Dram::access_burst`].
    fn access_burst(
        &mut self,
        first: LineAddr,
        n: usize,
        kind: AccessKind,
        now: u64,
    ) -> DramResponse {
        assert!(n > 0, "burst must transfer at least one line");
        let mut resp = self.access(first, kind, now);
        for i in 1..n {
            let r = self.access(LineAddr(first.0 + i as u64), kind, now);
            resp = DramResponse {
                complete_at: resp.complete_at.max(r.complete_at),
                row_hit: resp.row_hit && r.row_hit,
            };
        }
        resp
    }

    /// Timing-engine counters (reads/writes/row hits/refreshes...).
    fn stats(&self) -> &DramStats;

    /// Device-level fault counters.
    fn fault_stats(&self) -> &FaultStats;

    /// Whether `corrupt_line` can ever flip a bit. `avr-core` caches this
    /// to keep the exact backend's hot path free of fault-hook work.
    fn injects_faults(&self) -> bool {
        false
    }

    /// Apply the error model to one approximable line's data in place;
    /// returns the number of bits flipped. Read-side backends corrupt on
    /// `Read`, write-side backends on `Write`; exact backends never do.
    fn corrupt_line(&mut self, _ctx: &FaultCtx, _kind: AccessKind, _data: &mut CacheLine) -> u32 {
        0
    }

    /// Minimum possible read latency in CPU cycles (row hit, idle bus).
    fn best_case_latency(&self) -> u64;

    /// Row-miss latency in CPU cycles (closed bank).
    fn row_miss_latency(&self) -> u64;

    /// Effective timing parameters (after any backend adjustments, e.g.
    /// the stretched tREFI of [`RelaxedRefreshDram`]).
    fn params(&self) -> &DramParams;
}

/// Today's bit-exact DDR4: pure timing, no error model.
pub struct ExactDram {
    dram: Dram,
    faults: FaultStats,
}

impl ExactDram {
    /// Build from the configured timing parameters, unchanged.
    pub fn new(params: DramParams) -> Self {
        ExactDram { dram: Dram::new(params), faults: FaultStats::default() }
    }
}

impl DramBackend for ExactDram {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    #[inline]
    fn access_bytes(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        now: u64,
        bytes: usize,
    ) -> DramResponse {
        self.dram.access_bytes(line, kind, now, bytes)
    }

    fn access_burst(
        &mut self,
        first: LineAddr,
        n: usize,
        kind: AccessKind,
        now: u64,
    ) -> DramResponse {
        self.dram.access_burst(first, n, kind, now)
    }

    fn stats(&self) -> &DramStats {
        &self.dram.stats
    }

    fn fault_stats(&self) -> &FaultStats {
        &self.faults
    }

    fn best_case_latency(&self) -> u64 {
        self.dram.best_case_latency()
    }

    fn row_miss_latency(&self) -> u64 {
        self.dram.row_miss_latency()
    }

    fn params(&self) -> &DramParams {
        self.dram.params()
    }
}

/// DRAM refreshed every `refresh_multiplier × tREFI`: cells near the tail
/// of the retention distribution fail, flipping bits of approximable lines
/// each time the device serves a read. Flip direction is symmetric (a
/// retention failure decays toward either rail depending on cell polarity,
/// which is address-random in commodity parts).
pub struct RelaxedRefreshDram {
    dram: Dram,
    seed: u64,
    /// Effective per-bit flip probability per read exposure.
    p_flip: f64,
    faults: FaultStats,
}

impl RelaxedRefreshDram {
    /// Stretch the refresh interval and derive the effective per-read
    /// flip rate `retention_fail_per_bit * (refresh_multiplier - 1)`.
    pub fn new(params: DramParams, em: &ErrorModelParams) -> Self {
        let mult = em.refresh_multiplier.max(1);
        let mut p = params;
        p.trefi = p.trefi.saturating_mul(mult);
        let p_flip = em.retention_fail_per_bit * (mult - 1) as f64;
        RelaxedRefreshDram {
            dram: Dram::new(p),
            seed: em.seed,
            p_flip,
            faults: FaultStats::default(),
        }
    }
}

impl DramBackend for RelaxedRefreshDram {
    fn kind(&self) -> BackendKind {
        BackendKind::RelaxedDram
    }

    #[inline]
    fn access_bytes(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        now: u64,
        bytes: usize,
    ) -> DramResponse {
        self.dram.access_bytes(line, kind, now, bytes)
    }

    fn stats(&self) -> &DramStats {
        &self.dram.stats
    }

    fn fault_stats(&self) -> &FaultStats {
        &self.faults
    }

    fn injects_faults(&self) -> bool {
        self.p_flip > 0.0
    }

    fn corrupt_line(&mut self, ctx: &FaultCtx, kind: AccessKind, data: &mut CacheLine) -> u32 {
        if kind != AccessKind::Read {
            return 0; // retention failures manifest on reads
        }
        let exposure = self.faults.exposures;
        self.faults.exposures += 1;
        let p = self.p_flip * ctx.rate_scale;
        let mut rng = FaultRng::for_exposure(self.seed, ctx, exposure);
        let flips = inject_flips(&mut rng, data, p, p, ctx.critical_mask);
        if flips > 0 {
            self.faults.faulted_lines += 1;
            self.faults.bit_flips += flips as u64;
        }
        flips
    }

    fn best_case_latency(&self) -> u64 {
        self.dram.best_case_latency()
    }

    fn row_miss_latency(&self) -> u64 {
        self.dram.row_miss_latency()
    }

    fn params(&self) -> &DramParams {
        self.dram.params()
    }
}

/// Non-volatile MRAM written with reduced write margins: no refresh at all
/// (tREFI = 0), but each write lands with asymmetric 0→1 / 1→0 error rates.
/// Every region gets a deterministic write-margin *level* derived from its
/// base address; a region at level `k` runs its rates scaled by `2^k`,
/// modelling banks provisioned with different write pulse energies.
pub struct ApproxMram {
    dram: Dram,
    em: ErrorModelParams,
    faults: FaultStats,
}

impl ApproxMram {
    /// Build with refresh disabled (the device is non-volatile).
    pub fn new(params: DramParams, em: &ErrorModelParams) -> Self {
        let mut p = params;
        p.trefi = 0;
        ApproxMram { dram: Dram::new(p), em: *em, faults: FaultStats::default() }
    }

    /// The deterministic write-margin level of a region (0 is the best
    /// margin; each level doubles the error rates).
    pub fn margin_level(seed: u64, levels: u32, region_base: u64) -> u32 {
        if levels <= 1 {
            return 0;
        }
        (splitmix64(splitmix64(seed ^ 0x4D52_414D) ^ region_base) % levels as u64) as u32
    }
}

impl DramBackend for ApproxMram {
    fn kind(&self) -> BackendKind {
        BackendKind::ApproxMram
    }

    #[inline]
    fn access_bytes(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        now: u64,
        bytes: usize,
    ) -> DramResponse {
        self.dram.access_bytes(line, kind, now, bytes)
    }

    fn stats(&self) -> &DramStats {
        &self.dram.stats
    }

    fn fault_stats(&self) -> &FaultStats {
        &self.faults
    }

    fn injects_faults(&self) -> bool {
        self.em.mram_p01 > 0.0 || self.em.mram_p10 > 0.0
    }

    fn corrupt_line(&mut self, ctx: &FaultCtx, kind: AccessKind, data: &mut CacheLine) -> u32 {
        if kind != AccessKind::Write {
            return 0; // MRAM reads are non-destructive and retention is ~infinite
        }
        let exposure = self.faults.exposures;
        self.faults.exposures += 1;
        let level = Self::margin_level(self.em.seed, self.em.mram_margin_levels, ctx.region_base);
        let scale = (1u64 << level) as f64 * ctx.rate_scale;
        let mut rng = FaultRng::for_exposure(self.em.seed, ctx, exposure);
        let flips = inject_flips(
            &mut rng,
            data,
            self.em.mram_p01 * scale,
            self.em.mram_p10 * scale,
            ctx.critical_mask,
        );
        if flips > 0 {
            self.faults.faulted_lines += 1;
            self.faults.bit_flips += flips as u64;
        }
        flips
    }

    fn best_case_latency(&self) -> u64 {
        self.dram.best_case_latency()
    }

    fn row_miss_latency(&self) -> u64 {
        self.dram.row_miss_latency()
    }

    fn params(&self) -> &DramParams {
        self.dram.params()
    }
}

/// Resolve the `AVR_BACKEND` environment knob: `exact` (or unset/empty/`0`),
/// `relaxed`, or `mram`. Unrecognized values warn once per process and fall
/// back to `exact`, mirroring the other `AVR_*` knobs.
pub fn env_backend() -> BackendKind {
    use std::sync::OnceLock;
    static WARNED: OnceLock<()> = OnceLock::new();
    match std::env::var("AVR_BACKEND") {
        Ok(v) => match v.trim() {
            "" | "0" | "exact" => BackendKind::Exact,
            "relaxed" => BackendKind::RelaxedDram,
            "mram" => BackendKind::ApproxMram,
            other => {
                let other = other.to_string();
                WARNED.get_or_init(|| {
                    eprintln!(
                        "avr: AVR_BACKEND={other} not recognized \
                         (expected exact|relaxed|mram); using exact"
                    );
                });
                BackendKind::Exact
            }
        },
        Err(_) => BackendKind::Exact,
    }
}

/// Build the backend selected by `em.backend`, falling back to the
/// `AVR_BACKEND` environment knob when unpinned.
pub fn backend_for(params: &DramParams, em: &ErrorModelParams) -> Box<dyn DramBackend> {
    match em.backend.unwrap_or_else(env_backend) {
        BackendKind::Exact => Box::new(ExactDram::new(*params)),
        BackendKind::RelaxedDram => Box::new(RelaxedRefreshDram::new(*params, em)),
        BackendKind::ApproxMram => Box::new(ApproxMram::new(*params, em)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FaultCtx {
        FaultCtx::nominal(0x1_0000, 42)
    }

    fn em(backend: Option<BackendKind>) -> ErrorModelParams {
        ErrorModelParams { backend, ..Default::default() }
    }

    #[test]
    fn exact_backend_matches_raw_dram_timing() {
        let p = DramParams::default();
        let mut raw = Dram::new(p);
        let mut exact = ExactDram::new(p);
        for i in 0..64u64 {
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            let a = raw.access(LineAddr(i * 7), kind, i * 50);
            let b = exact.access(LineAddr(i * 7), kind, i * 50);
            assert_eq!(a.complete_at, b.complete_at);
            assert_eq!(a.row_hit, b.row_hit);
        }
        let burst_a = raw.access_burst(LineAddr(1024), 16, AccessKind::Read, 9999);
        let burst_b = exact.access_burst(LineAddr(1024), 16, AccessKind::Read, 9999);
        assert_eq!(burst_a.complete_at, burst_b.complete_at);
        assert_eq!(raw.stats, *exact.stats());
        assert!(!exact.injects_faults());
        let mut data = CacheLine::ZERO;
        assert_eq!(exact.corrupt_line(&ctx(), AccessKind::Read, &mut data), 0);
        assert_eq!(data, CacheLine::ZERO);
    }

    #[test]
    fn fault_streams_are_reproducible_and_keyed() {
        let mut a = FaultRng::for_exposure(1, &ctx(), 0);
        let mut b = FaultRng::for_exposure(1, &ctx(), 0);
        assert_eq!(a.next_u64(), b.next_u64());
        // Any key component changing changes the stream.
        let base = FaultRng::for_exposure(1, &ctx(), 0).next_u64();
        assert_ne!(FaultRng::for_exposure(2, &ctx(), 0).next_u64(), base);
        assert_ne!(FaultRng::for_exposure(1, &ctx(), 1).next_u64(), base);
        let other = FaultCtx::nominal(0x2_0000, 42);
        assert_ne!(FaultRng::for_exposure(1, &other, 0).next_u64(), base);
    }

    #[test]
    fn inject_flip_rate_tracks_probability() {
        // At p = 1/64 per bit over 512 bits, expect ~8 flips per line.
        let mut total = 0u64;
        let trials = 2000;
        for t in 0..trials {
            let mut rng = FaultRng::for_exposure(7, &ctx(), t);
            let mut line = CacheLine::ZERO;
            total += inject_flips(&mut rng, &mut line, 1.0 / 64.0, 1.0 / 64.0, 0) as u64;
        }
        let mean = total as f64 / trials as f64;
        assert!((6.0..10.0).contains(&mean), "mean flips per line {mean}");
    }

    #[test]
    fn asymmetric_rates_respect_bit_values() {
        // p10 = 0 on an all-ones line must never flip anything; p01 = 0 on
        // an all-zeros line likewise.
        let ones = CacheLine { words: [u32::MAX; avr_types::VALUES_PER_LINE] };
        for t in 0..200 {
            let mut rng = FaultRng::for_exposure(3, &ctx(), t);
            let mut line = ones;
            assert_eq!(inject_flips(&mut rng, &mut line, 0.5, 0.0, 0), 0);
            let mut rng = FaultRng::for_exposure(3, &ctx(), t);
            let mut zeros = CacheLine::ZERO;
            assert_eq!(inject_flips(&mut rng, &mut zeros, 0.0, 0.5, 0), 0);
        }
        // And the allowed direction does fire at a high rate.
        let mut rng = FaultRng::for_exposure(3, &ctx(), 1000);
        let mut line = ones;
        assert!(inject_flips(&mut rng, &mut line, 0.0, 0.5, 0) > 0);
    }

    #[test]
    fn relaxed_dram_stretches_trefi_and_flips_on_reads_only() {
        let mut e = em(Some(BackendKind::RelaxedDram));
        e.retention_fail_per_bit = 0.005;
        e.refresh_multiplier = 4;
        let p = DramParams::default();
        let mut d = RelaxedRefreshDram::new(p, &e);
        assert_eq!(d.params().trefi, p.trefi * 4);
        assert!(d.injects_faults());
        let mut data = CacheLine { words: [0xDEAD_BEEF; avr_types::VALUES_PER_LINE] };
        let orig = data;
        assert_eq!(d.corrupt_line(&ctx(), AccessKind::Write, &mut data), 0);
        assert_eq!(data, orig, "writes are stored exactly");
        let mut flips = 0;
        for _ in 0..50 {
            flips += d.corrupt_line(&ctx(), AccessKind::Read, &mut data);
        }
        assert!(flips > 0, "p=1.5e-2/bit over 50 reads must flip something");
        assert_eq!(d.fault_stats().bit_flips, flips as u64);
    }

    #[test]
    fn relaxed_dram_at_nominal_refresh_is_exact() {
        let mut e = em(Some(BackendKind::RelaxedDram));
        e.refresh_multiplier = 1;
        let d = RelaxedRefreshDram::new(DramParams::default(), &e);
        assert_eq!(d.params().trefi, DramParams::default().trefi);
        assert!(!d.injects_faults());
    }

    #[test]
    fn mram_never_refreshes_and_flips_on_writes_only() {
        let mut e = em(Some(BackendKind::ApproxMram));
        e.mram_p01 = 0.01;
        e.mram_p10 = 0.005;
        let mut d = ApproxMram::new(DramParams::default(), &e);
        assert_eq!(d.params().trefi, 0, "MRAM is non-volatile");
        assert!(d.injects_faults());
        let mut data = CacheLine { words: [0x1234_5678; avr_types::VALUES_PER_LINE] };
        let orig = data;
        assert_eq!(d.corrupt_line(&ctx(), AccessKind::Read, &mut data), 0);
        assert_eq!(data, orig, "reads are non-destructive");
        let mut flips = 0;
        for _ in 0..50 {
            flips += d.corrupt_line(&ctx(), AccessKind::Write, &mut data);
        }
        assert!(flips > 0);
        assert_eq!(d.stats().refreshes, 0);
    }

    #[test]
    fn mram_margin_levels_are_deterministic_and_bounded() {
        for region in [0u64, 0x1000, 0x2000, 0xFFFF_0000] {
            let a = ApproxMram::margin_level(9, 3, region);
            let b = ApproxMram::margin_level(9, 3, region);
            assert_eq!(a, b);
            assert!(a < 3);
        }
        assert_eq!(ApproxMram::margin_level(9, 1, 0x1000), 0);
        assert_eq!(ApproxMram::margin_level(9, 0, 0x1000), 0);
    }

    #[test]
    fn backend_for_honors_pinned_kind() {
        let p = DramParams::default();
        for kind in BackendKind::ALL {
            let b = backend_for(&p, &em(Some(kind)));
            assert_eq!(b.kind(), kind);
        }
    }

    #[test]
    fn rate_scale_zero_silences_and_scale_amplifies() {
        let mut e = em(Some(BackendKind::RelaxedDram));
        e.retention_fail_per_bit = 0.002;
        e.refresh_multiplier = 4;
        let mut flips = [0u64; 3];
        for (i, scale) in [0.0, 1.0, 8.0].into_iter().enumerate() {
            let mut d = RelaxedRefreshDram::new(DramParams::default(), &e);
            let c = FaultCtx { rate_scale: scale, ..ctx() };
            for _ in 0..400 {
                let mut line = CacheLine { words: [0x5A5A_5A5A; avr_types::VALUES_PER_LINE] };
                flips[i] += d.corrupt_line(&c, AccessKind::Read, &mut line) as u64;
            }
        }
        assert_eq!(flips[0], 0, "a zero-rated region never faults");
        assert!(flips[1] > 0);
        assert!(flips[2] > flips[1] * 3, "8x derating must amplify: {flips:?}");
    }

    #[test]
    fn critical_mask_words_never_flip() {
        // Even at an absurd per-bit rate, masked words come through intact
        // while the unmasked words are shredded.
        let mask: u16 = 0b0000_1010_0001_0001; // words 0, 4, 9, 11
        for t in 0..100 {
            let mut rng = FaultRng::for_exposure(11, &ctx(), t);
            let mut line = CacheLine { words: [0xCAFE_F00D; avr_types::VALUES_PER_LINE] };
            let flips = inject_flips(&mut rng, &mut line, 0.3, 0.3, mask);
            assert!(flips > 0, "0.3/bit must flip plenty");
            for w in 0..avr_types::VALUES_PER_LINE {
                if mask >> w & 1 != 0 {
                    assert_eq!(line.words[w], 0xCAFE_F00D, "critical word {w} flipped");
                }
            }
        }
        // An all-critical line is untouched entirely.
        let mut rng = FaultRng::for_exposure(11, &ctx(), 1000);
        let mut line = CacheLine { words: [0xCAFE_F00D; avr_types::VALUES_PER_LINE] };
        assert_eq!(inject_flips(&mut rng, &mut line, 0.3, 0.3, 0xFFFF), 0);
    }

    #[test]
    fn mram_honors_region_metadata() {
        let mut e = em(Some(BackendKind::ApproxMram));
        e.mram_p01 = 0.02;
        e.mram_p10 = 0.02;
        e.mram_margin_levels = 1;
        let mut d = ApproxMram::new(DramParams::default(), &e);
        let quiet = FaultCtx { rate_scale: 0.0, ..ctx() };
        let armored = FaultCtx { critical_mask: 0xFFFF, ..ctx() };
        for _ in 0..50 {
            let mut line = CacheLine { words: [7; avr_types::VALUES_PER_LINE] };
            assert_eq!(d.corrupt_line(&quiet, AccessKind::Write, &mut line), 0);
            assert_eq!(d.corrupt_line(&armored, AccessKind::Write, &mut line), 0);
            assert_eq!(line.words[0], 7);
        }
        let mut line = CacheLine { words: [7; avr_types::VALUES_PER_LINE] };
        let mut flips = 0;
        for _ in 0..50 {
            flips += d.corrupt_line(&ctx(), AccessKind::Write, &mut line);
        }
        assert!(flips > 0, "nominal context still faults");
    }

    #[test]
    fn corrupt_calls_are_order_deterministic() {
        // Two backends fed the same corrupt-call sequence produce the same
        // flips — the thread-width invariance property at the unit level.
        let mut e = em(Some(BackendKind::RelaxedDram));
        e.retention_fail_per_bit = 0.01;
        let mk = || RelaxedRefreshDram::new(DramParams::default(), &e);
        let (mut d1, mut d2) = (mk(), mk());
        for i in 0..64u64 {
            let c = FaultCtx::nominal(0x4000 * (i % 3), i / 2);
            let mut l1 = CacheLine { words: [i as u32; avr_types::VALUES_PER_LINE] };
            let mut l2 = l1;
            let f1 = d1.corrupt_line(&c, AccessKind::Read, &mut l1);
            let f2 = d2.corrupt_line(&c, AccessKind::Read, &mut l2);
            assert_eq!(f1, f2);
            assert_eq!(l1, l2);
        }
        assert_eq!(*d1.fault_stats(), *d2.fault_stats());
    }
}
