//! Sweep-server wire structs: the language-level shape of one submitted
//! grid cell, shared by the server, its clients, the bench harness and the
//! tests. The structs are plain data — serialization to the line-delimited
//! JSON protocol lives in `avr-server`; this crate only fixes *what* a job
//! says, so every layer (workload registry, config resolution, codecs)
//! agrees on it without depending on each other.

use crate::config::{BackendKind, BenchScale, DesignKind, LayoutKind, SystemConfig};

/// Optional per-cell overrides of the scale-default [`SystemConfig`] — the
/// knobs a sweep varies cell-by-cell. Everything absent keeps the default,
/// so an empty `ConfigOverrides` resolves to exactly the config a direct
/// `run_grid_layouts` call would use (the determinism contract depends on
/// that).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConfigOverrides {
    /// AVR per-value error threshold T1.
    pub t1: Option<f64>,
    /// AVR block-average error threshold T2.
    pub t2: Option<f64>,
    /// RelaxedDram per-bit retention-failure probability.
    pub retention_fail_per_bit: Option<f64>,
    /// RelaxedDram tREFI multiplier (1 = nominal refresh, no faults).
    pub refresh_multiplier: Option<u64>,
    /// MRAM 0→1 per-bit write-error rate.
    pub mram_p01: Option<f64>,
    /// MRAM 1→0 per-bit write-error rate.
    pub mram_p10: Option<f64>,
    /// Graceful-degradation retry budget.
    pub retry_budget: Option<u64>,
}

impl ConfigOverrides {
    /// Whether any knob is set.
    pub fn is_empty(&self) -> bool {
        *self == ConfigOverrides::default()
    }

    /// Apply every set knob onto `cfg`.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        if let Some(v) = self.t1 {
            cfg.avr.t1 = v;
        }
        if let Some(v) = self.t2 {
            cfg.avr.t2 = v;
        }
        if let Some(v) = self.retention_fail_per_bit {
            cfg.error_model.retention_fail_per_bit = v;
        }
        if let Some(v) = self.refresh_multiplier {
            cfg.error_model.refresh_multiplier = v;
        }
        if let Some(v) = self.mram_p01 {
            cfg.error_model.mram_p01 = v;
        }
        if let Some(v) = self.mram_p10 {
            cfg.error_model.mram_p10 = v;
        }
        if let Some(v) = self.retry_budget {
            cfg.error_model.retry_budget = v;
        }
    }
}

/// One grid cell of a sweep-server batch: everything needed to reproduce
/// the cell as a direct `run_on_design_in` call. The default cell is the
/// tiny-scale AVR design in SoA on the exact backend — the cheapest
/// meaningful simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Workload name as registered in `avr_workloads` (`"heat"`, `"fft"`…).
    pub workload: String,
    /// Problem size to instantiate.
    pub scale: BenchScale,
    /// Which of the five designs simulates the cell.
    pub design: DesignKind,
    /// Memory layout; the workload must list it in `Workload::layouts`.
    pub layout: LayoutKind,
    /// Device error-model backend. `None` pins `exact` — a server must
    /// never depend on its own environment's `AVR_BACKEND`, or resubmitting
    /// the same batch elsewhere would change results.
    pub backend: Option<BackendKind>,
    /// Device fault-stream seed. `None` keeps the config default; only
    /// fault-injecting backends consult it.
    pub seed: Option<u64>,
    /// Per-cell config overrides on top of the scale default.
    pub overrides: ConfigOverrides,
}

impl CellSpec {
    /// The cheapest meaningful cell for `workload`: tiny scale, AVR
    /// design, SoA layout, exact backend, default config.
    pub fn new(workload: impl Into<String>) -> Self {
        CellSpec {
            workload: workload.into(),
            scale: BenchScale::Tiny,
            design: DesignKind::Avr,
            layout: LayoutKind::Soa,
            backend: None,
            seed: None,
            overrides: ConfigOverrides::default(),
        }
    }

    /// Resolve this cell's full [`SystemConfig`] from the scale-default
    /// base: overrides first, then the backend pin (always pinned — see
    /// [`CellSpec::backend`]), then the fault seed.
    pub fn config(&self, base: &SystemConfig) -> SystemConfig {
        let mut cfg = base.clone();
        self.overrides.apply(&mut cfg);
        cfg.error_model.backend = Some(self.backend.unwrap_or(BackendKind::Exact));
        if let Some(seed) = self.seed {
            cfg.error_model.seed = seed;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cell_resolves_to_the_base_config_pinned_exact() {
        let base = SystemConfig::tiny();
        let cell = CellSpec::new("heat");
        let cfg = cell.config(&base);
        let mut expect = base.clone();
        expect.error_model.backend = Some(BackendKind::Exact);
        assert_eq!(cfg, expect, "an empty spec must only pin the backend");
        assert!(cell.overrides.is_empty());
    }

    #[test]
    fn overrides_apply_only_what_is_set() {
        let base = SystemConfig::tiny();
        let mut cell = CellSpec::new("fft");
        cell.backend = Some(BackendKind::RelaxedDram);
        cell.seed = Some(42);
        cell.overrides.refresh_multiplier = Some(16);
        cell.overrides.t1 = Some(0.05);
        let cfg = cell.config(&base);
        assert_eq!(cfg.error_model.backend, Some(BackendKind::RelaxedDram));
        assert_eq!(cfg.error_model.seed, 42);
        assert_eq!(cfg.error_model.refresh_multiplier, 16);
        assert_eq!(cfg.avr.t1, 0.05);
        // Untouched knobs keep the base values.
        assert_eq!(cfg.avr.t2, base.avr.t2);
        assert_eq!(cfg.error_model.retention_fail_per_bit, base.error_model.retention_fail_per_bit);
    }

    #[test]
    fn labels_round_trip() {
        for d in DesignKind::ALL {
            assert_eq!(DesignKind::from_label(d.label()), Some(d));
        }
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::from_label(b.label()), Some(b));
        }
        for l in LayoutKind::ALL {
            assert_eq!(LayoutKind::from_label(l.label()), Some(l));
        }
        for s in BenchScale::ALL {
            assert_eq!(BenchScale::from_label(s.label()), Some(s));
        }
        assert_eq!(DesignKind::from_label("avr"), None, "labels are exact");
        assert_eq!(BenchScale::from_label(""), None);
    }
}
