//! Physical-address arithmetic.
//!
//! The paper's address breakdown (Fig. 6): 6 bits of byte offset, then a 4-bit
//! cacheline offset within the 16-line memory block, then the LLC index bits,
//! then the block tag. These helpers are the single source of truth for that
//! split; the caches and the VM both use them.

/// Bytes per cacheline — the granularity of accessing main memory.
pub const CL_BYTES: usize = 64;
/// log2 of [`CL_BYTES`].
pub const BYTE_OFFSET_BITS: u32 = 6;
/// Cachelines per AVR memory block (a quarter of a 4 KB page).
pub const LINES_PER_BLOCK: usize = 16;
/// log2 of [`LINES_PER_BLOCK`]: the cacheline-offset field width.
pub const CL_OFFSET_BITS: u32 = 4;
/// Bytes per AVR memory block.
pub const BLOCK_BYTES: usize = CL_BYTES * LINES_PER_BLOCK;
/// Bytes per page.
pub const PAGE_BYTES: usize = 4096;
/// AVR memory blocks per page.
pub const BLOCKS_PER_PAGE: usize = PAGE_BYTES / BLOCK_BYTES;

/// A byte-granularity physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A cacheline-granularity address (the physical address shifted right by 6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

/// A memory-block-granularity address (the physical address shifted right by 10).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl PhysAddr {
    /// The containing cacheline.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> BYTE_OFFSET_BITS)
    }

    /// The containing AVR memory block.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> (BYTE_OFFSET_BITS + CL_OFFSET_BITS))
    }

    /// Byte offset within the cacheline.
    #[inline]
    pub fn byte_offset(self) -> usize {
        (self.0 & (CL_BYTES as u64 - 1)) as usize
    }

    /// Page number (4 KB pages).
    #[inline]
    pub fn page(self) -> u64 {
        self.0 >> 12
    }
}

impl LineAddr {
    /// Full byte address of the first byte of this line.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << BYTE_OFFSET_BITS)
    }

    /// The containing memory block.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> CL_OFFSET_BITS)
    }

    /// The 4-bit cacheline offset within the memory block — the paper's
    /// "tag suffix" / `CL-id` for uncompressed cachelines.
    #[inline]
    pub fn cl_offset(self) -> usize {
        (self.0 & (LINES_PER_BLOCK as u64 - 1)) as usize
    }

    /// Page number (4 KB pages).
    #[inline]
    pub fn page(self) -> u64 {
        self.0 >> (12 - BYTE_OFFSET_BITS)
    }
}

impl BlockAddr {
    /// Byte address of the first byte of this block.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << (BYTE_OFFSET_BITS + CL_OFFSET_BITS))
    }

    /// The `i`-th cacheline of this block.
    #[inline]
    pub fn line(self, i: usize) -> LineAddr {
        debug_assert!(i < LINES_PER_BLOCK);
        LineAddr((self.0 << CL_OFFSET_BITS) | i as u64)
    }

    /// Page number (4 KB pages).
    #[inline]
    pub fn page(self) -> u64 {
        self.0 >> 2
    }

    /// Index of this block within its page (0..4).
    #[inline]
    pub fn index_in_page(self) -> usize {
        (self.0 & 3) as usize
    }
}

impl core::fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PA({:#x})", self.0)
    }
}
impl core::fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CL({:#x})", self.0)
    }
}
impl core::fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "BLK({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_breakdown() {
        // Fig. 6: UCL address 0xA4B2 (line-granular in the figure). We encode
        // the same relationship: line 0xA4B2 belongs to block 0xA4B and has
        // cl offset 0x2.
        let ucl = LineAddr(0xA4B2);
        assert_eq!(ucl.block(), BlockAddr(0xA4B));
        assert_eq!(ucl.cl_offset(), 0x2);
        assert_eq!(ucl.block().line(2), ucl);
    }

    #[test]
    fn byte_to_line_to_block_round_trip() {
        let pa = PhysAddr(0x1234_5678);
        assert_eq!(pa.line().base().0, pa.0 & !0x3F);
        assert_eq!(pa.block().base().0, pa.0 & !0x3FF);
        assert_eq!(pa.line().block(), pa.block());
    }

    #[test]
    fn blocks_per_page_is_four() {
        assert_eq!(BLOCKS_PER_PAGE, 4);
        let pa = PhysAddr(4096 * 7 + 1024 * 3);
        assert_eq!(pa.block().index_in_page(), 3);
        assert_eq!(pa.block().page(), 7);
        assert_eq!(pa.page(), 7);
    }

    #[test]
    fn line_page_consistent_with_byte_page() {
        for raw in [0u64, 63, 64, 4095, 4096, 1 << 30] {
            let pa = PhysAddr(raw);
            assert_eq!(pa.line().page(), pa.page());
        }
    }

    #[test]
    fn block_line_enumeration_covers_block() {
        let b = BlockAddr(0x77);
        let lines: Vec<_> = (0..LINES_PER_BLOCK).map(|i| b.line(i)).collect();
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(l.cl_offset(), i);
            assert_eq!(l.block(), b);
        }
        // Lines are consecutive.
        for w in lines.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
    }
}
