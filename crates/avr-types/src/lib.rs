//! Shared ground types for the AVR reproduction.
//!
//! Everything in this crate mirrors the fixed architectural constants of the
//! paper (ICPP 2019): 64-byte cachelines, 1 KB memory blocks of 16 cachelines,
//! 4 KB pages of 4 blocks, and 32-bit values (256 per block).

pub mod addr;
pub mod block;
pub mod config;
pub mod job;
pub mod line;
pub mod value;

pub use addr::{BlockAddr, LineAddr, PhysAddr, CL_BYTES, CL_OFFSET_BITS, LINES_PER_BLOCK};
pub use block::BlockData;
pub use config::{
    AvrParams, BackendKind, BenchScale, CacheGeometry, DesignKind, DramParams, ErrorModelParams,
    LayoutKind, MemoParams, SystemConfig,
};
pub use job::{CellSpec, ConfigOverrides};
pub use line::CacheLine;
pub use value::{DataType, VALUES_PER_BLOCK, VALUES_PER_LINE};
