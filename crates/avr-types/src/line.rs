//! A 64-byte cacheline viewed as sixteen 32-bit values.

use crate::value::VALUES_PER_LINE;

/// One cacheline of data, stored as raw 32-bit words.
///
/// The simulator's authoritative data lives in the backing store
/// (`avr-sim::vm::PhysMem`); `CacheLine` is the unit moved through the codec
/// and the block buffers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheLine {
    pub words: [u32; VALUES_PER_LINE],
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine { words: [0; VALUES_PER_LINE] }
    }
}

impl CacheLine {
    /// A zero-filled line.
    pub const ZERO: CacheLine = CacheLine { words: [0; VALUES_PER_LINE] };

    /// Build from f32 values (bit-preserving).
    pub fn from_f32(vals: &[f32; VALUES_PER_LINE]) -> Self {
        let mut words = [0u32; VALUES_PER_LINE];
        for (w, v) in words.iter_mut().zip(vals) {
            *w = v.to_bits();
        }
        CacheLine { words }
    }

    /// View as f32 values (bit-preserving).
    pub fn to_f32(&self) -> [f32; VALUES_PER_LINE] {
        let mut out = [0f32; VALUES_PER_LINE];
        for (o, w) in out.iter_mut().zip(&self.words) {
            *o = f32::from_bits(*w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip_preserves_bits() {
        let mut vals = [0f32; VALUES_PER_LINE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = (i as f32).sin() * 1e3;
        }
        let line = CacheLine::from_f32(&vals);
        assert_eq!(line.to_f32(), vals);
    }

    #[test]
    fn nan_bits_survive() {
        let mut vals = [0f32; VALUES_PER_LINE];
        vals[3] = f32::NAN;
        let line = CacheLine::from_f32(&vals);
        assert!(line.to_f32()[3].is_nan());
        // exact NaN payload preserved
        assert_eq!(line.words[3], f32::NAN.to_bits());
    }
}
